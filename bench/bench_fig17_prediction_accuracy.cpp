// Figure 17: predicted vs measured memory footprints for the 16 HiBench /
// BigDataBench programs at ~280 GB input, under leave-one-out cross
// validation (paper: error < 5% in most cases; a few benchmarks over-
// provision by 8-12%).
#include <cmath>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "sched/policies_learned.h"
#include "sched/training_data.h"
#include "sparksim/app_probe.h"
#include "workloads/features.h"

using namespace smoe;

int main() {
  constexpr std::uint64_t kSeed = 2017;
  const wl::FeatureModel features(kSeed);
  sched::SelectorCache cache(features, kSeed);

  const Items x = items_from_gib(280.0);
  std::cout << "Figure 17: predicted vs measured footprint at ~280 GB "
               "(leave-one-out cross-validation, seed "
            << kSeed << ")\n";
  TextTable table({"benchmark", "expert selected", "predicted (GB)", "measured (GB)",
                   "signed error"});
  std::vector<double> errors;
  for (const auto& bench : wl::training_benchmarks()) {
    const auto& entry = cache.for_test_benchmark(bench.name);
    const core::MoePredictor predictor(entry.pool, entry.selector);
    sim::AppProbe probe(bench, features, x, Rng::derive(kSeed, "fig17:" + bench.name));
    const core::Selection sel = predictor.select(probe.raw_features());
    const core::MemoryModel model =
        predictor.calibrate(sel, sched::take_calibration_probes(probe));
    const double predicted = model.footprint(x);
    const double measured = probe.measure_footprint(x);
    const double err = (predicted - measured) / measured;
    errors.push_back(std::abs(err));
    table.add_row({bench.name, predictor.pool().at(sel.expert_index).name(),
                   TextTable::num(predicted, 1), TextTable::num(measured, 1),
                   (err >= 0 ? "+" : "") + TextTable::pct(err, 1)});
  }
  table.render(std::cout);
  std::cout << "mean absolute error: " << TextTable::pct(mean(errors), 1)
            << "  (paper: ~5% average, <5% in most cases)\n";
  return 0;
}
