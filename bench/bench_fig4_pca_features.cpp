// Figure 4 + Table 2: PCA variance concentration over the 22 raw runtime
// features (a), and the Varimax-rotated per-feature importance ranking (b).
#include <iostream>

#include "common/table.h"
#include "ml/varimax.h"
#include "sched/training_data.h"
#include "workloads/features.h"

using namespace smoe;

int main() {
  constexpr std::uint64_t kSeed = 2017;
  const wl::FeatureModel features(kSeed);
  const auto examples = sched::make_training_set(features, kSeed);

  std::vector<ml::Vector> rows;
  for (const auto& ex : examples) rows.push_back(ex.raw_features);
  const ml::Matrix raw = ml::Matrix::from_rows(rows);

  ml::MinMaxScaler scaler;
  scaler.fit(raw);
  ml::Pca pca;
  pca.fit(scaler.transform(raw), 0.95, 5);

  std::cout << "Figure 4a: principal-component variance (paper: PC1 71%, PC2 10%, "
               "PC3 7%, PC4 4%, PC5 3%, rest 5%)\n";
  TextTable pcs({"component", "% of variance"});
  double covered = 0;
  for (std::size_t i = 0; i < pca.n_components(); ++i) {
    covered += pca.explained_variance_ratio()[i];
    pcs.add_row({"PC" + std::to_string(i + 1),
                 TextTable::pct(pca.explained_variance_ratio()[i], 1)});
  }
  pcs.add_row({"rest", TextTable::pct(1.0 - covered, 1)});
  pcs.render(std::cout);
  std::cout << "components kept for >=95% variance: " << pca.n_components() << "\n\n";

  const ml::Matrix rotated = ml::varimax_rotate(pca.components());
  const ml::Vector contrib =
      ml::feature_contributions(rotated, pca.explained_variance_ratio());

  std::vector<std::size_t> order(contrib.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return contrib[a] > contrib[b]; });

  std::cout << "Figure 4b / Table 2: raw features by Varimax contribution "
               "(paper's top 5: L1_TCM, L1_DCM, vcache, L1_STM, bo)\n";
  TextTable table({"rank", "feature", "% of contrib. to variance", "description"});
  const auto info = wl::raw_feature_table();
  for (std::size_t r = 0; r < order.size(); ++r) {
    table.add_row({std::to_string(r + 1), info[order[r]].abbr,
                   TextTable::pct(contrib[order[r]], 1), info[order[r]].desc});
  }
  table.render(std::cout);
  return 0;
}
