// Figure 3 + Table 1: observed vs predicted memory footprints for HB.Sort
// (exponential expert) and HB.PageRank (Napierian-log expert), swept across
// input sizes, using the offline-fitted memory functions.
#include <iostream>

#include "common/table.h"
#include "core/expert_pool.h"
#include "sched/training_data.h"
#include "workloads/features.h"
#include "workloads/suites.h"

using namespace smoe;

int main() {
  constexpr std::uint64_t kSeed = 2017;
  std::cout << "== Table 1: memory functions (experts) ==\n";
  const core::ExpertPool pool = core::ExpertPool::paper_default();
  for (std::size_t i = 0; i < pool.size(); ++i)
    std::cout << "  " << pool.at(static_cast<int>(i)).name() << ": "
              << pool.at(static_cast<int>(i)).formula() << "\n";

  const wl::FeatureModel features(kSeed);
  std::cout << "\n== Figure 3: observed vs predicted footprints (seed " << kSeed << ") ==\n";
  for (const char* name : {"HB.Sort", "HB.PageRank"}) {
    const auto& bench = wl::find_benchmark(name);
    const core::TrainingExample profile =
        sched::make_training_example(bench, features, kSeed);
    const core::ExpertPool::BestFit best =
        pool.best_fit(profile.profile_items, profile.profile_footprints);

    std::cout << "\n" << name << " -> " << pool.at(best.index).name() << " (m="
              << TextTable::num(best.fit.params.m, 3) << ", b="
              << TextTable::num(best.fit.params.b, 6) << " per item, R^2="
              << TextTable::num(best.fit.r2, 4) << ")\n";
    TextTable table({"input", "observed (GB)", "predicted (GB)", "error"});
    for (std::size_t i = 0; i < profile.profile_items.size(); ++i) {
      const double x = profile.profile_items[i];
      const double obs = profile.profile_footprints[i];
      const double pred = pool.at(best.index).eval(best.fit.params, x);
      table.add_row({TextTable::num(gib_from_items(x), 2) + " GB", TextTable::num(obs, 2),
                     TextTable::num(pred, 2),
                     TextTable::pct(std::abs(pred - obs) / obs, 1)});
    }
    table.render(std::cout);
  }
  return 0;
}
