// Figure 12: per-benchmark profiling time vs total runtime for the 16
// HiBench / BigDataBench programs at ~280 GB input.
#include <iostream>

#include "common/table.h"
#include "obs/cli.h"
#include "sched/experiment.h"
#include "sched/policies_learned.h"

using namespace smoe;

int main(int argc, char** argv) {
  obs::TraceCli trace_cli(argc, argv);
  constexpr std::uint64_t kSeed = 2017;
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.sink = &trace_cli.sink();
  sim::ClusterSim sim(cfg, features);
  sched::MoePolicy ours(features, kSeed);

  const Items k280GB = items_from_gib(280.0);
  std::cout << "Figure 12: profiling vs total runtime per benchmark (~280 GB input, seed "
            << kSeed << ")\n";
  TextTable table({"benchmark", "feature extr. (min)", "calibration (min)",
                   "total execution (min)", "profiling share"});
  for (const auto& bench : wl::training_benchmarks()) {
    const sim::SimResult r = sim.run({{bench.name, k280GB}}, ours);
    const auto& app = r.apps.front();
    const double total = app.feature_time + app.calibration_time + app.exec_time();
    table.add_row({bench.name, TextTable::num(app.feature_time / 60.0, 2),
                   TextTable::num(app.calibration_time / 60.0, 2),
                   TextTable::num(total / 60.0, 1),
                   TextTable::pct((app.feature_time + app.calibration_time) / total, 1)});
  }
  table.render(std::cout);
  return 0;
}
