// Figure 10: our approach vs descent-gradient online search, which finds the
// right chunk size by repeated trial runs at dispatch time (paper: ours is
// 2.4x / 2.6x better on STP / ANTT because the probing overhead dominates).
#include <iostream>
#include <vector>

#include "common/bench_cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/cli.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"

using namespace smoe;

int main(int argc, char** argv) {
  obs::TraceCli trace_cli(argc, argv);
  constexpr std::uint64_t kSeed = 2017;
  const BenchOptions opt = parse_bench_options(argc, argv, 100);
  const std::size_t n_mixes = opt.n_mixes;

  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.sink = &trace_cli.sink();
  sched::ExperimentRunner runner(cfg, features, n_mixes, Rng::derive(kSeed, "fig10"), opt.threads);
  runner.set_sink_factory(trace_cli.sink_factory());

  sched::OnlineSearchPolicy online;
  sched::MoePolicy ours(features, kSeed);
  const std::vector<sim::SchedulingPolicy*> policies = {&online, &ours};

  // Racing is the bench default; tracing runs stay un-raced (one traced
  // schedule per cell).
  const bool tracing_active = trace_cli.sink().enabled() || trace_cli.sink_factory() != nullptr;
  const bool race_on = opt.race.value_or(true) && !tracing_active;
  sched::RaceOptions race;
  if (opt.max_replays != 0) race.max_replays = opt.max_replays;
  race.budget_seconds = opt.budget_seconds;
  std::size_t race_total_sims = 0, race_fixed_budget = 0;

  TextTable stp({"scenario", "Online Search", "Ours (MoE)"});
  TextTable antt({"scenario", "Online Search", "Ours (MoE)"});
  std::vector<double> s_online, s_ours, a_online, a_ours;

  std::cout << "Figure 10: online search vs ours (seed " << kSeed << ", " << n_mixes
            << " mixes per scenario, " << runner.threads() << " threads, racing "
            << (race_on ? "on" : "off") << ")\n";
  for (const auto& scenario : wl::scenarios()) {
    std::vector<sched::SchemeScenarioResult> results;
    if (race_on) {
      auto raced = runner.run_scenario_raced(scenario, policies, race);
      race_total_sims += raced.total_simulations;
      race_fixed_budget += raced.fixed_budget_simulations;
      results = std::move(raced.schemes);
    } else {
      results = runner.run_scenario(scenario, policies);
    }
    stp.add_row({scenario.label, TextTable::num(results[0].stp_geomean, 2) + "x",
                 TextTable::num(results[1].stp_geomean, 2) + "x"});
    antt.add_row({scenario.label, TextTable::pct(results[0].antt_red_mean, 1),
                  TextTable::pct(results[1].antt_red_mean, 1)});
    s_online.push_back(results[0].stp_geomean);
    s_ours.push_back(results[1].stp_geomean);
    a_online.push_back(results[0].antt_red_mean);
    a_ours.push_back(results[1].antt_red_mean);
  }
  stp.add_row({"Geomean", TextTable::num(geomean(s_online), 2) + "x",
               TextTable::num(geomean(s_ours), 2) + "x"});
  antt.add_row({"Mean", TextTable::pct(mean(a_online), 1), TextTable::pct(mean(a_ours), 1)});

  std::cout << "\n(a) Normalized STP\n";
  stp.render(std::cout);
  std::cout << "\n(b) ANTT reduction\n";
  antt.render(std::cout);
  std::cout << "\nours vs online search (STP):  "
            << TextTable::num(geomean(s_ours) / geomean(s_online), 2)
            << "x   (paper: 2.4x)\n";
  if (race_on) {
    const double saved =
        100.0 * (1.0 - static_cast<double>(race_total_sims) / static_cast<double>(race_fixed_budget));
    std::cout << "adaptive replication: " << race_total_sims << " of " << race_fixed_budget
              << " fixed-budget simulations (saved " << TextTable::num(saved, 1) << "%)\n";
  }
  return 0;
}
