// Table 5: expert-selection accuracy of alternative classification
// techniques (leave-one-out cross-validation over profiling runs of all 44
// benchmarks). The paper reports: Naive Bayes 92.5, MLP 94.1, SVM 95.4,
// Random Forests 95.5, Decision Tree 96.8, ANN 96.9, KNN 97.4 — KNN is
// chosen because it needs no retraining when a new memory function is added.
#include <iostream>

#include "common/table.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/svm.h"
#include "sched/training_data.h"
#include "workloads/features.h"

using namespace smoe;

int main() {
  constexpr std::uint64_t kSeed = 2017;
  const wl::FeatureModel features(kSeed);

  // Feature transform learned on the training programs (as deployed).
  const auto examples = sched::make_training_set(features, kSeed);
  std::vector<ml::Vector> rows;
  for (const auto& ex : examples) rows.push_back(ex.raw_features);
  ml::MinMaxScaler scaler;
  scaler.fit(ml::Matrix::from_rows(rows));
  ml::Pca pca;
  pca.fit(scaler.transform(ml::Matrix::from_rows(rows)), 0.95, 5);

  // Dataset: several profiling runs of every benchmark, labeled with the
  // memory-function family, in PCA space.
  // The paper evaluates accuracy "averaged across benchmarks and inputs":
  // characterization runs at odd input sizes measure the counters less
  // cleanly, so the per-run noise here is scaled well above a standard
  // ~100 MB run.
  constexpr int kRunsPerBenchmark = 8;
  constexpr double kShortRunNoise = 14.0;
  ml::Dataset ds;
  std::vector<ml::Vector> x_rows;
  for (const auto& bench : wl::all_spark_benchmarks()) {
    Rng rng(Rng::derive(kSeed, "table5:" + bench.name));
    for (int run = 0; run < kRunsPerBenchmark; ++run) {
      x_rows.push_back(
          pca.transform(scaler.transform(features.sample(bench, rng, kShortRunNoise))));
      ds.labels.push_back(bench.family_label());
    }
  }
  ds.x = ml::Matrix::from_rows(x_rows);

  struct Entry {
    std::string name;
    ml::ClassifierFactory make;
    double paper;
  };
  const std::vector<Entry> classifiers = {
      {"Naive Bayes", [] { return std::make_unique<ml::GaussianNaiveBayes>(); }, 92.5},
      {"MLP",
       [] { return std::make_unique<ml::MlpClassifier>(ml::MlpParams{{10}, 150, 0.05, 1e-5}, 5); },
       94.1},
      {"SVM", [] { return std::make_unique<ml::LinearSvm>(ml::SvmParams{1e-3, 80, 1.0}, 4); },
       95.4},
      {"Random Forests",
       [] { return std::make_unique<ml::RandomForest>(ml::ForestParams{30, {}}, 3); }, 95.5},
      {"Decision Tree", [] { return std::make_unique<ml::DecisionTree>(); }, 96.8},
      {"ANN",
       [] {
         return std::make_unique<ml::MlpClassifier>(ml::MlpParams{{12, 8}, 150, 0.05, 1e-5}, 6,
                                                    "ANN");
       },
       96.9},
      {"KNN", [] { return std::make_unique<ml::KnnClassifier>(1); }, 97.4},
  };

  std::cout << "Table 5: expert-selector accuracy per classifier (LOOCV over "
            << ds.size() << " profiling runs, seed " << kSeed << ")\n";
  TextTable table({"classifier", "accuracy (measured)", "accuracy (paper)"});
  for (const auto& c : classifiers) {
    const double acc = ml::loocv_accuracy(ds, c.make);
    table.add_row({c.name, TextTable::pct(acc, 1), TextTable::num(c.paper, 1) + "%"});
  }
  table.render(std::cout);
  std::cout << "(KNN is chosen because its accuracy is comparable but it needs no\n"
               " retraining when a new memory function is added — Section 6.9)\n";
  return 0;
}
