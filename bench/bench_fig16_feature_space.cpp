// Figure 16: all 44 benchmarks projected onto the top-2 principal components
// of the program feature space. Programs must fall into three clusters, one
// per memory-function family, and members must correlate almost perfectly
// with their cluster center (paper: Pearson > 0.9999 for most programs).
#include <iostream>
#include <map>

#include "common/stats.h"
#include "common/table.h"
#include "ml/kmeans.h"
#include "sched/training_data.h"
#include "workloads/features.h"

using namespace smoe;

int main() {
  constexpr std::uint64_t kSeed = 2017;
  const wl::FeatureModel features(kSeed);

  // Transform learned on the 16 training programs, applied to all 44.
  const auto examples = sched::make_training_set(features, kSeed);
  std::vector<ml::Vector> rows;
  for (const auto& ex : examples) rows.push_back(ex.raw_features);
  ml::MinMaxScaler scaler;
  scaler.fit(ml::Matrix::from_rows(rows));
  ml::Pca pca;
  pca.fit(scaler.transform(ml::Matrix::from_rows(rows)), 0.95, 2);

  struct Point {
    std::string name;
    int family;
    ml::Vector pc;
    ml::Vector raw;
  };
  std::vector<Point> points;
  for (const auto& bench : wl::all_spark_benchmarks()) {
    Rng rng(Rng::derive(kSeed, "fig16:" + bench.name));
    const ml::Vector raw = features.sample(bench, rng);
    points.push_back({bench.name, bench.family_label(),
                      pca.transform(scaler.transform(raw)), raw});
  }

  std::cout << "Figure 16: program feature space (top-2 PCs, seed " << kSeed << ")\n";
  TextTable table({"benchmark", "family", "PC1", "PC2"});
  const char* family_names[] = {"Linear(Power)", "Exponential", "NapierianLog"};
  for (const auto& p : points)
    table.add_row({p.name, family_names[p.family], TextTable::num(p.pc[0], 3),
                   TextTable::num(p.pc.size() > 1 ? p.pc[1] : 0.0, 3)});
  table.render(std::cout);

  // Cluster centers (mean raw-feature vector per family) and the Pearson
  // correlation of each member to its center (computed on raw counter
  // vectors, as the paper does).
  std::map<int, ml::Vector> centers;
  std::map<int, int> counts;
  for (const auto& p : points) {
    auto& c = centers[p.family];
    if (c.empty()) c.assign(p.raw.size(), 0.0);
    for (std::size_t i = 0; i < p.raw.size(); ++i) c[i] += p.raw[i];
    ++counts[p.family];
  }
  for (auto& [family, c] : centers)
    for (auto& v : c) v /= counts[family];

  std::vector<double> correlations;
  for (const auto& p : points) correlations.push_back(pearson(p.raw, centers[p.family]));

  // Cluster separation check: every member is nearer its own center than any
  // other center in PC space.
  std::map<int, ml::Vector> pc_centers;
  for (const auto& p : points) {
    auto& c = pc_centers[p.family];
    if (c.empty()) c.assign(p.pc.size(), 0.0);
    for (std::size_t i = 0; i < p.pc.size(); ++i) c[i] += p.pc[i];
  }
  for (auto& [family, c] : pc_centers)
    for (auto& v : c) v /= counts[family];
  int pure = 0;
  for (const auto& p : points) {
    int best = -1;
    double best_d = 1e18;
    for (const auto& [family, c] : pc_centers) {
      const double d = ml::euclidean_distance(p.pc, c);
      if (d < best_d) {
        best_d = d;
        best = family;
      }
    }
    if (best == p.family) ++pure;
  }

  // Unsupervised check: does k-means on the PC coordinates rediscover the
  // three family clusters without being told the labels?
  ml::Matrix pc_matrix(points.size(), points.front().pc.size());
  for (std::size_t r = 0; r < points.size(); ++r)
    for (std::size_t c = 0; c < points[r].pc.size(); ++c) pc_matrix(r, c) = points[r].pc[c];
  const ml::KMeansResult km = ml::kmeans(pc_matrix, 3, kSeed);
  std::map<std::size_t, std::map<int, int>> votes;
  for (std::size_t r = 0; r < points.size(); ++r) ++votes[km.assignment[r]][points[r].family];
  std::map<std::size_t, int> majority;
  for (const auto& [cluster, families] : votes) {
    int best_family = -1, best_count = -1;
    for (const auto& [family, count] : families)
      if (count > best_count) {
        best_count = count;
        best_family = family;
      }
    majority[cluster] = best_family;
  }
  int agree = 0;
  for (std::size_t r = 0; r < points.size(); ++r)
    if (majority[km.assignment[r]] == points[r].family) ++agree;

  std::cout << "\nk-means (k=3, unsupervised) rediscovers the family clusters for " << agree
            << "/44 benchmarks\n"
            << "cluster purity: " << pure << "/44 benchmarks nearest their own family's center\n"
            << "Pearson to cluster center: min " << TextTable::num(min_of(correlations), 4)
            << ", median " << TextTable::num(median(correlations), 4)
            << "  (paper: > 0.9999 for most programs)\n";
  return 0;
}
