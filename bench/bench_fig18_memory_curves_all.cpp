// Figure 18: predicted vs measured memory-footprint curves for the 16
// HiBench / BigDataBench programs, swept from ~30 MB to ~280 GB input, using
// the leave-one-out-trained expert selector plus runtime calibration.
#include <cmath>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "sched/policies_learned.h"
#include "sched/training_data.h"
#include "sparksim/app_probe.h"
#include "workloads/features.h"

using namespace smoe;

int main() {
  constexpr std::uint64_t kSeed = 2017;
  const wl::FeatureModel features(kSeed);
  sched::SelectorCache cache(features, kSeed);

  const std::vector<double> sweep_gb = {0.03, 0.3, 3.0, 10.0, 30.0, 100.0, 280.0};
  std::cout << "Figure 18: predicted vs measured footprint curves "
               "(leave-one-out cross-validation, seed "
            << kSeed << ")\n";

  std::vector<double> errors;
  for (const auto& bench : wl::training_benchmarks()) {
    const auto& entry = cache.for_test_benchmark(bench.name);
    const core::MoePredictor predictor(entry.pool, entry.selector);
    sim::AppProbe probe(bench, features, items_from_gib(280.0),
                        Rng::derive(kSeed, "fig18:" + bench.name));
    const core::Selection sel = predictor.select(probe.raw_features());
    const core::MemoryModel model =
        predictor.calibrate(sel, sched::take_calibration_probes(probe));

    std::cout << "\n" << bench.name << " -> " << predictor.pool().at(sel.expert_index).name()
              << " (nearest training program: " << sel.nearest_program << ")\n";
    TextTable table({"input (GB)", "measured (GB)", "predicted (GB)", "error"});
    for (const double gb : sweep_gb) {
      const Items x = items_from_gib(gb);
      const double measured = probe.measure_footprint(x);
      const double predicted = model.footprint(x);
      errors.push_back(std::abs(predicted - measured) / measured);
      table.add_row({TextTable::num(gb, 2), TextTable::num(measured, 2),
                     TextTable::num(predicted, 2),
                     TextTable::pct(std::abs(predicted - measured) / measured, 1)});
    }
    table.render(std::cout);
  }
  std::cout << "\nmean absolute error across all curves: " << TextTable::pct(mean(errors), 1)
            << "  (paper: the memory functions 'precisely capture' the footprints)\n";
  return 0;
}
