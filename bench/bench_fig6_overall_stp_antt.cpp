// Figure 6 + Section 6.1/6.2 headline numbers: normalized STP and ANTT
// reduction for Pairwise, Quasar, Ours (MoE) and Oracle across the ten
// runtime scenarios of Table 3, normalized against one-by-one isolated
// execution. Also prints the paper's summary ratios (ours vs Quasar, ours as
// a fraction of Oracle).
#include <iostream>
#include <string>
#include <vector>

#include <fstream>

#include "common/bench_cli.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/cli.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"

using namespace smoe;

int main(int argc, char** argv) {
  // --trace/--chrome-trace capture every policy schedule of the figure for
  // debugging; the baseline normalization runs are never traced.
  obs::TraceCli trace_cli(argc, argv);
  constexpr std::uint64_t kSeed = 2017;
  // The paper replays ~100 mixes per scenario; same default here.
  const BenchOptions opt = parse_bench_options(argc, argv, 100);
  const std::size_t n_mixes = opt.n_mixes;

  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.sink = &trace_cli.sink();
  sched::ExperimentRunner runner(cfg, features, n_mixes, Rng::derive(kSeed, "fig6"), opt.threads);
  // --trace-dir gives every (policy, mix) cell its own trace file and keeps
  // the sweep parallel (a single shared --trace sink forces sequential runs).
  runner.set_sink_factory(trace_cli.sink_factory());

  sched::PairwisePolicy pairwise;
  sched::QuasarPolicy quasar(features, kSeed);
  sched::MoePolicy ours(features, kSeed);
  sched::OraclePolicy oracle;
  const std::vector<sim::SchedulingPolicy*> policies = {&pairwise, &quasar, &ours, &oracle};

  TextTable stp({"scenario", "Pairwise", "Quasar", "Ours (MoE)", "Oracle"});
  TextTable antt({"scenario", "Pairwise", "Quasar", "Ours (MoE)", "Oracle"});
  std::vector<std::vector<double>> stp_by_policy(policies.size());
  std::vector<std::vector<double>> antt_by_policy(policies.size());

  std::cout << "Figure 6: normalized STP / ANTT reduction (seed " << kSeed << ", " << n_mixes
            << " mixes per scenario, " << runner.threads() << " threads)\n";
  std::ofstream csv_file("fig6_results.csv");
  CsvWriter csv(csv_file, {"scenario", "scheme", "stp_geomean", "stp_min", "stp_max",
                           "antt_reduction_mean"});
  for (const auto& scenario : wl::scenarios()) {
    const auto results = runner.run_scenario(scenario, policies);
    std::vector<std::string> stp_row = {scenario.label};
    std::vector<std::string> antt_row = {scenario.label};
    for (std::size_t p = 0; p < results.size(); ++p) {
      stp_row.push_back(TextTable::num(results[p].stp_geomean, 2) + "x [" +
                        TextTable::num(results[p].stp_min, 2) + "," +
                        TextTable::num(results[p].stp_max, 2) + "]");
      antt_row.push_back(TextTable::pct(results[p].antt_red_mean, 1));
      stp_by_policy[p].push_back(results[p].stp_geomean);
      antt_by_policy[p].push_back(results[p].antt_red_mean);
      csv.add_row({scenario.label, results[p].scheme, TextTable::num(results[p].stp_geomean, 4),
                   TextTable::num(results[p].stp_min, 4), TextTable::num(results[p].stp_max, 4),
                   TextTable::num(results[p].antt_red_mean, 4)});
    }
    stp.add_row(stp_row);
    antt.add_row(antt_row);
  }

  std::vector<std::string> stp_geo = {"Geomean"};
  std::vector<std::string> antt_mean = {"Mean"};
  std::vector<double> stp_summary, antt_summary;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    stp_summary.push_back(geomean(stp_by_policy[p]));
    antt_summary.push_back(mean(antt_by_policy[p]));
    stp_geo.push_back(TextTable::num(stp_summary.back(), 2) + "x");
    antt_mean.push_back(TextTable::pct(antt_summary.back(), 1));
  }
  stp.add_row(stp_geo);
  antt.add_row(antt_mean);

  std::cout << "\n(a) Normalized STP (higher is better; paper: ours 8.69x, Quasar 6.6x)\n";
  stp.render(std::cout);
  std::cout << "\n(b) ANTT reduction (higher is better; paper: ours 49% mean)\n";
  antt.render(std::cout);

  std::cout << "\n== Section 6.2 summary ==\n"
            << "ours vs Quasar (STP):        " << TextTable::num(stp_summary[2] / stp_summary[1], 2)
            << "x   (paper: 1.28x)\n"
            << "ours / Oracle (STP):         " << TextTable::pct(stp_summary[2] / stp_summary[3], 1)
            << "   (paper: 83.9%)\n"
            << "ours vs Pairwise (STP):      " << TextTable::num(stp_summary[2] / stp_summary[0], 2)
            << "x\n"
            << "ours ANTT reduction:         " << TextTable::pct(antt_summary[2], 1)
            << "   (paper: 49%)\n"
            << "ours / Oracle (ANTT red.):   " << TextTable::pct(antt_summary[2] / antt_summary[3], 1)
            << "   (paper: 93.4%)\n";
  return 0;
}
