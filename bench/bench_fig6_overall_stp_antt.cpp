// Figure 6 + Section 6.1/6.2 headline numbers: normalized STP and ANTT
// reduction for Pairwise, Quasar, Ours (MoE) and Oracle across the ten
// runtime scenarios of Table 3, normalized against one-by-one isolated
// execution. Also prints the paper's summary ratios (ours vs Quasar, ours as
// a fraction of Oracle).
#include <iostream>
#include <string>
#include <vector>

#include <fstream>

#include "common/bench_cli.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/cli.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"

using namespace smoe;

int main(int argc, char** argv) {
  // --trace/--chrome-trace capture every policy schedule of the figure for
  // debugging; the baseline normalization runs are never traced.
  obs::TraceCli trace_cli(argc, argv);
  constexpr std::uint64_t kSeed = 2017;
  // The paper replays ~100 mixes per scenario; same default here.
  const BenchOptions opt = parse_bench_options(argc, argv, 100);
  const std::size_t n_mixes = opt.n_mixes;

  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.sink = &trace_cli.sink();
  sched::ExperimentRunner runner(cfg, features, n_mixes, Rng::derive(kSeed, "fig6"), opt.threads);
  // --trace-dir gives every (policy, mix) cell its own trace file and keeps
  // the sweep parallel (a single shared --trace sink forces sequential runs).
  runner.set_sink_factory(trace_cli.sink_factory());

  sched::PairwisePolicy pairwise;
  sched::QuasarPolicy quasar(features, kSeed);
  sched::MoePolicy ours(features, kSeed);
  sched::OraclePolicy oracle;
  const std::vector<sim::SchedulingPolicy*> policies = {&pairwise, &quasar, &ours, &oracle};

  // Best-arm racing is the bench default (--no-race restores single-run
  // cells); tracing runs stay un-raced so every cell still produces exactly
  // one traced schedule.
  const bool tracing_active = trace_cli.sink().enabled() || trace_cli.sink_factory() != nullptr;
  const bool race_on = opt.race.value_or(true) && !tracing_active;
  if (opt.race.value_or(false) && tracing_active)
    std::cout << "note: tracing active, racing disabled for this run\n";
  sched::RaceOptions race;
  if (opt.max_replays != 0) race.max_replays = opt.max_replays;
  race.budget_seconds = opt.budget_seconds;
  std::size_t race_total_sims = 0, race_fixed_budget = 0, race_separated = 0;

  TextTable stp({"scenario", "Pairwise", "Quasar", "Ours (MoE)", "Oracle"});
  TextTable antt({"scenario", "Pairwise", "Quasar", "Ours (MoE)", "Oracle"});
  std::vector<std::vector<double>> stp_by_policy(policies.size());
  std::vector<std::vector<double>> antt_by_policy(policies.size());

  std::cout << "Figure 6: normalized STP / ANTT reduction (seed " << kSeed << ", " << n_mixes
            << " mixes per scenario, " << runner.threads() << " threads, racing "
            << (race_on ? "on" : "off") << ")\n";
  std::ofstream csv_file("fig6_results.csv");
  CsvWriter csv(csv_file, {"scenario", "scheme", "stp_geomean", "stp_min", "stp_max",
                           "antt_reduction_mean", "replays_used", "separated_cells"});
  for (const auto& scenario : wl::scenarios()) {
    std::vector<sched::SchemeScenarioResult> results;
    sched::ExperimentRunner::RacedScenarioResult raced;
    if (race_on) {
      raced = runner.run_scenario_raced(scenario, policies, race);
      results = raced.schemes;
      race_total_sims += raced.total_simulations;
      race_fixed_budget += raced.fixed_budget_simulations;
    } else {
      results = runner.run_scenario(scenario, policies);
    }
    std::vector<std::string> stp_row = {scenario.label};
    std::vector<std::string> antt_row = {scenario.label};
    for (std::size_t p = 0; p < results.size(); ++p) {
      std::size_t replays_used = 0, separated = 0;
      for (std::size_t m = 0; race_on && m < n_mixes; ++m) {
        const sched::CellOutcome& cell = raced.cells[p * n_mixes + m];
        replays_used += cell.replays_used;
        separated += cell.separated_from_best ? 1 : 0;
      }
      race_separated += separated;
      stp_row.push_back(TextTable::num(results[p].stp_geomean, 2) + "x [" +
                        TextTable::num(results[p].stp_min, 2) + "," +
                        TextTable::num(results[p].stp_max, 2) + "]");
      antt_row.push_back(TextTable::pct(results[p].antt_red_mean, 1));
      stp_by_policy[p].push_back(results[p].stp_geomean);
      antt_by_policy[p].push_back(results[p].antt_red_mean);
      csv.add_row({scenario.label, results[p].scheme, TextTable::num(results[p].stp_geomean, 4),
                   TextTable::num(results[p].stp_min, 4), TextTable::num(results[p].stp_max, 4),
                   TextTable::num(results[p].antt_red_mean, 4),
                   race_on ? std::to_string(replays_used) : "",
                   race_on ? std::to_string(separated) : ""});
    }
    stp.add_row(stp_row);
    antt.add_row(antt_row);
  }

  std::vector<std::string> stp_geo = {"Geomean"};
  std::vector<std::string> antt_mean = {"Mean"};
  std::vector<double> stp_summary, antt_summary;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    stp_summary.push_back(geomean(stp_by_policy[p]));
    antt_summary.push_back(mean(antt_by_policy[p]));
    stp_geo.push_back(TextTable::num(stp_summary.back(), 2) + "x");
    antt_mean.push_back(TextTable::pct(antt_summary.back(), 1));
  }
  stp.add_row(stp_geo);
  antt.add_row(antt_mean);

  std::cout << "\n(a) Normalized STP (higher is better; paper: ours 8.69x, Quasar 6.6x)\n";
  stp.render(std::cout);
  std::cout << "\n(b) ANTT reduction (higher is better; paper: ours 49% mean)\n";
  antt.render(std::cout);

  std::cout << "\n== Section 6.2 summary ==\n"
            << "ours vs Quasar (STP):        " << TextTable::num(stp_summary[2] / stp_summary[1], 2)
            << "x   (paper: 1.28x)\n"
            << "ours / Oracle (STP):         " << TextTable::pct(stp_summary[2] / stp_summary[3], 1)
            << "   (paper: 83.9%)\n"
            << "ours vs Pairwise (STP):      " << TextTable::num(stp_summary[2] / stp_summary[0], 2)
            << "x\n"
            << "ours ANTT reduction:         " << TextTable::pct(antt_summary[2], 1)
            << "   (paper: 49%)\n"
            << "ours / Oracle (ANTT red.):   " << TextTable::pct(antt_summary[2] / antt_summary[3], 1)
            << "   (paper: 93.4%)\n";
  if (race_on) {
    const double saved =
        100.0 * (1.0 - static_cast<double>(race_total_sims) / static_cast<double>(race_fixed_budget));
    std::cout << "\n== Adaptive replication (DESIGN.md §15) ==\n"
              << "simulations:        " << race_total_sims << " of " << race_fixed_budget
              << " fixed-budget (saved " << TextTable::num(saved, 1) << "%)\n"
              << "separated cells:    " << race_separated << " of "
              << race_fixed_budget / race.max_replays << "\n";
  }
  return 0;
}
