// Open-loop serving load sweep (DESIGN.md §14): the same Poisson application
// stream played against the admission gate at arrival rates from well under
// to well past cluster saturation, once per admission policy. Emits the
// knee/saturation curve to BENCH_serving.json next to the text report.
//
//   ./build/bench/bench_serving_load_sweep [n_arrivals]
//
// The offered *work* is identical at every rate (poisson_load keys the app
// sequence off the seed alone), so each column of the table is the same jobs
// arriving faster. Every serving run executes under the InvariantAuditor, so
// a violated engine invariant fails the bench, not just a test.
//
// The sweep is anchored on a measured capacity estimate: the batch makespan
// of the same applications gives the cluster's drain rate mu (apps/s), and
// the ladder sweeps lambda/mu from 0.25 to 3.0. The saturation knee of a
// policy is the first ladder point where delivered throughput falls below
// 85% of the offered rate — past it, the open-loop baseline's sojourn
// diverges while drop/defer policies trade loss or queueing delay for a
// bounded system.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_cli.h"
#include "common/table.h"
#include "sched/policies_learned.h"
#include "sparksim/admission.h"
#include "sparksim/audit/invariant_auditor.h"
#include "sparksim/engine.h"
#include "workloads/features.h"

using namespace smoe;

namespace {

constexpr std::uint64_t kSeed = 2017;

sim::SimConfig sweep_config() {
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  // A small cluster saturates at rates the bench can sweep quickly; the
  // admission dynamics are the same ones a 40-node cluster shows, scaled.
  cfg.cluster.n_nodes = 8;
  return cfg;
}

struct SweepPoint {
  std::string admission;
  double rate = 0;             ///< offered arrival rate lambda (apps/s)
  double rate_over_mu = 0;     ///< lambda / estimated capacity
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t dropped = 0;
  std::size_t deferrals = 0;
  double throughput = 0;       ///< finished apps/s over the run
  double delivered_frac = 0;   ///< throughput / offered rate
  double antt = 0;
  double sojourn_p50 = 0;
  double sojourn_p99 = 0;
  double finish_rate_window = 0;  ///< closing steady-state window (apps/s)
};

void json_point(std::ofstream& json, const SweepPoint& pt) {
  json << "{\"admission\": \"" << pt.admission << "\", \"rate\": " << pt.rate
       << ", \"rate_over_mu\": " << pt.rate_over_mu << ", \"offered\": " << pt.offered
       << ", \"admitted\": " << pt.admitted << ", \"dropped\": " << pt.dropped
       << ", \"deferrals\": " << pt.deferrals << ", \"throughput\": " << pt.throughput
       << ", \"delivered_frac\": " << pt.delivered_frac << ", \"antt\": " << pt.antt
       << ", \"sojourn_p50\": " << pt.sojourn_p50 << ", \"sojourn_p99\": " << pt.sojourn_p99
       << ", \"finish_rate_window\": " << pt.finish_rate_window << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv, 48);
  const std::size_t n_arrivals = std::max<std::size_t>(8, opt.n_mixes);

  const wl::FeatureModel features(kSeed);
  const sim::SimConfig cfg = sweep_config();

  // The application sequence is rate-independent: take it once, attach the
  // isolated execution baseline each app needs for normalized turnaround.
  const auto proto = sim::poisson_load(n_arrivals, 1.0, kSeed);
  std::map<std::pair<std::string, double>, Seconds> isolated_cache;
  {
    sim::ClusterSim probe(cfg, features);
    for (const auto& arrival : proto) {
      const auto key = std::make_pair(arrival.app.benchmark, arrival.app.input_items);
      if (isolated_cache.find(key) == isolated_cache.end())
        isolated_cache[key] = probe.isolated_exec_time(arrival.app);
    }
  }

  // Capacity estimate mu: the batch drain rate of the same applications.
  double mu = 0;
  {
    wl::TaskMix mix;
    mix.reserve(proto.size());
    for (const auto& arrival : proto) mix.push_back(arrival.app);
    sim::ClusterSim cluster(cfg, features);
    sched::MoePolicy policy(features, kSeed);
    const sim::SimResult batch = cluster.run(mix, policy);
    mu = static_cast<double>(mix.size()) / batch.makespan;
  }

  std::cout << "Serving load sweep: " << n_arrivals << " arrivals, "
            << cfg.cluster.n_nodes << " nodes, seed " << kSeed
            << ", estimated capacity mu = " << TextTable::num(mu * 3600.0, 2)
            << " apps/hour\n\n";

  const double ladder[] = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0};
  const std::size_t cap = 2 * cfg.cluster.n_nodes;

  struct GateSpec {
    std::string name;
    std::unique_ptr<sim::AdmissionPolicy> gate;
  };
  std::vector<GateSpec> gates;
  gates.push_back({"unbounded", std::make_unique<sim::UnboundedAdmission>()});
  gates.push_back({"bounded-drop", std::make_unique<sim::BoundedDropAdmission>(cap)});
  gates.push_back({"bounded-defer", std::make_unique<sim::BoundedDeferAdmission>(cap)});
  gates.push_back({"murs-gate", std::make_unique<sim::MursGateAdmission>(0.5)});
  // Token refill at the measured capacity: the bucket passes sub-capacity
  // load untouched and sheds exactly the overload.
  gates.push_back({"token-bucket", std::make_unique<sim::TokenBucketAdmission>(
                                       mu, static_cast<double>(cap))});
  gates.push_back({"hybrid", std::make_unique<sim::HybridAdmission>(4 * cap, 0.5)});

  std::vector<SweepPoint> points;
  std::map<std::string, double> knee;  // admission -> first saturated lambda/mu

  for (const auto& spec : gates) {
    TextTable table({"lambda/mu", "rate/hr", "admitted", "dropped", "deferred",
                     "tput/hr", "delivered", "ANTT", "sojourn p50", "sojourn p99"});
    for (const double x : ladder) {
      const double rate = x * mu;
      auto load = sim::poisson_load(n_arrivals, rate, kSeed);
      for (auto& arrival : load)
        arrival.isolated_s =
            isolated_cache.at({arrival.app.benchmark, arrival.app.input_items});

      sim::audit::InvariantAuditor auditor;
      sim::ClusterSim cluster(cfg, features);
      sched::MoePolicy policy(features, kSeed);
      const sim::ServingResult r = cluster.serve(load, policy, *spec.gate, &auditor);

      SweepPoint pt;
      pt.admission = spec.name;
      pt.rate = rate;
      pt.rate_over_mu = x;
      pt.offered = r.offered;
      pt.admitted = r.admitted;
      pt.dropped = r.dropped;
      pt.deferrals = r.deferrals;
      pt.throughput = r.throughput;
      pt.delivered_frac = rate > 0 ? r.throughput / rate : 0;
      pt.antt = r.antt;
      const auto it = r.metrics.quantiles.find("app_sojourn_seconds");
      if (it != r.metrics.quantiles.end() && it->second.count > 0) {
        pt.sojourn_p50 = it->second.estimates[0];
        pt.sojourn_p99 = it->second.estimates[2];
      }
      const auto wf = r.metrics.windows.find("serving_finish_rate");
      if (wf != r.metrics.windows.end()) pt.finish_rate_window = wf->second.rate_per_sec;
      points.push_back(pt);

      if (knee.find(spec.name) == knee.end() && pt.delivered_frac < 0.85)
        knee[spec.name] = x;

      table.add_row({TextTable::num(x, 2), TextTable::num(rate * 3600.0, 2),
                     std::to_string(pt.admitted), std::to_string(pt.dropped),
                     std::to_string(pt.deferrals),
                     TextTable::num(pt.throughput * 3600.0, 2),
                     TextTable::num(pt.delivered_frac, 2), TextTable::num(pt.antt, 2),
                     TextTable::num(pt.sojourn_p50, 0), TextTable::num(pt.sojourn_p99, 0)});
    }
    std::cout << "admission policy: " << spec.name << "\n";
    table.render(std::cout);
    if (knee.count(spec.name))
      std::cout << "  saturation knee at lambda/mu = " << TextTable::num(knee[spec.name], 2)
                << "\n";
    else
      std::cout << "  no saturation within the swept ladder\n";
    std::cout << "\n";
  }

  // ---- sanity assertions the CI smoke job relies on ------------------------
  // (1) The open-loop baseline must saturate inside the ladder: offered load
  //     3x over capacity cannot be delivered at nominal rate.
  if (knee.find("unbounded") == knee.end()) {
    std::cerr << "FAIL: unbounded admission never saturated across the ladder\n";
    return 1;
  }
  // (2) Past the knee, unbounded sojourn must degrade vs the light-load
  //     point (queueing delay diverges in an open loop).
  double unbounded_low = 0, unbounded_high = 0;
  for (const auto& pt : points) {
    if (pt.admission != "unbounded") continue;
    if (pt.rate_over_mu == ladder[0]) unbounded_low = pt.sojourn_p99;
    if (pt.rate_over_mu == ladder[std::size(ladder) - 1]) unbounded_high = pt.sojourn_p99;
  }
  if (!(unbounded_high > 1.5 * unbounded_low)) {
    std::cerr << "FAIL: unbounded p99 sojourn did not degrade past the knee ("
              << unbounded_low << " -> " << unbounded_high << ")\n";
    return 1;
  }
  // (3) Loss/backpressure invariants: bounded-drop keeps at most `cap` in
  //     flight (so admitted+dropped = offered with real drops at overload),
  //     bounded-defer never drops.
  for (const auto& pt : points) {
    if (pt.admitted + pt.dropped != pt.offered) {
      std::cerr << "FAIL: unresolved arrivals for " << pt.admission << "\n";
      return 1;
    }
    if (pt.admission == "bounded-defer" && pt.dropped != 0) {
      std::cerr << "FAIL: bounded-defer dropped arrivals\n";
      return 1;
    }
  }

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"seed\": " << kSeed << ",\n  \"n_arrivals\": " << n_arrivals
       << ",\n  \"n_nodes\": " << cfg.cluster.n_nodes
       << ",\n  \"capacity_mu_apps_per_sec\": " << mu << ",\n  \"ladder\": [";
  for (std::size_t i = 0; i < std::size(ladder); ++i)
    json << ladder[i] << (i + 1 < std::size(ladder) ? ", " : "");
  json << "],\n  \"knees\": {";
  bool first = true;
  for (const auto& [name, x] : knee) {
    json << (first ? "" : ", ") << "\"" << name << "\": " << x;
    first = false;
  }
  json << "},\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    json << "    ";
    json_point(json, points[i]);
    json << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_serving.json\n";
  return 0;
}
