// Open-loop serving load sweep (DESIGN.md §14): the same Poisson application
// stream played against the admission gate at arrival rates from well under
// to well past cluster saturation, once per admission policy. Emits the
// knee/saturation curve to BENCH_serving.json next to the text report.
//
//   ./build/bench/bench_serving_load_sweep [n_arrivals]
//
// The offered *work* is identical at every rate (poisson_load keys the app
// sequence off the seed alone), so each column of the table is the same jobs
// arriving faster. Every serving run executes under the InvariantAuditor, so
// a violated engine invariant fails the bench, not just a test.
//
// The sweep is anchored on a measured capacity estimate: the batch makespan
// of the same applications gives the cluster's drain rate mu (apps/s), and
// the ladder sweeps lambda/mu from 0.25 to 3.0. The saturation knee of a
// policy is the first ladder point where delivered throughput falls below
// 85% of the offered rate — past it, the open-loop baseline's sojourn
// diverges while drop/defer policies trade loss or queueing delay for a
// bounded system.
#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_cli.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "sched/policies_learned.h"
#include "sched/race.h"
#include "sparksim/admission.h"
#include "sparksim/audit/invariant_auditor.h"
#include "sparksim/engine.h"
#include "workloads/features.h"

using namespace smoe;

namespace {

constexpr std::uint64_t kSeed = 2017;

sim::SimConfig sweep_config() {
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  // A small cluster saturates at rates the bench can sweep quickly; the
  // admission dynamics are the same ones a 40-node cluster shows, scaled.
  cfg.cluster.n_nodes = 8;
  return cfg;
}

struct SweepPoint {
  std::string admission;
  double rate = 0;             ///< offered arrival rate lambda (apps/s)
  double rate_over_mu = 0;     ///< lambda / estimated capacity
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t dropped = 0;
  std::size_t deferrals = 0;
  double throughput = 0;       ///< finished apps/s over the run
  double delivered_frac = 0;   ///< throughput / offered rate
  double antt = 0;
  double sojourn_p50 = 0;
  double sojourn_p99 = 0;
  double finish_rate_window = 0;  ///< closing steady-state window (apps/s)
};

void json_point(std::ofstream& json, const SweepPoint& pt) {
  json << "{\"admission\": \"" << pt.admission << "\", \"rate\": " << pt.rate
       << ", \"rate_over_mu\": " << pt.rate_over_mu << ", \"offered\": " << pt.offered
       << ", \"admitted\": " << pt.admitted << ", \"dropped\": " << pt.dropped
       << ", \"deferrals\": " << pt.deferrals << ", \"throughput\": " << pt.throughput
       << ", \"delivered_frac\": " << pt.delivered_frac << ", \"antt\": " << pt.antt
       << ", \"sojourn_p50\": " << pt.sojourn_p50 << ", \"sojourn_p99\": " << pt.sojourn_p99
       << ", \"finish_rate_window\": " << pt.finish_rate_window << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv, 48);
  const std::size_t n_arrivals = std::max<std::size_t>(8, opt.n_mixes);

  const wl::FeatureModel features(kSeed);
  const sim::SimConfig cfg = sweep_config();

  // The application sequence is rate-independent: take it once, attach the
  // isolated execution baseline each app needs for normalized turnaround.
  const auto proto = sim::poisson_load(n_arrivals, 1.0, kSeed);
  std::map<std::pair<std::string, double>, Seconds> isolated_cache;
  {
    sim::ClusterSim probe(cfg, features);
    for (const auto& arrival : proto) {
      const auto key = std::make_pair(arrival.app.benchmark, arrival.app.input_items);
      if (isolated_cache.find(key) == isolated_cache.end())
        isolated_cache[key] = probe.isolated_exec_time(arrival.app);
    }
  }

  // Capacity estimate mu: the batch drain rate of the same applications.
  double mu = 0;
  {
    wl::TaskMix mix;
    mix.reserve(proto.size());
    for (const auto& arrival : proto) mix.push_back(arrival.app);
    sim::ClusterSim cluster(cfg, features);
    sched::MoePolicy policy(features, kSeed);
    const sim::SimResult batch = cluster.run(mix, policy);
    mu = static_cast<double>(mix.size()) / batch.makespan;
  }

  std::cout << "Serving load sweep: " << n_arrivals << " arrivals, "
            << cfg.cluster.n_nodes << " nodes, seed " << kSeed
            << ", estimated capacity mu = " << TextTable::num(mu * 3600.0, 2)
            << " apps/hour\n\n";

  const double ladder[] = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0};
  const std::size_t cap = 2 * cfg.cluster.n_nodes;

  // Gate *factories*: the main sweep reuses one instance per gate (serve()
  // resets it each run), while the racing replays below construct a fresh
  // instance per sample so stateful gates never cross threads.
  struct GateSpec {
    std::string name;
    std::function<std::unique_ptr<sim::AdmissionPolicy>()> make;
  };
  std::vector<GateSpec> gates;
  gates.push_back({"unbounded", [] { return std::make_unique<sim::UnboundedAdmission>(); }});
  gates.push_back(
      {"bounded-drop", [cap] { return std::make_unique<sim::BoundedDropAdmission>(cap); }});
  gates.push_back(
      {"bounded-defer", [cap] { return std::make_unique<sim::BoundedDeferAdmission>(cap); }});
  gates.push_back({"murs-gate", [] { return std::make_unique<sim::MursGateAdmission>(0.5); }});
  // Token refill at the measured capacity: the bucket passes sub-capacity
  // load untouched and sheds exactly the overload.
  gates.push_back({"token-bucket", [mu, cap] {
                     return std::make_unique<sim::TokenBucketAdmission>(
                         mu, static_cast<double>(cap));
                   }});
  gates.push_back({"hybrid", [cap] { return std::make_unique<sim::HybridAdmission>(4 * cap, 0.5); }});

  std::vector<SweepPoint> points;
  std::map<std::string, double> knee;  // admission -> first saturated lambda/mu

  for (const auto& spec : gates) {
    const std::unique_ptr<sim::AdmissionPolicy> gate = spec.make();
    TextTable table({"lambda/mu", "rate/hr", "admitted", "dropped", "deferred",
                     "tput/hr", "delivered", "ANTT", "sojourn p50", "sojourn p99"});
    for (const double x : ladder) {
      const double rate = x * mu;
      auto load = sim::poisson_load(n_arrivals, rate, kSeed);
      for (auto& arrival : load)
        arrival.isolated_s =
            isolated_cache.at({arrival.app.benchmark, arrival.app.input_items});

      sim::audit::InvariantAuditor auditor;
      sim::ClusterSim cluster(cfg, features);
      sched::MoePolicy policy(features, kSeed);
      const sim::ServingResult r = cluster.serve(load, policy, *gate, &auditor);

      SweepPoint pt;
      pt.admission = spec.name;
      pt.rate = rate;
      pt.rate_over_mu = x;
      pt.offered = r.offered;
      pt.admitted = r.admitted;
      pt.dropped = r.dropped;
      pt.deferrals = r.deferrals;
      pt.throughput = r.throughput;
      pt.delivered_frac = rate > 0 ? r.throughput / rate : 0;
      pt.antt = r.antt;
      const auto it = r.metrics.quantiles.find("app_sojourn_seconds");
      if (it != r.metrics.quantiles.end() && it->second.count > 0) {
        pt.sojourn_p50 = it->second.estimates[0];
        pt.sojourn_p99 = it->second.estimates[2];
      }
      const auto wf = r.metrics.windows.find("serving_finish_rate");
      if (wf != r.metrics.windows.end()) pt.finish_rate_window = wf->second.rate_per_sec;
      points.push_back(pt);

      if (knee.find(spec.name) == knee.end() && pt.delivered_frac < 0.85)
        knee[spec.name] = x;

      table.add_row({TextTable::num(x, 2), TextTable::num(rate * 3600.0, 2),
                     std::to_string(pt.admitted), std::to_string(pt.dropped),
                     std::to_string(pt.deferrals),
                     TextTable::num(pt.throughput * 3600.0, 2),
                     TextTable::num(pt.delivered_frac, 2), TextTable::num(pt.antt, 2),
                     TextTable::num(pt.sojourn_p50, 0), TextTable::num(pt.sojourn_p99, 0)});
    }
    std::cout << "admission policy: " << spec.name << "\n";
    table.render(std::cout);
    if (knee.count(spec.name))
      std::cout << "  saturation knee at lambda/mu = " << TextTable::num(knee[spec.name], 2)
                << "\n";
    else
      std::cout << "  no saturation within the swept ladder\n";
    std::cout << "\n";
  }

  // ---- sanity assertions the CI smoke job relies on ------------------------
  // (1) The open-loop baseline must saturate inside the ladder: offered load
  //     3x over capacity cannot be delivered at nominal rate.
  if (knee.find("unbounded") == knee.end()) {
    std::cerr << "FAIL: unbounded admission never saturated across the ladder\n";
    return 1;
  }
  // (2) Past the knee, unbounded sojourn must degrade vs the light-load
  //     point (queueing delay diverges in an open loop).
  double unbounded_low = 0, unbounded_high = 0;
  for (const auto& pt : points) {
    if (pt.admission != "unbounded") continue;
    if (pt.rate_over_mu == ladder[0]) unbounded_low = pt.sojourn_p99;
    if (pt.rate_over_mu == ladder[std::size(ladder) - 1]) unbounded_high = pt.sojourn_p99;
  }
  if (!(unbounded_high > 1.5 * unbounded_low)) {
    std::cerr << "FAIL: unbounded p99 sojourn did not degrade past the knee ("
              << unbounded_low << " -> " << unbounded_high << ")\n";
    return 1;
  }
  // (3) Loss/backpressure invariants: bounded-drop keeps at most `cap` in
  //     flight (so admitted+dropped = offered with real drops at overload),
  //     bounded-defer never drops.
  for (const auto& pt : points) {
    if (pt.admitted + pt.dropped != pt.offered) {
      std::cerr << "FAIL: unresolved arrivals for " << pt.admission << "\n";
      return 1;
    }
    if (pt.admission == "bounded-defer" && pt.dropped != 0) {
      std::cerr << "FAIL: bounded-defer dropped arrivals\n";
      return 1;
    }
  }

  // ---- adaptive replication: race the gates at every ladder point ----------
  // Best-arm racing on delivered throughput (DESIGN.md §15): the gates at one
  // ladder point form a race group, each replay re-serves the *same* arrival
  // sequence under a fresh measurement-noise seed, and a gate stops replaying
  // once its CI separates from the point's best gate. The un-raced sweep
  // above (single run per point, seed kSeed) is what the table, the knees and
  // the sanity assertions are computed from — racing only adds the
  // replicated comparison, so those stay identical whether racing runs.
  const bool race_on = opt.race.value_or(true);
  sched::RaceOptions ropt;
  ropt.max_replays = opt.max_replays != 0 ? opt.max_replays : 6;
  ropt.budget_seconds = opt.budget_seconds;
  std::vector<sched::CellOutcome> race_cells;
  std::size_t race_total = 0, race_budget = 0;
  const std::size_t n_gates = gates.size();
  const std::size_t n_ladder = std::size(ladder);
  if (race_on) {
    ThreadPool pool(opt.threads);
    sched::RacingReplicator racer(ropt, pool);
    sched::MoePolicy proto_policy(features, kSeed);

    // Ladder-major cells: cells at one load point are contiguous -> one race
    // group per ladder point.
    std::vector<std::size_t> group_of(n_ladder * n_gates);
    for (std::size_t xi = 0; xi < n_ladder; ++xi)
      for (std::size_t g = 0; g < n_gates; ++g) group_of[xi * n_gates + g] = xi;
    std::vector<std::vector<sim::ServingArrival>> loads(n_ladder);
    for (std::size_t xi = 0; xi < n_ladder; ++xi) {
      loads[xi] = sim::poisson_load(n_arrivals, ladder[xi] * mu, kSeed);
      for (auto& arrival : loads[xi])
        arrival.isolated_s =
            isolated_cache.at({arrival.app.benchmark, arrival.app.input_items});
    }

    race_cells = racer.race(
        n_ladder * n_gates,
        [&](std::size_t cell, std::size_t replay) {
          const std::size_t xi = cell / n_gates, g = cell % n_gates;
          sim::SimConfig rcfg = cfg;
          rcfg.seed = Rng::derive(kSeed, "serve-replay:" + std::to_string(replay));
          sim::audit::InvariantAuditor auditor;
          sim::ClusterSim cluster(rcfg, features);
          const std::unique_ptr<sim::SchedulingPolicy> policy = proto_policy.clone();
          const std::unique_ptr<sim::AdmissionPolicy> gate = gates[g].make();
          const sim::ServingResult r = cluster.serve(loads[xi], *policy, *gate, &auditor);
          return sched::RaceSample{r.throughput, r.antt, 0.0, 0};
        },
        group_of);

    race_budget = race_cells.size() * ropt.max_replays;
    for (const auto& cell : race_cells) race_total += cell.replays_used;

    TextTable race_table({"lambda/mu", "best gate", "separated", "replays used"});
    for (std::size_t xi = 0; xi < n_ladder; ++xi) {
      std::size_t best = 0, separated = 0, used = 0;
      for (std::size_t g = 0; g < n_gates; ++g) {
        const auto& cell = race_cells[xi * n_gates + g];
        if (cell.mean > race_cells[xi * n_gates + best].mean) best = g;
        separated += cell.separated_from_best ? 1 : 0;
        used += cell.replays_used;
      }
      race_table.add_row({TextTable::num(ladder[xi], 2), gates[best].name,
                          std::to_string(separated) + "/" + std::to_string(n_gates - 1),
                          std::to_string(used)});
    }
    std::cout << "gate race per load point (throughput, max " << ropt.max_replays
              << " replays/cell):\n";
    race_table.render(std::cout);
    std::cout << "race simulations: " << race_total << " of " << race_budget
              << " fixed-budget (saved "
              << TextTable::num(100.0 * (1.0 - static_cast<double>(race_total) /
                                                   static_cast<double>(race_budget)), 1)
              << "%)\n\n";
  }

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"seed\": " << kSeed << ",\n  \"n_arrivals\": " << n_arrivals
       << ",\n  \"n_nodes\": " << cfg.cluster.n_nodes
       << ",\n  \"capacity_mu_apps_per_sec\": " << mu << ",\n  \"ladder\": [";
  for (std::size_t i = 0; i < std::size(ladder); ++i)
    json << ladder[i] << (i + 1 < std::size(ladder) ? ", " : "");
  json << "],\n  \"knees\": {";
  bool first = true;
  for (const auto& [name, x] : knee) {
    json << (first ? "" : ", ") << "\"" << name << "\": " << x;
    first = false;
  }
  json << "},\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    json << "    ";
    json_point(json, points[i]);
    json << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"race\": {\"enabled\": " << (race_on ? "true" : "false");
  if (race_on) {
    const double saved =
        100.0 * (1.0 - static_cast<double>(race_total) / static_cast<double>(race_budget));
    json << ", \"max_replays\": " << ropt.max_replays
         << ", \"target_rel_ci\": " << ropt.target_rel_ci
         << ", \"total_simulations\": " << race_total
         << ", \"fixed_budget_simulations\": " << race_budget
         << ", \"samples_saved_pct\": " << saved << ",\n    \"cells\": [\n";
    for (std::size_t xi = 0; xi < n_ladder; ++xi) {
      for (std::size_t g = 0; g < n_gates; ++g) {
        const auto& cell = race_cells[xi * n_gates + g];
        json << "      {\"admission\": \"" << gates[g].name
             << "\", \"rate_over_mu\": " << ladder[xi]
             << ", \"replays_used\": " << cell.replays_used
             << ", \"mean_throughput\": " << cell.mean << ", \"ci_half\": " << cell.ci_half
             << ", \"stop\": \"" << sched::to_string(cell.stop)
             << "\", \"separated_from_best\": " << (cell.separated_from_best ? "true" : "false")
             << "}" << (xi + 1 == n_ladder && g + 1 == n_gates ? "" : ",") << "\n";
      }
    }
    json << "    ]\n  }\n}\n";
  } else {
    json << "}\n}\n";
  }
  std::cout << "wrote BENCH_serving.json\n";
  return 0;
}
