// Randomized differential fuzzing of the cluster simulator.
//
// Sweeps random task mixes x cluster configurations x all six scheduling
// policies with audit::InvariantAuditor attached (the auditor replays the
// event stream against an independent shadow model and throws on the first
// violated invariant), plus metamorphic oracles the auditor cannot see from
// one stream alone:
//
//   * same-seed determinism — two identically-seeded runs produce
//     byte-identical JSONL traces (rotates through policies)
//   * work conservation — makespan >= the post-profiling work of any app
//     divided by its best-case parallel processing rate (all policies; the
//     naive "makespan >= isolated time" is NOT sound for predictive policies,
//     whose executor boost can beat the isolated baseline — see DESIGN.md)
//   * isolated-policy ordering — one-at-a-time scheduling bounds makespan
//     below by the sum of per-app work bounds, and adding nodes never makes
//     the isolated makespan worse
//   * thread equality — ExperimentRunner emits identical results at any
//     --threads count (checked periodically; it is the expensive oracle)
//
// Usage:
//   fuzz_sim [--iters N] [--seconds S] [--seed S] [--one I]
//
// --iters 0 with --seconds S fuzzes on a time budget (scripts/check.sh
// --fuzz uses 30 s). --one I re-runs exactly iteration I — every failure
// message embeds the `--seed S --one I` pair that reproduces it.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/approx.h"
#include "common/bench_cli.h"
#include "common/error.h"
#include "common/rng.h"
#include "obs/flight_recorder.h"
#include "obs/sink.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/audit/invariant_auditor.h"
#include "sparksim/engine.h"
#include "workloads/features.h"
#include "workloads/mixes.h"
#include "workloads/suites.h"

namespace {

using namespace smoe;

struct FuzzOptions {
  std::size_t iters = 200;  ///< 0 = unbounded (use --seconds)
  std::size_t seconds = 0;  ///< 0 = no time budget
  std::uint64_t seed = 2017;
  std::int64_t one = -1;  ///< re-run exactly this iteration
};

[[noreturn]] void usage(int status) {
  std::cerr << "usage: fuzz_sim [--iters N] [--seconds S] [--seed S] [--one I]\n"
               "  --iters N    iteration budget (default 200; 0 = unbounded)\n"
               "  --seconds S  wall-clock budget in seconds (default off)\n"
               "  --seed S     master seed (default 2017)\n"
               "  --one I      run only iteration I (failure reproduction)\n";
  std::exit(status);
}

FuzzOptions parse_args(int argc, char** argv) {
  FuzzOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::size_t {
      if (i + 1 >= argc) usage(2);
      const auto parsed = parse_size(argv[++i]);
      if (!parsed) usage(2);
      return *parsed;
    };
    if (arg == "--iters") {
      opts.iters = value();
    } else if (arg == "--seconds") {
      opts.seconds = value();
    } else if (arg == "--seed") {
      opts.seed = value();
    } else if (arg == "--one") {
      opts.one = static_cast<std::int64_t>(value());
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "fuzz_sim: unknown argument '" << arg << "'\n";
      usage(2);
    }
  }
  if (opts.iters == 0 && opts.seconds == 0 && opts.one < 0) {
    std::cerr << "fuzz_sim: --iters 0 needs a --seconds budget\n";
    usage(2);
  }
  return opts;
}

/// One random cluster/Spark configuration cell, a pure function of the
/// iteration seed.
sim::SimConfig random_config(Rng& rng, std::uint64_t sim_seed) {
  sim::SimConfig cfg;
  cfg.seed = sim_seed;
  cfg.cluster.n_nodes = static_cast<std::size_t>(rng.uniform_int(2, 12));
  const double rams[] = {16.0, 32.0, 64.0, 128.0};
  cfg.cluster.node_ram = rams[rng.uniform_int(0, 3)];
  const double heaps[] = {0.3, 0.5, 0.7};
  cfg.spark.default_heap_fraction = heaps[rng.uniform_int(0, 2)];
  const double headrooms[] = {0.0, 0.05, 0.2};
  cfg.spark.reservation_headroom = headrooms[rng.uniform_int(0, 2)];
  const double boosts[] = {1.0, 2.0, 3.0};
  cfg.spark.executor_boost = boosts[rng.uniform_int(0, 2)];
  const double periods[] = {15.0, 60.0, 240.0};
  cfg.spark.monitor_period = periods[rng.uniform_int(0, 2)];
  cfg.spark.profiling_slots = static_cast<std::size_t>(rng.uniform_int(1, 8));
  cfg.spark.queue_order =
      rng.chance(0.5) ? sim::QueueOrder::kFcfs : sim::QueueOrder::kShortestJobFirst;
  const double interference[] = {0.5, 1.0, 2.0};
  cfg.contention.interference_scale = interference[rng.uniform_int(0, 2)];
  // Exercise both dispatch paths under the auditor; the rotation oracle in
  // the main loop additionally byte-compares one against the other.
  cfg.indexed_dispatch = rng.chance(0.5);
  return cfg;
}

std::string describe(const sim::SimConfig& cfg, std::size_t n_apps) {
  std::ostringstream os;
  os << "n_apps=" << n_apps << " n_nodes=" << cfg.cluster.n_nodes
     << " node_ram=" << cfg.cluster.node_ram
     << " heap_frac=" << cfg.spark.default_heap_fraction
     << " headroom=" << cfg.spark.reservation_headroom
     << " boost=" << cfg.spark.executor_boost
     << " monitor_period=" << cfg.spark.monitor_period
     << " profiling_slots=" << cfg.spark.profiling_slots
     << " queue=" << (cfg.spark.queue_order == sim::QueueOrder::kFcfs ? "fcfs" : "sjf")
     << " interference=" << cfg.contention.interference_scale
     << " dispatch=" << (cfg.indexed_dispatch ? "indexed" : "scan")
     << " sim_seed=" << cfg.seed;
  return os.str();
}

/// Lower bound on one app's contribution to the makespan: its post-profiling
/// work over the best case — every allowed executor running at the full
/// isolated rate with no contention, degradation, or queueing. Sound for
/// every policy (unlike the app's measured isolated execution time, which
/// predictive executor boosting can legitimately beat).
double work_bound(const sim::AppResult& app, const sim::SimConfig& cfg) {
  const wl::BenchmarkSpec& spec = wl::find_benchmark(app.benchmark);
  // Upper bound on profiling consumption (feature/calibration items before
  // the engine's half-the-input clip), so the bound stays a lower bound.
  const double consumed =
      std::min((app.feature_time + app.calibration_time) * spec.items_per_second,
               0.5 * app.input_items);
  const double dyn_alloc =
      std::clamp(std::ceil(app.input_items / cfg.spark.dyn_alloc_items_per_executor), 1.0,
                 static_cast<double>(cfg.spark.dyn_alloc_max_executors));
  const double parallelism = std::min(static_cast<double>(cfg.cluster.n_nodes),
                                      std::ceil(cfg.spark.executor_boost * dyn_alloc));
  return (app.input_items - consumed) / (parallelism * spec.items_per_second);
}

struct Oracle {
  std::string name;
  std::string detail;
};

/// When a flight recorder rode along (the auditor path), dump its last-K
/// events next to the repro line. Auditor failures already embed their own
/// dump line in `what`; this covers the harness's metamorphic oracles, which
/// fail outside the auditor.
[[noreturn]] void report_failure(const FuzzOptions& opts, std::size_t iter,
                                 const std::string& policy, const std::string& cell,
                                 const std::string& what,
                                 const obs::FlightRecorder* flight = nullptr,
                                 const std::string& dump_path = {}) {
  std::cerr << "\nFUZZ FAILURE at iteration " << iter << " policy=" << policy << "\n"
            << "  cell: " << cell << "\n"
            << "  " << what << "\n";
  if (flight != nullptr && what.find("flight recorder:") == std::string::npos) {
    if (flight->dump_to_file(dump_path))
      std::cerr << "  flight recorder: last " << flight->size() << " event(s) dumped to "
                << dump_path << "\n";
    else
      std::cerr << "  flight recorder: dump to " << dump_path << " failed\n";
  }
  std::cerr << "  repro: fuzz_sim --seed " << opts.seed << " --one " << iter << "\n";
  std::exit(1);
}

std::string jsonl_trace(const sim::SimConfig& cfg, const wl::FeatureModel& features,
                        const wl::TaskMix& mix, sim::SchedulingPolicy& policy) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  sim::SimConfig traced = cfg;
  traced.sink = &sink;
  sim::ClusterSim sim(traced, features);
  sim.run(mix, policy);
  return os.str();
}

/// ExperimentRunner must produce identical results at any thread count; run
/// a small scenario at 1 and 3 threads and compare field by field.
void check_thread_equality(const sim::SimConfig& cfg, const wl::FeatureModel& features,
                           std::uint64_t mix_seed, std::vector<sim::SchedulingPolicy*> pols) {
  const wl::Scenario scenario{"fuzz", 3};
  sim::SimConfig clean = cfg;
  clean.sink = nullptr;
  sched::ExperimentRunner seq(clean, features, 2, mix_seed, 1);
  sched::ExperimentRunner par(clean, features, 2, mix_seed, 3);
  const auto a = seq.run_scenario(scenario, pols);
  const auto b = par.run_scenario(scenario, pols);
  SMOE_CHECK(a.size() == b.size(), "thread-equality: result row count differs");
  for (std::size_t i = 0; i < a.size(); ++i) {
    SMOE_CHECK(a[i].scheme == b[i].scheme && a[i].stp_geomean == b[i].stp_geomean &&
                   a[i].stp_min == b[i].stp_min && a[i].stp_max == b[i].stp_max &&
                   a[i].antt_red_mean == b[i].antt_red_mean &&
                   a[i].mean_makespan == b[i].mean_makespan &&
                   a[i].oom_total == b[i].oom_total,
               "thread-equality: --threads 1 and --threads 3 disagree on scheme " +
                   a[i].scheme);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const FuzzOptions opts = parse_args(argc, argv);
  const wl::FeatureModel features(1);

  struct NamedPolicy {
    std::string name;
    std::unique_ptr<sim::SchedulingPolicy> policy;
  };
  std::vector<NamedPolicy> policies;
  policies.push_back({"isolated", std::make_unique<sched::IsolatedPolicy>()});
  policies.push_back({"pairwise", std::make_unique<sched::PairwisePolicy>()});
  policies.push_back({"oracle", std::make_unique<sched::OraclePolicy>()});
  policies.push_back({"online", std::make_unique<sched::OnlineSearchPolicy>()});
  policies.push_back({"moe", std::make_unique<sched::MoePolicy>(features, opts.seed)});
  policies.push_back({"quasar", std::make_unique<sched::QuasarPolicy>(features, opts.seed)});

  const auto started = std::chrono::steady_clock::now();
  auto out_of_budget = [&] {
    if (opts.seconds == 0) return false;
    const auto elapsed = std::chrono::steady_clock::now() - started;
    return elapsed >= std::chrono::seconds(opts.seconds);
  };

  std::size_t ran = 0;
  for (std::size_t iter = 0;; ++iter) {
    if (opts.one >= 0) {
      iter = static_cast<std::size_t>(opts.one);
    } else {
      if (opts.iters > 0 && iter >= opts.iters) break;
      if (out_of_budget()) break;
    }

    Rng rng(Rng::derive(opts.seed, "fuzz:" + std::to_string(iter)));
    const sim::SimConfig cfg =
        random_config(rng, Rng::derive(opts.seed, "cfg:" + std::to_string(iter)));
    const std::size_t n_apps = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const wl::TaskMix mix = wl::random_mix(n_apps, rng);
    const std::string cell = describe(cfg, n_apps);
    if (opts.one >= 0) std::cerr << "iteration " << iter << ": " << cell << "\n";

    double isolated_makespan = -1;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      NamedPolicy& np = policies[p];
      obs::FlightRecorder flight;
      const std::string dump_path = "fuzz_flight_seed" + std::to_string(opts.seed) +
                                    "_iter" + std::to_string(iter) + "_" + np.name +
                                    ".jsonl";
      sim::audit::InvariantAuditor::Options audit_opts;
      audit_opts.context =
          "fuzz_sim --seed " + std::to_string(opts.seed) + " --one " + std::to_string(iter);
      audit_opts.flight = &flight;
      audit_opts.flight_dump_path = dump_path;
      sim::audit::InvariantAuditor auditor(audit_opts);
      sim::SimConfig audited = cfg;
      audited.sink = &auditor;
      sim::ClusterSim sim(audited, features);
      sim::SimResult result;
      try {
        result = sim.run(mix, *np.policy);
      } catch (const std::exception& e) {
        report_failure(opts, iter, np.name, cell, e.what(), &flight, dump_path);
      }

      // Work-conservation bound, sound for every policy.
      for (const sim::AppResult& app : result.apps) {
        const double bound = work_bound(app, cfg);
        if (!approx_ge(result.makespan, bound, kSimRelEps))
          report_failure(opts, iter, np.name, cell,
                         "work-conservation violated: makespan " +
                             std::to_string(result.makespan) + " < bound " +
                             std::to_string(bound) + " for " + app.benchmark,
                         &flight, dump_path);
        if (!approx_ge(app.finish, app.profile_end, kSimRelEps))
          report_failure(opts, iter, np.name, cell,
                         "app finished before its profiling ended: " + app.benchmark,
                         &flight, dump_path);
      }

      if (np.name == "isolated") {
        isolated_makespan = result.makespan;
        // One at a time: the whole-mix bound is the *sum* of per-app bounds.
        double sum_bound = 0;
        for (const sim::AppResult& app : result.apps) sum_bound += work_bound(app, cfg);
        if (!approx_ge(result.makespan, sum_bound, kSimRelEps))
          report_failure(opts, iter, np.name, cell,
                         "isolated makespan " + std::to_string(result.makespan) +
                             " beat the serial work bound " + std::to_string(sum_bound),
                         &flight, dump_path);
      }

      // Same-seed byte-identity of the full trace, and the indexed-dispatch
      // differential oracle: the per-policy node index must reproduce the
      // legacy scan's decisions exactly, so the scan-path trace must match
      // byte for byte too (rotates through policies; three extra runs per
      // iteration).
      if (p == iter % policies.size()) {
        const std::string t1 = jsonl_trace(cfg, features, mix, *np.policy);
        const std::string t2 = jsonl_trace(cfg, features, mix, *np.policy);
        if (t1 != t2)
          report_failure(opts, iter, np.name, cell,
                         "same-seed traces differ (determinism broken)");
        sim::SimConfig scan_cfg = cfg;
        scan_cfg.indexed_dispatch = !cfg.indexed_dispatch;
        const std::string t3 = jsonl_trace(scan_cfg, features, mix, *np.policy);
        if (t1 != t3)
          report_failure(opts, iter, np.name, cell,
                         "indexed dispatch and legacy scan traces differ "
                         "(index/scan equivalence broken)");
      }
    }

    // Isolated scheduling is one-at-a-time with per-app node caps: growing
    // the cluster can only shorten (or keep) each app's phase. Not sound for
    // co-locating policies (Graham's scheduling anomalies), so isolated-only.
    if (iter % 4 == 0 && isolated_makespan >= 0) {
      sim::SimConfig bigger = cfg;
      bigger.cluster.n_nodes += 4;
      sim::ClusterSim sim_bigger(bigger, features);
      const sim::SimResult grown = sim_bigger.run(mix, *policies[0].policy);
      if (!approx_le(grown.makespan, isolated_makespan, kSimRelEps))
        report_failure(opts, iter, "isolated", cell,
                       "adding 4 nodes worsened the isolated makespan: " +
                           std::to_string(isolated_makespan) + " -> " +
                           std::to_string(grown.makespan));
    }

    // Thread-count equality through the experiment runner (expensive oracle).
    if (opts.one >= 0 || iter % 32 == 31) {
      try {
        check_thread_equality(cfg, features,
                              Rng::derive(opts.seed, "mixes:" + std::to_string(iter)),
                              {policies[0].policy.get(), policies[4].policy.get()});
      } catch (const std::exception& e) {
        report_failure(opts, iter, "runner", cell, e.what());
      }
    }

    ++ran;
    if (opts.one >= 0) break;
    if (ran % 100 == 0) std::cerr << "fuzz_sim: " << ran << " iterations clean...\n";
  }

  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - started);
  std::cout << "fuzz_sim: " << ran << " iteration(s) x " << policies.size()
            << " policies clean in " << elapsed.count() / 1000.0 << " s (seed "
            << opts.seed << ", 0 violations)\n";
  return 0;
}
