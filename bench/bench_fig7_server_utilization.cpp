// Figures 7 and 8 (+ Table 4): CPU utilization across the 40 nodes over time
// when scheduling the fixed 30-application mix under Pairwise, Quasar and
// our approach, plus the resulting STP and wall-clock turnaround.
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/cli.h"
#include "obs/report.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"

using namespace smoe;

namespace {

void render_heatmap(const sim::UtilizationTrace& trace, Seconds makespan) {
  // Down-sample the trace into ~72 time columns; one row per 2 nodes.
  const std::size_t cols = 72;
  const std::size_t bins = trace.n_bins();
  std::cout << "    0 min" << std::string(cols - 14, ' ') << (int)(makespan / 60.0)
            << " min\n";
  for (std::size_t n = 0; n < trace.n_nodes(); n += 2) {
    std::cout << "n" << (n < 9 ? "0" : "") << n + 1 << " ";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t b0 = c * bins / cols;
      const std::size_t b1 = std::max(b0 + 1, (c + 1) * bins / cols);
      double sum = 0;
      for (std::size_t b = b0; b < b1; ++b)
        sum += 0.5 * (trace.value(static_cast<int>(n), b) +
                      trace.value(static_cast<int>(std::min(n + 1, trace.n_nodes() - 1)), b));
      std::cout << heat_char(sum / static_cast<double>(b1 - b0));
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --trace/--chrome-trace capture the three scheduled runs (Pairwise,
  // Quasar, Ours) behind the heatmaps for debugging.
  obs::TraceCli trace_cli(argc, argv);
  constexpr std::uint64_t kSeed = 2017;
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.sink = &trace_cli.sink();
  sched::ExperimentRunner runner(cfg, features, 1, 1);

  const wl::TaskMix mix = wl::table4_mix();
  std::cout << "Table 4: the fixed 30-application mix (submission order)\n";
  TextTable t4({"order", "application", "input"});
  for (std::size_t i = 0; i < mix.size(); ++i)
    t4.add_row({std::to_string(i + 1), mix[i].benchmark,
                TextTable::num(gib_from_items(mix[i].input_items), 1) + " GB"});
  t4.render(std::cout);

  sched::PairwisePolicy pairwise;
  sched::QuasarPolicy quasar(features, kSeed);
  sched::MoePolicy ours(features, kSeed);

  const bool want_report = argc > 1 && std::string(argv[1]) == "--report";
  std::vector<obs::RunReport> reports;
  TextTable fig8({"scheme", "STP (norm.)", "turnaround (min)", "mean utilization"});
  for (sim::SchedulingPolicy* p :
       std::vector<sim::SchedulingPolicy*>{&pairwise, &quasar, &ours}) {
    const auto run = runner.run_mix(mix, *p);
    std::cout << "\nFigure 7 (" << p->name() << "): per-node CPU utilization ("
              << "' '=idle, '@'=100%)\n";
    render_heatmap(run.result.trace, run.result.makespan);
    fig8.add_row({p->name(), TextTable::num(run.normalized.norm_stp, 2) + "x",
                  TextTable::num(run.result.makespan / 60.0, 0),
                  TextTable::pct(run.result.trace.overall_mean(), 1)});
    if (want_report) reports.push_back(sched::make_run_report(run, p->name()));
  }

  std::cout << "\nFigure 8: STP and wall-clock turnaround for this mix\n"
            << "(paper: ours 1.81x/1.39x higher STP and 1.46x/1.28x faster than "
               "Pairwise/Quasar)\n";
  fig8.render(std::cout);
  for (const auto& report : reports) {
    std::cout << "\n";
    obs::render_text(report, std::cout);
  }
  return 0;
}
