// Microbenchmarks (google-benchmark) for the hot paths of the runtime
// prediction pipeline and the cluster simulator. The paper's scheme is
// "low-overhead" (Section 6.1); these benches quantify the CPU cost of each
// prediction step in this implementation.
#include <benchmark/benchmark.h>

#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sched/training_data.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

const wl::FeatureModel& shared_features() {
  static const wl::FeatureModel features(2017);
  return features;
}

const sched::SelectorCache::Entry& shared_entry() {
  static sched::SelectorCache cache(shared_features(), 2017);
  static const auto& entry = cache.for_test_benchmark("SP.Gmm");
  return entry;
}

void BM_FeatureSample(benchmark::State& state) {
  const auto& bench = wl::find_benchmark("SP.Gmm");
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(shared_features().sample(bench, rng));
}
BENCHMARK(BM_FeatureSample);

void BM_ScaleAndProject(benchmark::State& state) {
  const auto& entry = shared_entry();
  Rng rng(2);
  const ml::Vector raw = shared_features().sample(wl::find_benchmark("SP.Gmm"), rng);
  for (auto _ : state) benchmark::DoNotOptimize(entry.selector.project(raw));
}
BENCHMARK(BM_ScaleAndProject);

void BM_ExpertSelection(benchmark::State& state) {
  const auto& entry = shared_entry();
  const core::MoePredictor predictor(entry.pool, entry.selector);
  Rng rng(3);
  const ml::Vector raw = shared_features().sample(wl::find_benchmark("SP.Gmm"), rng);
  for (auto _ : state) benchmark::DoNotOptimize(predictor.select(raw));
}
BENCHMARK(BM_ExpertSelection);

void BM_TwoPointCalibration(benchmark::State& state) {
  const auto& entry = shared_entry();
  const core::MoePredictor predictor(entry.pool, entry.selector);
  core::Selection sel;
  sel.expert_index = static_cast<int>(ml::CurveKind::kExponential);
  const core::CalibrationProbes probes{512, 5.2, 2048, 5.7};
  for (auto _ : state) benchmark::DoNotOptimize(predictor.calibrate(sel, probes));
}
BENCHMARK(BM_TwoPointCalibration);

void BM_OfflineTraining(benchmark::State& state) {
  const auto examples = sched::make_training_set(shared_features(), 5);
  for (auto _ : state) {
    core::ExpertPool pool = core::ExpertPool::paper_default();
    benchmark::DoNotOptimize(core::train_selector(pool, examples));
  }
}
BENCHMARK(BM_OfflineTraining);

void BM_FullProfilePath(benchmark::State& state) {
  sched::MoePolicy moe(shared_features(), 2017);
  const auto& bench = wl::find_benchmark("SP.Gmm");
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sim::AppProbe probe(bench, shared_features(), 1048576, ++seed);
    sim::MemoryEstimate est;
    benchmark::DoNotOptimize(moe.profile(probe, est));
  }
}
BENCHMARK(BM_FullProfilePath);

void BM_ClusterSimTable4Mix(benchmark::State& state) {
  sim::SimConfig cfg;
  cfg.seed = 2017;
  sim::ClusterSim sim(cfg, shared_features());
  sched::OraclePolicy oracle;
  const auto mix = wl::table4_mix();
  for (auto _ : state) benchmark::DoNotOptimize(sim.run(mix, oracle));
}
BENCHMARK(BM_ClusterSimTable4Mix)->Unit(benchmark::kMillisecond);

void BM_IsolatedExecTime(benchmark::State& state) {
  sim::SimConfig cfg;
  cfg.seed = 2017;
  sim::ClusterSim sim(cfg, shared_features());
  for (auto _ : state)
    benchmark::DoNotOptimize(sim.isolated_exec_time({"HB.TeraSort", 1048576.0}));
}
BENCHMARK(BM_IsolatedExecTime);

}  // namespace

BENCHMARK_MAIN();
