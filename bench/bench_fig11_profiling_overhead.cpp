// Figure 11: average time spent on feature extraction and model calibration
// relative to total task execution time, per runtime scenario (paper: ~5%
// feature extraction + ~8% calibration; profiling items contribute to the
// final output, so no cycles are wasted).
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "obs/cli.h"
#include "sched/experiment.h"
#include "sched/policies_learned.h"

using namespace smoe;

int main(int argc, char** argv) {
  obs::TraceCli trace_cli(argc, argv);
  constexpr std::uint64_t kSeed = 2017;
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.sink = &trace_cli.sink();
  sim::ClusterSim sim(cfg, features);
  sched::MoePolicy ours(features, kSeed);

  std::cout << "Figure 11: profiling time vs total execution time per scenario (seed "
            << kSeed << ")\n";
  TextTable table({"scenario", "feature extr. (min)", "calibration (min)",
                   "total execution (min)", "profiling share"});
  for (const auto& scenario : wl::scenarios()) {
    const auto mixes = wl::scenario_mixes(scenario, 3, Rng::derive(kSeed, "fig11"));
    std::vector<double> feat, calib, total;
    for (const auto& mix : mixes) {
      const sim::SimResult r = sim.run(mix, ours);
      for (const auto& app : r.apps) {
        feat.push_back(app.feature_time / 60.0);
        calib.push_back(app.calibration_time / 60.0);
        total.push_back((app.feature_time + app.calibration_time + app.exec_time()) / 60.0);
      }
    }
    const double share = (mean(feat) + mean(calib)) / mean(total);
    table.add_row({scenario.label, TextTable::num(mean(feat), 2),
                   TextTable::num(mean(calib), 2), TextTable::num(mean(total), 1),
                   TextTable::pct(share, 1)});
  }
  table.render(std::cout);
  std::cout << "(paper: feature extraction ~5% and calibration ~8% of total; profiling\n"
               " runs process real input items, so the work is not wasted)\n";
  return 0;
}
