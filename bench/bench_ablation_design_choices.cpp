// Ablation study over this implementation's design knobs (not a paper
// figure; DESIGN.md calls these out). Each sweep varies one knob on the L8
// scenario and reports normalized STP / ANTT reduction for our policy:
//
//   * reservation headroom on top of predicted footprints,
//   * the executor-count boost over Spark dynamic allocation (Section 4.3),
//   * coordinator profiling slots (how parallel profiling runs are),
//   * calibration probe sizes (accuracy vs profiling cost),
//   * the confidence fallback (Section 4.1),
//   * Quasar's resource-class granularity (comparator sensitivity).
#include <functional>
#include <iostream>

#include "common/bench_cli.h"
#include "common/table.h"
#include "obs/cli.h"
#include "sched/experiment.h"
#include "sched/policies_learned.h"

using namespace smoe;

namespace {

constexpr std::uint64_t kSeed = 2017;
std::size_t g_mixes = 5;
std::size_t g_threads = 0;
obs::EventSink* g_sink = nullptr;
obs::SinkFactory* g_factory = nullptr;

sched::SchemeScenarioResult evaluate(const wl::FeatureModel& features, sim::SimConfig cfg,
                                     sim::SchedulingPolicy& policy) {
  cfg.sink = g_sink;
  sched::ExperimentRunner runner(cfg, features, g_mixes, Rng::derive(kSeed, "ablation"),
                                 g_threads);
  runner.set_sink_factory(g_factory);
  return runner.run_scenario(wl::scenario_by_label("L8"), {&policy}).front();
}

void emit(TextTable& table, const std::string& setting,
          const sched::SchemeScenarioResult& r) {
  table.add_row({setting, TextTable::num(r.stp_geomean, 2) + "x",
                 TextTable::pct(r.antt_red_mean, 1),
                 TextTable::num(r.mean_makespan / 60.0, 1), std::to_string(r.oom_total)});
}

}  // namespace

int main(int argc, char** argv) {
  obs::TraceCli trace_cli(argc, argv);
  g_sink = &trace_cli.sink();
  g_factory = trace_cli.sink_factory();
  const BenchOptions opt = parse_bench_options(argc, argv, 5);
  g_mixes = opt.n_mixes;
  g_threads = opt.threads;
  const wl::FeatureModel features(kSeed);
  std::cout << "Ablations on scenario L8 (" << g_mixes << " mixes, seed " << kSeed
            << "); our policy unless noted\n";

  {
    TextTable t({"reservation headroom", "norm. STP", "ANTT red.", "makespan (min)", "OOMs"});
    for (const double headroom : {0.0, 0.05, 0.15, 0.30}) {
      sim::SimConfig cfg;
      cfg.seed = kSeed;
      cfg.spark.reservation_headroom = headroom;
      sched::MoePolicy ours(features, kSeed);
      emit(t, TextTable::pct(headroom, 0), evaluate(features, cfg, ours));
    }
    std::cout << "\n[1] Reservation headroom: none risks OOMs from the ~4% prediction "
                 "error; too much wastes co-location slots.\n";
    t.render(std::cout);
  }

  {
    TextTable t({"executor boost", "norm. STP", "ANTT red.", "makespan (min)", "OOMs"});
    for (const double boost : {1.0, 1.5, 2.0, 3.0}) {
      sim::SimConfig cfg;
      cfg.seed = kSeed;
      cfg.spark.executor_boost = boost;
      sched::MoePolicy ours(features, kSeed);
      emit(t, TextTable::num(boost, 1) + "x", evaluate(features, cfg, ours));
    }
    std::cout << "\n[2] Executor boost beyond Spark dynamic allocation (Section 4.3's "
                 "'additional executors on spare servers').\n";
    t.render(std::cout);
  }

  {
    TextTable t({"profiling slots", "norm. STP", "ANTT red.", "makespan (min)", "OOMs"});
    for (const std::size_t slots : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                                    std::size_t{32}}) {
      sim::SimConfig cfg;
      cfg.seed = kSeed;
      cfg.spark.profiling_slots = slots;
      sched::MoePolicy ours(features, kSeed);
      emit(t, std::to_string(slots), evaluate(features, cfg, ours));
    }
    std::cout << "\n[3] Coordinator profiling slots: serialized profiling delays "
                 "application starts.\n";
    t.render(std::cout);
  }

  {
    TextTable t({"probe caps (items)", "norm. STP", "ANTT red.", "makespan (min)", "OOMs"});
    for (const auto& [x1, x2] : std::vector<std::pair<double, double>>{
             {128, 384}, {512, 1536}, {2048, 6144}}) {
      sim::SimConfig cfg;
      cfg.seed = kSeed;
      sched::MoeOptions opts;
      opts.probe_x1_cap = x1;
      opts.probe_x2_cap = x2;
      sched::MoePolicy ours(features, kSeed, opts);
      emit(t, TextTable::num(x1, 0) + "/" + TextTable::num(x2, 0),
           evaluate(features, cfg, ours));
    }
    std::cout << "\n[4] Calibration probe sizes: bigger probes calibrate better but "
                 "cost profiling time.\n";
    t.render(std::cout);
  }

  {
    TextTable t({"confidence fallback", "norm. STP", "ANTT red.", "makespan (min)", "OOMs"});
    for (const bool on : {false, true}) {
      sim::SimConfig cfg;
      cfg.seed = kSeed;
      sched::MoeOptions opts;
      opts.conservative_fallback = on;
      opts.confidence_distance = 0.35;  // tight enough to trigger sometimes
      sched::MoePolicy ours(features, kSeed, opts);
      const auto r = evaluate(features, cfg, ours);
      emit(t, on ? "on (d>0.35 -> +25% pad)" : "off", r);
      if (on) std::cout << "(fallback engaged for " << ours.fallback_count() << " apps)\n";
    }
    std::cout << "\n[5] Section 4.1's confidence fallback for applications far from "
                 "every training program.\n";
    t.render(std::cout);
  }

  {
    TextTable t({"queue order", "norm. STP", "ANTT red.", "makespan (min)", "OOMs"});
    for (const auto order : {sim::QueueOrder::kFcfs, sim::QueueOrder::kShortestJobFirst}) {
      sim::SimConfig cfg;
      cfg.seed = kSeed;
      cfg.spark.queue_order = order;
      sched::MoePolicy ours(features, kSeed);
      emit(t, order == sim::QueueOrder::kFcfs ? "FCFS (paper)" : "shortest-job-first",
           evaluate(features, cfg, ours));
    }
    std::cout << "\n[6] Queue discipline: the paper evaluates FCFS but the framework "
                 "works with any order (Section 5.2). Note: metrics are normalized\n"
                 "against an isolated baseline running under the SAME discipline, and\n"
                 "SJF helps a serial baseline far more than it helps co-location — so\n"
                 "the normalized numbers drop even though absolute makespan is similar.\n";
    t.render(std::cout);
  }

  {
    TextTable t({"Quasar resource class", "norm. STP", "ANTT red.", "makespan (min)", "OOMs"});
    for (const double klass : {2.0, 4.0, 8.0, 16.0}) {
      sim::SimConfig cfg;
      cfg.seed = kSeed;
      sched::QuasarPolicy quasar(features, kSeed, klass);
      emit(t, TextTable::num(klass, 0) + " GiB", evaluate(features, cfg, quasar));
    }
    std::cout << "\n[7] Comparator sensitivity: Quasar's discrete resource classes "
                 "(coarser = more over/under-provisioning).\n";
    t.render(std::cout);
  }

  return 0;
}
