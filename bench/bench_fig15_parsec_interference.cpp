// Figure 15: slowdown of compute-intensive PARSEC applications when a Spark
// task is co-located with them on the same host under our scheme (paper:
// modest, < 30%, mostly < 20%).
#include <iostream>

#include <algorithm>

#include "common/stats.h"
#include "common/table.h"
#include "sparksim/contention.h"
#include "workloads/suites.h"

using namespace smoe;

int main() {
  const sim::ClusterConfig cluster;
  const sim::ContentionConfig contention;

  std::cout << "Figure 15: PARSEC slowdown when co-running with each of the 44 Spark "
               "benchmarks on one host\n";
  TextTable table({"PARSEC app", "min", "p25", "median", "p75", "max"});
  std::vector<double> all;
  for (const auto& parsec : wl::parsec_benchmarks()) {
    std::vector<double> slowdowns;
    for (const auto& spark : wl::all_spark_benchmarks()) {
      // The Spark executor's memory is sized by our predictor, so the host
      // never pages; and the dispatcher throttles the executor's threads so
      // co-running tasks do not push the aggregate CPU load over 100%
      // (Section 4.3). The PARSEC app sees the residual CPU sharing plus
      // cache/bandwidth interference.
      // Thread partitioning is not perfect, so allow a mild (~15%) aggregate
      // overshoot before the throttle bites.
      const double spark_cpu =
          std::min(spark.cpu_load_iso, std::max(0.15, 1.15 - parsec.cpu_load));
      sim::NodeLoad node;
      node.total_cpu = parsec.cpu_load + spark_cpu;
      node.resident = parsec.memory + 24.0;  // typical predicted Spark heap
      const double speed = sim::speed_factor(parsec.cpu_load, parsec.interference_sensitivity,
                                             node, cluster, contention);
      slowdowns.push_back(1.0 / speed - 1.0);
    }
    const ViolinSummary v = violin_summary(slowdowns);
    table.add_row({parsec.name, TextTable::pct(v.min, 1), TextTable::pct(v.p25, 1),
                   TextTable::pct(v.median, 1), TextTable::pct(v.p75, 1),
                   TextTable::pct(v.max, 1)});
    all.insert(all.end(), slowdowns.begin(), slowdowns.end());
  }
  table.render(std::cout);

  std::size_t under20 = 0;
  for (const double s : all)
    if (s < 0.20) ++under20;
  std::cout << "overall: max " << TextTable::pct(max_of(all), 1) << ", " << under20 << "/"
            << all.size() << " cases under 20%  (paper: < 30%, mostly < 20%)\n";
  return 0;
}
