// Sweep-cost comparison for adaptive replication (DESIGN.md §15): a fig6-style
// six-policy sweep over the ten runtime scenarios, replicated two ways —
//
//   raced:  best-arm racing (run_scenario_raced), cells stop as soon as their
//           CI separates from the mix's best policy;
//   fixed:  fixed-wave replication (run_scenario_replicated), the legacy cost
//           model where every cell replays in waves with surplus replays of
//           the final wave executed and discarded.
//
// Both arms see the same replay seeds, so the comparison is paired. The bench
// *asserts* (exit 1) that racing reaches the same policy ranking — the
// statistical conclusion of the sweep — from at least 3x fewer simulations,
// and writes the on/off comparison to BENCH_sweep.json. Simulation totals are
// deterministic at any --threads count (the fixed arm uses an explicit wave
// of 8, not the pool size); only the wall-clock fields vary per machine.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"

using namespace smoe;

namespace {

constexpr std::uint64_t kSeed = 2017;
constexpr std::size_t kFixedWave = 8;  ///< machine-independent executed totals
constexpr double kTargetRelCi = 0.05;

/// Policy indices sorted by descending overall STP (ties: earlier policy).
std::vector<std::size_t> ranking_of(const std::vector<double>& overall_stp) {
  std::vector<std::size_t> order(overall_stp.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (overall_stp[a] != overall_stp[b]) return overall_stp[a] > overall_stp[b];
    return a < b;
  });
  return order;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv, 12);
  const std::size_t n_mixes = opt.n_mixes;

  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  sched::ExperimentRunner runner(cfg, features, n_mixes, Rng::derive(kSeed, "sweep-cost"),
                                 opt.threads);

  sched::IsolatedPolicy isolated;
  sched::PairwisePolicy pairwise;
  sched::OnlineSearchPolicy online;
  sched::QuasarPolicy quasar(features, kSeed);
  sched::MoePolicy moe(features, kSeed);
  sched::OraclePolicy oracle;
  const std::vector<sim::SchedulingPolicy*> policies = {&isolated, &pairwise, &online,
                                                        &quasar,   &moe,      &oracle};

  sched::RaceOptions race;
  if (opt.max_replays != 0) race.max_replays = opt.max_replays;
  race.target_rel_ci = kTargetRelCi;
  race.budget_seconds = opt.budget_seconds;

  const auto scenarios = wl::scenarios();
  std::cout << "Sweep cost: racing vs fixed-wave replication (seed " << kSeed << ", "
            << n_mixes << " mixes/scenario, " << policies.size() << " policies, max "
            << race.max_replays << " replays, wave " << kFixedWave << ", "
            << runner.threads() << " threads)\n\n";

  // Warm every learned policy's training caches before the timed phases so
  // neither arm pays the one-off training cost.
  {
    const auto warm_mix = wl::scenario_mixes(scenarios.front(), 1, kSeed).front();
    for (sim::SchedulingPolicy* policy : policies) runner.run_mix(warm_mix, *policy);
  }

  using Clock = std::chrono::steady_clock;
  std::vector<sched::ExperimentRunner::RacedScenarioResult> raced;
  const auto t_raced0 = Clock::now();
  for (const auto& scenario : scenarios)
    raced.push_back(runner.run_scenario_raced(scenario, policies, race));
  const double raced_wall_s = std::chrono::duration<double>(Clock::now() - t_raced0).count();

  std::vector<sched::ExperimentRunner::ReplicatedScenarioResult> fixed;
  const auto t_fixed0 = Clock::now();
  for (const auto& scenario : scenarios)
    fixed.push_back(runner.run_scenario_replicated(scenario, policies, race.max_replays,
                                                   kTargetRelCi, kFixedWave));
  const double fixed_wall_s = std::chrono::duration<double>(Clock::now() - t_fixed0).count();

  // Per-scenario cost table + aggregates.
  TextTable cost({"scenario", "raced sims", "fixed sims", "reduction", "separated cells"});
  std::size_t raced_total = 0, fixed_total = 0, budget_total = 0;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    std::size_t separated = 0;
    for (const auto& cell : raced[s].cells) separated += cell.separated_from_best ? 1 : 0;
    raced_total += raced[s].total_simulations;
    fixed_total += fixed[s].total_simulations;
    budget_total += raced[s].fixed_budget_simulations;
    cost.add_row({scenarios[s].label, std::to_string(raced[s].total_simulations),
                  std::to_string(fixed[s].total_simulations),
                  TextTable::num(static_cast<double>(fixed[s].total_simulations) /
                                     static_cast<double>(raced[s].total_simulations), 2) + "x",
                  std::to_string(separated) + "/" + std::to_string(raced[s].cells.size())});
  }
  cost.render(std::cout);

  std::vector<double> overall_raced(policies.size()), overall_fixed(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::vector<double> r_stps, f_stps;
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      r_stps.push_back(raced[s].schemes[p].stp_geomean);
      f_stps.push_back(fixed[s].schemes[p].stp_geomean);
    }
    overall_raced[p] = geomean(r_stps);
    overall_fixed[p] = geomean(f_stps);
  }
  const std::vector<std::size_t> rank_raced = ranking_of(overall_raced);
  const std::vector<std::size_t> rank_fixed = ranking_of(overall_fixed);

  const double reduction =
      static_cast<double>(fixed_total) / static_cast<double>(raced_total);
  const double saved_vs_budget =
      100.0 * (1.0 - static_cast<double>(raced_total) / static_cast<double>(budget_total));
  std::cout << "\ntotals: raced " << raced_total << " sims in " << TextTable::num(raced_wall_s, 1)
            << "s, fixed-wave " << fixed_total << " sims in " << TextTable::num(fixed_wall_s, 1)
            << "s\n"
            << "reduction: " << TextTable::num(reduction, 2) << "x fewer simulations (saved "
            << TextTable::num(saved_vs_budget, 1) << "% vs the " << budget_total
            << "-sim fixed budget)\n";

  std::cout << "\nranking by overall STP (raced vs fixed):\n";
  for (std::size_t i = 0; i < policies.size(); ++i)
    std::cout << "  " << i + 1 << ". " << policies[rank_raced[i]]->name() << " ("
              << TextTable::num(overall_raced[rank_raced[i]], 2) << "x)  |  "
              << policies[rank_fixed[i]]->name() << " ("
              << TextTable::num(overall_fixed[rank_fixed[i]], 2) << "x)\n";

  // ---- the two claims this bench exists to enforce --------------------------
  if (rank_raced != rank_fixed) {
    std::cerr << "FAIL: racing changed the policy ranking\n";
    return 1;
  }
  if (reduction < 3.0) {
    std::cerr << "FAIL: racing saved only " << TextTable::num(reduction, 2)
              << "x simulations (need >= 3x)\n";
    return 1;
  }
  std::cout << "\nPASS: same ranking from " << TextTable::num(reduction, 2)
            << "x fewer simulations\n";

  std::ofstream json("BENCH_sweep.json");
  json << "{\n  \"seed\": " << kSeed << ",\n  \"n_mixes\": " << n_mixes
       << ",\n  \"max_replays\": " << race.max_replays << ",\n  \"wave\": " << kFixedWave
       << ",\n  \"target_rel_ci\": " << kTargetRelCi << ",\n  \"policies\": [";
  for (std::size_t p = 0; p < policies.size(); ++p)
    json << "\"" << policies[p]->name() << "\"" << (p + 1 < policies.size() ? ", " : "");
  json << "],\n  \"ranking_raced\": [";
  for (std::size_t i = 0; i < rank_raced.size(); ++i)
    json << "\"" << policies[rank_raced[i]]->name() << "\""
         << (i + 1 < rank_raced.size() ? ", " : "");
  json << "],\n  \"ranking_fixed\": [";
  for (std::size_t i = 0; i < rank_fixed.size(); ++i)
    json << "\"" << policies[rank_fixed[i]]->name() << "\""
         << (i + 1 < rank_fixed.size() ? ", " : "");
  json << "],\n  \"scenarios\": [\n";
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    json << "    {\"scenario\": \"" << scenarios[s].label
         << "\", \"raced_sims\": " << raced[s].total_simulations
         << ", \"fixed_sims\": " << fixed[s].total_simulations
         << ", \"samples_saved_pct\": " << raced[s].samples_saved_pct << ", \"schemes\": [\n";
    for (std::size_t p = 0; p < policies.size(); ++p) {
      std::size_t r_replays = 0, separated = 0;
      std::size_t f_replays = 0;
      for (std::size_t m = 0; m < n_mixes; ++m) {
        r_replays += raced[s].cells[p * n_mixes + m].replays_used;
        separated += raced[s].cells[p * n_mixes + m].separated_from_best ? 1 : 0;
        f_replays += fixed[s].cells[p * n_mixes + m].replays;
      }
      json << "      {\"scheme\": \"" << policies[p]->name()
           << "\", \"stp_raced\": " << raced[s].schemes[p].stp_geomean
           << ", \"stp_fixed\": " << fixed[s].schemes[p].stp_geomean
           << ", \"replays_raced\": " << r_replays << ", \"replays_fixed\": " << f_replays
           << ", \"separated_cells\": " << separated << "}"
           << (p + 1 < policies.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (s + 1 < scenarios.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"totals\": {\"raced_sims\": " << raced_total
       << ", \"fixed_sims\": " << fixed_total
       << ", \"fixed_budget_sims\": " << budget_total
       << ", \"reduction_factor\": " << reduction
       << ", \"samples_saved_pct\": " << saved_vs_budget
       << ",\n    \"raced_wall_s\": " << raced_wall_s << ", \"fixed_wall_s\": " << fixed_wall_s
       << ", \"wall_speedup\": " << fixed_wall_s / raced_wall_s << "}\n}\n";
  std::cout << "wrote BENCH_sweep.json\n";
  return 0;
}
