// Throughput scaling of the parallel experiment runner: simulations per
// second for a Figure-6-style policy panel at 1/2/4/N worker threads, plus a
// byte-identity check that the parallel results match the sequential run.
// Emits BENCH_throughput.json next to the text report.
//
//   ./build/bench/bench_throughput_scaling [n_mixes] [--threads N]
//
// `--threads N` adds N to the sweep (useful to probe a specific count); the
// sweep always contains 1, 2, 4 and the hardware thread count. Points that
// request more workers than the machine has hardware threads are flagged in
// the table and the JSON — their "speedup" measures oversubscription, not
// scaling.
//
// Besides wall-clock sims/sec the bench reports events/sec: the number of
// engine trace events in the measured panel (a deterministic, machine- and
// mix-size-independent work measure) divided by the measured seconds. That is
// the number the CI perf-smoke job compares across machines. A large-cluster
// point (256 nodes, scenario L10) exercises the regime where the event
// calendar's O(log n) scheduling beats the legacy per-event rescans
// asymptotically, and a traced pass measures the sink overhead.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "common/bench_cli.h"
#include "common/table.h"
#include "obs/sink.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"

using namespace smoe;

namespace {

constexpr std::uint64_t kSeed = 2017;

bool same_results(const std::vector<sched::SchemeScenarioResult>& a,
                  const std::vector<sched::SchemeScenarioResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.scheme != y.scheme || x.scenario != y.scenario) return false;
    // Exact double equality on purpose: any thread count must reproduce the
    // sequential run bit for bit, not merely approximately.
    if (x.stp_geomean != y.stp_geomean || x.stp_min != y.stp_min || x.stp_max != y.stp_max)
      return false;
    if (x.antt_red_mean != y.antt_red_mean || x.antt_red_min != y.antt_red_min ||
        x.antt_red_max != y.antt_red_max)
      return false;
    if (x.mean_makespan != y.mean_makespan || x.oom_total != y.oom_total) return false;
  }
  return true;
}

/// The Figure-6 policy panel. One instance per measurement context so each
/// context trains and owns its own policy state.
struct Panel {
  sched::PairwisePolicy pairwise;
  sched::QuasarPolicy quasar;
  sched::MoePolicy ours;
  sched::OraclePolicy oracle;

  Panel(const wl::FeatureModel& features)
      : quasar(features, kSeed), ours(features, kSeed) {}

  std::vector<sim::SchedulingPolicy*> all() {
    return {&pairwise, &quasar, &ours, &oracle};
  }
};

/// Total engine trace events for one panel pass. The policies must already be
/// trained (warmed up) so the counted schedules are the ones the timed passes
/// replay; the count is deterministic, so one pass per scenario suffices.
std::uint64_t count_events(sim::SimConfig cfg, const wl::FeatureModel& features,
                           const wl::Scenario& scenario, std::size_t n_mixes,
                           std::uint64_t mix_seed, Panel& panel) {
  obs::CountingSink counter;
  cfg.sink = &counter;
  sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, 1);
  (void)runner.run_scenario(scenario, panel.all());
  return counter.total();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv, 10);
  const std::size_t n_mixes = opt.n_mixes;

  std::vector<std::size_t> sweep = {1, 2, 4};
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  sweep.push_back(hw);
  if (opt.threads > 0) sweep.push_back(opt.threads);
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  const wl::FeatureModel features(kSeed);
  const wl::Scenario& scenario = wl::scenario_by_label("L8");
  const std::uint64_t mix_seed = Rng::derive(kSeed, "throughput");

  std::cout << "Throughput scaling on scenario " << scenario.label << " (" << n_mixes
            << " mixes, seed " << kSeed << ", " << hw << " hardware threads)\n";
  for (const std::size_t n : sweep)
    if (n > hw)
      std::cout << "WARNING: " << n << " requested threads exceed the " << hw
                << " hardware thread(s); that point measures oversubscription, "
                   "not scaling\n";

  // The deterministic per-panel event count, used to convert every measured
  // duration into events/sec.
  std::uint64_t events_total = 0;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    Panel panel(features);
    sched::ExperimentRunner warm(cfg, features, n_mixes, mix_seed, 1);
    (void)warm.run_scenario(scenario, panel.all());
    events_total = count_events(cfg, features, scenario, n_mixes, mix_seed, panel);
  }

  // One simulation per (policy, mix) cell plus one baseline run per mix, the
  // same panel Figure 6 sweeps. Isolated-time warmup runs are excluded from
  // the timed region (and from sims/sec) by doing a throwaway warmup pass.
  struct Point {
    std::size_t threads = 0;
    double seconds = 0;
    double sims_per_sec = 0;
    double events_per_sec = 0;
    double speedup = 1.0;
    bool identical = true;
    bool exceeds_hardware = false;
  };
  std::vector<Point> points;
  std::vector<sched::SchemeScenarioResult> reference;

  for (const std::size_t n_threads : sweep) {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, n_threads);
    Panel panel(features);
    const auto policies = panel.all();

    // Warmup: trains the learned policies' models and fills the
    // isolated-time cache, so the timed pass measures simulation throughput,
    // not one-off training cost.
    (void)runner.run_scenario(scenario, policies);

    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runner.run_scenario(scenario, policies);
    const auto t1 = std::chrono::steady_clock::now();

    Point pt;
    pt.threads = runner.threads();
    pt.exceeds_hardware = n_threads > hw;
    pt.seconds = std::chrono::duration<double>(t1 - t0).count();
    const double sims = static_cast<double>(policies.size() * n_mixes + n_mixes);
    pt.sims_per_sec = sims / pt.seconds;
    pt.events_per_sec = static_cast<double>(events_total) / pt.seconds;
    if (reference.empty()) {
      reference = results;
    } else {
      pt.identical = same_results(reference, results);
      pt.speedup = pt.sims_per_sec / points.front().sims_per_sec;
    }
    points.push_back(pt);
    if (!pt.identical) {
      std::cerr << "FAIL: results at " << pt.threads
                << " threads differ from the sequential run\n";
      return 1;
    }
  }

  TextTable table({"threads", "seconds", "sims/sec", "events/sec", "speedup", "identical"});
  for (const auto& pt : points)
    table.add_row({std::to_string(pt.threads) + (pt.exceeds_hardware ? " (>hw)" : ""),
                   TextTable::num(pt.seconds, 3), TextTable::num(pt.sims_per_sec, 1),
                   TextTable::num(pt.events_per_sec, 0),
                   TextTable::num(pt.speedup, 2) + "x", pt.identical ? "yes" : "NO"});
  table.render(std::cout);

  // Traced-run overhead: the same single-threaded panel with a JsonlSink
  // attached (written to /dev/null), against the untraced threads=1 point.
  double traced_seconds = 0;
  double traced_overhead_pct = 0;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    Panel panel(features);
    {
      sched::ExperimentRunner warm(cfg, features, n_mixes, mix_seed, 1);
      (void)warm.run_scenario(scenario, panel.all());
    }
    std::ofstream devnull("/dev/null");
    obs::JsonlSink jsonl(devnull);
    cfg.sink = &jsonl;
    sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, 1);
    const auto t0 = std::chrono::steady_clock::now();
    (void)runner.run_scenario(scenario, panel.all());
    const auto t1 = std::chrono::steady_clock::now();
    traced_seconds = std::chrono::duration<double>(t1 - t0).count();
    const double base = points.front().seconds;
    traced_overhead_pct = 100.0 * (traced_seconds - base) / base;
    std::cout << "\ntraced run (JSONL to /dev/null, 1 thread): "
              << TextTable::num(traced_seconds, 3) << " s, "
              << TextTable::num(traced_overhead_pct, 1) << "% overhead vs untraced\n";
  }

  // Large-cluster point: 256 nodes on the heavy L10 mix, single-threaded.
  // Per-event cost is where the legacy engine's O(nodes + executors + apps)
  // rescans dominated, so this point shows the calendar's asymptotic win —
  // events/sec here should be the same order as the small-cluster panel,
  // not hundreds of times smaller.
  constexpr std::size_t kBigNodes = 256;
  const wl::Scenario& heavy = wl::scenario_by_label("L10");
  const std::size_t n_big = std::max<std::size_t>(2, n_mixes / 5);
  const std::uint64_t big_seed = Rng::derive(kSeed, "throughput-large");
  double big_seconds = 0;
  double big_sims_per_sec = 0;
  double big_events_per_sec = 0;
  std::uint64_t big_events = 0;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    cfg.cluster.n_nodes = kBigNodes;
    Panel panel(features);
    sched::ExperimentRunner runner(cfg, features, n_big, big_seed, 1);
    const auto policies = panel.all();
    (void)runner.run_scenario(heavy, policies);
    big_events = count_events(cfg, features, heavy, n_big, big_seed, panel);

    const auto t0 = std::chrono::steady_clock::now();
    (void)runner.run_scenario(heavy, policies);
    const auto t1 = std::chrono::steady_clock::now();
    big_seconds = std::chrono::duration<double>(t1 - t0).count();
    const double sims = static_cast<double>(policies.size() * n_big + n_big);
    big_sims_per_sec = sims / big_seconds;
    big_events_per_sec = static_cast<double>(big_events) / big_seconds;
    std::cout << "large cluster (" << kBigNodes << " nodes, " << heavy.label << ", " << n_big
              << " mixes, 1 thread): " << TextTable::num(big_seconds, 3) << " s, "
              << TextTable::num(big_sims_per_sec, 1) << " sims/sec, "
              << TextTable::num(big_events_per_sec, 0) << " events/sec\n";
  }

  std::ofstream json("BENCH_throughput.json");
  json << "{\n  \"scenario\": \"" << scenario.label << "\",\n  \"n_mixes\": " << n_mixes
       << ",\n  \"seed\": " << kSeed << ",\n  \"hardware_threads\": " << hw
       << ",\n  \"events_total\": " << events_total << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    json << "    {\"threads\": " << pt.threads << ", \"seconds\": " << pt.seconds
         << ", \"sims_per_sec\": " << pt.sims_per_sec
         << ", \"events_per_sec\": " << pt.events_per_sec << ", \"speedup\": " << pt.speedup
         << ", \"identical\": " << (pt.identical ? "true" : "false")
         << ", \"exceeds_hardware\": " << (pt.exceeds_hardware ? "true" : "false") << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"traced\": {\"seconds\": " << traced_seconds
       << ", \"overhead_pct\": " << traced_overhead_pct << "},\n  \"large_cluster\": {"
       << "\"scenario\": \"" << heavy.label << "\", \"n_nodes\": " << kBigNodes
       << ", \"n_mixes\": " << n_big << ", \"seconds\": " << big_seconds
       << ", \"sims_per_sec\": " << big_sims_per_sec << ", \"events_total\": " << big_events
       << ", \"events_per_sec\": " << big_events_per_sec << "}\n}\n";
  std::cout << "\nwrote BENCH_throughput.json\n";
  return 0;
}
