// Throughput scaling of the parallel experiment runner: simulations per
// second for a Figure-6-style policy panel at 1/2/4/N worker threads, plus a
// byte-identity check that the parallel results match the sequential run.
// Emits BENCH_throughput.json next to the text report.
//
//   ./build/bench/bench_throughput_scaling [n_mixes] [--threads N]
//
// `--threads N` adds N to the sweep (useful to probe a specific count); the
// sweep always contains 1, 2, 4 and the hardware thread count.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "common/bench_cli.h"
#include "common/table.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"

using namespace smoe;

namespace {

constexpr std::uint64_t kSeed = 2017;

bool same_results(const std::vector<sched::SchemeScenarioResult>& a,
                  const std::vector<sched::SchemeScenarioResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.scheme != y.scheme || x.scenario != y.scenario) return false;
    // Exact double equality on purpose: any thread count must reproduce the
    // sequential run bit for bit, not merely approximately.
    if (x.stp_geomean != y.stp_geomean || x.stp_min != y.stp_min || x.stp_max != y.stp_max)
      return false;
    if (x.antt_red_mean != y.antt_red_mean || x.antt_red_min != y.antt_red_min ||
        x.antt_red_max != y.antt_red_max)
      return false;
    if (x.mean_makespan != y.mean_makespan || x.oom_total != y.oom_total) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv, 10);
  const std::size_t n_mixes = opt.n_mixes;

  std::vector<std::size_t> sweep = {1, 2, 4};
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  sweep.push_back(hw);
  if (opt.threads > 0) sweep.push_back(opt.threads);
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  const wl::FeatureModel features(kSeed);
  const wl::Scenario& scenario = wl::scenario_by_label("L8");

  std::cout << "Throughput scaling on scenario " << scenario.label << " (" << n_mixes
            << " mixes, seed " << kSeed << ", " << hw << " hardware threads)\n";

  // One simulation per (policy, mix) cell plus one baseline run per mix, the
  // same panel Figure 6 sweeps. Isolated-time warmup runs are excluded from
  // the timed region (and from sims/sec) by doing a throwaway warmup pass.
  struct Point {
    std::size_t threads = 0;
    double seconds = 0;
    double sims_per_sec = 0;
    double speedup = 1.0;
    bool identical = true;
  };
  std::vector<Point> points;
  std::vector<sched::SchemeScenarioResult> reference;

  for (const std::size_t n_threads : sweep) {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    sched::ExperimentRunner runner(cfg, features, n_mixes, Rng::derive(kSeed, "throughput"),
                                   n_threads);
    sched::PairwisePolicy pairwise;
    sched::QuasarPolicy quasar(features, kSeed);
    sched::MoePolicy ours(features, kSeed);
    sched::OraclePolicy oracle;
    const std::vector<sim::SchedulingPolicy*> policies = {&pairwise, &quasar, &ours, &oracle};

    // Warmup: trains the learned policies' models and fills the
    // isolated-time cache, so the timed pass measures simulation throughput,
    // not one-off training cost.
    (void)runner.run_scenario(scenario, policies);

    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runner.run_scenario(scenario, policies);
    const auto t1 = std::chrono::steady_clock::now();

    Point pt;
    pt.threads = runner.threads();
    pt.seconds = std::chrono::duration<double>(t1 - t0).count();
    const double sims = static_cast<double>(policies.size() * n_mixes + n_mixes);
    pt.sims_per_sec = sims / pt.seconds;
    if (reference.empty()) {
      reference = results;
    } else {
      pt.identical = same_results(reference, results);
      pt.speedup = pt.sims_per_sec / points.front().sims_per_sec;
    }
    points.push_back(pt);
    if (!pt.identical) {
      std::cerr << "FAIL: results at " << pt.threads
                << " threads differ from the sequential run\n";
      return 1;
    }
  }

  TextTable table({"threads", "seconds", "sims/sec", "speedup", "identical"});
  for (const auto& pt : points)
    table.add_row({std::to_string(pt.threads), TextTable::num(pt.seconds, 3),
                   TextTable::num(pt.sims_per_sec, 1), TextTable::num(pt.speedup, 2) + "x",
                   pt.identical ? "yes" : "NO"});
  table.render(std::cout);

  std::ofstream json("BENCH_throughput.json");
  json << "{\n  \"scenario\": \"" << scenario.label << "\",\n  \"n_mixes\": " << n_mixes
       << ",\n  \"seed\": " << kSeed << ",\n  \"hardware_threads\": " << hw
       << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    json << "    {\"threads\": " << pt.threads << ", \"seconds\": " << pt.seconds
         << ", \"sims_per_sec\": " << pt.sims_per_sec << ", \"speedup\": " << pt.speedup
         << ", \"identical\": " << (pt.identical ? "true" : "false") << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote BENCH_throughput.json\n";
  return 0;
}
