// Throughput scaling of the parallel experiment runner: simulations per
// second for a Figure-6-style policy panel at 1/2/4/N worker threads, plus a
// byte-identity check that the parallel results match the sequential run.
// Emits BENCH_throughput.json next to the text report.
//
//   ./build/bench/bench_throughput_scaling [n_mixes] [--threads N]
//
// `--threads N` adds N to the sweep (useful to probe a specific count); the
// sweep always contains 1, 2, 4 and the hardware thread count. Points that
// request more workers than the machine has hardware threads are flagged in
// the table and the JSON — their "speedup" measures oversubscription, not
// scaling.
//
// Every timed section reports the minimum of kTimingReps back-to-back runs:
// interference (scheduler preemption, frequency drift, other tenants) only
// ever adds time, so the minimum is the robust estimator of the true cost —
// single-shot timings made the traced/untraced overhead ratio swing by tens
// of percentage points on shared machines.
//
// Besides wall-clock sims/sec the bench reports events/sec: the number of
// engine trace events in the measured panel (a deterministic, machine- and
// mix-size-independent work measure) divided by the measured seconds. That is
// the number the CI perf-smoke job compares across machines. A large-cluster
// point (256 nodes, scenario L10) exercises the regime where the event
// calendar's O(log n) scheduling beats the legacy per-event rescans
// asymptotically, and a traced pass measures the sink overhead.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <thread>
#include <vector>

#include "common/bench_cli.h"
#include "common/table.h"
#include "obs/sink.h"
#include "obs/sink_factory.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"

using namespace smoe;

namespace {

constexpr std::uint64_t kSeed = 2017;

bool same_results(const std::vector<sched::SchemeScenarioResult>& a,
                  const std::vector<sched::SchemeScenarioResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.scheme != y.scheme || x.scenario != y.scenario) return false;
    // Exact double equality on purpose: any thread count must reproduce the
    // sequential run bit for bit, not merely approximately.
    if (x.stp_geomean != y.stp_geomean || x.stp_min != y.stp_min || x.stp_max != y.stp_max)
      return false;
    if (x.antt_red_mean != y.antt_red_mean || x.antt_red_min != y.antt_red_min ||
        x.antt_red_max != y.antt_red_max)
      return false;
    if (x.mean_makespan != y.mean_makespan || x.oom_total != y.oom_total) return false;
  }
  return true;
}

/// The Figure-6 policy panel. One instance per measurement context so each
/// context trains and owns its own policy state.
struct Panel {
  sched::PairwisePolicy pairwise;
  sched::QuasarPolicy quasar;
  sched::MoePolicy ours;
  sched::OraclePolicy oracle;

  Panel(const wl::FeatureModel& features)
      : quasar(features, kSeed), ours(features, kSeed) {}

  std::vector<sim::SchedulingPolicy*> all() {
    return {&pairwise, &quasar, &ours, &oracle};
  }
};

/// Per-cell sinks that format every event but write to /dev/null, so the
/// traced-parallel point measures the pipeline (record + format), not disk.
class DevNullSinkFactory final : public obs::SinkFactory {
  class Sink final : public obs::EventSink {
   public:
    Sink() : os_("/dev/null", std::ios::binary), inner_(os_) {}
    ~Sink() override { close(); }
    void emit(const obs::Event& event) override { inner_.emit(event); }
    void close() override { inner_.close(); }

   private:
    std::ofstream os_;
    obs::JsonlSink inner_;
  };

 public:
  std::unique_ptr<obs::EventSink> make(std::string_view) override {
    return std::make_unique<Sink>();
  }
};

/// Repetitions per timed section; the reported time is the minimum, which is
/// the standard estimator for the true cost on a machine with scheduler and
/// frequency noise (interference only ever adds time).
constexpr int kTimingReps = 3;

template <class F>
double min_seconds(int reps, F&& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

template <class F>
double min_seconds(F&& run) {
  return min_seconds(kTimingReps, run);
}

/// Total engine trace events for one panel pass. The policies must already be
/// trained (warmed up) so the counted schedules are the ones the timed passes
/// replay; the count is deterministic, so one pass per scenario suffices.
std::uint64_t count_events(sim::SimConfig cfg, const wl::FeatureModel& features,
                           const wl::Scenario& scenario, std::size_t n_mixes,
                           std::uint64_t mix_seed, Panel& panel) {
  obs::CountingSink counter;
  cfg.sink = &counter;
  sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, 1);
  (void)runner.run_scenario(scenario, panel.all());
  return counter.total();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv, 10);
  const std::size_t n_mixes = opt.n_mixes;

  std::vector<std::size_t> sweep = {1, 2, 4};
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  sweep.push_back(hw);
  if (opt.threads > 0) sweep.push_back(opt.threads);
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  const wl::FeatureModel features(kSeed);
  const wl::Scenario& scenario = wl::scenario_by_label("L8");
  const std::uint64_t mix_seed = Rng::derive(kSeed, "throughput");

  std::cout << "Throughput scaling on scenario " << scenario.label << " (" << n_mixes
            << " mixes, seed " << kSeed << ", " << hw << " hardware threads)\n";
  for (const std::size_t n : sweep)
    if (n > hw)
      std::cout << "WARNING: " << n << " requested threads exceed the " << hw
                << " hardware thread(s); that point measures oversubscription, "
                   "not scaling\n";

  // The deterministic per-panel event count, used to convert every measured
  // duration into events/sec.
  std::uint64_t events_total = 0;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    Panel panel(features);
    sched::ExperimentRunner warm(cfg, features, n_mixes, mix_seed, 1);
    (void)warm.run_scenario(scenario, panel.all());
    events_total = count_events(cfg, features, scenario, n_mixes, mix_seed, panel);
  }

  // One simulation per (policy, mix) cell plus one baseline run per mix, the
  // same panel Figure 6 sweeps. Isolated-time warmup runs are excluded from
  // the timed region (and from sims/sec) by doing a throwaway warmup pass.
  struct Point {
    std::size_t threads = 0;
    double seconds = 0;
    double sims_per_sec = 0;
    double events_per_sec = 0;
    double speedup = 1.0;
    bool identical = true;
    bool exceeds_hardware = false;
  };
  std::vector<Point> points;
  std::vector<sched::SchemeScenarioResult> reference;

  for (const std::size_t n_threads : sweep) {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, n_threads);
    Panel panel(features);
    const auto policies = panel.all();

    // Warmup: trains the learned policies' models and fills the
    // isolated-time cache, so the timed pass measures simulation throughput,
    // not one-off training cost.
    (void)runner.run_scenario(scenario, policies);

    std::vector<sched::SchemeScenarioResult> results;
    const double seconds =
        min_seconds([&] { results = runner.run_scenario(scenario, policies); });

    Point pt;
    pt.threads = runner.threads();
    pt.exceeds_hardware = n_threads > hw;
    pt.seconds = seconds;
    const double sims = static_cast<double>(policies.size() * n_mixes + n_mixes);
    pt.sims_per_sec = sims / pt.seconds;
    pt.events_per_sec = static_cast<double>(events_total) / pt.seconds;
    if (reference.empty()) {
      reference = results;
    } else {
      pt.identical = same_results(reference, results);
      pt.speedup = pt.sims_per_sec / points.front().sims_per_sec;
    }
    points.push_back(pt);
    if (!pt.identical) {
      std::cerr << "FAIL: results at " << pt.threads
                << " threads differ from the sequential run\n";
      return 1;
    }
  }

  TextTable table({"threads", "seconds", "sims/sec", "events/sec", "speedup", "identical"});
  for (const auto& pt : points)
    table.add_row({std::to_string(pt.threads) + (pt.exceeds_hardware ? " (>hw)" : ""),
                   TextTable::num(pt.seconds, 3), TextTable::num(pt.sims_per_sec, 1),
                   TextTable::num(pt.events_per_sec, 0),
                   TextTable::num(pt.speedup, 2) + "x", pt.identical ? "yes" : "NO"});
  table.render(std::cout);

  // Traced-run overhead: the same single-threaded panel with a JsonlSink
  // attached (written to /dev/null). The untraced base is re-measured here,
  // interleaved rep-by-rep with the traced runs, so slow machine drift
  // between bench sections cancels out of the ratio (the table's threads=1
  // point was measured seconds earlier and may sit in a different frequency
  // or tenancy regime).
  double traced_seconds = 0;
  double traced_overhead_pct = 0;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    Panel panel(features);
    {
      sched::ExperimentRunner warm(cfg, features, n_mixes, mix_seed, 1);
      (void)warm.run_scenario(scenario, panel.all());
    }
    sched::ExperimentRunner untraced(cfg, features, n_mixes, mix_seed, 1);
    std::ofstream devnull("/dev/null");
    obs::JsonlSink jsonl(devnull);
    cfg.sink = &jsonl;
    sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, 1);
    // The overhead is the median of per-pair traced/untraced ratios: machine
    // load is roughly constant across one back-to-back pair (~0.5 s), so each
    // ratio is individually unbiased, and the median discards pairs hit by a
    // load spike. Within a pair each side takes the min of 3 runs — noise in
    // the denominator inflates a single-run ratio (Jensen), so less-noisy
    // sides mean a less-biased ratio. A global min/min across all reps is
    // worse here — a slow regime lasting half the section skews whichever
    // side it overlaps.
    double base = std::numeric_limits<double>::infinity();
    traced_seconds = std::numeric_limits<double>::infinity();
    std::vector<double> ratios;
    for (int rep = 0; rep < 12; ++rep) {
      const double b =
          min_seconds(3, [&] { (void)untraced.run_scenario(scenario, panel.all()); });
      const double t =
          min_seconds(3, [&] { (void)runner.run_scenario(scenario, panel.all()); });
      base = std::min(base, b);
      traced_seconds = std::min(traced_seconds, t);
      ratios.push_back(t / b);
    }
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2, ratios.end());
    traced_overhead_pct = 100.0 * (ratios[ratios.size() / 2] - 1.0);
    std::cout << "\ntraced run (JSONL to /dev/null, 1 thread): "
              << TextTable::num(traced_seconds, 3) << " s, "
              << TextTable::num(traced_overhead_pct, 1)
              << "% overhead vs untraced (median of 12 interleaved pairs, best base "
              << TextTable::num(base, 3) << " s)\n";
  }

  // Traced *parallel* point: per-cell sinks via a SinkFactory keep the sweep
  // on the pool (a shared sink would force it sequential). Speedup is
  // measured against the traced single-threaded run above.
  const std::size_t traced_threads = sweep.back();
  double traced_parallel_seconds = 0;
  double traced_parallel_speedup = 0;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    Panel panel(features);
    {
      sched::ExperimentRunner warm(cfg, features, n_mixes, mix_seed, 1);
      (void)warm.run_scenario(scenario, panel.all());
    }
    DevNullSinkFactory factory;
    sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, traced_threads);
    runner.set_sink_factory(&factory);
    std::vector<sched::SchemeScenarioResult> results;
    traced_parallel_seconds =
        min_seconds([&] { results = runner.run_scenario(scenario, panel.all()); });
    traced_parallel_speedup = traced_seconds / traced_parallel_seconds;
    if (!same_results(reference, results)) {
      std::cerr << "FAIL: traced parallel results differ from the sequential run\n";
      return 1;
    }
    std::cout << "traced run (per-cell JSONL sinks, " << traced_threads
              << " threads): " << TextTable::num(traced_parallel_seconds, 3) << " s, "
              << TextTable::num(traced_parallel_speedup, 2) << "x vs traced 1 thread\n";
  }

  // Large-cluster point: 256 nodes on the heavy L10 mix, single-threaded.
  // Per-event cost is where the legacy engine's O(nodes + executors + apps)
  // rescans dominated, so this point shows the calendar's asymptotic win —
  // events/sec here should be the same order as the small-cluster panel,
  // not hundreds of times smaller.
  constexpr std::size_t kBigNodes = 256;
  const wl::Scenario& heavy = wl::scenario_by_label("L10");
  const std::size_t n_big = std::max<std::size_t>(2, n_mixes / 5);
  const std::uint64_t big_seed = Rng::derive(kSeed, "throughput-large");
  double big_seconds = 0;
  double big_sims_per_sec = 0;
  double big_events_per_sec = 0;
  std::uint64_t big_events = 0;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    cfg.cluster.n_nodes = kBigNodes;
    Panel panel(features);
    sched::ExperimentRunner runner(cfg, features, n_big, big_seed, 1);
    const auto policies = panel.all();
    (void)runner.run_scenario(heavy, policies);
    big_events = count_events(cfg, features, heavy, n_big, big_seed, panel);

    big_seconds = min_seconds([&] { (void)runner.run_scenario(heavy, policies); });
    const double sims = static_cast<double>(policies.size() * n_big + n_big);
    big_sims_per_sec = sims / big_seconds;
    big_events_per_sec = static_cast<double>(big_events) / big_seconds;
    std::cout << "large cluster (" << kBigNodes << " nodes, " << heavy.label << ", " << n_big
              << " mixes, 1 thread): " << TextTable::num(big_seconds, 3) << " s, "
              << TextTable::num(big_sims_per_sec, 1) << " sims/sec, "
              << TextTable::num(big_events_per_sec, 0) << " events/sec\n";
  }

  std::ofstream json("BENCH_throughput.json");
  json << "{\n  \"scenario\": \"" << scenario.label << "\",\n  \"n_mixes\": " << n_mixes
       << ",\n  \"seed\": " << kSeed << ",\n  \"hardware_threads\": " << hw
       << ",\n  \"events_total\": " << events_total << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    json << "    {\"threads\": " << pt.threads << ", \"seconds\": " << pt.seconds
         << ", \"sims_per_sec\": " << pt.sims_per_sec
         << ", \"events_per_sec\": " << pt.events_per_sec << ", \"speedup\": " << pt.speedup
         << ", \"identical\": " << (pt.identical ? "true" : "false")
         << ", \"exceeds_hardware\": " << (pt.exceeds_hardware ? "true" : "false") << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"traced\": {\"seconds\": " << traced_seconds
       << ", \"overhead_pct\": " << traced_overhead_pct << "},\n  \"traced_parallel\": {"
       << "\"threads\": " << traced_threads << ", \"seconds\": " << traced_parallel_seconds
       << ", \"speedup_vs_traced_1t\": " << traced_parallel_speedup
       << "},\n  \"large_cluster\": {"
       << "\"scenario\": \"" << heavy.label << "\", \"n_nodes\": " << kBigNodes
       << ", \"n_mixes\": " << n_big << ", \"seconds\": " << big_seconds
       << ", \"sims_per_sec\": " << big_sims_per_sec << ", \"events_total\": " << big_events
       << ", \"events_per_sec\": " << big_events_per_sec << "}\n}\n";
  std::cout << "\nwrote BENCH_throughput.json\n";
  return 0;
}
