// Throughput scaling of the parallel experiment runner and of the engine
// itself: simulations per second for a Figure-6-style policy panel across a
// worker-thread ladder, a byte-identity check that the parallel results match
// the sequential run, and an engine scaling curve up to 10k-node clusters.
// Emits BENCH_throughput.json next to the text report.
//
//   ./build/bench/bench_throughput_scaling [n_mixes] [--threads N] [--oversubscribe]
//
// The thread ladder contains 1, 2, 4, the hardware thread count and any
// `--threads N` — clamped to the hardware thread count by default, because a
// point with more workers than the machine has threads measures
// oversubscription, not scaling. Pass `--oversubscribe` to keep such points
// (they are flagged in the table and the JSON).
//
// Every timed section reports the minimum of kTimingReps back-to-back runs:
// interference (scheduler preemption, frequency drift, other tenants) only
// ever adds time, so the minimum is the robust estimator of the true cost —
// single-shot timings made the traced/untraced overhead ratio swing by tens
// of percentage points on shared machines.
//
// Besides wall-clock sims/sec the bench reports events/sec: the number of
// engine trace events in the measured work (a deterministic, machine- and
// mix-size-independent work measure) divided by the measured seconds. That is
// the number the CI perf-smoke job compares across machines. The large and
// scaling points time *exactly* the counted work — bare ClusterSim::run panel
// cells, no baseline runs and no metric aggregation — so events/sec there is
// the engine's own event rate:
//   - large_cluster: 256 nodes on the heavy L10 mix,
//   - scaling: a 1k/4k/10k-node curve (per-event cost must stay near-flat —
//     that is the indexed-dispatch + bucketed-calendar contract),
//   - mega_queue: 10k nodes with a 100k-application queue in one mix,
//   - partitioned: the same mega mix under PartitionedClusterSim shards.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <thread>
#include <vector>

#include "common/bench_cli.h"
#include "common/table.h"
#include "obs/sink.h"
#include "obs/sink_factory.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/partition.h"

using namespace smoe;

namespace {

constexpr std::uint64_t kSeed = 2017;

bool same_results(const std::vector<sched::SchemeScenarioResult>& a,
                  const std::vector<sched::SchemeScenarioResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.scheme != y.scheme || x.scenario != y.scenario) return false;
    // Exact double equality on purpose: any thread count must reproduce the
    // sequential run bit for bit, not merely approximately.
    if (x.stp_geomean != y.stp_geomean || x.stp_min != y.stp_min || x.stp_max != y.stp_max)
      return false;
    if (x.antt_red_mean != y.antt_red_mean || x.antt_red_min != y.antt_red_min ||
        x.antt_red_max != y.antt_red_max)
      return false;
    if (x.mean_makespan != y.mean_makespan || x.oom_total != y.oom_total) return false;
  }
  return true;
}

/// The Figure-6 policy panel. One instance per measurement context so each
/// context trains and owns its own policy state.
struct Panel {
  sched::PairwisePolicy pairwise;
  sched::QuasarPolicy quasar;
  sched::MoePolicy ours;
  sched::OraclePolicy oracle;

  Panel(const wl::FeatureModel& features)
      : quasar(features, kSeed), ours(features, kSeed) {}

  std::vector<sim::SchedulingPolicy*> all() {
    return {&pairwise, &quasar, &ours, &oracle};
  }
};

/// Per-cell sinks that format every event but write to /dev/null, so the
/// traced-parallel point measures the pipeline (record + format), not disk.
class DevNullSinkFactory final : public obs::SinkFactory {
  class Sink final : public obs::EventSink {
   public:
    Sink() : os_("/dev/null", std::ios::binary), inner_(os_) {}
    ~Sink() override { close(); }
    void emit(const obs::Event& event) override { inner_.emit(event); }
    void close() override { inner_.close(); }

   private:
    std::ofstream os_;
    obs::JsonlSink inner_;
  };

 public:
  std::unique_ptr<obs::EventSink> make(std::string_view) override {
    return std::make_unique<Sink>();
  }
};

/// Repetitions per timed section; the reported time is the minimum, which is
/// the standard estimator for the true cost on a machine with scheduler and
/// frequency noise (interference only ever adds time).
constexpr int kTimingReps = 3;

template <class F>
double min_seconds(int reps, F&& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

template <class F>
double min_seconds(F&& run) {
  return min_seconds(kTimingReps, run);
}

/// Total engine trace events for one panel pass through the experiment
/// runner. The policies must already be trained (warmed up) so the counted
/// schedules are the ones the timed passes replay; the count is
/// deterministic, so one pass per scenario suffices.
std::uint64_t count_events(sim::SimConfig cfg, const wl::FeatureModel& features,
                           const wl::Scenario& scenario, std::size_t n_mixes,
                           std::uint64_t mix_seed, Panel& panel) {
  obs::CountingSink counter;
  cfg.sink = &counter;
  sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, 1);
  (void)runner.run_scenario(scenario, panel.all());
  return counter.total();
}

/// An engine-rate point: bare ClusterSim::run over (policy x mix) cells, no
/// baseline runs and no aggregation, so the timed region is exactly the work
/// whose events are counted.
struct EnginePoint {
  std::size_t n_nodes = 0;
  std::size_t n_mixes = 0;
  std::size_t n_apps = 0;  ///< total applications across all timed cells
  std::uint64_t events = 0;
  double seconds = 0;
  double events_per_sec = 0;
  double sims_per_sec = 0;
};

EnginePoint measure_engine_cells(const wl::FeatureModel& features, sim::SimConfig cfg,
                                 const std::vector<wl::TaskMix>& mixes,
                                 const std::vector<sim::SchedulingPolicy*>& policies,
                                 int reps) {
  EnginePoint pt;
  pt.n_nodes = cfg.cluster.n_nodes;
  pt.n_mixes = mixes.size();
  for (const auto& m : mixes) pt.n_apps += m.size() * policies.size();

  const auto run_cells = [&](sim::ClusterSim& sim) {
    for (auto* p : policies)
      for (const auto& m : mixes) (void)sim.run(m, *p);
  };
  // Warmup: trains the learned policies' models so the timed pass measures
  // steady-state simulation throughput, not one-off training cost.
  {
    sim::ClusterSim warm(cfg, features);
    run_cells(warm);
  }
  // Deterministic event count of exactly the cells timed below.
  {
    sim::SimConfig ccfg = cfg;
    obs::CountingSink counter;
    ccfg.sink = &counter;
    sim::ClusterSim counting(ccfg, features);
    run_cells(counting);
    pt.events = counter.total();
  }
  sim::ClusterSim sim(cfg, features);
  pt.seconds = min_seconds(reps, [&] { run_cells(sim); });
  pt.events_per_sec = static_cast<double>(pt.events) / pt.seconds;
  pt.sims_per_sec =
      static_cast<double>(policies.size() * mixes.size()) / pt.seconds;
  return pt;
}

void print_engine_point(const char* label, const EnginePoint& pt) {
  std::cout << label << " (" << pt.n_nodes << " nodes, " << pt.n_mixes << " mixes, "
            << pt.n_apps << " app-sims, 1 thread): " << TextTable::num(pt.seconds, 3)
            << " s, " << TextTable::num(pt.sims_per_sec, 1) << " sims/sec, "
            << TextTable::num(pt.events_per_sec, 0) << " events/sec\n";
}

void json_engine_point(std::ofstream& json, const EnginePoint& pt) {
  json << "{\"n_nodes\": " << pt.n_nodes << ", \"n_mixes\": " << pt.n_mixes
       << ", \"n_apps\": " << pt.n_apps << ", \"events_total\": " << pt.events
       << ", \"seconds\": " << pt.seconds << ", \"sims_per_sec\": " << pt.sims_per_sec
       << ", \"events_per_sec\": " << pt.events_per_sec << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv, 10);
  const std::size_t n_mixes = opt.n_mixes;

  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> sweep = {1, 2, 4, hw};
  if (opt.threads > 0) sweep.push_back(opt.threads);
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
  if (!opt.oversubscribe) {
    // Oversubscribed points measure scheduler thrash, not scaling; keep the
    // default ladder honest and put them behind an explicit flag.
    const auto first_over =
        std::find_if(sweep.begin(), sweep.end(), [&](std::size_t n) { return n > hw; });
    if (first_over != sweep.end()) {
      std::cout << "note: dropping thread counts above the " << hw
                << " hardware thread(s):";
      for (auto it = first_over; it != sweep.end(); ++it) std::cout << " " << *it;
      std::cout << " (pass --oversubscribe to keep them)\n";
      sweep.erase(first_over, sweep.end());
    }
  }

  const wl::FeatureModel features(kSeed);
  const wl::Scenario& scenario = wl::scenario_by_label("L8");
  const std::uint64_t mix_seed = Rng::derive(kSeed, "throughput");

  std::cout << "Throughput scaling on scenario " << scenario.label << " (" << n_mixes
            << " mixes, seed " << kSeed << ", " << hw << " hardware threads)\n";
  for (const std::size_t n : sweep)
    if (n > hw)
      std::cout << "WARNING: " << n << " requested threads exceed the " << hw
                << " hardware thread(s); that point measures oversubscription, "
                   "not scaling\n";

  // The deterministic per-panel event count, used to convert every measured
  // duration into events/sec.
  std::uint64_t events_total = 0;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    Panel panel(features);
    sched::ExperimentRunner warm(cfg, features, n_mixes, mix_seed, 1);
    (void)warm.run_scenario(scenario, panel.all());
    events_total = count_events(cfg, features, scenario, n_mixes, mix_seed, panel);
  }

  // One simulation per (policy, mix) cell plus one baseline run per mix, the
  // same panel Figure 6 sweeps. Isolated-time warmup runs are excluded from
  // the timed region (and from sims/sec) by doing a throwaway warmup pass.
  struct Point {
    std::size_t threads = 0;
    double seconds = 0;
    double sims_per_sec = 0;
    double events_per_sec = 0;
    double speedup = 1.0;
    bool identical = true;
    bool exceeds_hardware = false;
  };
  std::vector<Point> points;
  std::vector<sched::SchemeScenarioResult> reference;

  for (const std::size_t n_threads : sweep) {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, n_threads);
    Panel panel(features);
    const auto policies = panel.all();

    // Warmup: trains the learned policies' models and fills the
    // isolated-time cache, so the timed pass measures simulation throughput,
    // not one-off training cost.
    (void)runner.run_scenario(scenario, policies);

    std::vector<sched::SchemeScenarioResult> results;
    const double seconds =
        min_seconds([&] { results = runner.run_scenario(scenario, policies); });

    Point pt;
    pt.threads = runner.threads();
    pt.exceeds_hardware = n_threads > hw;
    pt.seconds = seconds;
    const double sims = static_cast<double>(policies.size() * n_mixes + n_mixes);
    pt.sims_per_sec = sims / pt.seconds;
    pt.events_per_sec = static_cast<double>(events_total) / pt.seconds;
    if (reference.empty()) {
      reference = results;
    } else {
      pt.identical = same_results(reference, results);
      pt.speedup = pt.sims_per_sec / points.front().sims_per_sec;
    }
    points.push_back(pt);
    if (!pt.identical) {
      std::cerr << "FAIL: results at " << pt.threads
                << " threads differ from the sequential run\n";
      return 1;
    }
  }

  TextTable table({"threads", "seconds", "sims/sec", "events/sec", "speedup", "identical"});
  for (const auto& pt : points)
    table.add_row({std::to_string(pt.threads) + (pt.exceeds_hardware ? " (>hw)" : ""),
                   TextTable::num(pt.seconds, 3), TextTable::num(pt.sims_per_sec, 1),
                   TextTable::num(pt.events_per_sec, 0),
                   TextTable::num(pt.speedup, 2) + "x", pt.identical ? "yes" : "NO"});
  table.render(std::cout);

  // Traced-run overhead: the same single-threaded panel with a JsonlSink
  // attached (written to /dev/null). The untraced base is re-measured here,
  // interleaved rep-by-rep with the traced runs, so slow machine drift
  // between bench sections cancels out of the ratio (the table's threads=1
  // point was measured seconds earlier and may sit in a different frequency
  // or tenancy regime).
  double traced_seconds = 0;
  double traced_overhead_pct = 0;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    Panel panel(features);
    {
      sched::ExperimentRunner warm(cfg, features, n_mixes, mix_seed, 1);
      (void)warm.run_scenario(scenario, panel.all());
    }
    sched::ExperimentRunner untraced(cfg, features, n_mixes, mix_seed, 1);
    std::ofstream devnull("/dev/null");
    obs::JsonlSink jsonl(devnull);
    cfg.sink = &jsonl;
    sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, 1);
    // The overhead is the median of per-pair traced/untraced ratios: machine
    // load is roughly constant across one back-to-back pair (~0.5 s), so each
    // ratio is individually unbiased, and the median discards pairs hit by a
    // load spike. Within a pair each side takes the min of 3 runs — noise in
    // the denominator inflates a single-run ratio (Jensen), so less-noisy
    // sides mean a less-biased ratio. A global min/min across all reps is
    // worse here — a slow regime lasting half the section skews whichever
    // side it overlaps.
    double base = std::numeric_limits<double>::infinity();
    traced_seconds = std::numeric_limits<double>::infinity();
    std::vector<double> ratios;
    for (int rep = 0; rep < 12; ++rep) {
      const double b =
          min_seconds(3, [&] { (void)untraced.run_scenario(scenario, panel.all()); });
      const double t =
          min_seconds(3, [&] { (void)runner.run_scenario(scenario, panel.all()); });
      base = std::min(base, b);
      traced_seconds = std::min(traced_seconds, t);
      ratios.push_back(t / b);
    }
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2, ratios.end());
    traced_overhead_pct = 100.0 * (ratios[ratios.size() / 2] - 1.0);
    std::cout << "\ntraced run (JSONL to /dev/null, 1 thread): "
              << TextTable::num(traced_seconds, 3) << " s, "
              << TextTable::num(traced_overhead_pct, 1)
              << "% overhead vs untraced (median of 12 interleaved pairs, best base "
              << TextTable::num(base, 3) << " s)\n";
  }

  // Traced *parallel* point: per-cell sinks via a SinkFactory keep the sweep
  // on the pool (a shared sink would force it sequential). Speedup is
  // measured against the traced single-threaded run above.
  const std::size_t traced_threads = sweep.back();
  double traced_parallel_seconds = 0;
  double traced_parallel_speedup = 0;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    Panel panel(features);
    {
      sched::ExperimentRunner warm(cfg, features, n_mixes, mix_seed, 1);
      (void)warm.run_scenario(scenario, panel.all());
    }
    DevNullSinkFactory factory;
    sched::ExperimentRunner runner(cfg, features, n_mixes, mix_seed, traced_threads);
    runner.set_sink_factory(&factory);
    std::vector<sched::SchemeScenarioResult> results;
    traced_parallel_seconds =
        min_seconds([&] { results = runner.run_scenario(scenario, panel.all()); });
    traced_parallel_speedup = traced_seconds / traced_parallel_seconds;
    if (!same_results(reference, results)) {
      std::cerr << "FAIL: traced parallel results differ from the sequential run\n";
      return 1;
    }
    std::cout << "traced run (per-cell JSONL sinks, " << traced_threads
              << " threads): " << TextTable::num(traced_parallel_seconds, 3) << " s, "
              << TextTable::num(traced_parallel_speedup, 2) << "x vs traced 1 thread\n";
  }

  // ---- Engine-rate points: bare ClusterSim::run cells ----------------------
  // From here down the timed region is exactly the counted work, so
  // events/sec is the engine's own event rate (no baseline runs, no STP
  // aggregation riding along in the denominator).
  std::cout << "\n";

  // Large-cluster point: 256 nodes on the heavy L10 mix. Per-event cost is
  // where the legacy engine's O(nodes + executors + apps) rescans dominated;
  // events/sec here should be the same order as the small-cluster panel, not
  // hundreds of times smaller.
  const wl::Scenario& heavy = wl::scenario_by_label("L10");
  const std::size_t n_big = std::max<std::size_t>(2, n_mixes / 5);
  const std::uint64_t big_seed = Rng::derive(kSeed, "throughput-large");
  EnginePoint big;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    cfg.cluster.n_nodes = 256;
    Panel panel(features);
    const auto mixes = wl::scenario_mixes(heavy, n_big, big_seed);
    big = measure_engine_cells(features, cfg, mixes, panel.all(), kTimingReps);
    print_engine_point("large cluster", big);
  }

  // Scaling curve: the same heavy panel at 1k/4k/10k nodes. The contract
  // under test is that per-event cost stays near-flat as the cluster grows —
  // indexed dispatch is O(log n) and the calendar O(log live), so a 40x node
  // count must not translate into a 40x event cost.
  std::vector<EnginePoint> scaling;
  for (const std::size_t n_nodes : {std::size_t{1000}, std::size_t{4000}, std::size_t{10000}}) {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    cfg.cluster.n_nodes = n_nodes;
    Panel panel(features);
    const auto mixes = wl::scenario_mixes(
        heavy, n_big, Rng::derive(kSeed, "throughput-scale:" + std::to_string(n_nodes)));
    const int reps = n_nodes >= 10000 ? 1 : 2;
    scaling.push_back(measure_engine_cells(features, cfg, mixes, panel.all(), reps));
    print_engine_point("scaling", scaling.back());
  }

  // Mega-queue point: a single 100k-application mix on 10k nodes, the
  // first-class "deep backlog" regime. The dispatcher's rank-ordered work set
  // keeps per-decision cost independent of queue depth; a coarse trace bin
  // keeps the utilization trace from dominating memory. Two policies bound
  // the runtime: the cheapest heuristic and the full mixture-of-experts path.
  EnginePoint mega_pairwise, mega_moe;
  double partitioned_seconds = 0;
  double partitioned_speedup = 0;
  const std::size_t kPartitions = 8;
  {
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    cfg.cluster.n_nodes = 10000;
    cfg.trace_bin = 3600.0;
    Rng mix_rng(Rng::derive(kSeed, "throughput-mega"));
    const std::vector<wl::TaskMix> mega = {wl::random_mix(100000, mix_rng)};
    {
      sched::PairwisePolicy pairwise;
      mega_pairwise = measure_engine_cells(features, cfg, mega, {&pairwise}, 1);
      print_engine_point("mega queue (pairwise)", mega_pairwise);
    }
    {
      sched::MoePolicy ours(features, kSeed);
      mega_moe = measure_engine_cells(features, cfg, mega, {&ours}, 1);
      print_engine_point("mega queue (moe)", mega_moe);
    }
    // Partitioned mode: the same mega mix dealt round-robin across shards,
    // each shard a slice of the node pool on its own worker. Speedup is
    // against the single-sim pairwise run above; on a 1-thread machine this
    // measures sharding overhead instead.
    {
      sched::PairwisePolicy pairwise;
      sim::PartitionedClusterSim part(cfg, features, kPartitions, hw);
      (void)part.run(mega[0], pairwise);  // warm
      partitioned_seconds = min_seconds(1, [&] { (void)part.run(mega[0], pairwise); });
      partitioned_speedup = mega_pairwise.seconds / partitioned_seconds;
      std::cout << "partitioned (" << kPartitions << " shards, " << hw
                << " threads, pairwise): " << TextTable::num(partitioned_seconds, 3)
                << " s, " << TextTable::num(partitioned_speedup, 2)
                << "x vs single sim\n";
    }
  }

  std::ofstream json("BENCH_throughput.json");
  json << "{\n  \"scenario\": \"" << scenario.label << "\",\n  \"n_mixes\": " << n_mixes
       << ",\n  \"seed\": " << kSeed << ",\n  \"hardware_threads\": " << hw
       << ",\n  \"events_total\": " << events_total << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    json << "    {\"threads\": " << pt.threads << ", \"seconds\": " << pt.seconds
         << ", \"sims_per_sec\": " << pt.sims_per_sec
         << ", \"events_per_sec\": " << pt.events_per_sec << ", \"speedup\": " << pt.speedup
         << ", \"identical\": " << (pt.identical ? "true" : "false")
         << ", \"exceeds_hardware\": " << (pt.exceeds_hardware ? "true" : "false") << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"traced\": {\"seconds\": " << traced_seconds
       << ", \"overhead_pct\": " << traced_overhead_pct << "},\n  \"traced_parallel\": {"
       << "\"threads\": " << traced_threads << ", \"seconds\": " << traced_parallel_seconds
       << ", \"speedup_vs_traced_1t\": " << traced_parallel_speedup
       << "},\n  \"engine_rate_timing\": \"panel_cells_only\",\n  \"large_cluster\": ";
  json_engine_point(json, big);
  json << ",\n  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    json << "    ";
    json_engine_point(json, scaling[i]);
    json << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"mega_queue\": {\"pairwise\": ";
  json_engine_point(json, mega_pairwise);
  json << ", \"moe\": ";
  json_engine_point(json, mega_moe);
  json << "},\n  \"partitioned\": {\"n_partitions\": " << kPartitions
       << ", \"threads\": " << hw << ", \"seconds\": " << partitioned_seconds
       << ", \"speedup_vs_single\": " << partitioned_speedup << "}\n}\n";
  std::cout << "\nwrote BENCH_throughput.json\n";
  return 0;
}
