// Figure 13: distribution of average CPU load across the 44 benchmarks when
// running in isolation (paper: most benchmarks stay under 40% — the headroom
// co-location exploits).
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "sparksim/app_probe.h"
#include "workloads/features.h"
#include "workloads/suites.h"

using namespace smoe;

int main() {
  constexpr std::uint64_t kSeed = 2017;
  const wl::FeatureModel features(kSeed);

  // Measure each benchmark's CPU load the way the runtime does: via the
  // profiling probe (noisy observation of the isolation-mode load).
  std::vector<double> loads;
  for (const auto& bench : wl::all_spark_benchmarks()) {
    sim::AppProbe probe(bench, features, 30720, Rng::derive(kSeed, "cpu:" + bench.name));
    loads.push_back(probe.measure_cpu_load());
  }

  const Histogram h = histogram(loads, 0.0, 0.6, 6);
  std::cout << "Figure 13: CPU load in isolation mode (44 benchmarks, seed " << kSeed
            << ")\n";
  TextTable table({"CPU load", "# benchmarks", ""});
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    table.add_row({std::to_string(b * 10) + "-" + std::to_string((b + 1) * 10) + "%",
                   std::to_string(h.counts[b]), std::string(h.counts[b], '#')});
  }
  table.render(std::cout);

  std::size_t under40 = 0;
  for (const double l : loads)
    if (l < 0.4) ++under40;
  std::cout << "mean load: " << TextTable::pct(mean(loads), 1) << ", " << under40 << "/44 under 40%"
            << " (paper: 'the CPU load for most of the 44 benchmarks is under 40%')\n";
  return 0;
}
