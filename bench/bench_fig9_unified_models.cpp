// Figure 9: the mixture-of-experts against unified single-model predictors —
// one regression family for everything (linear/power, exponential, Napierian
// log) and a single ANN — across the ten runtime scenarios.
#include <iostream>
#include <vector>

#include "common/bench_cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/cli.h"
#include "sched/experiment.h"
#include "sched/policies_learned.h"

using namespace smoe;

int main(int argc, char** argv) {
  obs::TraceCli trace_cli(argc, argv);
  constexpr std::uint64_t kSeed = 2017;
  const BenchOptions opt = parse_bench_options(argc, argv, 100);
  const std::size_t n_mixes = opt.n_mixes;

  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.sink = &trace_cli.sink();
  sched::ExperimentRunner runner(cfg, features, n_mixes, Rng::derive(kSeed, "fig9"), opt.threads);
  runner.set_sink_factory(trace_cli.sink_factory());

  sched::UnifiedCurvePolicy linear(ml::CurveKind::kPowerLaw, features, kSeed);
  sched::UnifiedCurvePolicy exponential(ml::CurveKind::kExponential, features, kSeed);
  sched::UnifiedCurvePolicy napierian(ml::CurveKind::kNapierianLog, features, kSeed);
  sched::UnifiedAnnPolicy ann(features, kSeed);
  sched::MoePolicy ours(features, kSeed);
  const std::vector<sim::SchedulingPolicy*> policies = {&linear, &exponential, &napierian,
                                                        &ann, &ours};

  // Racing is the bench default; tracing runs stay un-raced (one traced
  // schedule per cell).
  const bool tracing_active = trace_cli.sink().enabled() || trace_cli.sink_factory() != nullptr;
  const bool race_on = opt.race.value_or(true) && !tracing_active;
  sched::RaceOptions race;
  if (opt.max_replays != 0) race.max_replays = opt.max_replays;
  race.budget_seconds = opt.budget_seconds;
  std::size_t race_total_sims = 0, race_fixed_budget = 0;

  TextTable stp({"scenario", "LinearReg", "ExpReg", "NapLogReg", "ANN", "Ours (MoE)"});
  TextTable antt({"scenario", "LinearReg", "ExpReg", "NapLogReg", "ANN", "Ours (MoE)"});
  std::vector<std::vector<double>> stps(policies.size()), antts(policies.size());

  std::cout << "Figure 9: unified single-model predictors vs the mixture of experts\n"
            << "(seed " << kSeed << ", " << n_mixes << " mixes per scenario, " << runner.threads()
            << " threads, racing " << (race_on ? "on" : "off") << ")\n";
  for (const auto& scenario : wl::scenarios()) {
    std::vector<sched::SchemeScenarioResult> results;
    if (race_on) {
      auto raced = runner.run_scenario_raced(scenario, policies, race);
      race_total_sims += raced.total_simulations;
      race_fixed_budget += raced.fixed_budget_simulations;
      results = std::move(raced.schemes);
    } else {
      results = runner.run_scenario(scenario, policies);
    }
    std::vector<std::string> srow = {scenario.label}, arow = {scenario.label};
    for (std::size_t p = 0; p < results.size(); ++p) {
      srow.push_back(TextTable::num(results[p].stp_geomean, 2) + "x");
      arow.push_back(TextTable::pct(results[p].antt_red_mean, 1));
      stps[p].push_back(results[p].stp_geomean);
      antts[p].push_back(results[p].antt_red_mean);
    }
    stp.add_row(srow);
    antt.add_row(arow);
  }
  std::vector<std::string> srow = {"Geomean"}, arow = {"Mean"};
  for (std::size_t p = 0; p < policies.size(); ++p) {
    srow.push_back(TextTable::num(geomean(stps[p]), 2) + "x");
    arow.push_back(TextTable::pct(mean(antts[p]), 1));
  }
  stp.add_row(srow);
  antt.add_row(arow);

  std::cout << "\n(a) Normalized STP — paper: ANN is the best unified model, ours beats all\n";
  stp.render(std::cout);
  std::cout << "\n(b) ANTT reduction\n";
  antt.render(std::cout);
  if (race_on) {
    const double saved =
        100.0 * (1.0 - static_cast<double>(race_total_sims) / static_cast<double>(race_fixed_budget));
    std::cout << "\nadaptive replication: " << race_total_sims << " of " << race_fixed_budget
              << " fixed-budget simulations (saved " << TextTable::num(saved, 1) << "%)\n";
  }
  return 0;
}
