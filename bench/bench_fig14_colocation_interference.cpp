// Figure 14: slowdown distribution when co-locating each of the 16 HiBench /
// BigDataBench targets (~280 GB input) with every other benchmark on a single
// host under our scheme, relative to isolated execution (paper: < 25% with a
// < 10% average).
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "obs/cli.h"
#include "sched/policies_learned.h"
#include "sparksim/engine.h"
#include "workloads/features.h"

using namespace smoe;

int main(int argc, char** argv) {
  obs::TraceCli trace_cli(argc, argv);
  constexpr std::uint64_t kSeed = 2017;
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.cluster.n_nodes = 1;  // the paper runs this experiment on one host
  cfg.sink = &trace_cli.sink();
  sim::ClusterSim sim(cfg, features);
  sched::MoePolicy ours(features, kSeed);

  const Items target_input = items_from_gib(280.0);
  const Items corunner_input = items_from_gib(280.0);

  std::cout << "Figure 14: co-location slowdown per target benchmark (single host, "
               "~280 GB target input, seed "
            << kSeed << ")\n";
  TextTable table({"target", "min", "p25", "median", "p75", "max", "mean"});
  std::vector<double> all;
  for (const auto& target : wl::training_benchmarks()) {
    const Seconds alone =
        sim.run({{target.name, target_input}}, ours).apps[0].exec_time();
    std::vector<double> slowdowns;
    for (const auto& other : wl::all_spark_benchmarks()) {
      if (other.name == target.name) continue;
      const sim::SimResult r =
          sim.run({{target.name, target_input}, {other.name, corunner_input}}, ours);
      slowdowns.push_back(std::max(0.0, r.apps[0].exec_time() / alone - 1.0));
    }
    const ViolinSummary v = violin_summary(slowdowns);
    table.add_row({target.name, TextTable::pct(v.min, 1), TextTable::pct(v.p25, 1),
                   TextTable::pct(v.median, 1), TextTable::pct(v.p75, 1),
                   TextTable::pct(v.max, 1), TextTable::pct(v.mean, 1)});
    all.insert(all.end(), slowdowns.begin(), slowdowns.end());
  }
  table.render(std::cout);
  std::cout << "overall: mean " << TextTable::pct(mean(all), 1) << ", max "
            << TextTable::pct(max_of(all), 1)
            << "  (paper: slowdown < 25%, < 10% on average)\n";
  return 0;
}
