#!/usr/bin/env bash
# Perf smoke: run bench_throughput_scaling and compare single-threaded
# events/sec against the committed BENCH_throughput.json baseline.
#
# events/sec is the machine-robust metric: the event count for the panel is
# deterministic, so the ratio current/baseline is a clean per-event-cost
# comparison — but CI runners still vary wildly in absolute speed, so the
# threshold is generous and the failure mode is WARN-only (exit 0). The job
# exists to make large accidental regressions visible in the log, not to
# gate merges on shared-runner noise.
#
#   scripts/perf_smoke.sh [threshold_pct]   (default: warn below 30% of baseline)
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD_PCT="${1:-30}"
BASELINE="BENCH_throughput.json"

if [[ ! -f "$BASELINE" ]]; then
  echo "perf-smoke: no committed $BASELINE baseline; nothing to compare" >&2
  exit 0
fi
baseline_eps=$(python3 - "$BASELINE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
pts = [p for p in doc.get("points", []) if p.get("threads") == 1]
print(pts[0].get("events_per_sec", 0) if pts else 0)
EOF
)
if [[ "$baseline_eps" == "0" ]]; then
  echo "perf-smoke: baseline has no threads=1 events_per_sec; skipping" >&2
  exit 0
fi

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" --target bench_throughput_scaling

# Run in a scratch dir so the committed baseline JSON is not overwritten.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
(cd "$tmp" && "$OLDPWD/build/bench/bench_throughput_scaling" --threads 1)

python3 - "$tmp/BENCH_throughput.json" "$baseline_eps" "$THRESHOLD_PCT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
baseline, threshold = float(sys.argv[2]), float(sys.argv[3])
current = next(p["events_per_sec"] for p in doc["points"] if p["threads"] == 1)
pct = 100.0 * current / baseline
print(f"perf-smoke: {current:,.0f} events/sec vs baseline {baseline:,.0f} "
      f"({pct:.0f}% of baseline, warn threshold {threshold:.0f}%)")
if pct < threshold:
    print(f"::warning::perf-smoke: events/sec fell to {pct:.0f}% of the committed "
          f"baseline — possible throughput regression")
EOF
