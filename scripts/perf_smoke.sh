#!/usr/bin/env bash
# Perf smoke: run bench_throughput_scaling and compare single-threaded
# events/sec — and the traced-run overhead — against the committed
# BENCH_throughput.json baseline.
#
# events/sec is the machine-robust metric: the event count for the panel is
# deterministic, so the ratio current/baseline is a clean per-event-cost
# comparison — but CI runners still vary wildly in absolute speed, so the
# threshold is generous and the failure mode is WARN-only (exit 0). The job
# exists to make large accidental regressions visible in the log, not to
# gate merges on shared-runner noise.
#
# traced.overhead_pct (traced vs untraced wall clock, same machine and run)
# is already a ratio, so it gets an absolute slack instead: warn when it
# exceeds the committed baseline by more than OVERHEAD_SLACK_PP percentage
# points.
#
# Also re-runs the serving load sweep and warns if its saturation knees or
# delivered fractions drift from the committed BENCH_serving.json — those
# are simulated-time quantities, so any drift means semantics changed.
#
# Also re-runs the sweep-cost bench and warns if the racing engine's
# simulation counts, reduction factor, or policy rankings drift from the
# committed BENCH_sweep.json — all deterministic by construction (only the
# wall-clock fields are machine-dependent), so any drift means the racing
# semantics changed.
#
#   scripts/perf_smoke.sh [threshold_pct] [overhead_slack_pp]
#   (defaults: warn below 30% of baseline events/sec, or when traced
#    overhead grows by > 30 percentage points)
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD_PCT="${1:-30}"
OVERHEAD_SLACK_PP="${2:-30}"
BASELINE="BENCH_throughput.json"

if [[ ! -f "$BASELINE" ]]; then
  echo "perf-smoke: no committed $BASELINE baseline; nothing to compare" >&2
  exit 0
fi
baseline_eps=$(python3 - "$BASELINE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
pts = [p for p in doc.get("points", []) if p.get("threads") == 1]
print(pts[0].get("events_per_sec", 0) if pts else 0)
EOF
)
baseline_overhead=$(python3 - "$BASELINE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
print(doc.get("traced", {}).get("overhead_pct", "none"))
EOF
)
if [[ "$baseline_eps" == "0" ]]; then
  echo "perf-smoke: baseline has no threads=1 events_per_sec; skipping" >&2
  exit 0
fi

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" --target bench_throughput_scaling

# Run in a scratch dir so the committed baseline JSON is not overwritten.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
(cd "$tmp" && "$OLDPWD/build/bench/bench_throughput_scaling" --threads 1)

python3 - "$tmp/BENCH_throughput.json" "$baseline_eps" "$THRESHOLD_PCT" \
    "$baseline_overhead" "$OVERHEAD_SLACK_PP" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
baseline, threshold = float(sys.argv[2]), float(sys.argv[3])
current = next(p["events_per_sec"] for p in doc["points"] if p["threads"] == 1)
pct = 100.0 * current / baseline
print(f"perf-smoke: {current:,.0f} events/sec vs baseline {baseline:,.0f} "
      f"({pct:.0f}% of baseline, warn threshold {threshold:.0f}%)")
if pct < threshold:
    print(f"::warning::perf-smoke: events/sec fell to {pct:.0f}% of the committed "
          f"baseline — possible throughput regression")

# Tracing overhead: a ratio of two runs on the same machine, so compared
# with an absolute percentage-point slack rather than a machine-speed ratio.
if sys.argv[4] != "none":
    base_overhead, slack = float(sys.argv[4]), float(sys.argv[5])
    overhead = float(doc["traced"]["overhead_pct"])
    print(f"perf-smoke: traced overhead {overhead:.1f}% vs baseline "
          f"{base_overhead:.1f}% (warn above baseline + {slack:.0f}pp)")
    if overhead > base_overhead + slack:
        print(f"::warning::perf-smoke: traced overhead rose to {overhead:.1f}% "
              f"(baseline {base_overhead:.1f}%) — tracing hot path regressed")
EOF

# Scale smoke (warn-only, like the panel comparison above): the big-cluster
# points must still complete, and their per-event cost must not collapse.
# Covers the 256-node large-cluster cell and the 1k/4k/10k scaling curve;
# missing points (a hang or crash at scale would leave them out) are warned
# on explicitly, since that is precisely the regression this step exists to
# catch.
python3 - "$tmp/BENCH_throughput.json" "$BASELINE" "$THRESHOLD_PCT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    cur = json.load(f)
with open(sys.argv[2]) as f:
    base = json.load(f)
threshold = float(sys.argv[3])

def points(doc):
    out = {}
    lc = doc.get("large_cluster")
    if lc:
        out[f"large_cluster/{lc['n_nodes']}n"] = lc.get("events_per_sec", 0)
    for p in doc.get("scaling", []):
        out[f"scaling/{p['n_nodes']}n"] = p.get("events_per_sec", 0)
    return out

base_pts, cur_pts = points(base), points(cur)
for name, base_eps in sorted(base_pts.items()):
    if not base_eps:
        continue
    cur_eps = cur_pts.get(name)
    if cur_eps is None:
        print(f"::warning::scale-smoke: point {name} missing from this run "
              f"— did the large-cluster sweep fail to complete?")
        continue
    pct = 100.0 * cur_eps / base_eps
    print(f"scale-smoke: {name}: {cur_eps:,.0f} events/sec vs baseline "
          f"{base_eps:,.0f} ({pct:.0f}% of baseline, warn threshold {threshold:.0f}%)")
    if pct < threshold:
        print(f"::warning::scale-smoke: {name} fell to {pct:.0f}% of the "
              f"committed baseline — possible at-scale regression")
EOF

# Serving smoke (warn-only): re-run the open-loop load sweep and compare the
# saturation knees and per-policy delivered throughput against the committed
# BENCH_serving.json. Unlike events/sec this is *simulated* time — fully
# deterministic and machine-independent — so a knee that moves or a delivered
# fraction that shifts means the serving semantics changed, not that the
# runner is slow. Still warn-only: an intentional admission-policy change
# legitimately moves these numbers, and the committed baseline should be
# regenerated alongside it.
SERVING_BASELINE="BENCH_serving.json"
if [[ -f "$SERVING_BASELINE" ]]; then
  serving_arrivals=$(python3 -c \
    "import json; print(json.load(open('$SERVING_BASELINE'))['n_arrivals'])")
  cmake --build build -j"$(nproc)" --target bench_serving_load_sweep >/dev/null
  # The sweep binary asserts its own invariants (the hard-gated version runs
  # in the serving CI job); here even a bench failure is only warned on so
  # this job keeps its warn-only contract.
  # --no-race: this smoke only compares knees/points, which the raced section
  # never touches, so skip the extra replays and keep the job fast.
  if (cd "$tmp" && "$OLDPWD/build/bench/bench_serving_load_sweep" "$serving_arrivals" \
      --no-race > /dev/null); then
    python3 - "$tmp/BENCH_serving.json" "$SERVING_BASELINE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    cur = json.load(f)
with open(sys.argv[2]) as f:
    base = json.load(f)

for policy, base_knee in sorted(base.get("knees", {}).items()):
    cur_knee = cur.get("knees", {}).get(policy)
    if cur_knee != base_knee:
        print(f"::warning::serving-smoke: {policy} saturation knee moved "
              f"{base_knee} -> {cur_knee} (simulated time is deterministic; "
              f"serving semantics changed)")
    else:
        print(f"serving-smoke: {policy} knee at lambda/mu={cur_knee} (unchanged)")

def keyed(doc):
    return {(p["admission"], p["rate_over_mu"]): p for p in doc.get("points", [])}

base_pts, cur_pts = keyed(base), keyed(cur)
drifted = 0
for key, bp in sorted(base_pts.items()):
    cp = cur_pts.get(key)
    if cp is None:
        print(f"::warning::serving-smoke: point {key} missing from this run")
        continue
    for field in ("admitted", "dropped", "delivered_frac"):
        bv, cv = bp[field], cp[field]
        if abs(cv - bv) > 1e-6 * max(1.0, abs(bv)):
            print(f"::warning::serving-smoke: {key[0]} @ lambda/mu={key[1]}: "
                  f"{field} drifted {bv} -> {cv}")
            drifted += 1
if not drifted:
    print(f"serving-smoke: all {len(base_pts)} sweep points match the "
          f"committed baseline")
EOF
  else
    echo "::warning::serving-smoke: bench_serving_load_sweep failed; see serving CI job"
  fi
else
  echo "perf-smoke: no committed $SERVING_BASELINE; skipping serving smoke" >&2
fi

# Sweep smoke (warn-only): re-run the sweep-cost bench at the committed mix
# count and compare the racing engine's deterministic outputs — simulation
# totals, reduction factor, and both policy rankings — against the committed
# BENCH_sweep.json. These are thread-count- and machine-independent (the
# fixed arm uses an explicit wave, and racing consumes replays in canonical
# cell order), so any drift means the elimination/convergence semantics
# changed, not that the runner is slow. The wall-clock speedup is printed
# for the log but never warned on.
SWEEP_BASELINE="BENCH_sweep.json"
if [[ -f "$SWEEP_BASELINE" ]]; then
  sweep_mixes=$(python3 -c \
    "import json; print(json.load(open('$SWEEP_BASELINE'))['n_mixes'])")
  sweep_replays=$(python3 -c \
    "import json; print(json.load(open('$SWEEP_BASELINE'))['max_replays'])")
  cmake --build build -j"$(nproc)" --target bench_sweep_cost >/dev/null
  # The bench asserts its own acceptance gate (same ranking, >= 3x fewer
  # sims; the hard-gated version runs in the race CI job); here even a bench
  # failure is only warned on so this job keeps its warn-only contract.
  if (cd "$tmp" && "$OLDPWD/build/bench/bench_sweep_cost" "$sweep_mixes" \
      --max-replays "$sweep_replays" > /dev/null); then
    python3 - "$tmp/BENCH_sweep.json" "$SWEEP_BASELINE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    cur = json.load(f)
with open(sys.argv[2]) as f:
    base = json.load(f)

drifted = 0
for field in ("raced_sims", "fixed_sims", "fixed_budget_sims",
              "reduction_factor", "samples_saved_pct"):
    bv, cv = base["totals"][field], cur["totals"][field]
    if abs(cv - bv) > 1e-6 * max(1.0, abs(bv)):
        print(f"::warning::sweep-smoke: totals.{field} drifted {bv} -> {cv} "
              f"(simulation counts are deterministic; racing semantics changed)")
        drifted += 1
for arm in ("ranking_raced", "ranking_fixed"):
    if cur.get(arm) != base.get(arm):
        print(f"::warning::sweep-smoke: {arm} changed "
              f"{base.get(arm)} -> {cur.get(arm)}")
        drifted += 1
for bs, cs in zip(base.get("scenarios", []), cur.get("scenarios", [])):
    for field in ("raced_sims", "fixed_sims"):
        if bs[field] != cs[field]:
            print(f"::warning::sweep-smoke: {bs['scenario']}.{field} drifted "
                  f"{bs[field]} -> {cs[field]}")
            drifted += 1
if not drifted:
    print(f"sweep-smoke: racing matches the committed baseline "
          f"({base['totals']['raced_sims']} of "
          f"{base['totals']['fixed_budget_sims']} fixed-budget sims, "
          f"{base['totals']['reduction_factor']:.2f}x fewer than fixed-wave)")
print(f"sweep-smoke: wall speedup this run "
      f"{cur['totals']['wall_speedup']:.2f}x (baseline "
      f"{base['totals']['wall_speedup']:.2f}x; machine-dependent, not gated)")
EOF
  else
    echo "::warning::sweep-smoke: bench_sweep_cost failed; see race CI job"
  fi
else
  echo "perf-smoke: no committed $SWEEP_BASELINE; skipping sweep smoke" >&2
fi

# Trace-analysis throughput (events/sec parsed and analyzed by smoe-trace),
# recorded for the log. The golden corpus is only a few hundred events, so
# concatenate it a couple hundred times to get a measurable rate — JSONL is
# line-oriented, so concatenated runs parse like one long trace.
cmake --build build -j"$(nproc)" --target smoe-trace >/dev/null
big="$tmp/trace_big.jsonl"
for _ in $(seq 1 200); do cat tests/golden/trace_*.jsonl; done > "$big"
./build/tools/smoe-trace bench "$big" --repeat 3
