#!/usr/bin/env bash
# Tier-1 verification + sanitizer pass.
#
#   scripts/check.sh          # configure, build, run the full test suite
#   scripts/check.sh --asan   # additionally build an ASan/UBSan tree
#                             # (-DSMOE_SANITIZE=ON) and run the obs tests
#                             # under it (fast; extend TESTS_ASAN as needed)
#   scripts/check.sh --tsan   # additionally build a ThreadSanitizer tree
#                             # (-DSMOE_SANITIZE=thread) and run the
#                             # concurrency tests under it (TESTS_TSAN)
#   scripts/check.sh --fuzz   # additionally run the randomized differential
#                             # fuzz harness (bench/fuzz_sim) on a
#                             # FUZZ_SECONDS wall-clock budget (default 30 s)
#   scripts/check.sh --scale  # additionally run the scaling differential
#                             # suite (indexed dispatch vs legacy scan across
#                             # all policies, calendar model checks, partition
#                             # determinism) plus a short fuzz pass with the
#                             # index/scan oracle enabled
#   scripts/check.sh --serving # additionally run the serving-mode suite
#                              # (admission policies, batch-equivalence anchor,
#                              # auditor-clean traces) and a short audited
#                              # load sweep that must show the open-loop
#                              # saturation knee
#   scripts/check.sh --race   # additionally run the adaptive-replication
#                             # suite (racing determinism, Welford/Student-t
#                             # bounds, replication semantics) and a small
#                             # sweep-cost run, which itself asserts that
#                             # racing reaches the same policy ranking from
#                             # >= 3x fewer simulations
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
# ctest regexes over gtest *suite* names (gtest_discover_tests registers
# Suite.Case, not binary names).
TESTS_ASAN="${TESTS_ASAN:-^Obs|^Trace|^Sink|^Registry|^Engine|^Sim|^Sparksim|^Contention|^Golden|^Audit}"
TESTS_TSAN="${TESTS_TSAN:-^ThreadPool|^ParallelRunner|^Replication|^Race}"
FUZZ_SECONDS="${FUZZ_SECONDS:-30}"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j"${JOBS}"

echo "== tier-1: trace tools (byte-determinism over the golden corpus) =="
TRACE_BIN=./build/tools/smoe-trace
GOLDENS=(tests/golden/trace_*.jsonl)
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
"$TRACE_BIN" summarize "${GOLDENS[@]}" > "$scratch/sum1.txt"
"$TRACE_BIN" summarize "${GOLDENS[@]}" > "$scratch/sum2.txt"
"$TRACE_BIN" summarize --threads 4 "${GOLDENS[@]}" > "$scratch/sum4.txt"
cmp -s "$scratch/sum1.txt" "$scratch/sum2.txt" \
  || { echo "FAIL: smoe-trace summarize differs across identical runs"; exit 1; }
cmp -s "$scratch/sum1.txt" "$scratch/sum4.txt" \
  || { echo "FAIL: smoe-trace summarize output depends on --threads"; exit 1; }
"$TRACE_BIN" diff tests/golden/trace_isolated.jsonl tests/golden/trace_moe.jsonl \
  > "$scratch/diff1.txt"
"$TRACE_BIN" diff tests/golden/trace_isolated.jsonl tests/golden/trace_moe.jsonl \
  > "$scratch/diff2.txt"
cmp -s "$scratch/diff1.txt" "$scratch/diff2.txt" \
  || { echo "FAIL: smoe-trace diff differs across identical runs"; exit 1; }
"$TRACE_BIN" timeline tests/golden/trace_moe.jsonl --csv > "$scratch/tl1.csv"
"$TRACE_BIN" timeline tests/golden/trace_moe.jsonl --csv > "$scratch/tl2.csv"
cmp -s "$scratch/tl1.csv" "$scratch/tl2.csv" \
  || { echo "FAIL: smoe-trace timeline differs across identical runs"; exit 1; }
echo "trace tools: deterministic ($(wc -l < "$scratch/sum1.txt") summary lines over ${#GOLDENS[@]} traces)"

if [[ "${1:-}" == "--asan" ]]; then
  echo "== sanitizers: ASan/UBSan build (-DSMOE_SANITIZE=ON) =="
  cmake -B build-asan -S . -DSMOE_SANITIZE=ON \
    -DSPARKMOE_BUILD_BENCH=OFF -DSPARKMOE_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-asan -j"${JOBS}"
  echo "== sanitizers: ctest (${TESTS_ASAN}) =="
  ctest --test-dir build-asan --output-on-failure -j"${JOBS}" -R "${TESTS_ASAN}"
fi

if [[ "${1:-}" == "--fuzz" ]]; then
  echo "== fuzz: invariant auditor + metamorphic oracles (${FUZZ_SECONDS}s budget) =="
  ./build/bench/fuzz_sim --iters 0 --seconds "${FUZZ_SECONDS}"
fi

if [[ "${1:-}" == "--scale" ]]; then
  echo "== scale: indexed dispatch vs legacy scan, calendar + partition determinism =="
  ctest --test-dir build --output-on-failure -j"${JOBS}" \
    -R '^DispatchIndex|^NodeIndex|^Calendar|^Partition|^GoldenTrace'
  echo "== scale: fuzz with index/scan oracle (${FUZZ_SECONDS}s budget) =="
  ./build/bench/fuzz_sim --iters 0 --seconds "${FUZZ_SECONDS}"
fi

if [[ "${1:-}" == "--serving" ]]; then
  echo "== serving: admission suite + monitor/auditor checks =="
  ctest --test-dir build --output-on-failure -j"${JOBS}" \
    -R '^Serving|^Monitor|^Audit|^GoldenTrace'
  echo "== serving: audited load sweep (must find the saturation knee) =="
  # Small offered load keeps the job fast; the bench exits non-zero if any
  # invariant trips, the open-loop baseline never saturates, or its p99
  # sojourn fails to degrade past the knee.
  (cd "$scratch" && "$OLDPWD/build/bench/bench_serving_load_sweep" 24)
fi

if [[ "${1:-}" == "--race" ]]; then
  echo "== race: adaptive-replication suite (racing, bounds, replication) =="
  ctest --test-dir build --output-on-failure -j"${JOBS}" \
    -R '^Race|^Welford|^TCritical|^Replication|^ParallelRunner'
  echo "== race: sweep-cost bench (same ranking from >= 3x fewer sims) =="
  # Small mix count keeps the job fast; the bench exits non-zero if the raced
  # sweep ranks the six policies differently from the fixed-wave sweep or
  # fails to cut the simulation count by at least 3x.
  (cd "$scratch" && "$OLDPWD/build/bench/bench_sweep_cost" 4)
fi

if [[ "${1:-}" == "--tsan" ]]; then
  echo "== sanitizers: TSan build (-DSMOE_SANITIZE=thread) =="
  cmake -B build-tsan -S . -DSMOE_SANITIZE=thread \
    -DSPARKMOE_BUILD_BENCH=OFF -DSPARKMOE_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-tsan -j"${JOBS}"
  echo "== sanitizers: ctest (${TESTS_TSAN}) =="
  ctest --test-dir build-tsan --output-on-failure -j"${JOBS}" -R "${TESTS_TSAN}"
fi

echo "OK"
