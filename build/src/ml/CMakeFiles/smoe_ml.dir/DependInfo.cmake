
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/smoe_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/smoe_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/eigen.cpp" "src/ml/CMakeFiles/smoe_ml.dir/eigen.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/eigen.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/smoe_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/smoe_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/smoe_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/smoe_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/smoe_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/smoe_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/smoe_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/regression.cpp" "src/ml/CMakeFiles/smoe_ml.dir/regression.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/regression.cpp.o.d"
  "/root/repo/src/ml/scaling.cpp" "src/ml/CMakeFiles/smoe_ml.dir/scaling.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/scaling.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/smoe_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/svm.cpp.o.d"
  "/root/repo/src/ml/varimax.cpp" "src/ml/CMakeFiles/smoe_ml.dir/varimax.cpp.o" "gcc" "src/ml/CMakeFiles/smoe_ml.dir/varimax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smoe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
