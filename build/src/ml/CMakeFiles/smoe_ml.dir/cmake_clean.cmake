file(REMOVE_RECURSE
  "CMakeFiles/smoe_ml.dir/dataset.cpp.o"
  "CMakeFiles/smoe_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/smoe_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/eigen.cpp.o"
  "CMakeFiles/smoe_ml.dir/eigen.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/kmeans.cpp.o"
  "CMakeFiles/smoe_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/knn.cpp.o"
  "CMakeFiles/smoe_ml.dir/knn.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/matrix.cpp.o"
  "CMakeFiles/smoe_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/mlp.cpp.o"
  "CMakeFiles/smoe_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/smoe_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/pca.cpp.o"
  "CMakeFiles/smoe_ml.dir/pca.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/random_forest.cpp.o"
  "CMakeFiles/smoe_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/regression.cpp.o"
  "CMakeFiles/smoe_ml.dir/regression.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/scaling.cpp.o"
  "CMakeFiles/smoe_ml.dir/scaling.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/svm.cpp.o"
  "CMakeFiles/smoe_ml.dir/svm.cpp.o.d"
  "CMakeFiles/smoe_ml.dir/varimax.cpp.o"
  "CMakeFiles/smoe_ml.dir/varimax.cpp.o.d"
  "libsmoe_ml.a"
  "libsmoe_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoe_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
