file(REMOVE_RECURSE
  "libsmoe_ml.a"
)
