# Empty dependencies file for smoe_ml.
# This may be replaced when dependencies are built.
