file(REMOVE_RECURSE
  "CMakeFiles/smoe_common.dir/csv.cpp.o"
  "CMakeFiles/smoe_common.dir/csv.cpp.o.d"
  "CMakeFiles/smoe_common.dir/rng.cpp.o"
  "CMakeFiles/smoe_common.dir/rng.cpp.o.d"
  "CMakeFiles/smoe_common.dir/stats.cpp.o"
  "CMakeFiles/smoe_common.dir/stats.cpp.o.d"
  "CMakeFiles/smoe_common.dir/table.cpp.o"
  "CMakeFiles/smoe_common.dir/table.cpp.o.d"
  "libsmoe_common.a"
  "libsmoe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
