file(REMOVE_RECURSE
  "libsmoe_common.a"
)
