# Empty dependencies file for smoe_common.
# This may be replaced when dependencies are built.
