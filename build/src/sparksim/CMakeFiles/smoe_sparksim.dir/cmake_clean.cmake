file(REMOVE_RECURSE
  "CMakeFiles/smoe_sparksim.dir/app_probe.cpp.o"
  "CMakeFiles/smoe_sparksim.dir/app_probe.cpp.o.d"
  "CMakeFiles/smoe_sparksim.dir/contention.cpp.o"
  "CMakeFiles/smoe_sparksim.dir/contention.cpp.o.d"
  "CMakeFiles/smoe_sparksim.dir/engine.cpp.o"
  "CMakeFiles/smoe_sparksim.dir/engine.cpp.o.d"
  "CMakeFiles/smoe_sparksim.dir/monitor.cpp.o"
  "CMakeFiles/smoe_sparksim.dir/monitor.cpp.o.d"
  "CMakeFiles/smoe_sparksim.dir/trace.cpp.o"
  "CMakeFiles/smoe_sparksim.dir/trace.cpp.o.d"
  "libsmoe_sparksim.a"
  "libsmoe_sparksim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoe_sparksim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
