
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparksim/app_probe.cpp" "src/sparksim/CMakeFiles/smoe_sparksim.dir/app_probe.cpp.o" "gcc" "src/sparksim/CMakeFiles/smoe_sparksim.dir/app_probe.cpp.o.d"
  "/root/repo/src/sparksim/contention.cpp" "src/sparksim/CMakeFiles/smoe_sparksim.dir/contention.cpp.o" "gcc" "src/sparksim/CMakeFiles/smoe_sparksim.dir/contention.cpp.o.d"
  "/root/repo/src/sparksim/engine.cpp" "src/sparksim/CMakeFiles/smoe_sparksim.dir/engine.cpp.o" "gcc" "src/sparksim/CMakeFiles/smoe_sparksim.dir/engine.cpp.o.d"
  "/root/repo/src/sparksim/monitor.cpp" "src/sparksim/CMakeFiles/smoe_sparksim.dir/monitor.cpp.o" "gcc" "src/sparksim/CMakeFiles/smoe_sparksim.dir/monitor.cpp.o.d"
  "/root/repo/src/sparksim/trace.cpp" "src/sparksim/CMakeFiles/smoe_sparksim.dir/trace.cpp.o" "gcc" "src/sparksim/CMakeFiles/smoe_sparksim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smoe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/smoe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/smoe_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
