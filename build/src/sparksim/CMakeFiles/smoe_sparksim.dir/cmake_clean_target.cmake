file(REMOVE_RECURSE
  "libsmoe_sparksim.a"
)
