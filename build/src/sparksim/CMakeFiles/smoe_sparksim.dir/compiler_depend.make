# Empty compiler generated dependencies file for smoe_sparksim.
# This may be replaced when dependencies are built.
