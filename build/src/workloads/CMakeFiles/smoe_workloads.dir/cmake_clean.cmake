file(REMOVE_RECURSE
  "CMakeFiles/smoe_workloads.dir/benchmark.cpp.o"
  "CMakeFiles/smoe_workloads.dir/benchmark.cpp.o.d"
  "CMakeFiles/smoe_workloads.dir/features.cpp.o"
  "CMakeFiles/smoe_workloads.dir/features.cpp.o.d"
  "CMakeFiles/smoe_workloads.dir/mixes.cpp.o"
  "CMakeFiles/smoe_workloads.dir/mixes.cpp.o.d"
  "CMakeFiles/smoe_workloads.dir/suites.cpp.o"
  "CMakeFiles/smoe_workloads.dir/suites.cpp.o.d"
  "libsmoe_workloads.a"
  "libsmoe_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoe_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
