# Empty compiler generated dependencies file for smoe_workloads.
# This may be replaced when dependencies are built.
