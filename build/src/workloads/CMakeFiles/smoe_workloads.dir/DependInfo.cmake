
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/benchmark.cpp" "src/workloads/CMakeFiles/smoe_workloads.dir/benchmark.cpp.o" "gcc" "src/workloads/CMakeFiles/smoe_workloads.dir/benchmark.cpp.o.d"
  "/root/repo/src/workloads/features.cpp" "src/workloads/CMakeFiles/smoe_workloads.dir/features.cpp.o" "gcc" "src/workloads/CMakeFiles/smoe_workloads.dir/features.cpp.o.d"
  "/root/repo/src/workloads/mixes.cpp" "src/workloads/CMakeFiles/smoe_workloads.dir/mixes.cpp.o" "gcc" "src/workloads/CMakeFiles/smoe_workloads.dir/mixes.cpp.o.d"
  "/root/repo/src/workloads/suites.cpp" "src/workloads/CMakeFiles/smoe_workloads.dir/suites.cpp.o" "gcc" "src/workloads/CMakeFiles/smoe_workloads.dir/suites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smoe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/smoe_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
