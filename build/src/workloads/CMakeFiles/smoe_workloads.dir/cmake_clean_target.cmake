file(REMOVE_RECURSE
  "libsmoe_workloads.a"
)
