file(REMOVE_RECURSE
  "libsmoe_sched.a"
)
