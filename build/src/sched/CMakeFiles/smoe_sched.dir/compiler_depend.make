# Empty compiler generated dependencies file for smoe_sched.
# This may be replaced when dependencies are built.
