
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cpu_estimator.cpp" "src/sched/CMakeFiles/smoe_sched.dir/cpu_estimator.cpp.o" "gcc" "src/sched/CMakeFiles/smoe_sched.dir/cpu_estimator.cpp.o.d"
  "/root/repo/src/sched/experiment.cpp" "src/sched/CMakeFiles/smoe_sched.dir/experiment.cpp.o" "gcc" "src/sched/CMakeFiles/smoe_sched.dir/experiment.cpp.o.d"
  "/root/repo/src/sched/metrics.cpp" "src/sched/CMakeFiles/smoe_sched.dir/metrics.cpp.o" "gcc" "src/sched/CMakeFiles/smoe_sched.dir/metrics.cpp.o.d"
  "/root/repo/src/sched/policies_basic.cpp" "src/sched/CMakeFiles/smoe_sched.dir/policies_basic.cpp.o" "gcc" "src/sched/CMakeFiles/smoe_sched.dir/policies_basic.cpp.o.d"
  "/root/repo/src/sched/policies_learned.cpp" "src/sched/CMakeFiles/smoe_sched.dir/policies_learned.cpp.o" "gcc" "src/sched/CMakeFiles/smoe_sched.dir/policies_learned.cpp.o.d"
  "/root/repo/src/sched/training_data.cpp" "src/sched/CMakeFiles/smoe_sched.dir/training_data.cpp.o" "gcc" "src/sched/CMakeFiles/smoe_sched.dir/training_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smoe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/smoe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/smoe_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sparksim/CMakeFiles/smoe_sparksim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smoe_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
