file(REMOVE_RECURSE
  "CMakeFiles/smoe_sched.dir/cpu_estimator.cpp.o"
  "CMakeFiles/smoe_sched.dir/cpu_estimator.cpp.o.d"
  "CMakeFiles/smoe_sched.dir/experiment.cpp.o"
  "CMakeFiles/smoe_sched.dir/experiment.cpp.o.d"
  "CMakeFiles/smoe_sched.dir/metrics.cpp.o"
  "CMakeFiles/smoe_sched.dir/metrics.cpp.o.d"
  "CMakeFiles/smoe_sched.dir/policies_basic.cpp.o"
  "CMakeFiles/smoe_sched.dir/policies_basic.cpp.o.d"
  "CMakeFiles/smoe_sched.dir/policies_learned.cpp.o"
  "CMakeFiles/smoe_sched.dir/policies_learned.cpp.o.d"
  "CMakeFiles/smoe_sched.dir/training_data.cpp.o"
  "CMakeFiles/smoe_sched.dir/training_data.cpp.o.d"
  "libsmoe_sched.a"
  "libsmoe_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoe_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
