
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/expert_pool.cpp" "src/core/CMakeFiles/smoe_core.dir/expert_pool.cpp.o" "gcc" "src/core/CMakeFiles/smoe_core.dir/expert_pool.cpp.o.d"
  "/root/repo/src/core/memory_expert.cpp" "src/core/CMakeFiles/smoe_core.dir/memory_expert.cpp.o" "gcc" "src/core/CMakeFiles/smoe_core.dir/memory_expert.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/smoe_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/smoe_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/smoe_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/smoe_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/smoe_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/smoe_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smoe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/smoe_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
