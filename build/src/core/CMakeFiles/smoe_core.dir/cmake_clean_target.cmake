file(REMOVE_RECURSE
  "libsmoe_core.a"
)
