file(REMOVE_RECURSE
  "CMakeFiles/smoe_core.dir/expert_pool.cpp.o"
  "CMakeFiles/smoe_core.dir/expert_pool.cpp.o.d"
  "CMakeFiles/smoe_core.dir/memory_expert.cpp.o"
  "CMakeFiles/smoe_core.dir/memory_expert.cpp.o.d"
  "CMakeFiles/smoe_core.dir/predictor.cpp.o"
  "CMakeFiles/smoe_core.dir/predictor.cpp.o.d"
  "CMakeFiles/smoe_core.dir/serialize.cpp.o"
  "CMakeFiles/smoe_core.dir/serialize.cpp.o.d"
  "CMakeFiles/smoe_core.dir/trainer.cpp.o"
  "CMakeFiles/smoe_core.dir/trainer.cpp.o.d"
  "libsmoe_core.a"
  "libsmoe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
