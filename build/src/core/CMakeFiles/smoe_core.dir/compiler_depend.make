# Empty compiler generated dependencies file for smoe_core.
# This may be replaced when dependencies are built.
