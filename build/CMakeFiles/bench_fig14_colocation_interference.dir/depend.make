# Empty dependencies file for bench_fig14_colocation_interference.
# This may be replaced when dependencies are built.
