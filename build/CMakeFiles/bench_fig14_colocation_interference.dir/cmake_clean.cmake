file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_colocation_interference.dir/bench/bench_fig14_colocation_interference.cpp.o"
  "CMakeFiles/bench_fig14_colocation_interference.dir/bench/bench_fig14_colocation_interference.cpp.o.d"
  "bench/bench_fig14_colocation_interference"
  "bench/bench_fig14_colocation_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_colocation_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
