# Empty compiler generated dependencies file for bench_fig12_overhead_per_benchmark.
# This may be replaced when dependencies are built.
