# Empty dependencies file for bench_fig9_unified_models.
# This may be replaced when dependencies are built.
