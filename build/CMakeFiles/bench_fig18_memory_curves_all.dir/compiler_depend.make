# Empty compiler generated dependencies file for bench_fig18_memory_curves_all.
# This may be replaced when dependencies are built.
