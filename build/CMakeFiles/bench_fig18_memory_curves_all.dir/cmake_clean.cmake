file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_memory_curves_all.dir/bench/bench_fig18_memory_curves_all.cpp.o"
  "CMakeFiles/bench_fig18_memory_curves_all.dir/bench/bench_fig18_memory_curves_all.cpp.o.d"
  "bench/bench_fig18_memory_curves_all"
  "bench/bench_fig18_memory_curves_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_memory_curves_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
