# Empty compiler generated dependencies file for bench_fig15_parsec_interference.
# This may be replaced when dependencies are built.
