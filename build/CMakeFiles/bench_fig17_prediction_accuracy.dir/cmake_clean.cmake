file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_prediction_accuracy.dir/bench/bench_fig17_prediction_accuracy.cpp.o"
  "CMakeFiles/bench_fig17_prediction_accuracy.dir/bench/bench_fig17_prediction_accuracy.cpp.o.d"
  "bench/bench_fig17_prediction_accuracy"
  "bench/bench_fig17_prediction_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_prediction_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
