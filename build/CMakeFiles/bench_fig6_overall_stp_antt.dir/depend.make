# Empty dependencies file for bench_fig6_overall_stp_antt.
# This may be replaced when dependencies are built.
