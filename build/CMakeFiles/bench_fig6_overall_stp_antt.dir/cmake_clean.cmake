file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_overall_stp_antt.dir/bench/bench_fig6_overall_stp_antt.cpp.o"
  "CMakeFiles/bench_fig6_overall_stp_antt.dir/bench/bench_fig6_overall_stp_antt.cpp.o.d"
  "bench/bench_fig6_overall_stp_antt"
  "bench/bench_fig6_overall_stp_antt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_overall_stp_antt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
