# Empty dependencies file for bench_fig13_cpu_load.
# This may be replaced when dependencies are built.
