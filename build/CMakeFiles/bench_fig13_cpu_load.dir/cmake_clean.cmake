file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_cpu_load.dir/bench/bench_fig13_cpu_load.cpp.o"
  "CMakeFiles/bench_fig13_cpu_load.dir/bench/bench_fig13_cpu_load.cpp.o.d"
  "bench/bench_fig13_cpu_load"
  "bench/bench_fig13_cpu_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cpu_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
