file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pca_features.dir/bench/bench_fig4_pca_features.cpp.o"
  "CMakeFiles/bench_fig4_pca_features.dir/bench/bench_fig4_pca_features.cpp.o.d"
  "bench/bench_fig4_pca_features"
  "bench/bench_fig4_pca_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pca_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
