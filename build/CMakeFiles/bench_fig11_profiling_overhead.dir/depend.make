# Empty dependencies file for bench_fig11_profiling_overhead.
# This may be replaced when dependencies are built.
