# Empty dependencies file for bench_table5_classifiers.
# This may be replaced when dependencies are built.
