file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_classifiers.dir/bench/bench_table5_classifiers.cpp.o"
  "CMakeFiles/bench_table5_classifiers.dir/bench/bench_table5_classifiers.cpp.o.d"
  "bench/bench_table5_classifiers"
  "bench/bench_table5_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
