file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_memory_curves.dir/bench/bench_fig3_memory_curves.cpp.o"
  "CMakeFiles/bench_fig3_memory_curves.dir/bench/bench_fig3_memory_curves.cpp.o.d"
  "bench/bench_fig3_memory_curves"
  "bench/bench_fig3_memory_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_memory_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
