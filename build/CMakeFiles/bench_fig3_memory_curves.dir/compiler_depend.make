# Empty compiler generated dependencies file for bench_fig3_memory_curves.
# This may be replaced when dependencies are built.
