file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_feature_space.dir/bench/bench_fig16_feature_space.cpp.o"
  "CMakeFiles/bench_fig16_feature_space.dir/bench/bench_fig16_feature_space.cpp.o.d"
  "bench/bench_fig16_feature_space"
  "bench/bench_fig16_feature_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_feature_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
