# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_eigen[1]_include.cmake")
include("/root/repo/build/tests/test_pca_scaling[1]_include.cmake")
include("/root/repo/build/tests/test_classifiers[1]_include.cmake")
include("/root/repo/build/tests/test_regression[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sparksim[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_prediction_properties[1]_include.cmake")
include("/root/repo/build/tests/test_options[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_kmeans[1]_include.cmake")
include("/root/repo/build/tests/test_queue_order[1]_include.cmake")
include("/root/repo/build/tests/test_mlp_gradients[1]_include.cmake")
include("/root/repo/build/tests/test_csv[1]_include.cmake")
include("/root/repo/build/tests/test_engine_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_replication[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
