file(REMOVE_RECURSE
  "CMakeFiles/test_mlp_gradients.dir/test_mlp_gradients.cpp.o"
  "CMakeFiles/test_mlp_gradients.dir/test_mlp_gradients.cpp.o.d"
  "test_mlp_gradients"
  "test_mlp_gradients.pdb"
  "test_mlp_gradients[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlp_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
