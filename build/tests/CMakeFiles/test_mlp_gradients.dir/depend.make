# Empty dependencies file for test_mlp_gradients.
# This may be replaced when dependencies are built.
