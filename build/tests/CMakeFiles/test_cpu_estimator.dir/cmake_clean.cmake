file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_estimator.dir/test_cpu_estimator.cpp.o"
  "CMakeFiles/test_cpu_estimator.dir/test_cpu_estimator.cpp.o.d"
  "test_cpu_estimator"
  "test_cpu_estimator.pdb"
  "test_cpu_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
