# Empty dependencies file for test_cpu_estimator.
# This may be replaced when dependencies are built.
