file(REMOVE_RECURSE
  "CMakeFiles/test_queue_order.dir/test_queue_order.cpp.o"
  "CMakeFiles/test_queue_order.dir/test_queue_order.cpp.o.d"
  "test_queue_order"
  "test_queue_order.pdb"
  "test_queue_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
