# Empty dependencies file for test_queue_order.
# This may be replaced when dependencies are built.
