# Empty compiler generated dependencies file for test_engine_invariants.
# This may be replaced when dependencies are built.
