file(REMOVE_RECURSE
  "CMakeFiles/test_sparksim.dir/test_sparksim.cpp.o"
  "CMakeFiles/test_sparksim.dir/test_sparksim.cpp.o.d"
  "test_sparksim"
  "test_sparksim.pdb"
  "test_sparksim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparksim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
