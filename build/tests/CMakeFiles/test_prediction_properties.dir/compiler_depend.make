# Empty compiler generated dependencies file for test_prediction_properties.
# This may be replaced when dependencies are built.
