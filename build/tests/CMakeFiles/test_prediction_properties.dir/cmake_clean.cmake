file(REMOVE_RECURSE
  "CMakeFiles/test_prediction_properties.dir/test_prediction_properties.cpp.o"
  "CMakeFiles/test_prediction_properties.dir/test_prediction_properties.cpp.o.d"
  "test_prediction_properties"
  "test_prediction_properties.pdb"
  "test_prediction_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prediction_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
