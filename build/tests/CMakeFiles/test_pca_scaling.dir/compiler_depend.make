# Empty compiler generated dependencies file for test_pca_scaling.
# This may be replaced when dependencies are built.
