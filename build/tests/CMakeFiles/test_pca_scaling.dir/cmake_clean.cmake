file(REMOVE_RECURSE
  "CMakeFiles/test_pca_scaling.dir/test_pca_scaling.cpp.o"
  "CMakeFiles/test_pca_scaling.dir/test_pca_scaling.cpp.o.d"
  "test_pca_scaling"
  "test_pca_scaling.pdb"
  "test_pca_scaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pca_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
