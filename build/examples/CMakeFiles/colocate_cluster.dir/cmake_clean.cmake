file(REMOVE_RECURSE
  "CMakeFiles/colocate_cluster.dir/colocate_cluster.cpp.o"
  "CMakeFiles/colocate_cluster.dir/colocate_cluster.cpp.o.d"
  "colocate_cluster"
  "colocate_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocate_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
