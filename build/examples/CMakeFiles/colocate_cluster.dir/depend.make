# Empty dependencies file for colocate_cluster.
# This may be replaced when dependencies are built.
