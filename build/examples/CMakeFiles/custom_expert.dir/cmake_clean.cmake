file(REMOVE_RECURSE
  "CMakeFiles/custom_expert.dir/custom_expert.cpp.o"
  "CMakeFiles/custom_expert.dir/custom_expert.cpp.o.d"
  "custom_expert"
  "custom_expert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_expert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
