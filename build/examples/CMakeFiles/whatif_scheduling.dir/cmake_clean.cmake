file(REMOVE_RECURSE
  "CMakeFiles/whatif_scheduling.dir/whatif_scheduling.cpp.o"
  "CMakeFiles/whatif_scheduling.dir/whatif_scheduling.cpp.o.d"
  "whatif_scheduling"
  "whatif_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
