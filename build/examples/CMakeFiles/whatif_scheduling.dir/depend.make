# Empty dependencies file for whatif_scheduling.
# This may be replaced when dependencies are built.
