#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace smoe {

double mean(std::span<const double> xs) {
  SMOE_REQUIRE(!xs.empty(), "mean of empty span");
  double s = 0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  SMOE_REQUIRE(xs.size() >= 2, "variance needs >= 2 samples");
  const double m = mean(xs);
  double s = 0;
  for (const double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double geomean(std::span<const double> xs) {
  SMOE_REQUIRE(!xs.empty(), "geomean of empty span");
  double s = 0;
  for (const double x : xs) {
    SMOE_REQUIRE(x > 0.0, "geomean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) {
  SMOE_REQUIRE(!xs.empty(), "min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  SMOE_REQUIRE(!xs.empty(), "max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  SMOE_REQUIRE(!xs.empty(), "percentile of empty span");
  SMOE_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  SMOE_REQUIRE(xs.size() == ys.size(), "pearson: size mismatch");
  SMOE_REQUIRE(xs.size() >= 2, "pearson needs >= 2 samples");
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double r_squared(std::span<const double> observed, std::span<const double> predicted) {
  SMOE_REQUIRE(observed.size() == predicted.size(), "r_squared: size mismatch");
  SMOE_REQUIRE(observed.size() >= 2, "r_squared needs >= 2 samples");
  const double m = mean(observed);
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - m) * (observed[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double ci_half_width(std::span<const double> xs, double confidence) {
  SMOE_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence out of range");
  if (xs.size() < 2) return 0.0;
  // z-values for the common confidence levels; default normal approximation.
  double z = 1.96;
  if (confidence >= 0.995) z = 2.807;
  else if (confidence >= 0.99) z = 2.576;
  else if (confidence >= 0.95) z = 1.96;
  else if (confidence >= 0.90) z = 1.645;
  else z = 1.282;
  return z * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

ViolinSummary violin_summary(std::span<const double> xs) {
  ViolinSummary v;
  v.min = min_of(xs);
  v.p25 = percentile(xs, 25.0);
  v.median = median(xs);
  v.p75 = percentile(xs, 75.0);
  v.max = max_of(xs);
  v.mean = mean(xs);
  return v;
}

Histogram histogram(std::span<const double> xs, double lo, double hi, std::size_t bins) {
  SMOE_REQUIRE(hi > lo, "histogram bounds");
  SMOE_REQUIRE(bins > 0, "histogram needs >= 1 bin");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double x : xs) {
    auto b = static_cast<std::int64_t>((x - lo) / width);
    b = std::clamp<std::int64_t>(b, 0, static_cast<std::int64_t>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(b)];
  }
  return h;
}

}  // namespace smoe
