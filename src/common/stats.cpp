#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace smoe {

double mean(std::span<const double> xs) {
  SMOE_REQUIRE(!xs.empty(), "mean of empty span");
  double s = 0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  SMOE_REQUIRE(xs.size() >= 2, "variance needs >= 2 samples");
  const double m = mean(xs);
  double s = 0;
  for (const double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double geomean(std::span<const double> xs) {
  SMOE_REQUIRE(!xs.empty(), "geomean of empty span");
  double s = 0;
  for (const double x : xs) {
    SMOE_REQUIRE(x > 0.0, "geomean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) {
  SMOE_REQUIRE(!xs.empty(), "min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  SMOE_REQUIRE(!xs.empty(), "max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  SMOE_REQUIRE(!xs.empty(), "percentile of empty span");
  SMOE_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  SMOE_REQUIRE(xs.size() == ys.size(), "pearson: size mismatch");
  SMOE_REQUIRE(xs.size() >= 2, "pearson needs >= 2 samples");
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double r_squared(std::span<const double> observed, std::span<const double> predicted) {
  SMOE_REQUIRE(observed.size() == predicted.size(), "r_squared: size mismatch");
  SMOE_REQUIRE(observed.size() >= 2, "r_squared needs >= 2 samples");
  const double m = mean(observed);
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - m) * (observed[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double normal_critical(double confidence) {
  SMOE_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence out of range");
  if (confidence >= 0.995) return 2.807;
  if (confidence >= 0.99) return 2.576;
  if (confidence >= 0.95) return 1.96;
  if (confidence >= 0.90) return 1.645;
  return 1.282;
}

double t_critical(std::size_t dof, double confidence) {
  SMOE_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence out of range");
  SMOE_REQUIRE(dof >= 1, "t_critical needs >= 1 degree of freedom");
  // Two-sided critical values for dof 1..29, one row per confidence bucket
  // (same buckets as normal_critical). Computed from the t CDF via the
  // regularized incomplete beta function; dof >= 30 falls back to normal.
  static constexpr double kT80[29] = {
      3.0777, 1.8856, 1.6377, 1.5332, 1.4759, 1.4398, 1.4149, 1.3968, 1.3830, 1.3722,
      1.3634, 1.3562, 1.3502, 1.3450, 1.3406, 1.3368, 1.3334, 1.3304, 1.3277, 1.3253,
      1.3232, 1.3212, 1.3195, 1.3178, 1.3163, 1.3150, 1.3137, 1.3125, 1.3114};
  static constexpr double kT90[29] = {
      6.3138, 2.9200, 2.3534, 2.1318, 2.0150, 1.9432, 1.8946, 1.8595, 1.8331, 1.8125,
      1.7959, 1.7823, 1.7709, 1.7613, 1.7531, 1.7459, 1.7396, 1.7341, 1.7291, 1.7247,
      1.7207, 1.7171, 1.7139, 1.7109, 1.7081, 1.7056, 1.7033, 1.7011, 1.6991};
  static constexpr double kT95[29] = {
      12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646, 2.3060, 2.2622, 2.2281,
      2.2010, 2.1788, 2.1604, 2.1448, 2.1314, 2.1199, 2.1098, 2.1009, 2.0930, 2.0860,
      2.0796, 2.0739, 2.0687, 2.0639, 2.0595, 2.0555, 2.0518, 2.0484, 2.0452};
  static constexpr double kT99[29] = {
      63.6567, 9.9248, 5.8409, 4.6041, 4.0321, 3.7074, 3.4995, 3.3554, 3.2498, 3.1693,
      3.1058, 3.0545, 3.0123, 2.9768, 2.9467, 2.9208, 2.8982, 2.8784, 2.8609, 2.8453,
      2.8314, 2.8188, 2.8073, 2.7969, 2.7874, 2.7787, 2.7707, 2.7633, 2.7564};
  static constexpr double kT995[29] = {
      127.3213, 14.0890, 7.4533, 5.5976, 4.7733, 4.3168, 4.0293, 3.8325, 3.6897, 3.5814,
      3.4966, 3.4284, 3.3725, 3.3257, 3.2860, 3.2520, 3.2224, 3.1966, 3.1737, 3.1534,
      3.1352, 3.1188, 3.1040, 3.0905, 3.0782, 3.0669, 3.0565, 3.0469, 3.0380};
  if (dof >= 30) return normal_critical(confidence);
  const double* table = kT80;
  if (confidence >= 0.995) table = kT995;
  else if (confidence >= 0.99) table = kT99;
  else if (confidence >= 0.95) table = kT95;
  else if (confidence >= 0.90) table = kT90;
  return table[dof - 1];
}

double ci_half_width(std::span<const double> xs, double confidence) {
  SMOE_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence out of range");
  if (xs.size() < 2) return 0.0;
  return normal_critical(confidence) * stddev(xs) /
         std::sqrt(static_cast<double>(xs.size()));
}

double Welford::mean() const {
  SMOE_REQUIRE(n_ >= 1, "Welford::mean of empty accumulator");
  return mean_;
}

double Welford::variance() const {
  SMOE_REQUIRE(n_ >= 2, "Welford::variance needs >= 2 samples");
  // m2_ accumulates sum of squared deviations; tiny negative residue from
  // rounding is clamped so stddev never goes NaN.
  return std::max(0.0, m2_) / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

double Welford::ci_half_width(double confidence, bool use_t) const {
  SMOE_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence out of range");
  if (n_ < 2) return 0.0;
  const double critical =
      use_t ? t_critical(n_ - 1, confidence) : normal_critical(confidence);
  return critical * stddev() / std::sqrt(static_cast<double>(n_));
}

ViolinSummary violin_summary(std::span<const double> xs) {
  ViolinSummary v;
  v.min = min_of(xs);
  v.p25 = percentile(xs, 25.0);
  v.median = median(xs);
  v.p75 = percentile(xs, 75.0);
  v.max = max_of(xs);
  v.mean = mean(xs);
  return v;
}

Histogram histogram(std::span<const double> xs, double lo, double hi, std::size_t bins) {
  SMOE_REQUIRE(hi > lo, "histogram bounds");
  SMOE_REQUIRE(bins > 0, "histogram needs >= 1 bin");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double x : xs) {
    auto b = static_cast<std::int64_t>((x - lo) / width);
    b = std::clamp<std::int64_t>(b, 0, static_cast<std::int64_t>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(b)];
  }
  return h;
}

}  // namespace smoe
