// Lazily-materialized mt19937_64: bit-identical output, cheap short streams.
//
// The engine behind every Rng. Outputs are exactly std::mt19937_64's (the
// generator is fully specified by the C++ standard, so this is a portability-
// safe reimplementation, pinned by a differential test in test_rng), but the
// first block of 312 state words is materialized lazily: seed expansion and
// the twist both advance only as far as the draws actually consumed.
//
// Why it exists: the simulator derives a fresh named stream per subsystem and
// per application (measurement noise, probe jitter, shard seeds), and most of
// those streams draw a handful of values. std::mt19937_64 charges every
// construction the full 312-word seed expansion plus a 312-word twist on the
// first draw — which profiled as the single largest cost in large-cluster
// sweeps. A stream that draws k < 312 values here pays O(k + 157) instead
// (word i of the first twisted block needs seed words up to i+156); streams
// that outlive the first block fall back to the standard batch twist with no
// further overhead.
#pragma once

#include <algorithm>
#include <cstdint>

namespace smoe {

class Mt64 {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  explicit Mt64(std::uint64_t seed) { seed_[0] = seed; }

  std::uint64_t operator()() {
    if (lazy_) {
      if (idx_ < kN) {
        const int i = idx_++;
        ensure_twisted(i);
        return temper(state_[i]);
      }
      lazy_ = false;  // first block fully consumed; batch-twist from now on
    }
    if (idx_ >= kN) twist();
    return temper(state_[idx_++]);
  }

 private:
  static constexpr int kN = 312;
  static constexpr int kM = 156;
  static constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
  static constexpr std::uint64_t kUpper = 0xFFFFFFFF80000000ULL;
  static constexpr std::uint64_t kLower = 0x7FFFFFFFULL;

  static std::uint64_t temper(std::uint64_t x) {
    x ^= (x >> 29) & 0x5555555555555555ULL;
    x ^= (x << 17) & 0x71D67FFFEDA60000ULL;
    x ^= (x << 37) & 0xFFF7EEE000000000ULL;
    x ^= x >> 43;
    return x;
  }

  /// Seed expansion, advanced to `count` words (the standard recurrence is
  /// sequential, so a prefix is a pure function of the seed).
  void fill_seed(int count) {
    for (int i = seeded_; i < count; ++i)
      seed_[i] = 6364136223846793005ULL * (seed_[i - 1] ^ (seed_[i - 1] >> 62)) +
                 static_cast<std::uint64_t>(i);
    seeded_ = std::max(seeded_, count);
  }

  /// Twist the first block through word `i`. The in-place reference loop
  /// reads old (seed) words ahead of the cursor and already-twisted words
  /// behind it, so with both arrays kept separate each word is computable in
  /// order: word j < kN-kM combines seed words only; j >= kN-kM reaches back
  /// to twisted word j-kM; the final word wraps to twisted word 0.
  void ensure_twisted(int i) {
    if (twisted_ > i) return;
    fill_seed(std::min(i + kM + 1, kN));
    for (int j = twisted_; j <= i; ++j) {
      const std::uint64_t next = j + 1 < kN ? seed_[j + 1] : state_[0];
      const std::uint64_t x = (seed_[j] & kUpper) | (next & kLower);
      const std::uint64_t base = j < kN - kM ? seed_[j + kM] : state_[j - kM];
      state_[j] = base ^ (x >> 1) ^ ((x & 1) ? kMatrixA : 0);
    }
    twisted_ = i + 1;
  }

  /// Standard in-place batch twist (blocks after the first).
  void twist() {
    for (int j = 0; j < kN; ++j) {
      const std::uint64_t x =
          (state_[j] & kUpper) | (state_[(j + 1) % kN] & kLower);
      state_[j] = state_[(j + kM) % kN] ^ (x >> 1) ^ ((x & 1) ? kMatrixA : 0);
    }
    idx_ = 0;
  }

  std::uint64_t seed_[kN];   ///< lazily expanded seed words (first block only)
  std::uint64_t state_[kN];  ///< twisted words of the current block
  int idx_ = 0;              ///< next draw within the current block
  int seeded_ = 1;           ///< seed_ valid up to this count
  int twisted_ = 0;          ///< state_ valid up to this count (first block)
  bool lazy_ = true;         ///< still inside the lazy first block
};

}  // namespace smoe
