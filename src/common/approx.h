// Relative-tolerance comparisons shared by the engine's accounting and the
// invariant auditor (src/sparksim/audit).
//
// The simulator sums quantities spanning many orders of magnitude: GiB
// reservations (~1e1), CPU shares (~1e-1), and RDD item counts (~1e6 and
// beyond). A single absolute epsilon (the old `kEps = 1e-6`) is simultaneously
// too loose for CPU shares and too tight for item counts, so every
// work-accounting comparison goes through these helpers instead: the slack
// scales with the magnitude of the operands (never below an absolute floor of
// `rel`, so comparisons around zero stay sane).
#pragma once

#include <algorithm>
#include <cmath>

namespace smoe {

/// Default relative tolerance for exact bookkeeping sums (reservations, CPU
/// shares, dispatched-item totals): these accumulate only a handful of
/// floating-point rounding errors, so 1e-9 relative is generous.
inline constexpr double kRelEps = 1e-9;

/// Relative tolerance for integration-accumulated quantities (items processed
/// as rate x dt over many steps, times derived from them). Matches the
/// engine's historical `kEps * max(1, chunk)` completion threshold.
inline constexpr double kSimRelEps = 1e-6;

/// Absolute slack for comparisons at magnitude `scale`: rel * max(1, |scale|).
inline double rel_slack(double scale, double rel) {
  return rel * std::max(1.0, std::abs(scale));
}

/// a >= b, allowing a shortfall up to rel * max(1, |a|, |b|).
inline bool approx_ge(double a, double b, double rel) {
  return a >= b - rel_slack(std::max(std::abs(a), std::abs(b)), rel);
}

/// a <= b with the same symmetric slack.
inline bool approx_le(double a, double b, double rel) { return approx_ge(b, a, rel); }

/// |a - b| within rel * max(1, |a|, |b|).
inline bool approx_eq(double a, double b, double rel) {
  return std::abs(a - b) <= rel_slack(std::max(std::abs(a), std::abs(b)), rel);
}

/// |v| negligible at magnitude `scale`.
inline bool approx_zero(double v, double scale, double rel) {
  return std::abs(v) <= rel_slack(scale, rel);
}

}  // namespace smoe
