#include "common/csv.h"

#include "common/error.h"

namespace smoe {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(os), width_(header.size()) {
  SMOE_REQUIRE(!header.empty(), "csv: empty header");
  emit(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  SMOE_REQUIRE(cells.size() == width_, "csv: row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  emit(cells);
  ++rows_;
}

}  // namespace smoe
