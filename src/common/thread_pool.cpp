#include "common/thread_pool.h"

#include <cstdlib>
#include <limits>
#include <string>

#include "common/error.h"

namespace smoe {

namespace {

/// Parse a positive integer; 0 on junk (so junk falls back to hardware).
std::size_t parse_env_threads(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  std::size_t value = 0;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    value = value * 10 + static_cast<std::size_t>(*p - '0');
    if (value > 4096) return 4096;  // sanity cap
  }
  return value;
}

}  // namespace

std::size_t ThreadPool::default_threads() {
  if (const std::size_t env = parse_env_threads(std::getenv("SMOE_THREADS")); env > 0)
    return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) n_threads = default_threads();
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    SMOE_CHECK(!stop_, "thread pool: submit after shutdown");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

bool ThreadPool::run_one_pending() {
  std::function<void()> job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  job();
  return true;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for_each(std::size_t n,
                                   const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex error_mutex;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto shared = std::make_shared<Shared>();

  // Every participant (helpers and the caller) claims indices until none are
  // left. Helpers that start after the range is exhausted exit immediately
  // without touching `fn`, which only outlives this call frame while at least
  // one claimed index is unfinished (and the caller waits for those below).
  const auto drain = [shared, &fn, n] {
    while (true) {
      const std::size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(shared->error_mutex);
        if (i < shared->error_index) {
          shared->error_index = i;
          shared->error = std::current_exception();
        }
      }
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        { const std::lock_guard<std::mutex> lock(shared->done_mutex); }
        shared->done_cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(size(), n);
  for (std::size_t h = 0; h < helpers; ++h) enqueue(drain);
  drain();  // the caller works too — progress is guaranteed even when nested

  {
    std::unique_lock<std::mutex> lock(shared->done_mutex);
    shared->done_cv.wait(lock, [&] { return shared->done.load() == n; });
  }
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace smoe
