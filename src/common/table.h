// ASCII table emitter used by the bench harnesses to print the paper's
// tables/figure series in a stable, diffable format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace smoe {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rendered with a header rule, suitable for terminals.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);  ///< 0.49 -> "49.0%"

  void render(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Simple down-sampled ASCII heat strip for utilization traces: maps a value
/// in [0,1] to a density character.
char heat_char(double v01);

}  // namespace smoe
