// A fixed-size worker pool for fan-out over independent, deterministic jobs
// (the experiment runner dispatches one simulation per job).
//
// Design notes:
//   * `parallel_for_each` is the deadlock-free primitive: the calling thread
//     participates in executing indices, so it makes progress even when every
//     worker is busy (including when called from inside a pool task).
//   * `submit` returns a future. Waiting on a future from inside a pool task
//     can starve a saturated pool; use `wait(...)`, which runs pending jobs
//     while waiting, to make nested submit-and-wait safe at any pool size.
//   * The worker count is fixed at construction: `SMOE_THREADS` (environment)
//     overrides, else std::thread::hardware_concurrency(). Pass an explicit
//     count to ignore both.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace smoe {

class ThreadPool {
 public:
  /// `n_threads == 0` means default_threads(). The pool always has >= 1
  /// worker; a size-1 pool still runs parallel_for_each correctly (the caller
  /// executes everything inline).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// `SMOE_THREADS` when set to a positive integer, else
  /// hardware_concurrency(), else 1.
  static std::size_t default_threads();

  /// Run `fn(i)` for every i in [0, n). Blocks until all indices finished.
  /// The calling thread executes jobs too. If any invocation throws, the
  /// exception thrown by the *lowest* failing index is rethrown here (every
  /// index is still attempted), so error reporting is deterministic.
  void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Schedule one job; the returned future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Wait for a future while helping the pool drain its queue — safe to call
  /// from inside a pool task even when every worker is blocked in wait().
  template <typename T>
  T wait(std::future<T> future) {
    while (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!run_one_pending()) future.wait_for(std::chrono::microseconds(100));
    }
    return future.get();
  }

 private:
  void enqueue(std::function<void()> job);
  /// Pop and run one queued job on the calling thread; false when idle.
  bool run_one_pending();
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace smoe
