#include "common/rng.h"

#include "common/error.h"

namespace smoe {

std::uint64_t Rng::derive(std::uint64_t seed, std::string_view name) {
  // FNV-1a over the name, mixed with the parent seed via splitmix64 finalizer.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL + h;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::uniform(double lo, double hi) {
  SMOE_REQUIRE(lo <= hi, "uniform bounds");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SMOE_REQUIRE(lo <= hi, "uniform_int bounds");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  SMOE_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal_median(double median, double sigma) {
  SMOE_REQUIRE(median > 0.0, "median must be positive");
  return std::lognormal_distribution<double>(std::log(median), sigma)(engine_);
}

bool Rng::chance(double p) {
  SMOE_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  return std::bernoulli_distribution(p)(engine_);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  if (k < n) idx.resize(k);
  return idx;
}

}  // namespace smoe
