// Deterministic random number utilities.
//
// Every stochastic component in sparkmoe draws from an Rng seeded explicitly
// by the caller; there is no global RNG and no wall-clock seeding, so every
// experiment is reproducible bit-for-bit given its printed seed.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "common/mt64.h"

namespace smoe {

/// Thin wrapper over an mt19937_64-compatible engine with convenience draws.
/// Mt64 emits exactly std::mt19937_64's sequence but materializes the first
/// state block lazily, so the many short-lived derived streams (per-app
/// noise, probe jitter) stop paying the full 624-word construction cost.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive a named child seed, so subsystems get decorrelated streams that
  /// are still a pure function of the parent seed.
  static std::uint64_t derive(std::uint64_t seed, std::string_view name);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Log-normal such that the *median* of the distribution is `median`.
  double lognormal_median(double median, double sigma);
  /// Bernoulli draw.
  bool chance(double p);

  /// Sample `k` distinct indices from [0, n). k may exceed n, in which case
  /// all indices are returned (shuffled).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  Mt64& engine() { return engine_; }

 private:
  Mt64 engine_;
};

}  // namespace smoe
