// Error handling primitives shared by all sparkmoe modules.
//
// Policy (per C++ Core Guidelines E.2/E.3): exceptions report violations of
// preconditions and unrecoverable configuration errors; they are not used for
// control flow. SMOE_REQUIRE is for precondition checks on public APIs,
// SMOE_CHECK for internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace smoe {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant does not hold (a sparkmoe bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr +
                          (msg.empty() ? "" : (": " + msg)));
}
[[noreturn]] inline void throw_invariant(const char* expr, const std::string& msg) {
  throw InvariantError(std::string("invariant failed: ") + expr +
                       (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace smoe

#define SMOE_REQUIRE(expr, msg)                          \
  do {                                                   \
    if (!(expr)) ::smoe::detail::throw_precondition(#expr, (msg)); \
  } while (0)

#define SMOE_CHECK(expr, msg)                            \
  do {                                                   \
    if (!(expr)) ::smoe::detail::throw_invariant(#expr, (msg)); \
  } while (0)
