// Minimal RFC-4180-style CSV emission, so bench results can be consumed by
// plotting scripts as well as read from the terminal.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace smoe {

class CsvWriter {
 public:
  /// Writes the header immediately. The stream must outlive the writer.
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  /// Write one row; must match the header's width.
  void add_row(const std::vector<std::string>& cells);

  /// Quote a cell per RFC 4180 when it contains commas, quotes or newlines.
  static std::string escape(const std::string& cell);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream& os_;
  std::size_t width_;
  std::size_t rows_ = 0;

  void emit(const std::vector<std::string>& cells);
};

}  // namespace smoe
