#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace smoe {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  SMOE_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  SMOE_REQUIRE(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    os << "\n";
  };
  auto emit_rule = [&] {
    os << "+";
    for (const auto w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
}

char heat_char(double v01) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  const double v = std::clamp(v01, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(v * 9.999);
  return kRamp[idx];
}

}  // namespace smoe
