// Checked command-line parsing shared by the figure benches, replacing the
// raw std::stoul(argv[1]) calls that died with an uncaught
// std::invalid_argument on junk input.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace smoe {

/// Strict base-10 parse of a non-negative integer: the *whole* string must be
/// digits (no signs, spaces, or trailing junk). nullopt on anything else.
std::optional<std::size_t> parse_size(std::string_view text);

/// Options shared by the experiment benches: an optional positional mix count
/// and `--threads N` for the parallel experiment runner.
struct BenchOptions {
  std::size_t n_mixes = 0;
  std::size_t threads = 0;  ///< 0 = auto (SMOE_THREADS env, else hardware).
};

/// Parse `[n_mixes] [--threads N]` from argv (argv[0] is the program name).
/// Prints usage and calls std::exit: status 0 for --help, 2 for junk input —
/// callers never see a malformed option. Run after any TraceCli stripping.
BenchOptions parse_bench_options(int argc, char** argv, std::size_t default_mixes);

}  // namespace smoe
