// Checked command-line parsing shared by the figure benches, replacing the
// raw std::stoul(argv[1]) calls that died with an uncaught
// std::invalid_argument on junk input.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace smoe {

/// Strict base-10 parse of a non-negative integer: the *whole* string must be
/// digits (no signs, spaces, or trailing junk). nullopt on anything else —
/// including values that would overflow (the 18-digit cap keeps every
/// accepted value below 2^60, so `1e99`-sized inputs can never wrap).
std::optional<std::size_t> parse_size(std::string_view text);

/// Strict parse of a non-negative finite double: the *whole* string must be a
/// decimal number (scientific notation allowed; no signs, hex, inf/nan,
/// spaces, or trailing junk like `5s`). nullopt on anything else.
std::optional<double> parse_double(std::string_view text);

/// Options shared by the experiment benches: an optional positional mix count,
/// `--threads N` for the parallel experiment runner, `--oversubscribe` to
/// keep sweep points above the hardware thread count (they measure
/// oversubscription, not scaling, so benches drop them by default), and the
/// adaptive-replication knobs `--race`/`--no-race`, `--max-replays N`,
/// `--budget-seconds S` (DESIGN.md §15).
struct BenchOptions {
  std::size_t n_mixes = 0;
  std::size_t threads = 0;  ///< 0 = auto (SMOE_THREADS env, else hardware).
  bool oversubscribe = false;
  /// --race / --no-race; nullopt = the bench's own default (figure benches
  /// race by default, golden/trace paths never do).
  std::optional<bool> race;
  std::size_t max_replays = 0;  ///< --max-replays; 0 = bench default, else >= 2.
  double budget_seconds = 0;    ///< --budget-seconds wall-clock cap; 0 = unlimited.
};

/// Parse `[n_mixes] [--threads N] [--oversubscribe] [--race|--no-race]
/// [--max-replays N] [--budget-seconds S]` from argv (argv[0] is the program
/// name).
/// Prints usage and calls std::exit: status 0 for --help, 2 for junk input —
/// callers never see a malformed option. Run after any TraceCli stripping.
BenchOptions parse_bench_options(int argc, char** argv, std::size_t default_mixes);

}  // namespace smoe
