// Descriptive statistics used by the experiment harnesses: means, geometric
// means, percentiles, Pearson correlation, confidence intervals, histograms
// and five-number ("violin") summaries matching the plots in the paper.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace smoe {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< Sample (n-1) variance.
double stddev(std::span<const double> xs);

/// Geometric mean; requires all xs > 0.
double geomean(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);
double median(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length series.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Coefficient of determination of predictions vs observations.
double r_squared(std::span<const double> observed, std::span<const double> predicted);

/// Half-width of the two-sided confidence interval of the mean, using the
/// normal approximation (the paper replays runs until the 95% CI width is
/// below 5% of the mean).
double ci_half_width(std::span<const double> xs, double confidence = 0.95);

/// Summary used to describe a slowdown distribution (the paper's violin
/// plots): min, p25, median, p75, max and mean.
struct ViolinSummary {
  double min = 0, p25 = 0, median = 0, p75 = 0, max = 0, mean = 0;
};
ViolinSummary violin_summary(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
struct Histogram {
  double lo = 0, hi = 0;
  std::vector<std::size_t> counts;
};
Histogram histogram(std::span<const double> xs, double lo, double hi, std::size_t bins);

}  // namespace smoe
