// Descriptive statistics used by the experiment harnesses: means, geometric
// means, percentiles, Pearson correlation, confidence intervals, histograms
// and five-number ("violin") summaries matching the plots in the paper.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace smoe {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< Sample (n-1) variance.
double stddev(std::span<const double> xs);

/// Geometric mean; requires all xs > 0.
double geomean(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);
double median(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length series.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Coefficient of determination of predictions vs observations.
double r_squared(std::span<const double> observed, std::span<const double> predicted);

/// Half-width of the two-sided confidence interval of the mean, using the
/// normal approximation (the paper replays runs until the 95% CI width is
/// below 5% of the mean).
double ci_half_width(std::span<const double> xs, double confidence = 0.95);

/// Two-sided normal critical value for the common confidence levels (the
/// bucketing ci_half_width has always used: 0.995, 0.99, 0.95, 0.90, else
/// 0.80).
double normal_critical(double confidence);

/// Two-sided Student-t critical value with `dof` degrees of freedom, for the
/// same bucketed confidence levels as normal_critical. For dof >= 30 the
/// table converges onto the normal value and that is what is returned. The
/// normal approximation materially undercovers at the n = 3..10 replays the
/// replication path actually runs (t_{0.975,2} = 4.30 vs z = 1.96), so the
/// racing path uses this; legacy callers keep ci_half_width's normal value so
/// previously committed bench JSON stays comparable.
double t_critical(std::size_t dof, double confidence = 0.95);

/// One-pass running mean/variance accumulator (Welford). Replaces the
/// re-scan-the-whole-vector pattern in the replication hot loop: add() is
/// O(1) and numerically stable, and the result matches the two-pass
/// mean()/variance() functions to floating-point accuracy.
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return n_; }
  double mean() const;       ///< Requires count() >= 1.
  double variance() const;   ///< Sample (n-1) variance; requires count() >= 2.
  double stddev() const;

  /// CI half-width of the mean. `use_t` selects the Student-t critical value
  /// (racing path); false keeps the normal approximation that the legacy
  /// two-pass ci_half_width uses. Returns 0 for count() < 2, like
  /// ci_half_width.
  double ci_half_width(double confidence = 0.95, bool use_t = false) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

/// Summary used to describe a slowdown distribution (the paper's violin
/// plots): min, p25, median, p75, max and mean.
struct ViolinSummary {
  double min = 0, p25 = 0, median = 0, p75 = 0, max = 0, mean = 0;
};
ViolinSummary violin_summary(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
struct Histogram {
  double lo = 0, hi = 0;
  std::vector<std::size_t> counts;
};
Histogram histogram(std::span<const double> xs, double lo, double hi, std::size_t bins);

}  // namespace smoe
