#include "common/bench_cli.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace smoe {

std::optional<std::size_t> parse_size(std::string_view text) {
  if (text.empty() || text.size() > 18) return std::nullopt;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty() || text.size() > 64) return std::nullopt;
  // from_chars rejects leading '+'/whitespace and hex floats; a leading '-'
  // parses, so negatives fall to the value check below. "1e999" reports
  // result_out_of_range and "inf"/"nan" fail the finiteness check.
  double value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  if (!std::isfinite(value) || value < 0) return std::nullopt;
  return value;
}

namespace {

[[noreturn]] void usage(const char* prog, std::size_t default_mixes, int status) {
  std::fprintf(stderr,
               "usage: %s [n_mixes] [--threads N] [--oversubscribe] [--race|--no-race]\n"
               "          [--max-replays N] [--budget-seconds S]\n"
               "  n_mixes            mixes per scenario (positive integer, default %zu)\n"
               "  --threads N        worker threads for the experiment runner\n"
               "                     (default: SMOE_THREADS env, else all hardware threads)\n"
               "  --oversubscribe    keep sweep points above the hardware thread count\n"
               "                     (they measure oversubscription, not scaling)\n"
               "  --race / --no-race force best-arm racing of replicated cells on or off\n"
               "                     (default: the bench's own default)\n"
               "  --max-replays N    per-cell replay ceiling for replication (integer >= 2)\n"
               "  --budget-seconds S wall-clock cap for racing, decimal seconds (0 = off;\n"
               "                     budgeted runs are not machine-reproducible)\n",
               prog, default_mixes);
  std::exit(status);
}

}  // namespace

BenchOptions parse_bench_options(int argc, char** argv, std::size_t default_mixes) {
  BenchOptions opt;
  opt.n_mixes = default_mixes;
  const char* prog = argc > 0 ? argv[0] : "bench";
  bool saw_mixes = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(prog, default_mixes, 0);
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --threads needs a value\n", prog);
        usage(prog, default_mixes, 2);
      }
      const auto threads = parse_size(argv[++i]);
      if (!threads || *threads == 0) {
        std::fprintf(stderr, "%s: bad --threads value '%s' (want a positive integer)\n",
                     prog, argv[i]);
        usage(prog, default_mixes, 2);
      }
      opt.threads = *threads;
      continue;
    }
    if (arg == "--oversubscribe") {
      opt.oversubscribe = true;
      continue;
    }
    if (arg == "--race") {
      opt.race = true;
      continue;
    }
    if (arg == "--no-race") {
      opt.race = false;
      continue;
    }
    if (arg == "--max-replays") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --max-replays needs a value\n", prog);
        usage(prog, default_mixes, 2);
      }
      const auto replays = parse_size(argv[++i]);
      if (!replays || *replays < 2) {
        std::fprintf(stderr, "%s: bad --max-replays value '%s' (want an integer >= 2)\n",
                     prog, argv[i]);
        usage(prog, default_mixes, 2);
      }
      opt.max_replays = *replays;
      continue;
    }
    if (arg == "--budget-seconds") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --budget-seconds needs a value\n", prog);
        usage(prog, default_mixes, 2);
      }
      const auto budget = parse_double(argv[++i]);
      if (!budget) {
        std::fprintf(stderr,
                     "%s: bad --budget-seconds value '%s' (want a non-negative decimal)\n",
                     prog, argv[i]);
        usage(prog, default_mixes, 2);
      }
      opt.budget_seconds = *budget;
      continue;
    }
    if (!saw_mixes) {
      const auto mixes = parse_size(arg);
      if (!mixes || *mixes == 0) {
        std::fprintf(stderr, "%s: bad mix count '%s' (want a positive integer)\n", prog,
                     argv[i]);
        usage(prog, default_mixes, 2);
      }
      opt.n_mixes = *mixes;
      saw_mixes = true;
      continue;
    }
    std::fprintf(stderr, "%s: unexpected argument '%s'\n", prog, argv[i]);
    usage(prog, default_mixes, 2);
  }
  return opt;
}

}  // namespace smoe
