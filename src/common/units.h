// Units and strong-ish types used across the simulator.
//
// All memory quantities are in gibibytes (double), all times in seconds
// (double), and Spark input sizes are counted in "RDD items" — the paper
// models memory footprint as a function of the number of RDD objects.
// One item corresponds to roughly 1 MiB of on-disk input, so the paper's
// 100 MB profiling slice is ~100 items and a 1 TB input is ~1e6 items.
#pragma once

#include <cstdint>

namespace smoe {

/// Gibibytes of memory.
using GiB = double;
/// Simulated wall-clock seconds.
using Seconds = double;
/// Count of RDD data items (the x-axis of every memory function).
using Items = double;

/// Approximate bytes of raw input represented by one RDD item.
inline constexpr double kBytesPerItem = 1024.0 * 1024.0;

/// Convert a raw input size in GiB to RDD items.
constexpr Items items_from_gib(double gib) { return gib * 1024.0; }
/// Convert RDD items back to the raw input size in GiB.
constexpr double gib_from_items(Items items) { return items / 1024.0; }

/// Identifier types. Plain integers with distinct aliases; -1 means "none".
using NodeId = std::int32_t;
using AppId = std::int32_t;
using ExecutorId = std::int32_t;
inline constexpr std::int32_t kNoId = -1;

}  // namespace smoe
