// The metrics registry: named counters, gauges, and fixed-bucket histograms
// that the engine and policies update during a run, snapshotted into
// SimResult at the end.
//
// Design notes:
//   * Instruments are owned by the Registry and handed out by reference;
//     references stay valid for the registry's lifetime (node-based map), so
//     hot paths resolve a name once and keep the reference.
//   * Everything is deterministic: snapshots iterate names in sorted order.
//   * No locking — the simulator is single-threaded; a run owns its registry.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/window.h"

namespace smoe::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value; `track_max` keeps a running maximum instead.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void track_max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
/// N buckets; an implicit +inf bucket catches the rest. Also tracks count,
/// sum, min and max so means and ranges survive coarse buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  // Inline: observed once per executor lifetime event; the call overhead was
  // visible in large-cluster profiles.
  void observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
    if (count_ == 0) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Plain-data copy of a registry's state at one instant. Comparable so tests
/// can assert "the null sink changes metrics by exactly nothing".
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;

    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
    bool operator==(const HistogramData&) const = default;
  };

  /// Streaming P² quantile estimates (obs::QuantileEstimator).
  struct QuantileData {
    std::vector<double> probs;
    std::vector<double> estimates;  ///< aligned with probs
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;

    bool operator==(const QuantileData&) const = default;
  };

  /// Sliding-window rate state (obs::WindowedRate) at snapshot time.
  struct WindowData {
    double window_seconds = 0;
    std::uint64_t window_count = 0;
    double window_sum = 0;
    double rate_per_sec = 0;
    double last_t = 0;
    std::uint64_t total_count = 0;
    double total_sum = 0;

    bool operator==(const WindowData&) const = default;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, QuantileData> quantiles;
  std::map<std::string, WindowData> windows;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() && quantiles.empty() &&
           windows.empty();
  }
  bool operator==(const MetricsSnapshot&) const = default;
};

class Registry {
 public:
  /// Find-or-create by name. For configured instruments (histograms,
  /// quantile estimators, windowed rates) the configuration applies on first
  /// creation only; a later call whose configuration disagrees with the
  /// existing instrument throws smoe::PreconditionError — two call sites
  /// silently observing into differently-shaped instruments would corrupt
  /// the metric (tests/test_obs.cpp and tests/test_window.cpp pin this).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  QuantileEstimator& quantile(std::string_view name, std::vector<double> probs);
  WindowedRate& windowed_rate(std::string_view name, double window_seconds,
                              std::size_t n_buckets = 32);

  MetricsSnapshot snapshot() const;

 private:
  // std::map: node-based, so instrument references are stable, and iteration
  // is name-sorted, so snapshots are deterministic.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, QuantileEstimator, std::less<>> quantiles_;
  std::map<std::string, WindowedRate, std::less<>> windows_;
};

}  // namespace smoe::obs
