// Per-unit sink creation: lets traced sweeps parallelize.
//
// A shared EventSink serializes every run that emits into it (event order in
// one buffer must match sim-time order), which is why ExperimentRunner falls
// back to sequential execution when SimConfig::sink is live. A SinkFactory
// instead hands each unit of work (one (policy, mix) cell) its *own* sink —
// its own buffer/file — so cells can trace concurrently while each per-cell
// byte stream stays deterministic regardless of thread count.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sink.h"

namespace smoe::obs {

class SinkFactory {
 public:
  virtual ~SinkFactory() = default;

  /// Create a fresh sink for the unit of work named `label` (e.g.
  /// "moe/mix3"). The caller owns the sink, emits a single deterministic
  /// run into it, and close()s it when the unit finishes. Must be safe to
  /// call concurrently from worker threads.
  virtual std::unique_ptr<EventSink> make(std::string_view label) = 0;
};

struct FileSinkOptions {
  bool chrome = false;  ///< ChromeTraceSink instead of JsonlSink
  SinkOptions sink;     ///< buffer size / async I/O for each created sink
};

/// Writes each unit's trace to `<dir>/<sanitized label>.jsonl` (or
/// `.trace.json` in Chrome mode). The returned sink owns its file stream.
class FileSinkFactory final : public SinkFactory {
 public:
  using Options = FileSinkOptions;

  /// Creates `dir` (and parents) if missing.
  explicit FileSinkFactory(std::filesystem::path dir, Options opts = {});

  std::unique_ptr<EventSink> make(std::string_view label) override;

  const std::filesystem::path& dir() const { return dir_; }

  /// Paths created so far, in creation order (test/diagnostic helper).
  std::vector<std::filesystem::path> created() const;

  /// Label characters outside [A-Za-z0-9._-] become '_' so any policy/mix
  /// label is a safe filename ("moe/mix3" -> "moe_mix3").
  static std::string sanitize(std::string_view label);

 private:
  std::filesystem::path dir_;
  Options opts_;
  mutable std::mutex mu_;
  std::vector<std::filesystem::path> created_;
  /// Times each sanitized label was requested: a repeated label (e.g. the
  /// same policy evaluated across several sweeps) gets a ".2", ".3", ...
  /// suffix instead of silently overwriting the earlier trace.
  std::map<std::string, std::size_t> uses_;
};

}  // namespace smoe::obs
