// Background writer for buffering sinks: file I/O overlaps simulation.
//
// A sink hands full buffers to submit() and gets an empty (recycled) buffer
// back; a single worker thread writes the queued buffers to the ostream in
// FIFO order, so the byte stream is identical to the synchronous path. The
// only observable difference is *when* bytes reach the stream — drain()
// blocks until everything submitted so far has been written, which is what
// close() uses to restore the "trace complete at end-of-run" guarantee.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace smoe::obs {

class AsyncWriter {
 public:
  /// Spawns the worker thread. `recycle_reserve` is the capacity pre-reserved
  /// on buffers handed back by submit() (typically the sink's buffer size).
  explicit AsyncWriter(std::ostream& os, std::size_t recycle_reserve);
  ~AsyncWriter();  ///< drains outstanding buffers and joins the worker

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Enqueue `buf` for writing and return an empty buffer to refill (recycled
  /// from an already-written one when available, so steady-state submission
  /// allocates nothing).
  std::string submit(std::string&& buf);

  /// Block until every buffer submitted so far has been written to the
  /// stream. Does not flush the ostream itself — that stays with the caller.
  void drain();

 private:
  void worker();

  std::ostream& os_;
  const std::size_t recycle_reserve_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< worker waits for queue/stop
  std::condition_variable drain_cv_;  ///< drain() waits for idle
  std::deque<std::string> queue_;
  std::vector<std::string> free_;
  bool writing_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace smoe::obs
