#include "obs/registry.h"

#include <algorithm>

#include "common/error.h"

namespace smoe::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SMOE_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be sorted");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    SMOE_REQUIRE(it->second.bounds() == bounds,
                 "histogram re-registered with different buckets: " + std::string(name));
    return it->second;
  }
  return histograms_.emplace(std::string(name), Histogram(std::move(bounds))).first->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c.value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g.value());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h.bounds();
    data.buckets = h.buckets();
    data.count = h.count();
    data.sum = h.sum();
    data.min = h.min();
    data.max = h.max();
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

}  // namespace smoe::obs
