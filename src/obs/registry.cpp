#include "obs/registry.h"

#include <algorithm>
#include <charconv>

#include "common/error.h"

namespace smoe::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SMOE_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be sorted");
  buckets_.assign(bounds_.size() + 1, 0);
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

namespace {

std::string layout(const std::vector<double>& v) {
  std::string s = "{";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) s += ", ";
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v[i]);
    s.append(buf, res.ptr);
  }
  return s + "}";
}

}  // namespace

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    SMOE_REQUIRE(it->second.bounds() == bounds,
                 "histogram '" + std::string(name) +
                     "' re-registered with a different bucket layout: existing " +
                     layout(it->second.bounds()) + " vs requested " + layout(bounds));
    return it->second;
  }
  return histograms_.emplace(std::string(name), Histogram(std::move(bounds))).first->second;
}

QuantileEstimator& Registry::quantile(std::string_view name, std::vector<double> probs) {
  const auto it = quantiles_.find(name);
  if (it != quantiles_.end()) {
    SMOE_REQUIRE(it->second.probs() == probs,
                 "quantile estimator '" + std::string(name) +
                     "' re-registered with different probs: existing " +
                     layout(it->second.probs()) + " vs requested " + layout(probs));
    return it->second;
  }
  return quantiles_.emplace(std::string(name), QuantileEstimator(std::move(probs)))
      .first->second;
}

WindowedRate& Registry::windowed_rate(std::string_view name, double window_seconds,
                                      std::size_t n_buckets) {
  const auto it = windows_.find(name);
  if (it != windows_.end()) {
    SMOE_REQUIRE(it->second.window_seconds() == window_seconds &&
                     it->second.n_buckets() == n_buckets,
                 "windowed rate '" + std::string(name) +
                     "' re-registered with a different window: existing " +
                     std::to_string(it->second.window_seconds()) + "s/" +
                     std::to_string(it->second.n_buckets()) + " buckets vs requested " +
                     std::to_string(window_seconds) + "s/" + std::to_string(n_buckets));
    return it->second;
  }
  return windows_.emplace(std::string(name), WindowedRate(window_seconds, n_buckets))
      .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c.value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g.value());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h.bounds();
    data.buckets = h.buckets();
    data.count = h.count();
    data.sum = h.sum();
    data.min = h.min();
    data.max = h.max();
    snap.histograms.emplace(name, std::move(data));
  }
  for (const auto& [name, q] : quantiles_) {
    MetricsSnapshot::QuantileData data;
    data.probs = q.probs();
    data.estimates = q.estimates();
    data.count = q.count();
    data.sum = q.sum();
    data.min = q.min();
    data.max = q.max();
    snap.quantiles.emplace(name, std::move(data));
  }
  for (const auto& [name, w] : windows_) {
    MetricsSnapshot::WindowData data;
    data.window_seconds = w.window_seconds();
    data.window_count = w.window_count();
    data.window_sum = w.window_sum();
    data.rate_per_sec = w.rate_per_sec();
    data.last_t = w.last_t();
    data.total_count = w.total_count();
    data.total_sum = w.total_sum();
    snap.windows.emplace(name, std::move(data));
  }
  return snap;
}

}  // namespace smoe::obs
