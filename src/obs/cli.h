// Shared command-line plumbing so every example and bench can capture a
// trace without bespoke flag parsing:
//
//   ./build/examples/colocate_cluster --trace run.jsonl
//   ./build/bench/bench_fig7_server_utilization --chrome-trace run.trace
//
// TraceCli strips the flags it recognizes from argv (so positional-argument
// handling in the binaries is untouched) and owns the output files and sinks
// for the program's lifetime.
#pragma once

#include <fstream>
#include <memory>

#include "obs/sink.h"

namespace smoe::obs {

class TraceCli {
 public:
  /// Recognized (and removed from argv):
  ///   --trace FILE | --trace=FILE                JSONL event trace
  ///   --chrome-trace FILE | --chrome-trace=FILE  Chrome trace_event JSON
  /// Throws PreconditionError when a flag is given without a file or the
  /// file cannot be opened.
  TraceCli(int& argc, char** argv);

  /// The sink to hand to SimConfig::sink: the requested file sink(s), or
  /// null_sink() when no flag was given. Valid for this object's lifetime.
  EventSink& sink();

  bool active() const { return jsonl_ != nullptr || chrome_ != nullptr; }

  /// One-line usage string for the binaries' help output.
  static const char* usage() {
    return "[--trace FILE] [--chrome-trace FILE]";
  }

 private:
  std::unique_ptr<std::ofstream> jsonl_os_, chrome_os_;
  std::unique_ptr<EventSink> jsonl_, chrome_, tee_;
};

}  // namespace smoe::obs
