// Shared command-line plumbing so every example and bench can capture a
// trace without bespoke flag parsing:
//
//   ./build/examples/colocate_cluster --trace run.jsonl
//   ./build/bench/bench_fig7_server_utilization --chrome-trace run.trace
//   ./build/bench/bench_fig6_overall_stp_antt --trace-dir traces/
//
// TraceCli strips the flags it recognizes from argv (so positional-argument
// handling in the binaries is untouched) and owns the output files and sinks
// for the program's lifetime.
#pragma once

#include <fstream>
#include <memory>

#include "obs/sink.h"
#include "obs/sink_factory.h"

namespace smoe::obs {

class TraceCli {
 public:
  /// Recognized (and removed from argv):
  ///   --trace FILE | --trace=FILE                JSONL event trace
  ///   --chrome-trace FILE | --chrome-trace=FILE  Chrome trace_event JSON
  ///   --trace-dir DIR | --trace-dir=DIR          per-cell JSONL traces in
  ///                                              DIR (sink_factory()); keeps
  ///                                              traced sweeps parallel
  ///   --trace-async                              background writer thread
  ///                                              for all of the above
  /// Throws PreconditionError when a flag is given without its argument or
  /// the file cannot be opened.
  TraceCli(int& argc, char** argv);

  /// The sink to hand to SimConfig::sink: the requested file sink(s), or
  /// null_sink() when no flag was given. Valid for this object's lifetime.
  EventSink& sink();

  /// The per-cell factory to hand to ExperimentRunner::set_sink_factory, or
  /// nullptr when --trace-dir was not given.
  SinkFactory* sink_factory() { return factory_.get(); }

  bool active() const { return jsonl_ != nullptr || chrome_ != nullptr || factory_ != nullptr; }

  /// One-line usage string for the binaries' help output.
  static const char* usage() {
    return "[--trace FILE] [--chrome-trace FILE] [--trace-dir DIR] [--trace-async]";
  }

 private:
  std::unique_ptr<std::ofstream> jsonl_os_, chrome_os_;
  std::unique_ptr<EventSink> jsonl_, chrome_, tee_;
  std::unique_ptr<FileSinkFactory> factory_;
};

}  // namespace smoe::obs
