// Structured simulator events: the typed vocabulary every EventSink consumes.
//
// An Event is a (sim-time, type, fields) triple. Timestamps are *simulated*
// seconds — never wall-clock — so a trace is a pure function of the run's
// inputs and SimConfig::seed, and two identically-seeded runs produce
// byte-identical traces (tests/test_obs.cpp asserts this).
//
// Recording is allocation-free: fields live in a fixed-capacity inline array
// and every value is a trivially-copyable scalar or a *non-owning*
// std::string_view. Formatting (JSON escaping, number rendering) is deferred
// to the sink — record now, format later.
//
// Lifetime contract for string values: a string_view stored via with() must
// stay alive until the sink's emit() call consuming the event returns.
// Building and emitting the event in one full expression satisfies this even
// for temporaries (e.g. `sink.emit(Event(t, k).with("policy", p.name()))` —
// the temporary string lives until the full expression ends). Sinks that
// retain events past emit() must deep-copy them (see OwnedEvent).
#pragma once

#include <cstdint>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/units.h"

namespace smoe::obs {

/// Everything the cluster simulator can report. One enumerator per state
/// transition; sinks may filter on type.
enum class EventType : std::uint8_t {
  kRunStart,        ///< simulation begins (config summary)
  kAppSubmit,       ///< application enters the system at t = 0
  kProfilingStart,  ///< feature/calibration profiling begins on the coordinator
  kProfilingEnd,    ///< profiling window elapsed; application is dispatchable
  kDispatch,        ///< dispatcher decision: chosen node, reservation, and the
                    ///< monitor's (stale) view that justified it
  kExecutorSpawn,   ///< executor starts processing its chunk
  kExecutorSpill,   ///< default-heap executor exceeds its heap and spills
  kExecutorThrash,  ///< predictive executor overshoots its heap and GC-thrashes
  kExecutorOom,     ///< predictive executor dies; chunk lost (Section 2.3)
  kExecutorFinish,  ///< executor drained its chunk and released its node share
  kIsolatedRerun,   ///< an OOM'd chunk re-runs alone on a whole node
  kMonitorReport,   ///< periodic resource-monitor tick (Section 4.2)
  kAppFinish,       ///< last item of an application processed
  kRunEnd,          ///< simulation drained; totals attached
  kAppArrival,      ///< open-loop serving: an application arrives at the gate
  kAdmission,       ///< open-loop serving: admission verdict (admit/defer/drop)
};

inline constexpr std::size_t kEventTypeCount = 16;

/// Stable lower-snake-case name used in JSONL/Chrome traces.
std::string_view to_string(EventType type);

/// Inverse of to_string (trace parsing). Returns false when `name` is not a
/// known event-type name; `out` is untouched in that case.
bool event_type_from_string(std::string_view name, EventType& out);

struct Event {
  /// One typed key/value attribute. Keys MUST be string literals (or other
  /// storage whose address and content outlive the sink): sinks write them
  /// verbatim (no JSON escaping — keys must not need any) and memoize
  /// formatted fields by key pointer identity. String *values* are views —
  /// see the lifetime contract in the file comment.
  struct Field {
    std::string_view key;
    std::variant<std::int64_t, double, std::string_view> value;
  };

  /// Inline field capacity. The widest engine event (kExecutorSpawn) carries
  /// 15 fields; with() silently drops fields past this limit
  /// (tests/test_emission_alloc.cpp pins that behavior), so widen this when
  /// adding a 17th field to any emission site.
  static constexpr std::size_t kMaxFields = 16;

  Seconds t = 0;
  EventType type = EventType::kRunStart;

  Event(Seconds time, EventType event_type) : t(time), type(event_type) {}

  /// Fluent attribute builders; `with("node", 3).with("reserved", 12.5)`.
  Event& with(std::string_view key, std::int64_t v) { return push(key, v); }
  Event& with(std::string_view key, int v) { return with(key, static_cast<std::int64_t>(v)); }
  Event& with(std::string_view key, std::size_t v) {
    return with(key, static_cast<std::int64_t>(v));
  }
  Event& with(std::string_view key, bool v) { return with(key, static_cast<std::int64_t>(v)); }
  Event& with(std::string_view key, double v) { return push(key, v); }
  Event& with(std::string_view key, std::string_view v) { return push(key, v); }
  Event& with(std::string_view key, const char* v) { return push(key, std::string_view(v)); }
  /// Lvalue std::strings are viewed, not copied (the lifetime contract makes
  /// this safe); rvalues are deleted — a temporary built *before* the Event
  /// in a statement would dangle by emit time. Bind it to a local first.
  Event& with(std::string_view key, const std::string& v) {
    return push(key, std::string_view(v));
  }
  Event& with(std::string_view key, std::string&& v) = delete;

  const Field* begin() const { return std::launder(reinterpret_cast<const Field*>(storage_)); }
  const Field* end() const { return begin() + n_fields_; }
  std::size_t size() const { return n_fields_; }

  /// Value of a field, or nullptr if absent (test/diagnostic helper).
  const Field* find(std::string_view key) const {
    for (const Field& f : *this)
      if (f.key == key) return &f;
    return nullptr;
  }

 private:
  template <class V>
  Event& push(std::string_view key, V v) {
    if (n_fields_ < kMaxFields)
      ::new (static_cast<void*>(storage_ + n_fields_++ * sizeof(Field))) Field{key, v};
    return *this;
  }

  // Fields live in raw storage, constructed by push() (the std::vector
  // idiom): an Event is built on the hot path for every traced engine
  // transition, and default-constructing kMaxFields variants would zero 384
  // bytes per event only to overwrite them. Safe because Field is trivially
  // copyable and trivially destructible — asserted below, since both are
  // what lets the implicit copy/destructor treat storage_ as plain bytes.
  alignas(Field) unsigned char storage_[kMaxFields * sizeof(Field)];
  std::size_t n_fields_ = 0;
};

static_assert(std::is_trivially_copyable_v<Event::Field> &&
              std::is_trivially_destructible_v<Event::Field>);

/// A deep copy of an Event for sinks that retain events past emit(): keys and
/// string values are copied into owned std::strings. view() re-materialises a
/// transient Event whose string_views point into this object's storage — the
/// view is valid while the OwnedEvent is alive and its fields unmodified.
class OwnedEvent {
 public:
  struct Field {
    std::string key;
    std::variant<std::int64_t, double, std::string> value;
  };

  Seconds t = 0;
  EventType type = EventType::kRunStart;
  std::vector<Field> fields;

  OwnedEvent() = default;
  explicit OwnedEvent(const Event& e) : t(e.t), type(e.type) {
    fields.reserve(e.size());
    for (const Event::Field& f : e) {
      Field copy{std::string(f.key), std::int64_t{0}};
      if (const auto* i = std::get_if<std::int64_t>(&f.value)) {
        copy.value = *i;
      } else if (const auto* d = std::get_if<double>(&f.value)) {
        copy.value = *d;
      } else {
        copy.value = std::string(std::get<std::string_view>(f.value));
      }
      fields.push_back(std::move(copy));
    }
  }

  Field* find(std::string_view key) {
    for (Field& f : fields)
      if (f.key == key) return &f;
    return nullptr;
  }
  const Field* find(std::string_view key) const {
    for (const Field& f : fields)
      if (f.key == key) return &f;
    return nullptr;
  }

  Event view() const {
    Event e(t, type);
    for (const Field& f : fields) {
      if (const auto* i = std::get_if<std::int64_t>(&f.value)) {
        e.with(f.key, *i);
      } else if (const auto* d = std::get_if<double>(&f.value)) {
        e.with(f.key, *d);
      } else {
        e.with(f.key, std::string_view(std::get<std::string>(f.value)));
      }
    }
    return e;
  }
};

}  // namespace smoe::obs
