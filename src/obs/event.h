// Structured simulator events: the typed vocabulary every EventSink consumes.
//
// An Event is a (sim-time, type, fields) triple. Timestamps are *simulated*
// seconds — never wall-clock — so a trace is a pure function of the run's
// inputs and SimConfig::seed, and two identically-seeded runs produce
// byte-identical traces (tests/test_obs.cpp asserts this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/units.h"

namespace smoe::obs {

/// Everything the cluster simulator can report. One enumerator per state
/// transition; sinks may filter on type.
enum class EventType : std::uint8_t {
  kRunStart,        ///< simulation begins (config summary)
  kAppSubmit,       ///< application enters the system at t = 0
  kProfilingStart,  ///< feature/calibration profiling begins on the coordinator
  kProfilingEnd,    ///< profiling window elapsed; application is dispatchable
  kDispatch,        ///< dispatcher decision: chosen node, reservation, and the
                    ///< monitor's (stale) view that justified it
  kExecutorSpawn,   ///< executor starts processing its chunk
  kExecutorSpill,   ///< default-heap executor exceeds its heap and spills
  kExecutorThrash,  ///< predictive executor overshoots its heap and GC-thrashes
  kExecutorOom,     ///< predictive executor dies; chunk lost (Section 2.3)
  kExecutorFinish,  ///< executor drained its chunk and released its node share
  kIsolatedRerun,   ///< an OOM'd chunk re-runs alone on a whole node
  kMonitorReport,   ///< periodic resource-monitor tick (Section 4.2)
  kAppFinish,       ///< last item of an application processed
  kRunEnd,          ///< simulation drained; totals attached
};

inline constexpr std::size_t kEventTypeCount = 14;

/// Stable lower-snake-case name used in JSONL/Chrome traces.
std::string_view to_string(EventType type);

struct Event {
  /// One typed key/value attribute. Keys are expected to be string literals
  /// (they are not copied); values are copied into the event.
  struct Field {
    std::string_view key;
    std::variant<std::int64_t, double, std::string> value;
  };

  Seconds t = 0;
  EventType type = EventType::kRunStart;
  std::vector<Field> fields;

  Event(Seconds time, EventType event_type) : t(time), type(event_type) {}

  /// Fluent attribute builders; `with("node", 3).with("reserved", 12.5)`.
  Event& with(std::string_view key, std::int64_t v) {
    fields.push_back({key, v});
    return *this;
  }
  Event& with(std::string_view key, int v) { return with(key, static_cast<std::int64_t>(v)); }
  Event& with(std::string_view key, std::size_t v) {
    return with(key, static_cast<std::int64_t>(v));
  }
  Event& with(std::string_view key, bool v) { return with(key, static_cast<std::int64_t>(v)); }
  Event& with(std::string_view key, double v) {
    fields.push_back({key, v});
    return *this;
  }
  Event& with(std::string_view key, std::string v) {
    fields.push_back({key, std::move(v)});
    return *this;
  }
  Event& with(std::string_view key, std::string_view v) { return with(key, std::string(v)); }
  Event& with(std::string_view key, const char* v) { return with(key, std::string(v)); }

  /// Value of a field, or nullptr if absent (test/diagnostic helper).
  const Field* find(std::string_view key) const {
    for (const Field& f : fields)
      if (f.key == key) return &f;
    return nullptr;
  }
};

}  // namespace smoe::obs
