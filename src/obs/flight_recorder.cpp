#include "obs/flight_recorder.h"

#include <fstream>

#include "common/error.h"

namespace smoe::obs {

FlightRecorder::FlightRecorder(std::size_t capacity) : cap_(capacity) {
  SMOE_REQUIRE(capacity > 0, "FlightRecorder: capacity must be positive");
  ring_.reserve(capacity);
}

void FlightRecorder::emit(const Event& event) {
  ++seen_;
  if (ring_.size() < cap_) {
    ring_.emplace_back(event);
    return;
  }
  ring_[next_] = OwnedEvent(event);
  next_ = (next_ + 1) % cap_;
}

void FlightRecorder::clear() {
  // Forgets the retained events only; total_seen() keeps counting across
  // clears so postmortems can report how much stream preceded the dump.
  ring_.clear();
  next_ = 0;
}

std::vector<const OwnedEvent*> FlightRecorder::events() const {
  std::vector<const OwnedEvent*> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, next_ is the oldest retained event.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(&ring_[(next_ + i) % ring_.size()]);
  return out;
}

void FlightRecorder::dump_jsonl(std::ostream& os) const {
  // Re-emitting the owned events through a JsonlSink reproduces the exact
  // trace formatting (memo tables included); the OwnedEvents outlive the
  // sink, satisfying the Event string-view lifetime contract.
  JsonlSink sink(os);
  for (const OwnedEvent* e : events()) sink.emit(e->view());
  sink.close();
}

bool FlightRecorder::dump_to_file(const std::filesystem::path& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os.is_open()) return false;
  dump_jsonl(os);
  return os.good();
}

}  // namespace smoe::obs
