// Event sinks: where the simulator's structured events go.
//
//   NullSink        — discards everything; `enabled()` is false so emitters
//                     can skip building events entirely (zero-cost-when-off).
//   CountingSink    — per-type counters; cheap always-on production telemetry.
//   JsonlSink       — one JSON object per line, deterministic formatting.
//   ChromeTraceSink — Chrome/Perfetto trace_event JSON array; executors are
//                     rendered as duration slices per node track, everything
//                     else as instant events. Load via chrome://tracing or
//                     https://ui.perfetto.dev.
//   TeeSink         — fan out to two sinks (e.g. count and write a file).
//
// Sinks are passive observers: emitting to any sink (including none) must not
// change simulation results.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "obs/event.h"

namespace smoe::obs {

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// False when emissions are discarded unseen; emitters may use this to
  /// skip constructing Event objects altogether.
  virtual bool enabled() const { return true; }

  virtual void emit(const Event& event) = 0;

  /// Finish any buffered output (closing brackets, stream flush). Safe to
  /// call more than once; called by the destructor of buffering sinks.
  virtual void close() {}
};

/// The do-nothing sink. `null_sink()` returns a shared instance so callers
/// can hold an `EventSink&` unconditionally.
class NullSink final : public EventSink {
 public:
  bool enabled() const override { return false; }
  void emit(const Event&) override {}
};

NullSink& null_sink();

/// Counts emissions per event type.
class CountingSink final : public EventSink {
 public:
  void emit(const Event& event) override;

  std::uint64_t count(EventType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }
  std::uint64_t total() const { return total_; }
  /// Number of event types seen at least once.
  std::size_t distinct_types() const;

 private:
  std::array<std::uint64_t, kEventTypeCount> counts_{};
  std::uint64_t total_ = 0;
};

/// Capacity of the internal output buffer writing sinks accumulate into
/// before touching the ostream. One bulk write() per ~1 MiB replaces one
/// formatted insertion per event, which dominates traced-run overhead.
inline constexpr std::size_t kSinkBufferBytes = 1 << 20;

/// One JSON object per line: {"t":12.5,"type":"executor_spawn","node":3,...}.
/// Numbers are formatted with std::to_chars (shortest round-trip), strings
/// are JSON-escaped; output is byte-deterministic for a deterministic run.
///
/// Output is buffered (~1 MiB); the buffer drains on overflow, on close(),
/// and on kRunEnd — so a caller holding the underlying stream sees the
/// complete trace of a finished run without having to destroy the sink.
class JsonlSink final : public EventSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) { buf_.reserve(kSinkBufferBytes); }
  ~JsonlSink() override { close(); }

  void emit(const Event& event) override;
  void close() override {
    flush();
    os_.flush();
  }

 private:
  void flush();

  std::ostream& os_;
  std::string buf_;
};

/// Chrome trace_event format: a JSON array of {"name","ph","ts","pid","tid"}
/// objects. `ts` is microseconds of sim-time; `pid` 0 is the cluster, `tid`
/// is the node id (or -1 for cluster-scoped events). kExecutorSpawn opens a
/// "B" slice on the node's track which the matching finish/OOM closes.
/// Buffered like JsonlSink (the array is only well-formed after close(), so
/// only overflow and close() drain the buffer here).
class ChromeTraceSink final : public EventSink {
 public:
  explicit ChromeTraceSink(std::ostream& os) : os_(os) {
    buf_.reserve(kSinkBufferBytes);
    buf_ += "[\n";
  }
  ~ChromeTraceSink() override { close(); }

  void emit(const Event& event) override;
  void close() override;

 private:
  std::ostream& os_;
  std::string buf_;
  bool first_ = true;
  bool closed_ = false;

  void begin_record();
  void flush();
};

/// Forwards every event to both sinks. Enabled if either is.
class TeeSink final : public EventSink {
 public:
  TeeSink(EventSink& a, EventSink& b) : a_(a), b_(b) {}

  bool enabled() const override { return a_.enabled() || b_.enabled(); }
  void emit(const Event& event) override {
    a_.emit(event);
    b_.emit(event);
  }
  void close() override {
    a_.close();
    b_.close();
  }

 private:
  EventSink& a_;
  EventSink& b_;
};

namespace detail {
/// Append a JSON-escaped string (including the surrounding quotes).
void append_json_string(std::string& out, std::string_view s);
/// Append a double with shortest round-trip formatting ("1e+300" style kept
/// valid JSON; NaN/Inf — which valid events never carry — become null).
void append_json_number(std::string& out, double v);
void append_json_number(std::string& out, std::int64_t v);
}  // namespace detail

}  // namespace smoe::obs
