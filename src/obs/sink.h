// Event sinks: where the simulator's structured events go.
//
//   NullSink        — discards everything; `enabled()` is false so emitters
//                     can skip building events entirely (zero-cost-when-off).
//   CountingSink    — per-type counters; cheap always-on production telemetry.
//   JsonlSink       — one JSON object per line, deterministic formatting.
//   ChromeTraceSink — Chrome/Perfetto trace_event JSON array; executors are
//                     rendered as duration slices per node track, everything
//                     else as instant events. Load via chrome://tracing or
//                     https://ui.perfetto.dev.
//   TeeSink         — fan out to two sinks (e.g. count and write a file).
//
// Sinks are passive observers: emitting to any sink (including none) must not
// change simulation results. Writing sinks format events directly into their
// output buffer (record now, format later — the Event itself never owns
// strings) and may optionally hand full buffers to a background AsyncWriter
// thread; the byte stream is identical either way.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "obs/event.h"

namespace smoe::obs {

class AsyncWriter;

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// False when emissions are discarded unseen; emitters may use this to
  /// skip constructing Event objects altogether.
  virtual bool enabled() const { return true; }

  virtual void emit(const Event& event) = 0;

  /// Finish any buffered output (closing brackets, stream flush). Safe to
  /// call more than once; called by the destructor of buffering sinks.
  virtual void close() {}
};

/// The do-nothing sink. `null_sink()` returns a shared instance so callers
/// can hold an `EventSink&` unconditionally.
class NullSink final : public EventSink {
 public:
  bool enabled() const override { return false; }
  void emit(const Event&) override {}
};

NullSink& null_sink();

/// Counts emissions per event type.
class CountingSink final : public EventSink {
 public:
  void emit(const Event& event) override;

  std::uint64_t count(EventType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }
  std::uint64_t total() const { return total_; }
  /// Number of event types seen at least once.
  std::size_t distinct_types() const;

 private:
  std::array<std::uint64_t, kEventTypeCount> counts_{};
  std::uint64_t total_ = 0;
};

/// Capacity of the internal output buffer writing sinks accumulate into
/// before touching the ostream. One bulk write() per ~1 MiB replaces one
/// formatted insertion per event, which dominates traced-run overhead.
inline constexpr std::size_t kSinkBufferBytes = 1 << 20;

/// Tuning knobs shared by the writing sinks.
struct SinkOptions {
  /// Output buffer capacity before the stream is touched. Tests shrink this
  /// to force mid-run drains.
  std::size_t buffer_bytes = kSinkBufferBytes;
  /// Hand full buffers to a background writer thread so file I/O overlaps
  /// simulation. Drain order is FIFO, bytes identical to synchronous mode;
  /// close() blocks until everything is on the stream.
  bool async_io = false;
};

namespace detail {
/// Append the JSON escaping of `s` without the surrounding quotes (used to
/// compose quoted names out of several pieces without a temporary string).
void append_json_escaped(std::string& out, std::string_view s);
/// Append a JSON-escaped string (including the surrounding quotes).
void append_json_string(std::string& out, std::string_view s);
/// Append a double with shortest round-trip formatting ("1e+300" style kept
/// valid JSON; NaN/Inf — which valid events never carry — become null).
void append_json_number(std::string& out, double v);
void append_json_number(std::string& out, std::int64_t v);

/// Cursor-style formatters for the sink hot path: write at `p`, return the
/// new cursor. The caller guarantees capacity (see the scratch-bound logic in
/// sink.cpp). Byte output is identical to the append_json_* helpers above —
/// tests/test_obs.cpp pins that equivalence on random values.
char* write_json_escaped(char* p, std::string_view s);
char* write_json_double(char* p, double v);
char* write_json_int(char* p, std::int64_t v);

/// Memo of recently formatted doubles, keyed on the exact bit pattern.
/// Simulator traces repeat values heavily (timestamps shared by co-located
/// events, per-node gauges, config constants): a small direct-mapped table
/// turns ~90% of shortest-round-trip conversions into a fixed-size copy.
/// One memo per sink — sinks are single-threaded by contract.
struct DoubleMemo {
  static constexpr std::size_t kSlots = 2048;  // power of two
  struct Entry {
    std::uint64_t bits = 0;
    std::uint8_t len = 0;  // 0 = empty slot ("" is never a formatted number)
    char text[24];         // longest to_chars double is 24 chars
  };
  std::array<Entry, kSlots> slots{};
};
char* write_json_double(char* p, double v, DoubleMemo& memo);

/// Memo of whole formatted numeric fields: `"key":value` bytes keyed on
/// (key pointer, value bits, variant tag). Event keys are string literals by
/// contract, so pointer identity implies content identity and a hit replaces
/// key copy + number formatting with one fixed-size copy. String-valued
/// fields are never memoized (their data pointers are not stable).
struct FieldMemo {
  static constexpr std::size_t kSlots = 2048;  // power of two
  struct Entry {  // 64 bytes: one cache line per lookup
    const char* key = nullptr;
    std::uint64_t bits = 0;
    std::uint8_t len = 0;  // 0 = empty slot
    std::uint8_t tag = 0;  // variant index + 1
    char text[46];         // '"' + key + '":' + number; longer fields skip the memo
  };
  std::array<Entry, kSlots> slots{};
};
}  // namespace detail

/// One JSON object per line: {"t":12.5,"type":"executor_spawn","node":3,...}.
/// Numbers are formatted with std::to_chars (shortest round-trip), strings
/// are JSON-escaped; output is byte-deterministic for a deterministic run.
///
/// Output is buffered (~1 MiB); the buffer drains on overflow, on close(),
/// and on kRunEnd — so a caller holding the underlying stream sees the
/// complete trace of a finished run without having to destroy the sink.
class JsonlSink final : public EventSink {
 public:
  explicit JsonlSink(std::ostream& os, SinkOptions opts = {});
  ~JsonlSink() override;

  void emit(const Event& event) override;
  void close() override;

 private:
  void flush();
  /// String-append fallback for records too large for the stack scratch
  /// buffer (pathologically long keys or string values). Same bytes.
  void emit_slow(const Event& event);

  std::ostream& os_;
  SinkOptions opts_;
  std::string buf_;
  std::unique_ptr<AsyncWriter> writer_;
  detail::DoubleMemo memo_;
  detail::FieldMemo field_memo_;
};

/// Chrome trace_event format: a JSON array of {"name","ph","ts","pid","tid"}
/// objects. `ts` is microseconds of sim-time; `pid` 0 is the cluster, `tid`
/// is the node id (or -1 for cluster-scoped events). kExecutorSpawn opens a
/// "B" slice on the node's track which the matching finish/OOM closes.
/// Buffered like JsonlSink (the array is only well-formed after close(), so
/// only overflow and close() drain the buffer here).
class ChromeTraceSink final : public EventSink {
 public:
  explicit ChromeTraceSink(std::ostream& os, SinkOptions opts = {});
  ~ChromeTraceSink() override;

  void emit(const Event& event) override;
  void close() override;

 private:
  std::ostream& os_;
  SinkOptions opts_;
  std::string buf_;
  std::unique_ptr<AsyncWriter> writer_;
  detail::DoubleMemo memo_;
  detail::FieldMemo field_memo_;
  bool first_ = true;
  bool closed_ = false;

  void begin_record();
  void flush();
  /// String-append fallback for records too large for the stack scratch
  /// buffer. Same bytes.
  void emit_slow(const Event& event);
};

/// Forwards every event to both sinks. Enabled if either is.
class TeeSink final : public EventSink {
 public:
  TeeSink(EventSink& a, EventSink& b) : a_(a), b_(b) {}

  bool enabled() const override { return a_.enabled() || b_.enabled(); }
  void emit(const Event& event) override {
    a_.emit(event);
    b_.emit(event);
  }
  void close() override {
    a_.close();
    b_.close();
  }

 private:
  EventSink& a_;
  EventSink& b_;
};

}  // namespace smoe::obs
