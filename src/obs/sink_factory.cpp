#include "obs/sink_factory.h"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace smoe::obs {

namespace {

/// An EventSink that owns its output file: the wrapped formatting sink is
/// destroyed (and therefore flushed) before the stream.
class OwningFileSink final : public EventSink {
 public:
  OwningFileSink(const std::filesystem::path& path, bool chrome, SinkOptions opts)
      : os_(path, std::ios::binary) {
    if (!os_) throw std::runtime_error("FileSinkFactory: cannot open " + path.string());
    if (chrome)
      inner_ = std::make_unique<ChromeTraceSink>(os_, opts);
    else
      inner_ = std::make_unique<JsonlSink>(os_, opts);
  }
  ~OwningFileSink() override { close(); }

  void emit(const Event& event) override { inner_->emit(event); }
  void close() override { inner_->close(); }

 private:
  std::ofstream os_;
  std::unique_ptr<EventSink> inner_;
};

}  // namespace

FileSinkFactory::FileSinkFactory(std::filesystem::path dir, Options opts)
    : dir_(std::move(dir)), opts_(opts) {
  std::filesystem::create_directories(dir_);
}

std::string FileSinkFactory::sanitize(std::string_view label) {
  std::string out(label);
  for (char& c : out) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

std::vector<std::filesystem::path> FileSinkFactory::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

std::unique_ptr<EventSink> FileSinkFactory::make(std::string_view label) {
  std::string stem = sanitize(label);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t n = ++uses_[stem];
    if (n > 1) stem += "." + std::to_string(n);
  }
  std::filesystem::path path = dir_ / (stem + (opts_.chrome ? ".trace.json" : ".jsonl"));
  auto sink = std::make_unique<OwningFileSink>(path, opts_.chrome, opts_.sink);
  {
    std::lock_guard<std::mutex> lock(mu_);
    created_.push_back(std::move(path));
  }
  return sink;
}

}  // namespace smoe::obs
