#include "obs/window.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace smoe::obs {

// ---- P2Quantile -----------------------------------------------------------

P2Quantile::P2Quantile(double prob) : prob_(prob) {
  SMOE_REQUIRE(prob > 0.0 && prob < 1.0, "P2Quantile: prob must lie in (0, 1)");
}

void P2Quantile::observe(double x) {
  if (!std::isfinite(x)) return;  // see header: NaN would poison the markers
  if (n_ < 5) {
    q_[n_++] = x;
    if (n_ == 5) {
      std::sort(q_, q_ + 5);
      // Desired positions after the initial five observations and their
      // per-observation increments (Jain & Chlamtac, Table I).
      des_[0] = 1;
      des_[1] = 1 + 2 * prob_;
      des_[2] = 1 + 4 * prob_;
      des_[3] = 3 + 2 * prob_;
      des_[4] = 5;
      inc_[0] = 0;
      inc_[1] = prob_ / 2;
      inc_[2] = prob_;
      inc_[3] = (1 + prob_) / 2;
      inc_[4] = 1;
    }
    return;
  }

  // Cell k such that q_[k] <= x < q_[k+1]; the extremes absorb outliers.
  std::size_t k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = std::max(q_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && q_[k + 1] <= x) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1;
  for (std::size_t i = 0; i < 5; ++i) des_[i] += inc_[i];
  ++n_;

  // Adjust the three interior markers toward their desired positions with
  // the piecewise-parabolic (P²) prediction, falling back to linear when the
  // parabola would leave the bracketing heights.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = des_[i] - pos_[i];
    if ((d >= 1 && pos_[i + 1] - pos_[i] > 1) || (d <= -1 && pos_[i - 1] - pos_[i] < -1)) {
      const double s = d >= 1 ? 1.0 : -1.0;
      const double qp =
          q_[i] + s / (pos_[i + 1] - pos_[i - 1]) *
                      ((pos_[i] - pos_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                           (pos_[i + 1] - pos_[i]) +
                       (pos_[i + 1] - pos_[i] - s) * (q_[i] - q_[i - 1]) /
                           (pos_[i] - pos_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {
        const std::size_t j = static_cast<std::size_t>(static_cast<double>(i) + s);
        q_[i] = q_[i] + s * (q_[j] - q_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ <= 5) {
    // At n_ == 5 the markers are exactly the sorted sample, so the
    // interpolated sample quantile below is still exact.
    // Exact linear-interpolated sample quantile over the buffered values.
    double sorted[5];
    std::copy(q_, q_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    const double rank = prob_ * static_cast<double>(n_ - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, static_cast<std::size_t>(n_ - 1));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return q_[2];
}

// ---- QuantileEstimator ----------------------------------------------------

QuantileEstimator::QuantileEstimator(std::vector<double> probs) : probs_(std::move(probs)) {
  SMOE_REQUIRE(!probs_.empty(), "QuantileEstimator: needs at least one prob");
  SMOE_REQUIRE(std::is_sorted(probs_.begin(), probs_.end()) &&
                   std::adjacent_find(probs_.begin(), probs_.end()) == probs_.end(),
               "QuantileEstimator: probs must be strictly increasing");
  estimators_.reserve(probs_.size());
  for (const double p : probs_) estimators_.emplace_back(p);
}

void QuantileEstimator::observe(double v) {
  if (!std::isfinite(v)) return;  // see header: would pin min/max, poison sum
  for (P2Quantile& e : estimators_) e.observe(v);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

std::vector<double> QuantileEstimator::estimates() const {
  std::vector<double> out;
  out.reserve(estimators_.size());
  for (const P2Quantile& e : estimators_) out.push_back(e.value());
  return out;
}

// ---- WindowedRate ---------------------------------------------------------

WindowedRate::WindowedRate(double window_seconds, std::size_t n_buckets)
    : window_(window_seconds),
      bucket_width_(window_seconds / static_cast<double>(n_buckets)),
      buckets_(n_buckets) {
  SMOE_REQUIRE(window_seconds > 0 && std::isfinite(window_seconds),
               "WindowedRate: window must be positive and finite");
  SMOE_REQUIRE(n_buckets >= 2, "WindowedRate: needs at least two buckets");
}

void WindowedRate::advance_to(std::int64_t bucket) {
  if (cur_bucket_ < 0) {
    cur_bucket_ = bucket;
    return;
  }
  // Clear every bucket the clock passed over; a jump past a whole window
  // clears the ring once rather than iterating bucket-by-bucket.
  const std::int64_t steps = bucket - cur_bucket_;
  if (steps >= static_cast<std::int64_t>(buckets_.size())) {
    for (Bucket& b : buckets_) b = Bucket{};
  } else {
    for (std::int64_t s = 1; s <= steps; ++s) {
      const std::size_t idx =
          static_cast<std::size_t>((cur_bucket_ + s) % static_cast<std::int64_t>(buckets_.size()));
      buckets_[idx] = Bucket{};
    }
  }
  cur_bucket_ = bucket;
}

std::int64_t WindowedRate::bucket_index(double t) {
  double rel = (t - origin_) / bucket_width_;
  // Far beyond the ring span *and* beyond what int64 bucket arithmetic can
  // express: rebase the origin at t. The ring would be fully cleared by any
  // jump past the window anyway, so rebasing loses nothing — and the cast
  // below stays in range instead of being undefined behavior.
  constexpr double kMaxBucket = 4.0e18;  // < 2^62, leaves headroom for +size
  if (rel > kMaxBucket) {
    origin_ = t;
    for (Bucket& b : buckets_) b = Bucket{};
    cur_bucket_ = -1;
    rel = 0;
  }
  return static_cast<std::int64_t>(rel);
}

void WindowedRate::advance_time(double t) {
  SMOE_REQUIRE(std::isfinite(t) && t >= 0, "WindowedRate: time must be finite and >= 0");
  t = std::max(t, last_t_);  // simulated clocks are non-decreasing
  last_t_ = t;
  const std::int64_t bucket = bucket_index(t);
  if (cur_bucket_ < 0) {
    // No observation yet (or just rebased): nothing to expire, and leaving
    // cur_bucket_ unset keeps the next add()'s first-bucket behavior.
    return;
  }
  advance_to(bucket);
}

void WindowedRate::add(double t, double value) {
  SMOE_REQUIRE(std::isfinite(t) && t >= 0, "WindowedRate: time must be finite and >= 0");
  t = std::max(t, last_t_);  // simulated clocks are non-decreasing
  last_t_ = t;
  advance_to(bucket_index(t));
  Bucket& b = buckets_[static_cast<std::size_t>(cur_bucket_ %
                                                static_cast<std::int64_t>(buckets_.size()))];
  b.count += 1;
  b.sum += value;
  ++total_count_;
  total_sum_ += value;
}

std::uint64_t WindowedRate::window_count() const {
  std::uint64_t n = 0;
  for (const Bucket& b : buckets_) n += b.count;
  return n;
}

double WindowedRate::window_sum() const {
  double s = 0;
  for (const Bucket& b : buckets_) s += b.sum;
  return s;
}

}  // namespace smoe::obs
