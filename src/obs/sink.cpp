#include "obs/sink.h"

#include <charconv>
#include <cmath>
#include <cstring>

#include "obs/async_writer.h"

namespace smoe::obs {

std::string_view to_string(EventType type) {
  switch (type) {
    case EventType::kRunStart: return "run_start";
    case EventType::kAppSubmit: return "app_submit";
    case EventType::kProfilingStart: return "profiling_start";
    case EventType::kProfilingEnd: return "profiling_end";
    case EventType::kDispatch: return "dispatch";
    case EventType::kExecutorSpawn: return "executor_spawn";
    case EventType::kExecutorSpill: return "executor_spill";
    case EventType::kExecutorThrash: return "executor_thrash";
    case EventType::kExecutorOom: return "executor_oom";
    case EventType::kExecutorFinish: return "executor_finish";
    case EventType::kIsolatedRerun: return "isolated_rerun";
    case EventType::kMonitorReport: return "monitor_report";
    case EventType::kAppFinish: return "app_finish";
    case EventType::kRunEnd: return "run_end";
    case EventType::kAppArrival: return "app_arrival";
    case EventType::kAdmission: return "admission";
  }
  return "unknown";
}

bool event_type_from_string(std::string_view name, EventType& out) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto type = static_cast<EventType>(i);
    if (to_string(type) == name) {
      out = type;
      return true;
    }
  }
  return false;
}

namespace detail {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  append_json_escaped(out, s);
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_json_number(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

char* write_json_escaped(char* p, std::string_view s) {
  const char* q = s.data();
  std::size_t n = s.size();
  // Bulk path: copy 8 bytes speculatively and keep them whenever the word is
  // free of bytes needing escape (quote, backslash, < 0x20), detected with
  // branch-free SWAR tests. Almost every key and value is clean, so the
  // per-character loop below only runs on the rare dirty tail.
  constexpr std::uint64_t kOnes = 0x0101010101010101ull;
  constexpr std::uint64_t kHighs = 0x8080808080808080ull;
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, q, 8);
    std::memcpy(p, q, 8);
    const std::uint64_t ctrl = (w - 0x2020202020202020ull) & ~w & kHighs;
    const std::uint64_t xq = w ^ 0x2222222222222222ull;  // '"' == 0x22
    const std::uint64_t quote = (xq - kOnes) & ~xq & kHighs;
    const std::uint64_t xb = w ^ 0x5c5c5c5c5c5c5c5cull;  // '\\' == 0x5c
    const std::uint64_t bslash = (xb - kOnes) & ~xb & kHighs;
    if ((ctrl | quote | bslash) != 0) break;
    p += 8;
    q += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++q) {
    const char c = *q;
    switch (c) {
      case '"': p = static_cast<char*>(std::memcpy(p, "\\\"", 2)) + 2; break;
      case '\\': p = static_cast<char*>(std::memcpy(p, "\\\\", 2)) + 2; break;
      case '\n': p = static_cast<char*>(std::memcpy(p, "\\n", 2)) + 2; break;
      case '\r': p = static_cast<char*>(std::memcpy(p, "\\r", 2)) + 2; break;
      case '\t': p = static_cast<char*>(std::memcpy(p, "\\t", 2)) + 2; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          p = static_cast<char*>(std::memcpy(p, "\\u00", 4)) + 4;
          *p++ = kHex[(c >> 4) & 0xf];
          *p++ = kHex[c & 0xf];
        } else {
          *p++ = c;
        }
    }
  }
  return p;
}

char* write_json_int(char* p, std::int64_t v) {
  // Trace ints are mostly ids, counts and bools: ~87% fit in two digits.
  // Same bytes as to_chars, minus its general-case division loop.
  if (v >= 0 && v < 10) {
    *p++ = static_cast<char>('0' + v);
    return p;
  }
  if (v >= 10 && v < 100) {
    *p++ = static_cast<char>('0' + v / 10);
    *p++ = static_cast<char>('0' + v % 10);
    return p;
  }
  return std::to_chars(p, p + 24, v).ptr;
}

char* write_json_double(char* p, double v) {
  if (!std::isfinite(v)) {
    std::memcpy(p, "null", 4);
    return p + 4;
  }
  return std::to_chars(p, p + 24, v).ptr;
}

char* write_json_double(char* p, double v, DoubleMemo& memo) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  DoubleMemo::Entry& e =
      memo.slots[(bits * 0x9e3779b97f4a7c15ull) >> (64 - 11)];  // kSlots == 2^11
  static_assert(DoubleMemo::kSlots == std::size_t{1} << 11);
  if (e.bits == bits && e.len != 0) {
    // Fixed-size copy (the real length is in e.len): three unconditional
    // 8-byte moves beat a variable-length memcpy.
    std::memcpy(p, e.text, 24);
    return p + e.len;
  }
  char* const end = write_json_double(p, v);
  e.bits = bits;
  e.len = static_cast<std::uint8_t>(end - p);
  std::memcpy(e.text, p, 24);
  return end;
}

namespace {

void append_field_value(std::string& out, const Event::Field& f) {
  if (const auto* i = std::get_if<std::int64_t>(&f.value)) {
    append_json_number(out, *i);
  } else if (const auto* d = std::get_if<double>(&f.value)) {
    append_json_number(out, *d);
  } else {
    append_json_string(out, std::get<std::string_view>(f.value));
  }
}

}  // namespace
}  // namespace detail

NullSink& null_sink() {
  static NullSink sink;
  return sink;
}

void CountingSink::emit(const Event& event) {
  ++counts_[static_cast<std::size_t>(event.type)];
  ++total_;
}

std::size_t CountingSink::distinct_types() const {
  std::size_t n = 0;
  for (const std::uint64_t c : counts_)
    if (c > 0) ++n;
  return n;
}

JsonlSink::JsonlSink(std::ostream& os, SinkOptions opts) : os_(os), opts_(opts) {
  buf_.reserve(opts_.buffer_bytes);
  if (opts_.async_io) writer_ = std::make_unique<AsyncWriter>(os_, opts_.buffer_bytes);
}

JsonlSink::~JsonlSink() { close(); }

namespace {

/// Stack scratch for one formatted record. Re-used every emit, so it stays
/// L1-resident (a larger batching area measured slower: it rotates stores
/// across cold lines). Records that might not fit (only pathologically long
/// keys or values) take the string-append slow path.
constexpr std::size_t kScratchBytes = 4096;

inline char* write_raw(char* p, std::string_view s) {
  std::memcpy(p, s.data(), s.size());
  return p + s.size();
}

/// Pre-formatted `,"type":"<name>"` for every event type, so the JSONL hot
/// path replaces a runtime-length name copy with one fixed-size copy. Built
/// without heap allocation (emission must stay allocation-free even for the
/// first traced event); a namespace-scope constant so emit() pays no
/// thread-safe-static guard.
struct TypePrefix {
  char text[32];
  std::uint8_t len = 0;
};

const std::array<TypePrefix, kEventTypeCount> kTypePrefixes = [] {
  std::array<TypePrefix, kEventTypeCount> t{};
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    char* p = t[i].text;
    p = write_raw(p, ",\"type\":\"");
    const std::string_view name = to_string(static_cast<EventType>(i));
    std::memcpy(p, name.data(), name.size());
    p += name.size();
    *p++ = '"';
    t[i].len = static_cast<std::uint8_t>(p - t[i].text);
  }
  return t;
}();

/// Copy for runtime-length short strings (keys, type names). A variable-size
/// memcpy is an out-of-line libc call at -O2; fixed 8-byte chunks plus a byte
/// tail inline to a few moves. Never reads past `s` (unlike an over-copying
/// trick, which would trip ASan on string literals in .rodata).
inline char* write_short(char* p, std::string_view s) {
  const char* q = s.data();
  const std::size_t n = s.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) std::memcpy(p + i, q + i, 8);
  for (; i < n; ++i) p[i] = q[i];
  return p + n;
}

/// `"key":value` (no leading comma). Returns nullptr when the field might
/// not fit the headroom [p, end) — including the memos' fixed-size copies
/// and trailing record punctuation — in which case nothing is committed and
/// the caller must fall back to the whole-record slow path.
///
/// Keys are escape-free literals by contract (see Event::Field), so they are
/// copied verbatim; a key that did need escaping would be escaped by the
/// slow path too, keeping both paths byte-identical for every key the
/// contract admits. Numeric fields go through the field memo (miss: doubles
/// still hit the value-keyed double memo, which has a higher hit rate);
/// string values are escaped inline.
inline char* write_field(char* p, const char* end, const Event::Field& f,
                         detail::FieldMemo& memo, detail::DoubleMemo& dmemo) {
  std::uint64_t bits;
  std::uint8_t tag;
  double dv = 0;
  if (const auto* i = std::get_if<std::int64_t>(&f.value)) {
    bits = static_cast<std::uint64_t>(*i);
    tag = 1;
  } else if (const auto* d = std::get_if<double>(&f.value)) {
    dv = *d;
    std::memcpy(&bits, d, sizeof bits);
    tag = 2;
  } else {
    const std::string_view s = std::get<std::string_view>(f.value);
    if (static_cast<std::size_t>(end - p) < f.key.size() + 6 * s.size() + 16) return nullptr;
    *p++ = '"';
    p = write_short(p, f.key);
    p = write_raw(p, "\":\"");
    p = detail::write_json_escaped(p, s);
    *p++ = '"';
    return p;
  }
  if (static_cast<std::size_t>(end - p) < f.key.size() + 80) return nullptr;

  const char* const kp = f.key.data();
  detail::FieldMemo::Entry& e =
      memo.slots[((bits ^ reinterpret_cast<std::uintptr_t>(kp)) * 0x9e3779b97f4a7c15ull) >>
                 (64 - 11)];  // kSlots == 2^11
  static_assert(detail::FieldMemo::kSlots == std::size_t{1} << 11);
  if (e.key == kp && e.bits == bits && e.tag == tag) {
    std::memcpy(p, e.text, sizeof e.text);  // fixed-size copy; real length in e.len
    return p + e.len;
  }
  char* const start = p;
  *p++ = '"';
  p = write_short(p, f.key);
  *p++ = '"';
  *p++ = ':';
  p = tag == 1 ? detail::write_json_int(p, static_cast<std::int64_t>(bits))
               : detail::write_json_double(p, dv, dmemo);
  const std::size_t len = static_cast<std::size_t>(p - start);
  if (len <= sizeof e.text) {
    e.key = kp;
    e.bits = bits;
    e.tag = tag;
    e.len = static_cast<std::uint8_t>(len);
    std::memcpy(e.text, start, sizeof e.text);
  }
  return p;
}

}  // namespace

void JsonlSink::emit(const Event& event) {
  char scratch[kScratchBytes];
  char* const end = scratch + kScratchBytes;
  char* p = write_raw(scratch, "{\"t\":");
  p = detail::write_json_double(p, event.t, memo_);
  const TypePrefix& tp = kTypePrefixes[static_cast<std::size_t>(event.type)];
  std::memcpy(p, tp.text, sizeof tp.text);  // fixed-size copy; real length in tp.len
  p += tp.len;
  for (const Event::Field& f : event) {
    *p++ = ',';
    p = write_field(p, end, f, field_memo_, memo_);
    if (p == nullptr) {
      emit_slow(event);  // nothing from scratch was committed yet
      return;
    }
  }
  *p++ = '}';
  *p++ = '\n';
  buf_.append(scratch, static_cast<std::size_t>(p - scratch));
  // kRunEnd drains so the trace is complete at end-of-run, not end-of-sink:
  // the fuzz harness and tests read the stream while the sink is still live.
  if (buf_.size() >= opts_.buffer_bytes || event.type == EventType::kRunEnd) flush();
}

void JsonlSink::emit_slow(const Event& event) {
  buf_ += "{\"t\":";
  detail::append_json_number(buf_, event.t);
  buf_ += ",\"type\":";
  detail::append_json_string(buf_, to_string(event.type));
  for (const Event::Field& f : event) {
    buf_ += ',';
    detail::append_json_string(buf_, f.key);
    buf_ += ':';
    detail::append_field_value(buf_, f);
  }
  buf_ += "}\n";
  if (buf_.size() >= opts_.buffer_bytes || event.type == EventType::kRunEnd) flush();
}

void JsonlSink::flush() {
  if (buf_.empty()) return;
  if (writer_) {
    buf_ = writer_->submit(std::move(buf_));
  } else {
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
}

void JsonlSink::close() {
  flush();
  if (writer_) writer_->drain();
  os_.flush();
}

ChromeTraceSink::ChromeTraceSink(std::ostream& os, SinkOptions opts) : os_(os), opts_(opts) {
  buf_.reserve(opts_.buffer_bytes);
  buf_ += "[\n";
  if (opts_.async_io) writer_ = std::make_unique<AsyncWriter>(os_, opts_.buffer_bytes);
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::begin_record() {
  if (!first_) buf_ += ",\n";
  first_ = false;
}

void ChromeTraceSink::flush() {
  if (buf_.empty()) return;
  if (writer_) {
    buf_ = writer_->submit(std::move(buf_));
  } else {
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
}

void ChromeTraceSink::emit(const Event& event) {
  // Executor spawn/finish/OOM become duration slices ("B"/"E") on the node's
  // track; everything else is a process-scoped instant event.
  const char* ph = "i";
  switch (event.type) {
    case EventType::kExecutorSpawn: ph = "B"; break;
    case EventType::kExecutorFinish:
    case EventType::kExecutorOom: ph = "E"; break;
    default: break;
  }

  std::int64_t tid = -1;
  if (const Event::Field* node = event.find("node"))
    if (const auto* i = std::get_if<std::int64_t>(&node->value)) tid = *i;

  // Slice begin/end names must match for the viewer to pair them, so the
  // executor lifecycle events all share the "executor:<benchmark>" name.
  const Event::Field* bench = event.find("benchmark");
  const std::string_view* bench_name =
      bench != nullptr ? std::get_if<std::string_view>(&bench->value) : nullptr;

  // The record header needs ~160 bytes plus the escaped name; the per-field
  // headroom is checked by write_field. The `,\n` separator is formatted
  // into scratch too (not buf_), so bailing to the slow path commits nothing
  // and emit_slow's own begin_record() emits the separator exactly once.
  char scratch[kScratchBytes];
  char* const end = scratch + kScratchBytes;
  if (160 + 6 * (bench_name != nullptr ? bench_name->size() : 0) > kScratchBytes) {
    emit_slow(event);
    return;
  }
  char* p = scratch;
  if (!first_) p = write_raw(p, ",\n");
  p = write_raw(p, "{\"name\":\"");
  p = detail::write_json_escaped(p, ph[0] == 'i' ? to_string(event.type)
                                                 : std::string_view("executor"));
  if (bench_name != nullptr) {
    *p++ = ':';
    p = detail::write_json_escaped(p, *bench_name);
  }
  p = write_raw(p, "\",\"ph\":\"");
  *p++ = ph[0];
  p = write_raw(p, "\",\"ts\":");
  p = detail::write_json_double(p, event.t * 1e6, memo_);  // trace_event ts is in us
  p = write_raw(p, ",\"pid\":0,\"tid\":");
  p = detail::write_json_int(p, tid);
  if (ph[0] == 'i') p = write_raw(p, ",\"s\":\"p\"");
  p = write_raw(p, ",\"args\":{");
  bool first_arg = true;
  for (const Event::Field& f : event) {
    if (!first_arg) *p++ = ',';
    first_arg = false;
    p = write_field(p, end, f, field_memo_, memo_);
    if (p == nullptr) {
      emit_slow(event);
      return;
    }
  }
  *p++ = '}';
  *p++ = '}';
  first_ = false;
  buf_.append(scratch, static_cast<std::size_t>(p - scratch));
  if (buf_.size() >= opts_.buffer_bytes) flush();
}

void ChromeTraceSink::emit_slow(const Event& event) {
  const char* ph = "i";
  switch (event.type) {
    case EventType::kExecutorSpawn: ph = "B"; break;
    case EventType::kExecutorFinish:
    case EventType::kExecutorOom: ph = "E"; break;
    default: break;
  }

  std::int64_t tid = -1;
  if (const Event::Field* node = event.find("node"))
    if (const auto* i = std::get_if<std::int64_t>(&node->value)) tid = *i;

  begin_record();
  buf_ += "{\"name\":\"";
  detail::append_json_escaped(buf_, ph[0] == 'i' ? to_string(event.type)
                                                 : std::string_view("executor"));
  if (const Event::Field* bench = event.find("benchmark"))
    if (const auto* s = std::get_if<std::string_view>(&bench->value)) {
      buf_ += ':';
      detail::append_json_escaped(buf_, *s);
    }
  buf_ += "\",\"ph\":\"";
  buf_ += ph;
  buf_ += "\",\"ts\":";
  detail::append_json_number(buf_, event.t * 1e6);
  buf_ += ",\"pid\":0,\"tid\":";
  detail::append_json_number(buf_, tid);
  if (ph[0] == 'i') buf_ += ",\"s\":\"p\"";
  buf_ += ",\"args\":{";
  bool first_arg = true;
  for (const Event::Field& f : event) {
    if (!first_arg) buf_ += ',';
    first_arg = false;
    detail::append_json_string(buf_, f.key);
    buf_ += ':';
    detail::append_field_value(buf_, f);
  }
  buf_ += "}}";
  if (buf_.size() >= opts_.buffer_bytes) flush();
}

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  buf_ += "\n]\n";
  flush();
  if (writer_) writer_->drain();
  os_.flush();
}

}  // namespace smoe::obs
