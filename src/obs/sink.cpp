#include "obs/sink.h"

#include <charconv>
#include <cmath>

namespace smoe::obs {

std::string_view to_string(EventType type) {
  switch (type) {
    case EventType::kRunStart: return "run_start";
    case EventType::kAppSubmit: return "app_submit";
    case EventType::kProfilingStart: return "profiling_start";
    case EventType::kProfilingEnd: return "profiling_end";
    case EventType::kDispatch: return "dispatch";
    case EventType::kExecutorSpawn: return "executor_spawn";
    case EventType::kExecutorSpill: return "executor_spill";
    case EventType::kExecutorThrash: return "executor_thrash";
    case EventType::kExecutorOom: return "executor_oom";
    case EventType::kExecutorFinish: return "executor_finish";
    case EventType::kIsolatedRerun: return "isolated_rerun";
    case EventType::kMonitorReport: return "monitor_report";
    case EventType::kAppFinish: return "app_finish";
    case EventType::kRunEnd: return "run_end";
  }
  return "unknown";
}

namespace detail {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_json_number(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

namespace {

void append_field_value(std::string& out, const Event::Field& f) {
  if (const auto* i = std::get_if<std::int64_t>(&f.value)) {
    append_json_number(out, *i);
  } else if (const auto* d = std::get_if<double>(&f.value)) {
    append_json_number(out, *d);
  } else {
    append_json_string(out, std::get<std::string>(f.value));
  }
}

}  // namespace
}  // namespace detail

NullSink& null_sink() {
  static NullSink sink;
  return sink;
}

void CountingSink::emit(const Event& event) {
  ++counts_[static_cast<std::size_t>(event.type)];
  ++total_;
}

std::size_t CountingSink::distinct_types() const {
  std::size_t n = 0;
  for (const std::uint64_t c : counts_)
    if (c > 0) ++n;
  return n;
}

void JsonlSink::emit(const Event& event) {
  buf_ += "{\"t\":";
  detail::append_json_number(buf_, event.t);
  buf_ += ",\"type\":";
  detail::append_json_string(buf_, to_string(event.type));
  for (const Event::Field& f : event.fields) {
    buf_ += ',';
    detail::append_json_string(buf_, f.key);
    buf_ += ':';
    detail::append_field_value(buf_, f);
  }
  buf_ += "}\n";
  // kRunEnd drains so the trace is complete at end-of-run, not end-of-sink:
  // the fuzz harness and tests read the stream while the sink is still live.
  if (buf_.size() >= kSinkBufferBytes || event.type == EventType::kRunEnd) flush();
}

void JsonlSink::flush() {
  if (buf_.empty()) return;
  os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

void ChromeTraceSink::begin_record() {
  if (!first_) buf_ += ",\n";
  first_ = false;
}

void ChromeTraceSink::flush() {
  if (buf_.empty()) return;
  os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

void ChromeTraceSink::emit(const Event& event) {
  // Executor spawn/finish/OOM become duration slices ("B"/"E") on the node's
  // track; everything else is a process-scoped instant event.
  const char* ph = "i";
  switch (event.type) {
    case EventType::kExecutorSpawn: ph = "B"; break;
    case EventType::kExecutorFinish:
    case EventType::kExecutorOom: ph = "E"; break;
    default: break;
  }

  std::int64_t tid = -1;
  if (const Event::Field* node = event.find("node"))
    if (const auto* i = std::get_if<std::int64_t>(&node->value)) tid = *i;

  // Slice begin/end names must match for the viewer to pair them, so the
  // executor lifecycle events all share the "executor:<benchmark>" name.
  std::string name(ph[0] == 'i' ? to_string(event.type) : std::string_view("executor"));
  if (const Event::Field* bench = event.find("benchmark"))
    if (const auto* s = std::get_if<std::string>(&bench->value)) name += ":" + *s;

  std::string rec;
  rec += "{\"name\":";
  detail::append_json_string(rec, name);
  rec += ",\"ph\":\"";
  rec += ph;
  rec += "\",\"ts\":";
  detail::append_json_number(rec, event.t * 1e6);  // trace_event ts is in us
  rec += ",\"pid\":0,\"tid\":";
  detail::append_json_number(rec, tid);
  if (ph[0] == 'i') rec += ",\"s\":\"p\"";
  rec += ",\"args\":{";
  bool first_arg = true;
  for (const Event::Field& f : event.fields) {
    if (!first_arg) rec += ',';
    first_arg = false;
    detail::append_json_string(rec, f.key);
    rec += ':';
    detail::append_field_value(rec, f);
  }
  rec += "}}";

  begin_record();
  buf_ += rec;
  if (buf_.size() >= kSinkBufferBytes) flush();
}

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  buf_ += "\n]\n";
  flush();
  os_.flush();
}

}  // namespace smoe::obs
