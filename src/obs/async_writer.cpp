#include "obs/async_writer.h"

namespace smoe::obs {

AsyncWriter::AsyncWriter(std::ostream& os, std::size_t recycle_reserve)
    : os_(os), recycle_reserve_(recycle_reserve), thread_([this] { worker(); }) {}

AsyncWriter::~AsyncWriter() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_one();
  thread_.join();
}

std::string AsyncWriter::submit(std::string&& buf) {
  std::string recycled;
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(buf));
    if (!free_.empty()) {
      recycled = std::move(free_.back());
      free_.pop_back();
    }
  }
  work_cv_.notify_one();
  recycled.clear();
  recycled.reserve(recycle_reserve_);
  return recycled;
}

void AsyncWriter::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !writing_; });
}

void AsyncWriter::worker() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return !queue_.empty() || stop_; });
    if (queue_.empty() && stop_) return;
    std::string buf = std::move(queue_.front());
    queue_.pop_front();
    writing_ = true;
    lock.unlock();
    os_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    buf.clear();
    lock.lock();
    writing_ = false;
    free_.push_back(std::move(buf));
    if (queue_.empty()) drain_cv_.notify_all();
  }
}

}  // namespace smoe::obs
