// FlightRecorder: a ring-buffer EventSink holding the last K events.
//
// Attach it (usually teed with, or fed by, another consumer) and forget it;
// when something goes wrong — an InvariantError from the auditor, a fuzz
// oracle failure — dump_jsonl() writes the retained tail of the event stream
// in exactly the JsonlSink format, so every failure ships with a
// self-contained postmortem that TraceReader (and smoe-trace) can analyze
// like any other trace.
//
// Events are deep-copied on emit (OwnedEvent), so the recorder is safe to
// read long after the emitting run ended. Cost is one small heap-backed copy
// per event; attach it to diagnostic runs (fuzz, audit, repro), not to
// perf-measured hot paths.
#pragma once

#include <cstdint>
#include <filesystem>
#include <ostream>
#include <vector>

#include "obs/event.h"
#include "obs/sink.h"

namespace smoe::obs {

class FlightRecorder final : public EventSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void emit(const Event& event) override;

  /// Forget everything recorded so far (capacity unchanged).
  void clear();

  std::size_t capacity() const { return cap_; }
  /// Events currently retained (<= capacity()).
  std::size_t size() const { return ring_.size(); }
  /// Events ever emitted into the recorder (>= size()).
  std::uint64_t total_seen() const { return seen_; }

  /// Retained events, oldest first.
  std::vector<const OwnedEvent*> events() const;

  /// Write the retained events as JSONL, byte-compatible with JsonlSink
  /// output (a dump is a valid trace tail for TraceReader).
  void dump_jsonl(std::ostream& os) const;

  /// dump_jsonl() to `path`. Returns false instead of throwing on I/O
  /// failure — dumps run inside failure handlers that must not lose the
  /// original error.
  bool dump_to_file(const std::filesystem::path& path) const;

 private:
  std::size_t cap_;
  std::vector<OwnedEvent> ring_;  ///< grows to cap_, then overwrites at next_
  std::size_t next_ = 0;          ///< slot the next event lands in once full
  std::uint64_t seen_ = 0;
};

}  // namespace smoe::obs
