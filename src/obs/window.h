// Windowed online telemetry: the streaming building blocks that turn the
// batch-oriented metrics registry into something an always-on service can
// export — the ROADMAP's "windowed online metrics" prerequisite for the
// open-loop serving mode.
//
//   P2Quantile        — streaming quantile estimate via the P² algorithm
//                       (Jain & Chlamtac, CACM 1985): five markers, O(1)
//                       memory, no sample buffer. Exact for the first five
//                       observations; see DESIGN.md §12 for the accuracy
//                       contract beyond that.
//   QuantileEstimator — a fixed set of P² quantiles (e.g. p50/p90/p99) over
//                       one stream, plus count/sum/min/max.
//   WindowedRate      — sliding-window counter over *simulated* time: a ring
//                       of fixed-width buckets covering the last
//                       `window_seconds`; old buckets expire as time
//                       advances. Reports the in-window count/sum and
//                       per-second rates.
//
// Everything here is deterministic (a pure function of the observation
// sequence) and single-threaded, like the rest of the registry: a run owns
// its instruments.
#pragma once

#include <cstdint>
#include <vector>

namespace smoe::obs {

/// Streaming estimate of one quantile via the P² algorithm. O(1) space and
/// per-observation time; never buffers the stream.
class P2Quantile {
 public:
  /// `prob` must lie in (0, 1) — e.g. 0.5 for the median, 0.99 for p99.
  explicit P2Quantile(double prob);

  /// Non-finite observations (NaN, ±inf) are dropped: one NaN in the first
  /// five samples would otherwise poison the sorted marker seed, and a NaN
  /// later corrupts every marker comparison silently. Dropped values do not
  /// advance count().
  void observe(double x);

  /// Current estimate. Exact (linear-interpolated sample quantile) while
  /// count() <= 5; the P² marker estimate afterwards. 0 before the first
  /// observation.
  double value() const;

  double prob() const { return prob_; }
  std::uint64_t count() const { return n_; }

 private:
  double prob_;
  std::uint64_t n_ = 0;
  double q_[5] = {0, 0, 0, 0, 0};    ///< marker heights
  double pos_[5] = {1, 2, 3, 4, 5};  ///< marker positions (1-based)
  double des_[5] = {0, 0, 0, 0, 0};  ///< desired marker positions
  double inc_[5] = {0, 0, 0, 0, 0};  ///< desired-position increments
};

/// A bundle of P² estimators over one observation stream (one instrument in
/// the registry), plus the exact count/sum/min/max summary.
class QuantileEstimator {
 public:
  /// `probs` must be non-empty, strictly increasing, each in (0, 1).
  explicit QuantileEstimator(std::vector<double> probs);

  /// Non-finite observations are dropped (they would pin min/max and poison
  /// sum/mean forever); count()/sum() only reflect finite values.
  void observe(double v);

  const std::vector<double>& probs() const { return probs_; }
  /// Estimate for probs()[i].
  double estimate(std::size_t i) const { return estimators_[i].value(); }
  /// All estimates, aligned with probs().
  std::vector<double> estimates() const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::vector<double> probs_;
  std::vector<P2Quantile> estimators_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Sliding-window counter over simulated time. The window is a ring of
/// `n_buckets` fixed-width buckets; add(t, v) drops the observation in
/// bucket floor(t / width) and expires buckets older than the window. Time
/// must be non-decreasing (simulated clocks are); a slightly-regressing t is
/// clamped to the latest time seen.
class WindowedRate {
 public:
  explicit WindowedRate(double window_seconds, std::size_t n_buckets = 32);

  void add(double t, double value = 1.0);

  /// Advance the window clock to `t` without recording an observation,
  /// expiring buckets the clock passed over. A forever-running service calls
  /// this before reading window_count()/rate_per_sec() so a stream that went
  /// quiet decays to zero instead of reporting the stale last-window counts
  /// forever. Like add(), a slightly-regressing t is clamped to last_t().
  void advance_time(double t);

  double window_seconds() const { return window_; }
  std::size_t n_buckets() const { return buckets_.size(); }

  /// Observations / value-sum inside the window ending at the latest add().
  std::uint64_t window_count() const;
  double window_sum() const;
  /// window_count() / window_seconds (and the value-sum analogue).
  double rate_per_sec() const { return static_cast<double>(window_count()) / window_; }
  double value_rate_per_sec() const { return window_sum() / window_; }

  std::uint64_t total_count() const { return total_count_; }
  double total_sum() const { return total_sum_; }
  double last_t() const { return last_t_; }

 private:
  struct Bucket {
    std::uint64_t count = 0;
    double sum = 0;
  };

  /// Zero every bucket the clock passed over since the last add().
  void advance_to(std::int64_t bucket);
  /// Bucket index of time `t`, relative to `origin_`. Rebases the origin
  /// (clearing the ring — correct, since a rebase only happens on a jump
  /// far past the whole window) when the raw index would overflow the
  /// int64 bucket arithmetic, so astronomically large simulated times are
  /// safe instead of undefined behavior in the float->int cast.
  std::int64_t bucket_index(double t);

  double window_;
  double bucket_width_;
  std::vector<Bucket> buckets_;
  /// Time subtracted before bucket arithmetic; 0 until a rebase. Only moved
  /// when t is so far past the ring that the raw index would overflow, so
  /// ordinary streams never see a rebase and keep exact legacy behavior.
  double origin_ = 0;
  std::int64_t cur_bucket_ = -1;  ///< -1 until the first add()
  double last_t_ = 0;
  std::uint64_t total_count_ = 0;
  double total_sum_ = 0;
};

}  // namespace smoe::obs
