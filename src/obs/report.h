// The post-run reporter: renders one run's summary rows + metrics snapshot
// as a human-readable text block (ASCII tables) and as machine-readable
// JSON. The report is deliberately generic — ordered (key, value) summary
// rows plus a MetricsSnapshot — so obs stays below the simulator in the
// layering; sched::make_run_report() fills one from a SimResult.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace smoe::obs {

struct RunReport {
  std::string title;
  /// Ordered headline rows, e.g. {"makespan (min)", "84.3"}.
  std::vector<std::pair<std::string, std::string>> summary;
  MetricsSnapshot metrics;

  RunReport& add(std::string key, std::string value) {
    summary.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

/// Human-readable: a summary table followed by counters/gauges/histograms.
void render_text(const RunReport& report, std::ostream& os);

/// Machine-readable JSON object:
///   {"title":...,"summary":{...},"counters":{...},"gauges":{...},
///    "histograms":{name:{"bounds":[...],"buckets":[...],"count":N,...}}}
void render_json(const RunReport& report, std::ostream& os);

}  // namespace smoe::obs
