#include "obs/cli.h"

#include <cstring>
#include <string>

#include "common/error.h"

namespace smoe::obs {

namespace {

/// If argv[i] matches `--flag FILE` or `--flag=FILE`, returns the FILE and
/// the number of argv slots consumed (1 or 2); otherwise consumed is 0.
std::string match_flag(const char* flag, int argc, char** argv, int i, int& consumed) {
  consumed = 0;
  const std::size_t flag_len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, flag_len) != 0) return {};
  const char* rest = argv[i] + flag_len;
  if (rest[0] == '=') {
    consumed = 1;
    return rest + 1;
  }
  if (rest[0] != '\0') return {};  // e.g. --trace-foo
  SMOE_REQUIRE(i + 1 < argc, std::string(flag) + " requires a file argument");
  consumed = 2;
  return argv[i + 1];
}

std::unique_ptr<std::ofstream> open_trace_file(const std::string& path) {
  auto os = std::make_unique<std::ofstream>(path);
  SMOE_REQUIRE(os->is_open(), "cannot open trace file: " + path);
  return os;
}

}  // namespace

TraceCli::TraceCli(int& argc, char** argv) {
  // Collect everything first: --trace-async applies to all requested sinks
  // regardless of flag order, so sinks are constructed after the scan.
  std::string jsonl_path, chrome_path, dir_path;
  bool async = false;
  int out = 1;
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--trace-async") == 0) {
      async = true;
      ++i;
      continue;
    }
    int consumed = 0;
    std::string file = match_flag("--trace", argc, argv, i, consumed);
    if (consumed > 0) {
      jsonl_path = file;
      i += consumed;
      continue;
    }
    file = match_flag("--chrome-trace", argc, argv, i, consumed);
    if (consumed > 0) {
      chrome_path = file;
      i += consumed;
      continue;
    }
    file = match_flag("--trace-dir", argc, argv, i, consumed);
    if (consumed > 0) {
      dir_path = file;
      i += consumed;
      continue;
    }
    argv[out++] = argv[i++];
  }
  argc = out;

  SinkOptions opts;
  opts.async_io = async;
  if (!jsonl_path.empty()) {
    jsonl_os_ = open_trace_file(jsonl_path);
    jsonl_ = std::make_unique<JsonlSink>(*jsonl_os_, opts);
  }
  if (!chrome_path.empty()) {
    chrome_os_ = open_trace_file(chrome_path);
    chrome_ = std::make_unique<ChromeTraceSink>(*chrome_os_, opts);
  }
  if (!dir_path.empty()) {
    FileSinkFactory::Options fopts;
    fopts.sink = opts;
    factory_ = std::make_unique<FileSinkFactory>(dir_path, fopts);
  }
  if (jsonl_ && chrome_) tee_ = std::make_unique<TeeSink>(*jsonl_, *chrome_);
}

EventSink& TraceCli::sink() {
  if (tee_) return *tee_;
  if (jsonl_) return *jsonl_;
  if (chrome_) return *chrome_;
  return null_sink();
}

}  // namespace smoe::obs
