#include "obs/cli.h"

#include <cstring>
#include <string>

#include "common/error.h"

namespace smoe::obs {

namespace {

/// If argv[i] matches `--flag FILE` or `--flag=FILE`, returns the FILE and
/// the number of argv slots consumed (1 or 2); otherwise consumed is 0.
std::string match_flag(const char* flag, int argc, char** argv, int i, int& consumed) {
  consumed = 0;
  const std::size_t flag_len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, flag_len) != 0) return {};
  const char* rest = argv[i] + flag_len;
  if (rest[0] == '=') {
    consumed = 1;
    return rest + 1;
  }
  if (rest[0] != '\0') return {};  // e.g. --trace-foo
  SMOE_REQUIRE(i + 1 < argc, std::string(flag) + " requires a file argument");
  consumed = 2;
  return argv[i + 1];
}

std::unique_ptr<std::ofstream> open_trace_file(const std::string& path) {
  auto os = std::make_unique<std::ofstream>(path);
  SMOE_REQUIRE(os->is_open(), "cannot open trace file: " + path);
  return os;
}

}  // namespace

TraceCli::TraceCli(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc;) {
    int consumed = 0;
    std::string file = match_flag("--trace", argc, argv, i, consumed);
    if (consumed > 0) {
      jsonl_os_ = open_trace_file(file);
      jsonl_ = std::make_unique<JsonlSink>(*jsonl_os_);
      i += consumed;
      continue;
    }
    file = match_flag("--chrome-trace", argc, argv, i, consumed);
    if (consumed > 0) {
      chrome_os_ = open_trace_file(file);
      chrome_ = std::make_unique<ChromeTraceSink>(*chrome_os_);
      i += consumed;
      continue;
    }
    argv[out++] = argv[i++];
  }
  argc = out;
  if (jsonl_ && chrome_) tee_ = std::make_unique<TeeSink>(*jsonl_, *chrome_);
}

EventSink& TraceCli::sink() {
  if (tee_) return *tee_;
  if (jsonl_) return *jsonl_;
  if (chrome_) return *chrome_;
  return null_sink();
}

}  // namespace smoe::obs
