#include "obs/report.h"

#include "common/table.h"
#include "obs/sink.h"

namespace smoe::obs {

namespace {

std::string format_bucket_label(const std::vector<double>& bounds, std::size_t i) {
  if (i == bounds.size()) return "> " + TextTable::num(bounds.back(), 2);
  return "<= " + TextTable::num(bounds[i], 2);
}

}  // namespace

void render_text(const RunReport& report, std::ostream& os) {
  if (!report.title.empty()) os << "== " << report.title << " ==\n";
  for (const auto& [key, value] : report.summary) os << key << ": " << value << "\n";

  const MetricsSnapshot& m = report.metrics;
  if (!m.counters.empty() || !m.gauges.empty()) {
    TextTable table({"metric", "value"});
    for (const auto& [name, v] : m.counters) table.add_row({name, std::to_string(v)});
    for (const auto& [name, v] : m.gauges) table.add_row({name, TextTable::num(v, 2)});
    os << "\n";
    table.render(os);
  }
  for (const auto& [name, h] : m.histograms) {
    os << "\n" << name << ": count " << h.count << ", mean " << TextTable::num(h.mean(), 3)
       << ", min " << TextTable::num(h.min, 3) << ", max " << TextTable::num(h.max, 3) << "\n";
    if (h.count == 0 || h.bounds.empty()) continue;
    TextTable table({"bucket", "count"});
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      table.add_row({format_bucket_label(h.bounds, i), std::to_string(h.buckets[i])});
    }
    table.render(os);
  }
  for (const auto& [name, q] : m.quantiles) {
    os << "\n" << name << ": count " << q.count;
    for (std::size_t i = 0; i < q.probs.size(); ++i)
      os << ", p" << TextTable::num(100 * q.probs[i], 0) << " "
         << TextTable::num(q.estimates[i], 3);
    os << ", min " << TextTable::num(q.min, 3) << ", max " << TextTable::num(q.max, 3) << "\n";
  }
  for (const auto& [name, w] : m.windows) {
    os << "\n" << name << ": window " << TextTable::num(w.window_seconds, 0) << "s, in-window "
       << w.window_count << " (" << TextTable::num(w.rate_per_sec, 4) << "/s), total "
       << w.total_count << "\n";
  }
}

void render_json(const RunReport& report, std::ostream& os) {
  using detail::append_json_number;
  using detail::append_json_string;
  std::string out;
  out += "{\"title\":";
  append_json_string(out, report.title);
  out += ",\"summary\":{";
  bool first = true;
  for (const auto& [key, value] : report.summary) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, key);
    out += ':';
    append_json_string(out, value);
  }
  out += "},\"counters\":{";
  first = true;
  for (const auto& [name, v] : report.metrics.counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_number(out, static_cast<std::int64_t>(v));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : report.metrics.gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_number(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : report.metrics.histograms) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ',';
      append_json_number(out, h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ',';
      append_json_number(out, static_cast<std::int64_t>(h.buckets[i]));
    }
    out += "],\"count\":";
    append_json_number(out, static_cast<std::int64_t>(h.count));
    out += ",\"sum\":";
    append_json_number(out, h.sum);
    out += ",\"min\":";
    append_json_number(out, h.min);
    out += ",\"max\":";
    append_json_number(out, h.max);
    out += '}';
  }
  out += "},\"quantiles\":{";
  first = true;
  for (const auto& [name, q] : report.metrics.quantiles) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"probs\":[";
    for (std::size_t i = 0; i < q.probs.size(); ++i) {
      if (i) out += ',';
      append_json_number(out, q.probs[i]);
    }
    out += "],\"estimates\":[";
    for (std::size_t i = 0; i < q.estimates.size(); ++i) {
      if (i) out += ',';
      append_json_number(out, q.estimates[i]);
    }
    out += "],\"count\":";
    append_json_number(out, static_cast<std::int64_t>(q.count));
    out += ",\"min\":";
    append_json_number(out, q.min);
    out += ",\"max\":";
    append_json_number(out, q.max);
    out += '}';
  }
  out += "},\"windows\":{";
  first = true;
  for (const auto& [name, w] : report.metrics.windows) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"window_seconds\":";
    append_json_number(out, w.window_seconds);
    out += ",\"window_count\":";
    append_json_number(out, static_cast<std::int64_t>(w.window_count));
    out += ",\"rate_per_sec\":";
    append_json_number(out, w.rate_per_sec);
    out += ",\"total_count\":";
    append_json_number(out, static_cast<std::int64_t>(w.total_count));
    out += '}';
  }
  out += "}}\n";
  os << out;
}

}  // namespace smoe::obs
