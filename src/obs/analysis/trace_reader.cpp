#include "obs/analysis/trace_reader.h"

#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/sink.h"

namespace smoe::obs {

namespace {

/// Strict scalar-JSON cursor over one line. JsonlSink emits no whitespace,
/// but the cursor tolerates spaces/tabs between tokens so hand-edited traces
/// still parse (re-emission then canonicalizes them).
struct Cursor {
  const char* p;
  const char* begin;
  const char* end;
  std::size_t line_no;

  [[noreturn]] void fail(const std::string& what) const {
    throw TraceParseError("trace parse error at line " + std::to_string(line_no) + ", col " +
                          std::to_string(static_cast<std::size_t>(p - begin) + 1) + ": " +
                          what);
  }

  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\t')) ++p;
  }

  bool at_end() {
    skip_ws();
    return p == end;
  }

  bool eat(char c) {
    skip_ws();
    if (p == end || *p != c) return false;
    ++p;
    return true;
  }

  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }

  std::string parse_string() {
    skip_ws();
    if (p == end || *p != '"') fail("expected string");
    ++p;
    std::string out;
    while (true) {
      if (p == end) fail("unterminated string");
      const char c = *p++;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p == end) fail("unterminated escape");
      const char esc = *p++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end - p < 4) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          if (cp >= 0xd800 && cp <= 0xdfff) fail("surrogate \\u escape unsupported");
          // UTF-8 encode (JsonlSink only ever emits \u00xx, but accept the
          // whole basic plane).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default: fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  static bool number_char(char c) {
    return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E';
  }

  /// A JSON number. Integer-looking tokens become int64 so re-emission uses
  /// the integer formatter; everything else (including the token "-0", which
  /// only a negative-zero double produces) stays a double. `null` — the
  /// sink's rendering of non-finite doubles — becomes a quiet NaN.
  std::variant<std::int64_t, double, std::string> parse_value() {
    skip_ws();
    if (p == end) fail("expected value");
    if (*p == '"') return parse_string();
    if (end - p >= 4 && std::string_view(p, 4) == "null") {
      p += 4;
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (end - p >= 4 && std::string_view(p, 4) == "true") {
      p += 4;
      return std::int64_t{1};
    }
    if (end - p >= 5 && std::string_view(p, 5) == "false") {
      p += 5;
      return std::int64_t{0};
    }
    const char* start = p;
    while (p != end && number_char(*p)) ++p;
    const std::string_view tok(start, static_cast<std::size_t>(p - start));
    if (tok.empty()) fail("expected value");
    const bool fractional = tok.find_first_of(".eE") != std::string_view::npos || tok == "-0";
    if (!fractional) {
      std::int64_t i = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (res.ec == std::errc{} && res.ptr == tok.data() + tok.size()) return i;
      // Integer-looking but out of int64 range: fall through to double.
    }
    double d = 0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size())
      fail("bad number '" + std::string(tok) + "'");
    return d;
  }

  double parse_double() {
    const auto v = parse_value();
    if (const auto* d = std::get_if<double>(&v)) return *d;
    if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<double>(*i);
    fail("expected a number");
  }
};

}  // namespace

OwnedEvent TraceReader::parse_line(std::string_view line, std::size_t line_no) {
  Cursor c{line.data(), line.data(), line.data() + line.size(), line_no};
  c.expect('{');

  // JsonlSink's fixed layout: "t" then "type" lead every record.
  std::string key = c.parse_string();
  if (key != "t") c.fail("first member must be \"t\", got \"" + key + "\"");
  c.expect(':');
  OwnedEvent event;
  event.t = c.parse_double();

  c.expect(',');
  key = c.parse_string();
  if (key != "type") c.fail("second member must be \"type\", got \"" + key + "\"");
  c.expect(':');
  const std::string type_name = c.parse_string();
  if (!event_type_from_string(type_name, event.type))
    c.fail("unknown event type \"" + type_name + "\"");

  while (!c.eat('}')) {
    c.expect(',');
    OwnedEvent::Field field;
    field.key = c.parse_string();
    c.expect(':');
    field.value = c.parse_value();
    event.fields.push_back(std::move(field));
  }
  if (!c.at_end()) c.fail("trailing characters after event object");
  return event;
}

std::optional<OwnedEvent> TraceReader::next() {
  std::string& line = buf_;
  while (std::getline(*in_, line)) {
    ++line_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++events_read_;
    return parse_line(line, line_);
  }
  return std::nullopt;
}

std::vector<OwnedEvent> TraceReader::read_all(std::istream& in) {
  TraceReader reader(in);
  std::vector<OwnedEvent> events;
  while (auto e = reader.next()) events.push_back(std::move(*e));
  return events;
}

std::vector<OwnedEvent> TraceReader::read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open())
    throw PreconditionError("trace reader: cannot open " + path.string());
  return read_all(in);
}

std::string render_jsonl(const std::vector<OwnedEvent>& events) {
  std::ostringstream os;
  {
    JsonlSink sink(os);
    for (const OwnedEvent& e : events) sink.emit(e.view());
    sink.close();
  }
  return os.str();
}

}  // namespace smoe::obs
