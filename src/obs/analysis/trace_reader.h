// TraceReader: parse a JSONL event trace back into typed obs events —
// the inverse of JsonlSink, closing the emit -> analyze loop.
//
// Round-trip contract (pinned by tests/test_trace_reader.cpp):
//   * For any trace produced by JsonlSink — fast path, memo hits, and the
//     string-append slow path alike — parsing every line and re-emitting the
//     parsed events through a fresh JsonlSink reproduces the input
//     byte-for-byte.
//   * Field order, keys, and values survive parsing exactly. Numeric tokens
//     without '.', 'e'/'E' or a sign-exponent parse as std::int64_t; all
//     others parse as double. JsonlSink formats both with shortest
//     round-trip std::to_chars, so this classification is byte-preserving
//     even where it is not type-preserving (the double 5.0 is emitted as
//     "5", parses as int64 5, and re-emits as "5").
//   * JSON `null` (JsonlSink's rendering of non-finite doubles) parses as a
//     quiet NaN double and re-emits as `null`. The original NaN/±inf payload
//     is not recoverable — the sink already collapsed it.
//
// The reader is strict about structure (every line must be one JSON object
// with leading "t" and "type" members, the layout JsonlSink writes) but
// tolerant about content: unknown field keys are preserved verbatim, so
// traces from newer emitters keep parsing. Malformed input throws
// TraceParseError with the 1-based line number.
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "obs/event.h"

namespace smoe::obs {

/// Malformed trace input (bad JSON, missing t/type, unknown event type).
class TraceParseError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

class TraceReader {
 public:
  /// The stream must outlive the reader. Reads line by line; blank lines are
  /// skipped (JsonlSink never writes them, but a concatenated or truncated-
  /// then-appended trace may contain one).
  explicit TraceReader(std::istream& in) : in_(&in) {}

  /// Next event, or nullopt at end of stream. Throws TraceParseError on a
  /// malformed line.
  std::optional<OwnedEvent> next();

  /// 1-based line number of the last line returned by next().
  std::size_t line() const { return line_; }
  std::size_t events_read() const { return events_read_; }

  /// Parse one JSONL line (no trailing newline required). `line_no` is used
  /// in error messages only.
  static OwnedEvent parse_line(std::string_view line, std::size_t line_no = 0);

  /// Whole-stream / whole-file convenience wrappers.
  static std::vector<OwnedEvent> read_all(std::istream& in);
  static std::vector<OwnedEvent> read_file(const std::filesystem::path& path);

 private:
  std::istream* in_;
  std::string buf_;
  std::size_t line_ = 0;
  std::size_t events_read_ = 0;
};

/// Re-emit parsed events through a JsonlSink (the byte-exact inverse of
/// parsing; see the round-trip contract above). The events must stay alive
/// for the duration of the call — they do, being the container itself.
std::string render_jsonl(const std::vector<OwnedEvent>& events);

}  // namespace smoe::obs
