#include "obs/analysis/timeline.h"

#include <algorithm>
#include <cmath>

namespace smoe::obs {

namespace {

/// Numeric field, accepting either arm of the int64/double variant (trace
/// round-tripping reclassifies integer-valued doubles as int64).
double num(const Event& e, std::string_view key, double def = 0) {
  const Event::Field* f = e.find(key);
  if (f == nullptr) return def;
  if (const auto* i = std::get_if<std::int64_t>(&f->value)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&f->value)) return *d;
  return def;
}

std::int64_t num_i(const Event& e, std::string_view key, std::int64_t def = 0) {
  const Event::Field* f = e.find(key);
  if (f == nullptr) return def;
  if (const auto* i = std::get_if<std::int64_t>(&f->value)) return *i;
  if (const auto* d = std::get_if<double>(&f->value)) return static_cast<std::int64_t>(*d);
  return def;
}

std::string str(const Event& e, std::string_view key) {
  const Event::Field* f = e.find(key);
  if (f == nullptr) return {};
  if (const auto* s = std::get_if<std::string_view>(&f->value)) return std::string(*s);
  return {};
}

}  // namespace

void StepSeries::record(double t, double v) {
  if (!points.empty() && points.back().t == t) {
    // Several transitions at one instant: the last value wins.
    points.back().v = v;
    if (points.size() >= 2 && points[points.size() - 2].v == v) points.pop_back();
    return;
  }
  if (points.empty() || points.back().v != v) points.push_back({t, v});
}

double StepSeries::peak() const {
  double p = 0;
  for (const Point& pt : points) p = std::max(p, pt.v);
  return p;
}

double StepSeries::time_weighted_mean(double t_end) const {
  if (t_end <= 0 || points.empty()) return 0;
  double area = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double t0 = points[i].t;
    const double t1 = i + 1 < points.size() ? points[i + 1].t : t_end;
    if (t1 <= t0) continue;
    area += points[i].v * (std::min(t1, t_end) - t0);
    if (t1 >= t_end) break;
  }
  return area / t_end;
}

double TimelineResult::sojourn_quantile(double prob) const {
  std::vector<double> turns;
  for (const AppRecord& a : apps)
    if (a.finished) turns.push_back(a.turnaround);
  if (turns.empty()) return 0;
  std::sort(turns.begin(), turns.end());
  const double h = std::clamp(prob, 0.0, 1.0) * static_cast<double>(turns.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= turns.size()) return turns.back();
  return turns[lo] + (h - static_cast<double>(lo)) * (turns[lo + 1] - turns[lo]);
}

AppRecord& Timeline::app_record(std::int64_t id) {
  AppRecord& a = apps_[id];
  if (a.app < 0) a.app = id;
  return a;
}

NodeSeries& Timeline::node_series(std::int64_t id, double /*t*/) {
  if (id < 0) id = 0;
  if (static_cast<std::size_t>(id) >= r_.nodes.size())
    r_.nodes.resize(static_cast<std::size_t>(id) + 1);
  return r_.nodes[static_cast<std::size_t>(id)];
}

void Timeline::record_cluster(double t) {
  std::int64_t queued = 0;
  for (const auto& [id, a] : apps_) {
    if (!a.ready || a.finished) continue;
    const auto it = live_per_app_.find(id);
    if (it == live_per_app_.end() || it->second == 0) ++queued;
  }
  r_.queue_depth.record(t, static_cast<double>(queued));
  r_.apps_in_system.record(t, static_cast<double>(in_system_));
  r_.live_executors.record(t, static_cast<double>(live_.size()));
}

void Timeline::on_exec_end(const Event& e, bool oom) {
  const double t = e.t;
  const std::int64_t exec = num_i(e, "exec", -1);
  const double lifetime = num(e, "lifetime_s");
  bool rerun = false;
  std::int64_t app_id = num_i(e, "app", -1);
  std::int64_t node_id = num_i(e, "node", -1);
  if (const auto it = live_.find(exec); it != live_.end()) {
    rerun = it->second.rerun;
    if (app_id < 0) app_id = it->second.app;
    if (node_id < 0) node_id = it->second.node;
    live_.erase(it);
  }
  if (app_id >= 0) {
    AppRecord& a = app_record(app_id);
    a.exec_time += lifetime;
    if (rerun) a.rerun_time += lifetime;
    if (oom) {
      ++a.ooms;
      a.lost_items += num(e, "chunk_items");
    }
    auto& live_n = live_per_app_[app_id];
    if (live_n > 0) --live_n;
  }
  NodeSeries& n = node_series(node_id, t);
  n.reserved_gib.record(t, num(e, "node_reserved_after"));
  if (r_.run.node_ram_gib > 0)
    n.utilization.record(t, num(e, "node_reserved_after") / r_.run.node_ram_gib);
  n.cpu_load.record(t, num(e, "node_cpu_iso_after"));
  n.occupancy.record(t, std::max(0.0, n.occupancy.last() - 1));
  record_cluster(t);
}

void Timeline::emit(const Event& e) {
  ++r_.events;
  r_.last_t = std::max(r_.last_t, static_cast<double>(e.t));
  const double t = e.t;
  switch (e.type) {
    case EventType::kRunStart: {
      r_.run.policy = str(e, "policy");
      r_.run.mode = str(e, "mode");
      r_.run.n_apps = num_i(e, "n_apps");
      r_.run.n_nodes = num_i(e, "n_nodes");
      r_.run.node_ram_gib = num(e, "node_ram_gib");
      r_.run.seed = num_i(e, "seed");
      if (r_.run.n_nodes > 0 && r_.nodes.size() < static_cast<std::size_t>(r_.run.n_nodes))
        r_.nodes.resize(static_cast<std::size_t>(r_.run.n_nodes));
      break;
    }
    case EventType::kAppSubmit: {
      AppRecord& a = app_record(num_i(e, "app", -1));
      a.benchmark = str(e, "benchmark");
      a.submit_t = t;
      a.input_items = num_i(e, "input_items");
      a.profile_end = num(e, "profile_end");
      // No profiling phase (isolated/default-heap policies) means the app is
      // dispatchable from submission.
      if (a.profile_end <= t) a.ready = true;
      ++in_system_;
      record_cluster(t);
      break;
    }
    case EventType::kProfilingStart:
      break;
    case EventType::kProfilingEnd: {
      AppRecord& a = app_record(num_i(e, "app", -1));
      a.profiling_end_t = t;
      a.ready = true;
      record_cluster(t);
      break;
    }
    case EventType::kDispatch: {
      AppRecord& a = app_record(num_i(e, "app", -1));
      ++a.dispatches;
      a.ready = true;  // a dispatched app is definitionally past profiling
      if (a.first_dispatch_t < 0) {
        a.first_dispatch_t = t;
        a.queue_wait = t - std::max(a.profiling_end_t, a.profile_end);
      }
      break;
    }
    case EventType::kExecutorSpawn: {
      const std::int64_t exec = num_i(e, "exec", -1);
      const std::int64_t app_id = num_i(e, "app", -1);
      const std::int64_t node_id = num_i(e, "node", -1);
      const bool rerun = num_i(e, "isolated_rerun") != 0;
      live_[exec] = LiveExec{app_id, node_id, rerun, t};
      ++live_per_app_[app_id];
      AppRecord& a = app_record(app_id);
      ++a.executors;
      if (rerun) ++a.rerun_executors;
      NodeSeries& n = node_series(node_id, t);
      n.reserved_gib.record(t, num(e, "node_reserved_after"));
      if (r_.run.node_ram_gib > 0)
        n.utilization.record(t, num(e, "node_reserved_after") / r_.run.node_ram_gib);
      n.cpu_load.record(t, num(e, "node_cpu_iso_after"));
      n.occupancy.record(t, n.occupancy.last() + 1);
      record_cluster(t);
      break;
    }
    case EventType::kExecutorSpill:
      ++app_record(num_i(e, "app", -1)).spills;
      break;
    case EventType::kExecutorThrash:
      ++app_record(num_i(e, "app", -1)).thrashes;
      break;
    case EventType::kExecutorOom:
      on_exec_end(e, /*oom=*/true);
      break;
    case EventType::kExecutorFinish:
      on_exec_end(e, /*oom=*/false);
      break;
    case EventType::kIsolatedRerun:
      // The rerun's dispatch/spawn events carry isolated_rerun=1; attribution
      // happens there.
      break;
    case EventType::kMonitorReport:
      break;
    case EventType::kAppFinish: {
      AppRecord& a = app_record(num_i(e, "app", -1));
      a.finished = true;
      a.finish_t = t;
      a.turnaround = num(e, "turnaround_s");
      --in_system_;
      record_cluster(t);
      break;
    }
    case EventType::kRunEnd: {
      r_.run.ended = true;
      r_.run.makespan = num(e, "makespan_s");
      r_.run.executors_spawned = num_i(e, "executors_spawned");
      r_.run.executors_degraded = num_i(e, "executors_degraded");
      r_.run.oom_total = num_i(e, "oom_total");
      r_.run.peak_node_occupancy = num_i(e, "peak_node_occupancy");
      r_.run.reserved_gib_hours = num(e, "reserved_gib_hours");
      r_.run.used_gib_hours = num(e, "used_gib_hours");
      record_cluster(t);
      break;
    }
    case EventType::kAppArrival:
    case EventType::kAdmission:
      // Open-loop serving gate events: apps enter the timeline's ledger at
      // admission (their app_submit event), so the gate traffic itself only
      // advances the clock.
      break;
  }
}

TimelineResult Timeline::result() const {
  TimelineResult out = r_;
  out.apps.clear();
  out.apps.reserve(apps_.size());
  for (const auto& [id, a] : apps_) out.apps.push_back(a);
  return out;
}

TimelineResult Timeline::analyze(const std::vector<OwnedEvent>& events) {
  Timeline tl;
  for (const OwnedEvent& e : events) tl.emit(e.view());
  return tl.result();
}

}  // namespace smoe::obs
