// Timeline: replay an event stream into derived time series and per-app
// lifecycle records — the "what actually happened" layer over a raw trace.
//
// A Timeline is an EventSink, so the same analyzer runs in two modes:
//   * live  — attached to the engine next to the JSONL sink (a TeeSink leg);
//   * replay — fed parsed events from TraceReader::read_file.
// tests/test_timeline.cpp pins that both modes produce identical results for
// identically-seeded runs; everything here is a pure function of the event
// stream.
//
// Derived series (all step functions, sampled only when the value changes):
//   * per node: reserved GiB, utilization (reserved / node_ram_gib), planned
//     isolated-CPU load, and executor occupancy;
//   * cluster-wide: dispatch queue depth (profiled, unfinished apps with no
//     live executor), apps in system, and total live executors.
//
// Per-app records attribute queue wait (first dispatch minus profiling end),
// OOM kills, thrash events, isolated-rerun executors/time, and lost work
// (chunk items discarded by OOMs) to each application, and the finalized
// result carries exact interpolated sojourn percentiles over turnarounds.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/sink.h"

namespace smoe::obs {

/// A piecewise-constant series: value v holds from point i's t until point
/// i+1's t. record() collapses repeats so the vector stays minimal.
struct StepSeries {
  struct Point {
    double t = 0;
    double v = 0;
    bool operator==(const Point&) const = default;
  };
  std::vector<Point> points;

  void record(double t, double v);
  double last() const { return points.empty() ? 0.0 : points.back().v; }
  double peak() const;
  /// Integral of the series divided by t_end (series start is t = 0; the
  /// value before the first point is 0).
  double time_weighted_mean(double t_end) const;

  bool operator==(const StepSeries&) const = default;
};

/// One application's lifecycle, assembled from submit/profiling/dispatch/
/// executor/finish events.
struct AppRecord {
  std::int64_t app = -1;
  std::string benchmark;
  double submit_t = 0;
  std::int64_t input_items = 0;
  double profile_end = 0;      ///< planned, from app_submit
  double profiling_end_t = 0;  ///< observed profiling_end event time
  bool ready = false;          ///< past profiling; eligible for dispatch
  double first_dispatch_t = -1;
  double queue_wait = 0;  ///< first_dispatch_t - profiling_end_t
  std::int64_t dispatches = 0;
  std::int64_t executors = 0;  ///< spawns, including isolated reruns
  std::int64_t ooms = 0;
  std::int64_t thrashes = 0;
  std::int64_t spills = 0;
  std::int64_t rerun_executors = 0;
  double rerun_time = 0;     ///< summed lifetime_s of isolated-rerun executors
  double lost_items = 0;     ///< chunk items discarded by OOM kills
  double exec_time = 0;      ///< summed executor lifetime_s
  bool finished = false;
  double finish_t = 0;
  double turnaround = 0;     ///< sojourn, from app_finish turnaround_s

  bool operator==(const AppRecord&) const = default;
};

/// run_start / run_end envelope.
struct RunInfo {
  std::string policy;
  std::string mode;
  std::int64_t n_apps = 0;
  std::int64_t n_nodes = 0;
  double node_ram_gib = 0;
  std::int64_t seed = 0;
  bool ended = false;
  double makespan = 0;
  std::int64_t executors_spawned = 0;
  std::int64_t executors_degraded = 0;
  std::int64_t oom_total = 0;
  std::int64_t peak_node_occupancy = 0;
  double reserved_gib_hours = 0;
  double used_gib_hours = 0;

  bool operator==(const RunInfo&) const = default;
};

struct NodeSeries {
  StepSeries reserved_gib;
  StepSeries utilization;
  StepSeries cpu_load;
  StepSeries occupancy;

  bool operator==(const NodeSeries&) const = default;
};

struct TimelineResult {
  RunInfo run;
  std::vector<NodeSeries> nodes;
  StepSeries queue_depth;
  StepSeries apps_in_system;
  StepSeries live_executors;
  std::vector<AppRecord> apps;  ///< sorted by app id
  std::int64_t events = 0;      ///< events consumed
  double last_t = 0;

  /// Exact interpolated quantile over finished apps' turnarounds (the
  /// reference the streaming P² estimator is tested against). Returns 0 when
  /// no app finished.
  double sojourn_quantile(double prob) const;
  double end_time() const { return run.ended ? run.makespan : last_t; }

  bool operator==(const TimelineResult&) const = default;
};

/// EventSink that incrementally builds a TimelineResult. Events must arrive
/// in nondecreasing time order (the engine guarantees it; TraceReader
/// preserves file order).
class Timeline final : public EventSink {
 public:
  void emit(const Event& e) override;
  void close() override {}

  /// Finalize and return the result. The Timeline remains usable (more
  /// events extend the same run).
  TimelineResult result() const;

  /// Replay convenience: analyze an already-parsed trace.
  static TimelineResult analyze(const std::vector<OwnedEvent>& events);

 private:
  struct LiveExec {
    std::int64_t app = -1;
    std::int64_t node = -1;
    bool rerun = false;
    double spawn_t = 0;
  };

  AppRecord& app_record(std::int64_t id);
  NodeSeries& node_series(std::int64_t id, double t);
  void record_cluster(double t);
  void on_exec_end(const Event& e, bool oom);

  TimelineResult r_;
  std::map<std::int64_t, AppRecord> apps_;
  std::map<std::int64_t, LiveExec> live_;       ///< keyed by exec id
  std::map<std::int64_t, std::int64_t> live_per_app_;
  std::int64_t in_system_ = 0;
};

}  // namespace smoe::obs
