// RunComparator: diff two runs' derived series — the A/B answer to "what did
// switching dispatch policy buy us?".
//
// Input is two TimelineResults (same workload, different policy/seed/config);
// output is a flat table of headline metrics plus per-app turnaround rows
// matched by application id. Rendering is fully deterministic: metrics appear
// in a fixed order and numbers use shortest round-trip formatting, so
// `smoe-trace diff` over the golden corpus is byte-stable (scripts/check.sh
// pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analysis/timeline.h"

namespace smoe::obs {

struct RunDiff {
  struct MetricRow {
    std::string name;
    double a = 0;
    double b = 0;
    double delta() const { return b - a; }
    /// Relative change in percent; 0 when the baseline is 0.
    double pct() const { return a == 0 ? 0 : 100.0 * (b - a) / a; }
  };
  struct AppRow {
    std::int64_t app = -1;
    std::string benchmark;
    bool in_a = false;
    bool in_b = false;
    double turnaround_a = 0;
    double turnaround_b = 0;
    double queue_wait_a = 0;
    double queue_wait_b = 0;
  };

  std::string label_a;  ///< run A's policy name (or caller-supplied label)
  std::string label_b;
  std::vector<MetricRow> metrics;  ///< fixed order, see compare_runs
  std::vector<AppRow> apps;        ///< sorted by app id
};

/// Derive the diff table. Metric order is part of the output contract:
/// makespan_s, sojourn_p50_s, sojourn_p99_s, mean_queue_wait_s,
/// mean_queue_depth, peak_queue_depth, executors_spawned,
/// executors_degraded, oom_total, lost_items, rerun_time_s,
/// mean_utilization, peak_reserved_gib, reserved_gib_hours, used_gib_hours.
RunDiff compare_runs(const TimelineResult& a, const TimelineResult& b);

/// Deterministic plain-text rendering of the diff (aligned columns, shortest
/// round-trip numbers).
std::string render_text(const RunDiff& diff);

/// Shortest round-trip decimal rendering shared by the diff/summary/CSV
/// renderers ("5" for 5.0, std::to_chars otherwise; "nan"/"inf" collapse to
/// "nan").
std::string format_number(double v);

}  // namespace smoe::obs
