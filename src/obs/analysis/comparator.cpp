#include "obs/analysis/comparator.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>

namespace smoe::obs {

std::string format_number(double v) {
  if (!std::isfinite(v)) return "nan";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

namespace {

double mean_utilization(const TimelineResult& r) {
  if (r.nodes.empty()) return 0;
  const double t_end = r.end_time();
  double sum = 0;
  for (const NodeSeries& n : r.nodes) sum += n.utilization.time_weighted_mean(t_end);
  return sum / static_cast<double>(r.nodes.size());
}

double peak_reserved(const TimelineResult& r) {
  double p = 0;
  for (const NodeSeries& n : r.nodes) p = std::max(p, n.reserved_gib.peak());
  return p;
}

double mean_queue_wait(const TimelineResult& r) {
  if (r.apps.empty()) return 0;
  double sum = 0;
  std::int64_t n = 0;
  for (const AppRecord& a : r.apps) {
    if (a.first_dispatch_t < 0) continue;
    sum += a.queue_wait;
    ++n;
  }
  return n == 0 ? 0 : sum / static_cast<double>(n);
}

double total_lost_items(const TimelineResult& r) {
  double sum = 0;
  for (const AppRecord& a : r.apps) sum += a.lost_items;
  return sum;
}

double total_rerun_time(const TimelineResult& r) {
  double sum = 0;
  for (const AppRecord& a : r.apps) sum += a.rerun_time;
  return sum;
}

}  // namespace

RunDiff compare_runs(const TimelineResult& a, const TimelineResult& b) {
  RunDiff d;
  d.label_a = a.run.policy.empty() ? "A" : a.run.policy;
  d.label_b = b.run.policy.empty() ? "B" : b.run.policy;

  const auto row = [&d](std::string name, double va, double vb) {
    d.metrics.push_back({std::move(name), va, vb});
  };
  row("makespan_s", a.end_time(), b.end_time());
  row("sojourn_p50_s", a.sojourn_quantile(0.5), b.sojourn_quantile(0.5));
  row("sojourn_p99_s", a.sojourn_quantile(0.99), b.sojourn_quantile(0.99));
  row("mean_queue_wait_s", mean_queue_wait(a), mean_queue_wait(b));
  row("mean_queue_depth", a.queue_depth.time_weighted_mean(a.end_time()),
      b.queue_depth.time_weighted_mean(b.end_time()));
  row("peak_queue_depth", a.queue_depth.peak(), b.queue_depth.peak());
  row("executors_spawned", static_cast<double>(a.run.executors_spawned),
      static_cast<double>(b.run.executors_spawned));
  row("executors_degraded", static_cast<double>(a.run.executors_degraded),
      static_cast<double>(b.run.executors_degraded));
  row("oom_total", static_cast<double>(a.run.oom_total),
      static_cast<double>(b.run.oom_total));
  row("lost_items", total_lost_items(a), total_lost_items(b));
  row("rerun_time_s", total_rerun_time(a), total_rerun_time(b));
  row("mean_utilization", mean_utilization(a), mean_utilization(b));
  row("peak_reserved_gib", peak_reserved(a), peak_reserved(b));
  row("reserved_gib_hours", a.run.reserved_gib_hours, b.run.reserved_gib_hours);
  row("used_gib_hours", a.run.used_gib_hours, b.run.used_gib_hours);

  std::map<std::int64_t, RunDiff::AppRow> apps;
  for (const AppRecord& ar : a.apps) {
    RunDiff::AppRow& r = apps[ar.app];
    r.app = ar.app;
    r.benchmark = ar.benchmark;
    r.in_a = true;
    r.turnaround_a = ar.turnaround;
    r.queue_wait_a = ar.queue_wait;
  }
  for (const AppRecord& br : b.apps) {
    RunDiff::AppRow& r = apps[br.app];
    r.app = br.app;
    if (r.benchmark.empty()) r.benchmark = br.benchmark;
    r.in_b = true;
    r.turnaround_b = br.turnaround;
    r.queue_wait_b = br.queue_wait;
  }
  d.apps.reserve(apps.size());
  for (auto& [id, r] : apps) d.apps.push_back(std::move(r));
  return d;
}

namespace {

void pad_to(std::string& line, std::size_t col) {
  if (line.size() >= col) {
    line += "  ";  // keep at least one gap when a value overflows its column
    return;
  }
  line.append(col - line.size(), ' ');
}

}  // namespace

std::string render_text(const RunDiff& diff) {
  std::string out;
  out += "run diff: A=" + diff.label_a + "  B=" + diff.label_b + "\n";
  out += "metric                 A                      B                      delta (B-A)        pct\n";
  for (const RunDiff::MetricRow& m : diff.metrics) {
    std::string line = "  " + m.name;
    pad_to(line, 23);
    line += format_number(m.a);
    pad_to(line, 46);
    line += format_number(m.b);
    pad_to(line, 69);
    line += format_number(m.delta());
    pad_to(line, 88);
    line += format_number(m.pct()) + "%";
    out += line + "\n";
  }
  out += "per-app turnaround_s (A -> B):\n";
  for (const RunDiff::AppRow& a : diff.apps) {
    std::string line = "  app " + std::to_string(a.app) + " " + a.benchmark;
    pad_to(line, 28);
    line += a.in_a ? format_number(a.turnaround_a) : "-";
    line += " -> ";
    line += a.in_b ? format_number(a.turnaround_b) : "-";
    if (a.in_a && a.in_b) {
      line += "  (";
      const double delta = a.turnaround_b - a.turnaround_a;
      if (delta >= 0) line += "+";
      line += format_number(delta) + " s)";
    }
    out += line + "\n";
  }
  return out;
}

}  // namespace smoe::obs
