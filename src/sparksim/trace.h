// Time-binned per-node utilization traces: the data behind the paper's
// Figure 7 heatmaps.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace smoe::sim {

class UtilizationTrace {
 public:
  explicit UtilizationTrace(std::size_t n_nodes, Seconds bin_width = 60.0);

  /// Accumulate a constant utilization `util01` on `node` over [t0, t1).
  void accumulate(NodeId node, Seconds t0, Seconds t1, double util01);

  std::size_t n_nodes() const { return n_nodes_; }
  Seconds bin_width() const { return bin_width_; }
  /// Number of bins with any recorded time.
  std::size_t n_bins() const;

  /// Mean utilization of `node` during bin `b` (0 when nothing recorded).
  double value(NodeId node, std::size_t bin) const;
  /// Mean utilization across all nodes and the trace duration.
  double overall_mean() const;

 private:
  std::size_t n_nodes_;
  Seconds bin_width_;
  // Per node: sum of util*dt and sum of dt per bin.
  std::vector<std::vector<double>> weighted_, duration_;

  void ensure_bins(std::size_t bins);
};

}  // namespace smoe::sim
