// Time-binned per-node utilization traces: the data behind the paper's
// Figure 7 heatmaps.
//
// Storage is optimized for the engine's access pattern: each node's spans
// arrive contiguously from t=0 (the engine folds a node's constant
// utilization into the trace whenever its executor set changes, and once at
// run end), so per-bin *durations* are implied by a single per-node
// "covered up to" scalar instead of a second bin array, and the weighted
// sums are allocated per node only when a non-zero-utilization span first
// touches it. An idle node costs O(1) total instead of O(bins) — at 10k
// nodes the run-end flush used to dominate whole simulations. The per-node
// scalar lives next to its bin vector so the accumulate hot path touches one
// cache line for both.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace smoe::sim {

class UtilizationTrace {
 public:
  explicit UtilizationTrace(std::size_t n_nodes, Seconds bin_width = 60.0);

  /// Accumulate a constant utilization `util01` on `node` over [t0, t1).
  /// Per node, spans must be contiguous from 0 (each span starts where the
  /// previous one ended) — the engine's flush discipline.
  void accumulate(NodeId node, Seconds t0, Seconds t1, double util01);

  std::size_t n_nodes() const { return n_nodes_; }
  Seconds bin_width() const { return bin_width_; }
  /// Number of bins with any recorded time.
  std::size_t n_bins() const { return n_bins_; }

  /// Mean utilization of `node` during bin `b` (0 when nothing recorded).
  double value(NodeId node, std::size_t bin) const;
  /// Mean utilization across all nodes and the trace duration.
  double overall_mean() const;

  /// Splice `shard`'s nodes into this trace as nodes
  /// [node_offset, node_offset + shard.n_nodes()), for reassembling a
  /// partitioned run. Bin widths must match.
  void merge_shard(const UtilizationTrace& shard, std::size_t node_offset);

 private:
  struct PerNode {
    // Spans tile [0, covered_to), so the time recorded into bin b is
    // overlap([0, covered_to), bin b) — no per-bin duration array needed.
    Seconds covered_to = 0.0;
    // Sum of util*dt per bin, allocated lazily on the first
    // non-zero-utilization span (empty vector == all-zero bins). May carry
    // trailing zero bins from amortized growth; n_bins_ is authoritative.
    std::vector<double> weighted;
  };

  std::size_t n_nodes_;
  Seconds bin_width_;
  std::size_t n_bins_ = 0;
  std::vector<PerNode> nodes_;
};

}  // namespace smoe::sim
