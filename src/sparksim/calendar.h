// The engine's event calendar: a min-heap of absolute executor event times
// (finish or OOM) with lazy invalidation.
//
// Entries are never removed from the middle of the heap. Instead, every
// executor slot carries a monotonically increasing version counter; pushing a
// new wake-up for a slot bumps the version, and releasing a slot bumps it
// again, so any older entry still sitting in the heap is recognised as stale
// when it surfaces and is discarded in O(log n). This keeps every calendar
// operation O(log n) in the number of *pending* entries with no indexed
// decrease-key machinery, at the cost of a heap that can transiently hold one
// stale entry per rate change — bounded by the number of pushes, i.e. by the
// event count.
//
// Ties are broken by ascending slot id so the pop order (and therefore the
// engine's completion order) is fully deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace smoe::sim {

struct CalendarEntry {
  Seconds t = 0;              ///< absolute sim-time of the wake-up
  Seconds tol = 0;            ///< pop slack: due when t <= now + tol
  int slot = -1;              ///< executor slot the wake-up belongs to
  std::uint64_t version = 0;  ///< stale when != the slot's current version
};

class EventCalendar {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  const CalendarEntry& top() const { return heap_.front(); }

  void push(Seconds t, Seconds tol, int slot, std::uint64_t version) {
    heap_.push_back({t, tol, slot, version});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Discard the top entry (stale or consumed).
  void discard_top() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }

  void clear() { heap_.clear(); }

 private:
  /// Max-heap comparator inverted into a min-heap on (t, slot).
  struct Later {
    bool operator()(const CalendarEntry& a, const CalendarEntry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.slot > b.slot;
    }
  };
  std::vector<CalendarEntry> heap_;
};

}  // namespace smoe::sim
