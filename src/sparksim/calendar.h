// The engine's event calendar: a two-level bucketed timing wheel over
// absolute executor event times (finish or OOM) with lazy invalidation and
// amortized compaction.
//
// Layout. Time is split into fixed-width buckets. Entries land in one of
// three places:
//   * `cur_` — an exact (t, slot)-ordered binary min-heap holding everything
//     at or before the current bucket (including "past" pushes);
//   * `near_` — a ring of kBuckets unsorted vectors for the near future,
//     one bucket wide each (O(1) insertion — no comparisons at all);
//   * `far_`  — an exact min-heap for everything beyond the ring's horizon.
// Pops are always served from `cur_`; when it drains, the ring is advanced
// bucket by bucket (each bucket is heapified exactly once, when it becomes
// current), and when the whole ring drains the calendar re-anchors: the far
// heap is scanned once, the bucket width is re-fitted to the far entries'
// span, and every far entry is re-filed into the ring. With an empty far
// heap and all pushes inside the window this degrades gracefully to the
// plain versioned min-heap semantics the engine always had.
//
// Ordering contract (unchanged from the single-heap calendar): entries pop
// in ascending (t, slot) order. Structures partition time disjointly —
// everything in `cur_` is strictly earlier than any ring bucket, and the
// ring strictly earlier than `far_` — so the exact heap order inside `cur_`
// is the global order, ties included.
//
// Invalidation contract (unchanged): entries are never removed from the
// middle. Every executor slot carries a monotonically increasing version
// counter; pushing a new wake-up bumps the version, releasing the slot
// bumps it again, and older entries self-identify as stale when they
// surface. Under heavy invalidation churn (OOM storms, rate refreshes)
// stale entries would otherwise accumulate without bound, so `compact()`
// removes them in place — dropping stale entries never changes the pop
// order of the live ones — and the engine triggers it whenever the stale
// fraction exceeds a threshold, keeping the footprint O(live entries).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace smoe::sim {

struct CalendarEntry {
  Seconds t = 0;              ///< absolute sim-time of the wake-up
  Seconds tol = 0;            ///< pop slack: due when t <= now + tol
  int slot = -1;              ///< executor slot the wake-up belongs to
  std::uint64_t version = 0;  ///< stale when != the slot's current version
};

class EventCalendar {
 public:
  EventCalendar() : near_(kBuckets) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// The earliest entry in (t, slot) order. Must not be called when empty.
  /// Advances the ring / re-anchors lazily, hence non-const.
  const CalendarEntry& top() {
    ensure_current();
    return cur_.front();
  }

  void push(Seconds t, Seconds tol, int slot, std::uint64_t version) {
    file({t, tol, slot, version});
    ++size_;
  }

  /// Discard the top entry (stale or consumed).
  void discard_top() {
    ensure_current();
    std::pop_heap(cur_.begin(), cur_.end(), Later{});
    cur_.pop_back();
    --size_;
  }

  void clear() {
    cur_.clear();
    far_.clear();
    for (auto& b : near_) b.clear();
    near_count_ = 0;
    size_ = 0;
    cur_idx_ = 0;
    width_ = kInitWidth;
  }

  /// Remove every entry `stale(entry)` says is dead, in place, preserving
  /// the pop order of the survivors. Returns the number removed. O(size).
  template <class Stale>
  std::size_t remove_stale(Stale&& stale) {
    const std::size_t before = size_;
    auto prune_heap = [&](std::vector<CalendarEntry>& h) {
      const auto it = std::remove_if(h.begin(), h.end(), stale);
      if (it == h.end()) return;
      h.erase(it, h.end());
      std::make_heap(h.begin(), h.end(), Later{});
    };
    prune_heap(cur_);
    prune_heap(far_);
    for (auto& bucket : near_) {
      const auto it = std::remove_if(bucket.begin(), bucket.end(), stale);
      near_count_ -= static_cast<std::size_t>(bucket.end() - it);
      bucket.erase(it, bucket.end());
    }
    size_ = cur_.size() + far_.size() + near_count_;
    return before - size_;
  }

 private:
  static constexpr std::size_t kBuckets = 512;  ///< ring size (power of two)
  static constexpr double kInitWidth = 1.0;     ///< seconds, until re-anchored
  static constexpr double kMinWidth = 1e-6;     ///< degenerate-span floor

  /// Max-heap comparator inverted into a min-heap on (t, slot).
  struct Later {
    bool operator()(const CalendarEntry& a, const CalendarEntry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.slot > b.slot;
    }
  };

  /// Route one entry to cur_/near_/far_ by its bucket index. Thresholds are
  /// compared in double space so non-finite or huge times safely land in
  /// `far_` instead of overflowing the integer bucket index.
  void file(CalendarEntry e) {
    const double bidx = std::floor(e.t / width_);
    if (!(bidx > static_cast<double>(cur_idx_))) {  // past or current bucket
      cur_.push_back(e);
      std::push_heap(cur_.begin(), cur_.end(), Later{});
    } else if (bidx < static_cast<double>(cur_idx_) + static_cast<double>(kBuckets)) {
      near_[static_cast<std::size_t>(static_cast<std::int64_t>(bidx)) % kBuckets]
          .push_back(e);
      ++near_count_;
    } else {
      far_.push_back(e);
      std::push_heap(far_.begin(), far_.end(), Later{});
    }
  }

  /// Make cur_ non-empty (assuming size_ > 0): advance through the ring one
  /// bucket at a time, heapifying each bucket as it becomes current; when
  /// the ring is exhausted, re-anchor on the far heap.
  void ensure_current() {
    while (cur_.empty()) {
      // The ring's horizon slides forward as the window advances, so entries
      // filed to `far_` under an older horizon may now belong inside the
      // window — and a later push could land in a ring bucket *behind* them.
      // Re-file every far entry whose bucket has come inside the window
      // before advancing, restoring the invariant that everything in `far_`
      // is strictly later than everything in the ring. `far_` is a min-heap
      // and the bucket index is monotone in t, so once the front is beyond
      // the horizon all remaining entries are too. (Non-finite times compare
      // false and stay in `far_` for the re-anchor path below.)
      while (!far_.empty() &&
             std::floor(far_.front().t / width_) <
                 static_cast<double>(cur_idx_) + static_cast<double>(kBuckets)) {
        const CalendarEntry e = far_.front();
        std::pop_heap(far_.begin(), far_.end(), Later{});
        far_.pop_back();
        file(e);
      }
      if (!cur_.empty()) return;
      if (near_count_ > 0) {
        // Advance to the next non-empty ring bucket. Each bucket is visited
        // at most once per window pass, so the scan is amortized O(1).
        do {
          ++cur_idx_;
        } while (near_[static_cast<std::size_t>(cur_idx_) % kBuckets].empty());
        auto& bucket = near_[static_cast<std::size_t>(cur_idx_) % kBuckets];
        near_count_ -= bucket.size();
        cur_.swap(bucket);
        std::make_heap(cur_.begin(), cur_.end(), Later{});
        return;
      }
      // Ring empty: re-anchor the window on the far entries and re-file them
      // all. Each far entry migrates exactly once per re-anchor, and the new
      // width is fitted so the whole far span lands inside the ring, so the
      // far heap is completely drained (future pushes get O(1) filing again).
      double lo = far_.front().t, hi = lo;
      for (const CalendarEntry& e : far_) {
        lo = std::min(lo, e.t);
        hi = std::max(hi, e.t);
      }
      if (!std::isfinite(lo) || !std::isfinite(hi)) {
        // Degenerate (non-finite) times: serve the whole far heap as the
        // current heap — exact order, no bucketing.
        cur_.swap(far_);
        return;
      }
      const double span = hi - lo;
      width_ = std::max(kMinWidth, span / static_cast<double>(kBuckets - 2));
      cur_idx_ = static_cast<std::int64_t>(std::floor(lo / width_));
      std::vector<CalendarEntry> pending;
      pending.swap(far_);
      for (const CalendarEntry& e : pending) file(e);
    }
  }

  std::vector<CalendarEntry> cur_;                ///< exact heap, <= current bucket
  std::vector<std::vector<CalendarEntry>> near_;  ///< unsorted ring buckets
  std::vector<CalendarEntry> far_;                ///< exact heap beyond the ring
  std::size_t near_count_ = 0;                    ///< entries across the ring
  std::size_t size_ = 0;
  std::int64_t cur_idx_ = 0;  ///< absolute bucket index of the current bucket
  double width_ = kInitWidth; ///< bucket width in seconds
};

}  // namespace smoe::sim
