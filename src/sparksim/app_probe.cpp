#include "sparksim/app_probe.h"

#include <algorithm>

#include "common/error.h"

namespace smoe::sim {

AppProbe::AppProbe(const wl::BenchmarkSpec& spec, const wl::FeatureModel& features,
                   Items input_items, std::uint64_t seed, double noise)
    : spec_(spec), features_(features), input_items_(input_items), rng_(seed), noise_(noise) {
  SMOE_REQUIRE(input_items > 0.0, "probe: empty input");
  SMOE_REQUIRE(noise >= 0.0, "probe: negative noise");
}

ml::Vector AppProbe::raw_features() { return features_.sample(spec_, rng_); }

GiB AppProbe::measure_footprint(Items items) {
  SMOE_REQUIRE(items > 0.0, "probe: items must be positive");
  const GiB truth = spec_.footprint(items);
  const double jitter = rng_.normal(1.0, noise_);
  return std::max(0.05, truth * jitter);
}

double AppProbe::measure_cpu_load() {
  const double jitter = rng_.normal(1.0, noise_);
  return std::clamp(spec_.cpu_load_iso * jitter, 0.01, 1.0);
}

}  // namespace smoe::sim
