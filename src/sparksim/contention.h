// The node-level contention model, shared by the cluster engine and the
// single-host interference benches (Figures 14 and 15).
//
// Three multiplicative effects slow an executor down relative to isolated
// execution on the same node:
//   * CPU over-subscription: when the aggregate CPU demand U of co-running
//     tasks exceeds the node (U > 1), everyone runs at 1/U.
//   * cache/bandwidth interference: co-runners hurt each other even below
//     full CPU; a task's slowdown scales with its sensitivity times the
//     co-runners' aggregate CPU demand (bounded — Fig. 14 stays under ~25%).
//   * paging: when resident memory exceeds node RAM, the spillover to swap
//     multiplies everyone's time sharply; exceeding RAM+swap is an OOM.
#pragma once

#include <span>

#include "common/error.h"
#include "common/units.h"
#include "sparksim/config.h"

namespace smoe::sim {

// cpu_factor and interference_factor are header-inline: the engine evaluates
// them once per executor per rate refresh, and at large-cluster event rates
// the out-of-line call overhead was measurable in profiles.

/// Aggregate-CPU speed factor in (0, 1].
inline double cpu_factor(double total_cpu_demand) {
  SMOE_REQUIRE(total_cpu_demand >= 0.0, "negative CPU demand");
  return total_cpu_demand <= 1.0 ? 1.0 : 1.0 / total_cpu_demand;
}

/// Interference speed factor in (0, 1] for a task with `sensitivity`, given
/// the summed CPU demand of its co-runners on the node.
inline double interference_factor(double sensitivity, double corunner_cpu, double scale = 1.0) {
  SMOE_REQUIRE(sensitivity >= 0.0 && corunner_cpu >= 0.0, "negative load");
  return 1.0 / (1.0 + scale * sensitivity * corunner_cpu);
}

/// Paging speed factor in (0, 1]; 1.0 while resident memory fits in RAM.
double paging_factor(GiB resident, GiB ram, double penalty);

/// True when resident memory exceeds RAM + swap (an executor must die).
bool is_oom(GiB resident, GiB ram, GiB swap);

/// Combined speed factor for one task on a node.
struct NodeLoad {
  double total_cpu = 0.0;   ///< Sum of all co-running tasks' CPU demands.
  GiB resident = 0.0;       ///< Sum of all co-running tasks' resident memory.
};
double speed_factor(double own_cpu, double own_sensitivity, const NodeLoad& node,
                    const ClusterConfig& cluster, const ContentionConfig& contention);

}  // namespace smoe::sim
