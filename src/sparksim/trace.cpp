#include "sparksim/trace.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace smoe::sim {

UtilizationTrace::UtilizationTrace(std::size_t n_nodes, Seconds bin_width)
    : n_nodes_(n_nodes), bin_width_(bin_width) {
  SMOE_REQUIRE(n_nodes > 0, "trace: no nodes");
  SMOE_REQUIRE(bin_width > 0, "trace: bin width must be positive");
  weighted_.resize(n_nodes);
  duration_.resize(n_nodes);
}

void UtilizationTrace::ensure_bins(std::size_t bins) {
  if (weighted_.front().size() >= bins) return;
  for (std::size_t n = 0; n < n_nodes_; ++n) {
    weighted_[n].resize(bins, 0.0);
    duration_[n].resize(bins, 0.0);
  }
}

void UtilizationTrace::accumulate(NodeId node, Seconds t0, Seconds t1, double util01) {
  SMOE_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < n_nodes_, "trace: bad node");
  SMOE_REQUIRE(t1 >= t0 && t0 >= 0.0, "trace: bad interval");
  if (t1 == t0) return;
  const auto n = static_cast<std::size_t>(node);
  // An interval ending exactly on a bin boundary must not open the next bin.
  const auto last_bin = static_cast<std::size_t>((t1 - 1e-12 * bin_width_) / bin_width_);
  ensure_bins(last_bin + 1);
  for (auto b = static_cast<std::size_t>(t0 / bin_width_); b <= last_bin; ++b) {
    const double lo = std::max(t0, static_cast<double>(b) * bin_width_);
    const double hi = std::min(t1, static_cast<double>(b + 1) * bin_width_);
    if (hi <= lo) continue;
    weighted_[n][b] += util01 * (hi - lo);
    duration_[n][b] += hi - lo;
  }
}

std::size_t UtilizationTrace::n_bins() const { return weighted_.front().size(); }

double UtilizationTrace::value(NodeId node, std::size_t bin) const {
  SMOE_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < n_nodes_, "trace: bad node");
  const auto n = static_cast<std::size_t>(node);
  if (bin >= weighted_[n].size() || duration_[n][bin] <= 0.0) return 0.0;
  return weighted_[n][bin] / duration_[n][bin];
}

double UtilizationTrace::overall_mean() const {
  double w = 0, d = 0;
  for (std::size_t n = 0; n < n_nodes_; ++n)
    for (std::size_t b = 0; b < weighted_[n].size(); ++b) {
      w += weighted_[n][b];
      d += duration_[n][b];
    }
  return d > 0.0 ? w / d : 0.0;
}

}  // namespace smoe::sim
