#include "sparksim/trace.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace smoe::sim {

UtilizationTrace::UtilizationTrace(std::size_t n_nodes, Seconds bin_width)
    : n_nodes_(n_nodes), bin_width_(bin_width) {
  SMOE_REQUIRE(n_nodes > 0, "trace: no nodes");
  SMOE_REQUIRE(bin_width > 0, "trace: bin width must be positive");
  nodes_.resize(n_nodes);
}

void UtilizationTrace::accumulate(NodeId node, Seconds t0, Seconds t1, double util01) {
  SMOE_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < n_nodes_, "trace: bad node");
  SMOE_REQUIRE(t1 >= t0 && t0 >= 0.0, "trace: bad interval");
  if (t1 == t0) return;
  auto& pn = nodes_[static_cast<std::size_t>(node)];
  // An interval ending exactly on a bin boundary must not open the next bin.
  const auto last_bin = static_cast<std::size_t>((t1 - 1e-12 * bin_width_) / bin_width_);
  n_bins_ = std::max(n_bins_, last_bin + 1);
  pn.covered_to = std::max(pn.covered_to, t1);
  if (util01 == 0.0) return;  // duration is implied by covered_to
  auto& w = pn.weighted;
  if (w.size() < last_bin + 1) {
    // Grow geometrically with zero fill. Trailing zero bins beyond last_bin
    // are observably invisible — value() clamps durations via covered_to,
    // overall_mean() only ever adds exact zeros, and n_bins_ is tracked
    // separately — while the amortization removes a per-span resize from the
    // engine's hottest flush path (one growth per doubling, not per bin).
    w.resize(std::max(last_bin + 1, 2 * w.size()), 0.0);
  }
  for (auto b = static_cast<std::size_t>(t0 / bin_width_); b <= last_bin; ++b) {
    const double lo = std::max(t0, static_cast<double>(b) * bin_width_);
    const double hi = std::min(t1, static_cast<double>(b + 1) * bin_width_);
    if (hi <= lo) continue;
    w[b] += util01 * (hi - lo);
  }
}

double UtilizationTrace::value(NodeId node, std::size_t bin) const {
  SMOE_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < n_nodes_, "trace: bad node");
  if (bin >= n_bins_) return 0.0;
  const auto& pn = nodes_[static_cast<std::size_t>(node)];
  const double lo = static_cast<double>(bin) * bin_width_;
  const double dur = std::min(pn.covered_to, static_cast<double>(bin + 1) * bin_width_) - lo;
  if (dur <= 0.0) return 0.0;
  const double w = bin < pn.weighted.size() ? pn.weighted[bin] : 0.0;
  return w / dur;
}

double UtilizationTrace::overall_mean() const {
  double w = 0, d = 0;
  for (const auto& pn : nodes_) {
    for (const double x : pn.weighted) w += x;
    d += pn.covered_to;
  }
  return d > 0.0 ? w / d : 0.0;
}

void UtilizationTrace::merge_shard(const UtilizationTrace& shard, std::size_t node_offset) {
  SMOE_REQUIRE(shard.bin_width_ == bin_width_, "trace merge: bin width mismatch");
  SMOE_REQUIRE(node_offset + shard.n_nodes_ <= n_nodes_,
               "trace merge: node range out of bounds");
  n_bins_ = std::max(n_bins_, shard.n_bins_);
  for (std::size_t n = 0; n < shard.n_nodes_; ++n) nodes_[node_offset + n] = shard.nodes_[n];
}

}  // namespace smoe::sim
