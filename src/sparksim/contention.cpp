#include "sparksim/contention.h"

#include <algorithm>

#include "common/error.h"

namespace smoe::sim {

double paging_factor(GiB resident, GiB ram, double penalty) {
  SMOE_REQUIRE(ram > 0.0, "ram must be positive");
  const double overflow = std::max(0.0, resident - ram);
  return 1.0 / (1.0 + penalty * overflow / ram);
}

bool is_oom(GiB resident, GiB ram, GiB swap) { return resident > ram + swap; }

double speed_factor(double own_cpu, double own_sensitivity, const NodeLoad& node,
                    const ClusterConfig& cluster, const ContentionConfig& contention) {
  const double others = std::max(0.0, node.total_cpu - own_cpu);
  return cpu_factor(node.total_cpu) *
         interference_factor(own_sensitivity, others, contention.interference_scale) *
         paging_factor(node.resident, cluster.node_ram, contention.paging_penalty);
}

}  // namespace smoe::sim
