// Continuous invariant auditing for the cluster simulator.
//
// InvariantAuditor is an obs::EventSink that replays the engine's structured
// event stream against an *independent* shadow model of the cluster and
// checks the simulator's conservation laws at every transition — not just at
// run end, the way the fixed-seed tests do. Attach it like any sink (or tee
// it with a user sink):
//
//   audit::InvariantAuditor auditor;
//   obs::TeeSink tee(auditor, my_jsonl_sink);   // auditor + normal tracing
//   cfg.sink = &auditor;                        // or audit alone
//
// The shadow model re-derives per-node memory/CPU sums from the executor
// lifecycle events alone, so drift in the engine's incrementally-maintained
// counters (`reserved`, `planned_cpu`, `cpu_iso_sum`) is caught the moment it
// exceeds a relative tolerance — the engine emits its own incremental values
// (`node_*_after` fields) precisely so the two bookkeeping paths can be
// compared. Any violation throws smoe::InvariantError whose message embeds a
// copy-pasteable repro (seed, n_apps, policy, cluster shape, plus any caller
// context such as a fuzz-harness command line).
//
// Invariants checked (see DESIGN.md "Validation" for the full list):
//   * monotone simulated time; events only inside a run_start..run_end span
//   * per-node reserved memory never exceeds node RAM (relative tolerance)
//   * shadow memory/CPU sums match the engine's incremental sums
//   * executor slot lifecycle: dispatch->spawn->finish|oom, no double
//     occupancy, no release of a dead slot, at most one executor per
//     (app, node), mode-specific node occupancy caps (isolated=1, pairwise=2)
//   * items conservation per app: dispatched = input - profiled, every
//     OOM-lost chunk re-runs exactly once, finished = dispatched - lost
//   * queue-wait >= 0: no executor spawns before its app's profiling ends
//   * run-end totals agree with the event stream (spawns, OOMs, degradations,
//     makespan, app count)
//
// The auditor is deliberately built only from event fields — it never touches
// engine internals — so it doubles as a schema check on the trace itself.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/sink.h"

namespace smoe::obs {
class FlightRecorder;
}

namespace smoe::sim::audit {

class InvariantAuditor final : public obs::EventSink {
 public:
  struct Options {
    /// Relative tolerance for cross-checking the engine's incremental sums
    /// against the shadow model's recomputed sums (exact bookkeeping).
    double rel_tol = 1e-7;
    /// Relative tolerance for item-count conservation (items are integrated
    /// as rate x dt, so they carry more rounding than pure bookkeeping).
    double items_rel_tol = 1e-6;
    /// Extra text prepended to the repro of every failure message — e.g. the
    /// fuzz harness passes its own command line here so a violation is
    /// reproducible outside the harness too.
    std::string context;
    /// Optional flight recorder (non-owning). When set, every event is
    /// forwarded into it *before* auditing — so the ring always contains the
    /// violating event — and fail() dumps the retained last-K events as
    /// JSONL to `flight_dump_path`, appending the dump location to the
    /// failure message right after the repro line.
    obs::FlightRecorder* flight = nullptr;
    /// Where fail() writes the flight-recorder dump (JSONL, readable by
    /// obs::TraceReader / smoe-trace).
    std::string flight_dump_path = "audit_flight_dump.jsonl";
  };

  InvariantAuditor() = default;
  explicit InvariantAuditor(Options opts) : opts_(std::move(opts)) {}

  bool enabled() const override { return true; }

  /// Replays one event into the shadow model; throws smoe::InvariantError
  /// (message embeds the repro string) on the first violated invariant.
  void emit(const obs::Event& event) override;

  /// Drops any mid-run shadow state (e.g. after catching a violation) so the
  /// auditor can observe a fresh run.
  void reset();

  std::size_t events_seen() const { return events_seen_; }
  std::size_t runs_completed() const { return runs_completed_; }
  bool run_in_progress() const { return in_run_; }
  /// Repro string of the current (or last) run: context + seed, n_apps,
  /// policy, cluster shape. Empty before the first run_start.
  const std::string& repro() const { return repro_; }

 private:
  struct ShadowExec {
    std::int64_t app = -1;
    std::int64_t node = -1;
    double chunk = 0;
    double reserved = 0;
    double planned_cpu = 0;
    double cpu_iso = 0;
    double degrade = 1.0;
    double spawned_at = 0;
    bool predictive = false;
    bool rerun = false;
  };

  struct ShadowApp {
    bool submitted = false;
    bool started = false;   ///< first executor spawned
    bool finished = false;
    double submit_t = 0;    ///< submission time (0 in batch, admission time serving)
    double input = 0;
    double consumed = 0;     ///< items eaten by profiling
    double profile_end = 0;
    double dispatched_new = 0;    ///< non-rerun chunk items handed out
    double dispatched_rerun = 0;  ///< isolated re-run chunk items
    double finished_items = 0;    ///< chunk items of finished executors
    double lost_items = 0;        ///< chunk items lost to OOM kills
    std::vector<double> pending_rerun_chunks;  ///< lost, not yet re-run
    std::size_t live = 0;
    std::size_t ooms = 0;
  };

  /// One dispatch decision awaiting its executor_spawn twin.
  struct PendingDispatch {
    bool armed = false;
    std::int64_t app = -1;
    std::int64_t node = -1;
    double chunk = 0;
    double reserved = 0;
    bool predictive = false;
    bool rerun = false;
  };

  // --- failure / field plumbing (throw InvariantError with repro) ---------
  [[noreturn]] void fail(const std::string& what, const obs::Event& event) const;
  double f64(const obs::Event& event, std::string_view key) const;
  std::int64_t i64(const obs::Event& event, std::string_view key) const;
  std::string str(const obs::Event& event, std::string_view key) const;

  // --- per-event handlers -------------------------------------------------
  void on_run_start(const obs::Event& event);
  void on_app_submit(const obs::Event& event);
  void on_profiling(const obs::Event& event, bool end);
  void on_dispatch(const obs::Event& event);
  void on_spawn(const obs::Event& event);
  void on_degrade(const obs::Event& event, bool thrash);
  void on_isolated_rerun(const obs::Event& event);
  void on_release(const obs::Event& event, bool oom);
  void on_monitor_report(const obs::Event& event);
  void on_arrival(const obs::Event& event);
  void on_admission(const obs::Event& event);
  void on_app_finish(const obs::Event& event);
  void on_run_end(const obs::Event& event);

  ShadowApp& app_at(const obs::Event& event, std::int64_t id);
  void check_node_sums(const obs::Event& event, std::int64_t node);

  Options opts_;
  std::size_t events_seen_ = 0;
  std::size_t runs_completed_ = 0;
  std::string repro_;

  // --- shadow state for the run in progress -------------------------------
  bool in_run_ = false;
  /// Open-loop serving run (run_start carried `open_loop`): n_apps_ is the
  /// *offered* load, apps submit over time at admission, and run_end balances
  /// offered = admitted + dropped instead of requiring every app to finish.
  bool open_loop_ = false;
  std::string policy_;
  std::string mode_;  ///< "isolated" / "pairwise" / "predictive"
  std::int64_t n_apps_ = 0;
  std::int64_t n_nodes_ = 0;
  double node_ram_ = 0;
  double last_t_ = 0;
  std::vector<ShadowApp> apps_;
  std::unordered_map<std::int64_t, ShadowExec> live_;  ///< slot -> executor
  PendingDispatch pending_;
  std::int64_t last_report_ = 0;
  std::size_t spawn_count_ = 0;
  std::size_t oom_count_ = 0;
  std::size_t degraded_count_ = 0;
  std::size_t submitted_apps_ = 0;
  std::size_t arrivals_seen_ = 0;
  std::size_t admitted_ = 0;
  std::size_t dropped_ = 0;
  std::size_t finished_apps_ = 0;
  std::size_t peak_occupancy_ = 0;
  double max_finish_t_ = 0;
};

}  // namespace smoe::sim::audit
