#include "sparksim/audit/invariant_auditor.h"

#include <cmath>
#include <sstream>

#include "common/approx.h"
#include "common/error.h"
#include "obs/event.h"
#include "obs/flight_recorder.h"

namespace smoe::sim::audit {

namespace {

/// Shortest round-trip number rendering (same formatter the JSONL sink uses),
/// so repro strings paste back losslessly.
std::string num(double v) {
  std::string s;
  obs::detail::append_json_number(s, v);
  return s;
}

}  // namespace

// ---- failure / field plumbing --------------------------------------------

void InvariantAuditor::fail(const std::string& what, const obs::Event& event) const {
  std::ostringstream msg;
  msg << "audit: " << what << " [event #" << events_seen_ << " "
      << obs::to_string(event.type) << " t=" << num(event.t) << "]";
  msg << " | repro: ";
  if (!opts_.context.empty()) msg << opts_.context << " ";
  msg << (repro_.empty() ? "(before run_start)" : repro_);
  // Postmortem: the flight recorder (fed before auditing, so it holds the
  // violating event) dumps its last-K tail as JSONL next to the repro line.
  if (opts_.flight != nullptr) {
    if (opts_.flight->dump_to_file(opts_.flight_dump_path)) {
      msg << "\n  flight recorder: last " << opts_.flight->size() << " event(s) dumped to "
          << opts_.flight_dump_path;
    } else {
      msg << "\n  flight recorder: dump to " << opts_.flight_dump_path
          << " failed (events retained in memory: " << opts_.flight->size() << ")";
    }
  }
  throw InvariantError(msg.str());
}

double InvariantAuditor::f64(const obs::Event& event, std::string_view key) const {
  const obs::Event::Field* f = event.find(key);
  if (f == nullptr) fail("missing field '" + std::string(key) + "'", event);
  if (const auto* d = std::get_if<double>(&f->value)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&f->value))
    return static_cast<double>(*i);
  fail("field '" + std::string(key) + "' is not numeric", event);
}

std::int64_t InvariantAuditor::i64(const obs::Event& event, std::string_view key) const {
  const obs::Event::Field* f = event.find(key);
  if (f == nullptr) fail("missing field '" + std::string(key) + "'", event);
  if (const auto* i = std::get_if<std::int64_t>(&f->value)) return *i;
  fail("field '" + std::string(key) + "' is not an integer", event);
}

std::string InvariantAuditor::str(const obs::Event& event, std::string_view key) const {
  const obs::Event::Field* f = event.find(key);
  if (f == nullptr) fail("missing field '" + std::string(key) + "'", event);
  if (const auto* s = std::get_if<std::string_view>(&f->value)) return std::string(*s);
  fail("field '" + std::string(key) + "' is not a string", event);
}

InvariantAuditor::ShadowApp& InvariantAuditor::app_at(const obs::Event& event,
                                                      std::int64_t id) {
  if (id < 0 || id >= static_cast<std::int64_t>(apps_.size()))
    fail("app id " + std::to_string(id) + " out of range [0, " +
             std::to_string(apps_.size()) + ")",
         event);
  ShadowApp& app = apps_[static_cast<std::size_t>(id)];
  if (!app.submitted) fail("app " + std::to_string(id) + " was never submitted", event);
  return app;
}

// ---- shadow vs engine node sums ------------------------------------------

void InvariantAuditor::check_node_sums(const obs::Event& event, std::int64_t node) {
  double reserved = 0, planned_cpu = 0, cpu_iso = 0;
  std::size_t occupancy = 0;
  for (const auto& [slot, e] : live_) {
    if (e.node != node) continue;
    reserved += e.reserved;
    planned_cpu += e.planned_cpu;
    cpu_iso += e.cpu_iso;
    ++occupancy;
  }
  if (!approx_le(reserved, node_ram_, opts_.rel_tol))
    fail("node " + std::to_string(node) + " over-committed: shadow reserved " +
             num(reserved) + " GiB > node RAM " + num(node_ram_) + " GiB",
         event);
  // The engine's incrementally maintained sums must agree with the shadow
  // model's recomputation from the executor lifecycle alone — this is the
  // check that catches silent accounting drift.
  const double eng_reserved = f64(event, "node_reserved_after");
  const double eng_planned = f64(event, "node_planned_cpu_after");
  const double eng_iso = f64(event, "node_cpu_iso_after");
  if (!approx_eq(reserved, eng_reserved, opts_.rel_tol))
    fail("node " + std::to_string(node) + " reserved drift: engine " + num(eng_reserved) +
             " GiB vs shadow " + num(reserved) + " GiB",
         event);
  if (!approx_eq(planned_cpu, eng_planned, opts_.rel_tol))
    fail("node " + std::to_string(node) + " planned_cpu drift: engine " +
             num(eng_planned) + " vs shadow " + num(planned_cpu),
         event);
  if (!approx_eq(cpu_iso, eng_iso, opts_.rel_tol))
    fail("node " + std::to_string(node) + " cpu_iso_sum drift: engine " + num(eng_iso) +
             " vs shadow " + num(cpu_iso),
         event);
  if (mode_ == "isolated" && occupancy > 1)
    fail("isolated mode co-located " + std::to_string(occupancy) +
             " executors on node " + std::to_string(node),
         event);
  if (mode_ == "pairwise" && occupancy > 2)
    fail("pairwise mode packed " + std::to_string(occupancy) + " executors on node " +
             std::to_string(node),
         event);
  peak_occupancy_ = std::max(peak_occupancy_, occupancy);
}

// ---- event dispatch -------------------------------------------------------

void InvariantAuditor::emit(const obs::Event& event) {
  // Feed the flight recorder before any check can throw, so a dump always
  // ends with the event that violated the invariant.
  if (opts_.flight != nullptr) opts_.flight->emit(event);
  ++events_seen_;
  if (!std::isfinite(event.t) || event.t < 0)
    fail("non-finite or negative timestamp", event);
  if (event.type == obs::EventType::kRunStart) {
    on_run_start(event);
    return;
  }
  if (!in_run_) fail("event outside a run_start..run_end span", event);
  if (event.t < last_t_)
    fail("time went backwards: " + num(event.t) + " after " + num(last_t_), event);
  last_t_ = event.t;
  if (pending_.armed && event.type != obs::EventType::kExecutorSpawn)
    fail("dispatch decision not followed by its executor_spawn", event);

  switch (event.type) {
    case obs::EventType::kRunStart: return;  // handled above
    case obs::EventType::kAppSubmit: on_app_submit(event); return;
    case obs::EventType::kProfilingStart: on_profiling(event, /*end=*/false); return;
    case obs::EventType::kProfilingEnd: on_profiling(event, /*end=*/true); return;
    case obs::EventType::kDispatch: on_dispatch(event); return;
    case obs::EventType::kExecutorSpawn: on_spawn(event); return;
    case obs::EventType::kExecutorSpill: on_degrade(event, /*thrash=*/false); return;
    case obs::EventType::kExecutorThrash: on_degrade(event, /*thrash=*/true); return;
    case obs::EventType::kIsolatedRerun: on_isolated_rerun(event); return;
    case obs::EventType::kExecutorOom: on_release(event, /*oom=*/true); return;
    case obs::EventType::kExecutorFinish: on_release(event, /*oom=*/false); return;
    case obs::EventType::kMonitorReport: on_monitor_report(event); return;
    case obs::EventType::kAppArrival: on_arrival(event); return;
    case obs::EventType::kAdmission: on_admission(event); return;
    case obs::EventType::kAppFinish: on_app_finish(event); return;
    case obs::EventType::kRunEnd: on_run_end(event); return;
  }
  fail("unknown event type", event);
}

void InvariantAuditor::reset() {
  in_run_ = false;
  open_loop_ = false;
  policy_.clear();
  mode_.clear();
  n_apps_ = n_nodes_ = 0;
  node_ram_ = last_t_ = 0;
  apps_.clear();
  live_.clear();
  pending_ = {};
  last_report_ = 0;
  spawn_count_ = oom_count_ = degraded_count_ = finished_apps_ = peak_occupancy_ = 0;
  submitted_apps_ = arrivals_seen_ = admitted_ = dropped_ = 0;
  max_finish_t_ = 0;
}

// ---- handlers -------------------------------------------------------------

void InvariantAuditor::on_run_start(const obs::Event& event) {
  if (in_run_) fail("run_start while a run is already in progress", event);
  reset();
  policy_ = str(event, "policy");
  mode_ = str(event, "mode");
  n_apps_ = i64(event, "n_apps");
  n_nodes_ = i64(event, "n_nodes");
  node_ram_ = f64(event, "node_ram_gib");
  const std::int64_t seed = i64(event, "seed");
  // Batch runs don't carry the field; serving runs set open_loop=1. In an
  // open-loop run n_apps is the *offered* load: apps submit over time at
  // admission, and fewer than n_apps may ever exist.
  open_loop_ = event.find("open_loop") != nullptr && i64(event, "open_loop") != 0;
  repro_ = "seed=" + std::to_string(seed) + " n_apps=" + std::to_string(n_apps_) +
           " policy=" + policy_ + " n_nodes=" + std::to_string(n_nodes_) +
           " node_ram_gib=" + num(node_ram_);
  if (open_loop_) repro_ += " open_loop admission=" + str(event, "admission");
  if (n_apps_ <= 0) fail("run with no applications", event);
  if (n_nodes_ <= 0 || node_ram_ <= 0) fail("degenerate cluster shape", event);
  apps_.assign(static_cast<std::size_t>(n_apps_), ShadowApp{});
  in_run_ = true;
  last_t_ = event.t;
}

void InvariantAuditor::on_app_submit(const obs::Event& event) {
  const std::int64_t id = i64(event, "app");
  if (id < 0 || id >= n_apps_) fail("submitted app id out of range", event);
  ShadowApp& app = apps_[static_cast<std::size_t>(id)];
  if (app.submitted) fail("app " + std::to_string(id) + " submitted twice", event);
  if (open_loop_ && static_cast<std::size_t>(id) != submitted_apps_)
    fail("serving app ids must be dense admission order: got " + std::to_string(id) +
             ", expected " + std::to_string(submitted_apps_),
         event);
  app.submitted = true;
  ++submitted_apps_;
  app.submit_t = event.t;
  app.input = f64(event, "input_items");
  app.consumed = f64(event, "profile_consumed_items");
  app.profile_end = f64(event, "profile_end");
  if (app.input <= 0) fail("app submitted with no input items", event);
  if (app.consumed < 0 ||
      !approx_le(app.consumed, 0.5 * app.input, opts_.items_rel_tol))
    fail("profiling consumed " + num(app.consumed) + " of " + num(app.input) +
             " input items (cap is half)",
         event);
  if (app.profile_end < 0) fail("negative profiling end time", event);
}

void InvariantAuditor::on_profiling(const obs::Event& event, bool end) {
  const ShadowApp& app = app_at(event, i64(event, "app"));
  if (!end) {
    const double planned_end = f64(event, "planned_end");
    if (!approx_eq(planned_end, app.profile_end, opts_.rel_tol))
      fail("profiling planned_end " + num(planned_end) +
               " disagrees with submit-time profile_end " + num(app.profile_end),
           event);
    if (planned_end < f64(event, "slot_start"))
      fail("profiling ends before its slot starts", event);
  } else {
    // Promotion must not happen before the profiling window elapsed.
    if (!approx_ge(event.t, app.profile_end, kSimRelEps))
      fail("profiling_end at t=" + num(event.t) + " before profile_end " +
               num(app.profile_end),
           event);
  }
}

void InvariantAuditor::on_dispatch(const obs::Event& event) {
  // `pending_.armed` was rejected for every other event type in emit(), so a
  // second dispatch in a row cannot reach here with an armed decision.
  pending_.armed = true;
  pending_.app = i64(event, "app");
  pending_.node = i64(event, "node");
  pending_.chunk = f64(event, "chunk_items");
  pending_.reserved = f64(event, "reserved_gib");
  pending_.predictive = i64(event, "predictive") != 0;
  pending_.rerun = i64(event, "isolated_rerun") != 0;
  if (pending_.node < 0 || pending_.node >= n_nodes_)
    fail("dispatch to node out of range", event);
  if (pending_.chunk <= 0) fail("dispatch with empty chunk", event);
  if (pending_.reserved <= 0) fail("dispatch with empty reservation", event);
  (void)app_at(event, pending_.app);
  // The decision's view of free memory must match the shadow ledger.
  double reserved = 0;
  for (const auto& [slot, e] : live_)
    if (e.node == pending_.node) reserved += e.reserved;
  const double free_before = f64(event, "free_gib_before");
  if (!approx_eq(free_before, node_ram_ - reserved, opts_.rel_tol))
    fail("dispatch free_gib_before " + num(free_before) + " vs shadow free " +
             num(node_ram_ - reserved),
         event);
}

void InvariantAuditor::on_spawn(const obs::Event& event) {
  if (!pending_.armed) fail("executor_spawn without a preceding dispatch", event);
  pending_.armed = false;

  const std::int64_t slot = i64(event, "exec");
  if (slot < 0) fail("negative executor slot", event);
  if (live_.count(slot) != 0)
    fail("slot " + std::to_string(slot) + " spawned while still occupied", event);

  ShadowExec e;
  e.app = i64(event, "app");
  e.node = i64(event, "node");
  e.chunk = f64(event, "chunk_items");
  e.reserved = f64(event, "reserved_gib");
  e.planned_cpu = f64(event, "planned_cpu");
  e.cpu_iso = f64(event, "cpu_load_iso");
  e.degrade = f64(event, "degrade");
  e.predictive = i64(event, "predictive") != 0;
  e.rerun = i64(event, "isolated_rerun") != 0;
  e.spawned_at = event.t;

  if (e.app != pending_.app || e.node != pending_.node ||
      !approx_eq(e.chunk, pending_.chunk, opts_.rel_tol) ||
      !approx_eq(e.reserved, pending_.reserved, opts_.rel_tol) ||
      e.predictive != pending_.predictive || e.rerun != pending_.rerun)
    fail("executor_spawn disagrees with its dispatch decision", event);
  if (e.node < 0 || e.node >= n_nodes_) fail("spawn on node out of range", event);
  if (e.chunk <= 0) fail("spawn with empty chunk", event);
  if (e.reserved <= 0 || !approx_le(e.reserved, node_ram_, opts_.rel_tol))
    fail("reservation " + num(e.reserved) + " GiB outside (0, node RAM]", event);
  const double resident = f64(event, "resident_gib");
  if (resident < 0 || !approx_le(resident, e.reserved, opts_.rel_tol))
    fail("resident set " + num(resident) + " GiB exceeds reservation " +
             num(e.reserved) + " GiB",
         event);
  if (e.degrade <= 0 || e.degrade > 1.0) fail("degrade factor outside (0, 1]", event);
  if (e.planned_cpu < 0 || e.cpu_iso < 0) fail("negative CPU share", event);

  ShadowApp& app = app_at(event, e.app);
  if (app.finished) fail("spawn for an already-finished app", event);
  // Queue-wait >= 0: nothing runs before its profiling window closed.
  if (!approx_ge(event.t, app.profile_end, kSimRelEps))
    fail("executor spawned at t=" + num(event.t) + " before app " +
             std::to_string(e.app) + "'s profiling end " + num(app.profile_end) +
             " (negative queue wait)",
         event);
  for (const auto& [other_slot, other] : live_) {
    if (other.app == e.app && other.node == e.node)
      fail("two executors of app " + std::to_string(e.app) + " co-located on node " +
               std::to_string(e.node),
           event);
    if (mode_ == "isolated" && other.app != e.app)
      fail("isolated mode ran executors of two apps concurrently", event);
  }

  // Items conservation: regular chunks come out of (input - profiled); re-run
  // chunks must match a previously OOM-lost chunk exactly once.
  if (!e.rerun) {
    app.dispatched_new += e.chunk;
    if (!approx_le(app.dispatched_new, app.input - app.consumed, opts_.items_rel_tol))
      fail("app " + std::to_string(e.app) + " over-dispatched: " +
               num(app.dispatched_new) + " items handed out of " +
               num(app.input - app.consumed) + " available",
           event);
  } else {
    bool matched = false;
    for (std::size_t i = 0; i < app.pending_rerun_chunks.size(); ++i) {
      if (approx_eq(app.pending_rerun_chunks[i], e.chunk, opts_.items_rel_tol)) {
        app.pending_rerun_chunks.erase(app.pending_rerun_chunks.begin() +
                                       static_cast<std::ptrdiff_t>(i));
        matched = true;
        break;
      }
    }
    if (!matched)
      fail("isolated re-run of " + num(e.chunk) +
               " items matches no OOM-lost chunk of app " + std::to_string(e.app),
           event);
    app.dispatched_rerun += e.chunk;
  }

  app.started = true;
  ++app.live;
  live_.emplace(slot, e);
  ++spawn_count_;
  check_node_sums(event, e.node);
}

void InvariantAuditor::on_degrade(const obs::Event& event, bool thrash) {
  const std::int64_t slot = i64(event, "exec");
  const auto it = live_.find(slot);
  if (it == live_.end()) fail("degradation reported for a dead executor slot", event);
  const ShadowExec& e = it->second;
  if (thrash != e.predictive)
    fail(std::string(thrash ? "thrash" : "spill") + " on a " +
             (e.predictive ? "predictive" : "default-heap") + " executor", event);
  const double degrade = f64(event, "degrade");
  if (!(degrade < 1.0) || !approx_eq(degrade, e.degrade, opts_.rel_tol))
    fail("degradation event factor " + num(degrade) +
             " disagrees with spawn-time factor " + num(e.degrade),
         event);
  if (!approx_ge(f64(event, "working_set_gib"), f64(event, "reserved_gib"), opts_.rel_tol))
    fail("degradation with working set within the reservation", event);
  ++degraded_count_;
}

void InvariantAuditor::on_isolated_rerun(const obs::Event& event) {
  const std::int64_t slot = i64(event, "exec");
  const auto it = live_.find(slot);
  if (it == live_.end()) fail("isolated_rerun for a dead executor slot", event);
  if (!it->second.rerun)
    fail("isolated_rerun event on a non-rerun executor", event);
  if (!approx_eq(f64(event, "chunk_items"), it->second.chunk, opts_.rel_tol))
    fail("isolated_rerun chunk disagrees with the executor's chunk", event);
}

void InvariantAuditor::on_release(const obs::Event& event, bool oom) {
  const std::int64_t slot = i64(event, "exec");
  const auto it = live_.find(slot);
  if (it == live_.end())
    fail(std::string(oom ? "oom" : "finish") + " of a dead executor slot " +
             std::to_string(slot) + " (double release?)",
         event);
  const ShadowExec e = it->second;
  if (i64(event, "app") != e.app || i64(event, "node") != e.node)
    fail("release event app/node disagree with the spawn", event);
  if (!approx_eq(f64(event, "chunk_items"), e.chunk, opts_.rel_tol))
    fail("release chunk disagrees with the spawn-time chunk", event);
  const double lifetime = f64(event, "lifetime_s");
  if (lifetime < 0 || !approx_eq(lifetime, event.t - e.spawned_at, kSimRelEps))
    fail("executor lifetime " + num(lifetime) + " disagrees with spawn time " +
             num(e.spawned_at),
         event);

  ShadowApp& app = app_at(event, e.app);
  if (oom) {
    if (!e.predictive)
      fail("OOM kill of a non-predictive executor (default heaps spill, never die)",
           event);
    const double fail_after = f64(event, "fail_after_items");
    const double processed = f64(event, "processed_items");
    if (!approx_le(fail_after, e.chunk, opts_.items_rel_tol))
      fail("fail_after exceeds the chunk", event);
    if (!approx_ge(processed, fail_after, kSimRelEps) ||
        !approx_le(processed, e.chunk, opts_.items_rel_tol))
      fail("OOM processed " + num(processed) + " items outside [fail_after=" +
               num(fail_after) + ", chunk=" + num(e.chunk) + "]",
           event);
    app.lost_items += e.chunk;
    app.pending_rerun_chunks.push_back(e.chunk);
    ++app.ooms;
    ++oom_count_;
  } else {
    app.finished_items += e.chunk;
  }
  if (app.live == 0) fail("app live-executor count underflow", event);
  --app.live;
  live_.erase(it);
  check_node_sums(event, e.node);
}

void InvariantAuditor::on_monitor_report(const obs::Event& event) {
  const std::int64_t report = i64(event, "report");
  if (report != last_report_ + 1)
    fail("monitor report #" + std::to_string(report) + " after #" +
             std::to_string(last_report_) + " (not consecutive)",
         event);
  last_report_ = report;
  const double cpu = f64(event, "mean_cpu");
  const double mem = f64(event, "mean_mem_gib");
  if (cpu < 0 || !approx_le(cpu, 1.0, opts_.rel_tol))
    fail("monitor mean CPU " + num(cpu) + " outside [0, 1]", event);
  if (mem < 0 || !approx_le(mem, node_ram_, opts_.rel_tol))
    fail("monitor mean memory " + num(mem) + " GiB outside [0, node RAM]", event);
  if (i64(event, "active_executors") != static_cast<std::int64_t>(live_.size()))
    fail("monitor active-executor count disagrees with the shadow ledger", event);
}

void InvariantAuditor::on_arrival(const obs::Event& event) {
  if (!open_loop_) fail("app_arrival in a batch (closed-loop) run", event);
  const std::int64_t idx = i64(event, "arrival");
  if (idx < 0 || idx >= n_apps_) fail("arrival index out of range", event);
  // The engine delivers arrivals strictly in load order (one sentinel at a
  // time), so the stream index is dense.
  if (static_cast<std::size_t>(idx) != arrivals_seen_)
    fail("arrival " + std::to_string(idx) + " out of order (expected " +
             std::to_string(arrivals_seen_) + ")",
         event);
  ++arrivals_seen_;
}

void InvariantAuditor::on_admission(const obs::Event& event) {
  if (!open_loop_) fail("admission verdict in a batch (closed-loop) run", event);
  const std::int64_t idx = i64(event, "arrival");
  if (idx < 0 || idx >= n_apps_) fail("admission arrival index out of range", event);
  if (static_cast<std::size_t>(idx) >= arrivals_seen_)
    fail("admission verdict for an arrival that never arrived", event);
  const std::string verdict = str(event, "verdict");
  if (verdict == "admit") {
    ++admitted_;
    // The engine emits the admission verdict right after the app_submit it
    // caused, so the shadow app must already exist and be submitted.
    if (admitted_ != submitted_apps_)
      fail("admit verdict count " + std::to_string(admitted_) +
               " disagrees with submitted apps " + std::to_string(submitted_apps_),
           event);
  } else if (verdict == "drop") {
    ++dropped_;
  } else if (verdict != "defer") {
    fail("unknown admission verdict '" + verdict + "'", event);
  }
  if (admitted_ + dropped_ > arrivals_seen_)
    fail("more final verdicts than arrivals", event);
}

void InvariantAuditor::on_app_finish(const obs::Event& event) {
  const std::int64_t id = i64(event, "app");
  ShadowApp& app = app_at(event, id);
  if (app.finished) fail("app " + std::to_string(id) + " finished twice", event);
  if (!app.started) fail("app finished without ever spawning an executor", event);
  if (app.live != 0)
    fail("app finished with " + std::to_string(app.live) + " executors still live",
         event);
  if (!app.pending_rerun_chunks.empty())
    fail("app finished with " + std::to_string(app.pending_rerun_chunks.size()) +
             " OOM-lost chunks never re-run",
         event);
  // Items conservation (Middleware '17 §2.3/§4.3): every input item is either
  // profiled or dispatched exactly once, and every OOM-lost chunk re-ran.
  if (!approx_eq(app.dispatched_new, app.input - app.consumed, opts_.items_rel_tol))
    fail("items not conserved: dispatched " + num(app.dispatched_new) + " of input " +
             num(app.input) + " minus profiled " + num(app.consumed),
         event);
  if (!approx_eq(app.dispatched_rerun, app.lost_items, opts_.items_rel_tol))
    fail("re-run items " + num(app.dispatched_rerun) + " != OOM-lost items " +
             num(app.lost_items),
         event);
  if (!approx_eq(app.finished_items,
                 app.dispatched_new + app.dispatched_rerun - app.lost_items,
                 opts_.items_rel_tol))
    fail("finished items " + num(app.finished_items) +
             " != dispatched - lost (reruns accounted)",
         event);
  const double turnaround = f64(event, "turnaround_s");
  if (!approx_eq(turnaround, event.t - app.submit_t, kSimRelEps))
    fail("turnaround " + num(turnaround) + " disagrees with finish " + num(event.t) +
             " minus submit " + num(app.submit_t),
         event);
  if (i64(event, "oom_events") != static_cast<std::int64_t>(app.ooms))
    fail("app OOM count disagrees with observed OOM events", event);
  app.finished = true;
  ++finished_apps_;
  max_finish_t_ = std::max(max_finish_t_, event.t);
}

void InvariantAuditor::on_run_end(const obs::Event& event) {
  // Closed loop: every offered app was submitted at t=0 and must finish.
  // Open loop: every *admitted* (= submitted) app must finish, and every
  // arrival must have a final verdict — offered = admitted + dropped.
  if (finished_apps_ != submitted_apps_)
    fail("run ended with " + std::to_string(finished_apps_) + " of " +
             std::to_string(submitted_apps_) + " submitted apps finished",
         event);
  if (!open_loop_ && submitted_apps_ != static_cast<std::size_t>(n_apps_))
    fail("batch run ended with " + std::to_string(submitted_apps_) + " of " +
             std::to_string(n_apps_) + " apps submitted",
         event);
  if (open_loop_) {
    if (arrivals_seen_ != static_cast<std::size_t>(n_apps_))
      fail("serving run ended with " + std::to_string(arrivals_seen_) + " of " +
               std::to_string(n_apps_) + " arrivals delivered",
           event);
    if (admitted_ + dropped_ != arrivals_seen_)
      fail("serving run ended with unresolved arrivals: admitted " +
               std::to_string(admitted_) + " + dropped " + std::to_string(dropped_) +
               " != offered " + std::to_string(arrivals_seen_),
           event);
    if (i64(event, "admitted") != static_cast<std::int64_t>(admitted_) ||
        i64(event, "dropped") != static_cast<std::int64_t>(dropped_))
      fail("run-end admitted/dropped disagree with observed verdicts", event);
  }
  if (!live_.empty())
    fail("run ended with " + std::to_string(live_.size()) + " executors still live",
         event);
  if (i64(event, "executors_spawned") != static_cast<std::int64_t>(spawn_count_))
    fail("run-end executors_spawned disagrees with observed spawns", event);
  if (i64(event, "oom_total") != static_cast<std::int64_t>(oom_count_))
    fail("run-end oom_total disagrees with observed OOM events", event);
  if (i64(event, "executors_degraded") != static_cast<std::int64_t>(degraded_count_))
    fail("run-end executors_degraded disagrees with observed spills+thrashes", event);
  if (i64(event, "peak_node_occupancy") != static_cast<std::int64_t>(peak_occupancy_))
    fail("run-end peak_node_occupancy disagrees with the shadow ledger", event);
  const double makespan = f64(event, "makespan_s");
  if (!approx_eq(makespan, max_finish_t_, kSimRelEps))
    fail("makespan " + num(makespan) + " != latest app finish " + num(max_finish_t_),
         event);
  const double reserved_h = f64(event, "reserved_gib_hours");
  const double used_h = f64(event, "used_gib_hours");
  if (reserved_h < 0 || used_h < 0 || !approx_ge(reserved_h, used_h, kSimRelEps))
    fail("memory integrals disordered: reserved " + num(reserved_h) + " GiB·h < used " +
             num(used_h) + " GiB·h",
         event);
  in_run_ = false;
  ++runs_completed_;
}

}  // namespace smoe::sim::audit
