// Partitioned-cluster mode: shard a large cluster into independent node
// groups, simulate each shard on its own ThreadPool worker, and merge the
// shard results deterministically.
//
// Spark deployments at the 10k-node scale are operated as independent
// resource pools (queues / sub-clusters) far more often than as one flat
// scheduling domain, and the simulator mirrors that: a partitioned run
// splits the nodes evenly across `n_partitions` shards, deals the task mix
// round-robin (app i -> shard i % P, so every shard sees the same FCFS
// arrival order it would see as a standalone cluster), and runs each shard
// as a full ClusterSim with its own derived seed. Shards share nothing but
// the policy's immutable / internally-synchronized training caches
// (SchedulingPolicy::clone contract), so the fan-out is embarrassingly
// parallel.
//
// Determinism contract:
//   * P == 1 is *byte-identical* to a plain ClusterSim::run — same seed,
//     same everything (tests/test_partition.cpp pins this).
//   * For P > 1, every shard is seed-deterministic in isolation and the
//     merge is performed in fixed shard order, so the merged SimResult is
//     byte-identical at any thread count, including fully sequential
//     execution for policies that cannot clone.
//
// Merge semantics (shard order s = 0..P-1 throughout):
//   * apps     — re-interleaved to the original mix order (app i comes from
//                shard i % P, position i / P);
//   * makespan — max over shards (the batch ends when the last shard does);
//   * trace    — shard traces spliced at their node offsets;
//   * counts and GiB-hour integrals — summed;
//   * peak_node_occupancy — max;
//   * metrics  — counters summed and same-shape histograms merged, in shard
//                order; windowed rates and P^2 quantile sketches are dropped
//                (they cannot be merged exactly and a wrong number is worse
//                than none).
// Partitioned runs are untraced: per-event sinks would interleave
// nondeterministically across shards.
#pragma once

#include <cstddef>

#include "sparksim/engine.h"

namespace smoe::sim {

class PartitionedClusterSim {
 public:
  /// Requires 1 <= n_partitions <= config.cluster.n_nodes. `n_threads` sizes
  /// the worker pool (0 = SMOE_THREADS env, else hardware); any thread count
  /// produces byte-identical results.
  PartitionedClusterSim(SimConfig config, const wl::FeatureModel& features,
                        std::size_t n_partitions, std::size_t n_threads = 0);

  /// Which shard an app at `app_index` in the mix is dealt to.
  static std::size_t shard_of(std::size_t app_index, std::size_t n_partitions) {
    return app_index % n_partitions;
  }

  std::size_t n_partitions() const { return n_partitions_; }

  /// Simulate the mix across the shards and merge. The policy is cloned per
  /// shard (clone() contract); a non-cloneable policy runs every shard
  /// sequentially on the calling thread with the borrowed instance.
  SimResult run(const wl::TaskMix& mix, SchedulingPolicy& policy);

 private:
  SimConfig cfg_;
  const wl::FeatureModel& features_;
  std::size_t n_partitions_;
  std::size_t n_threads_;
};

}  // namespace smoe::sim
