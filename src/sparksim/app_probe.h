// The measurement interface scheduling policies get for a submitted
// application. Policies never see the BenchmarkSpec's ground-truth memory
// function — they can only observe what a real system could observe:
// profiling-run feature vectors, measured footprints of probe runs (with
// measurement noise), and the measured CPU load.
#pragma once

#include "common/rng.h"
#include "common/units.h"
#include "ml/matrix.h"
#include "workloads/benchmark.h"
#include "workloads/features.h"

namespace smoe::sim {

class AppProbe {
 public:
  /// `noise` is the relative std-dev of footprint measurements (a real RSS
  /// sample jitters with GC and OS caching).
  AppProbe(const wl::BenchmarkSpec& spec, const wl::FeatureModel& features, Items input_items,
           std::uint64_t seed, double noise = 0.010);

  const std::string& name() const { return spec_.name; }
  Items input_items() const { return input_items_; }

  /// Raw 22-feature vector from the ~100 MB characterization run.
  ml::Vector raw_features();

  /// Measured footprint of an executor caching `items` items (noisy truth).
  GiB measure_footprint(Items items);

  /// Measured average CPU load during profiling (noisy truth).
  double measure_cpu_load();

 private:
  const wl::BenchmarkSpec& spec_;
  const wl::FeatureModel& features_;
  Items input_items_;
  Rng rng_;
  double noise_;
};

}  // namespace smoe::sim
