#include "sparksim/engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "common/approx.h"
#include "common/error.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "sparksim/contention.h"
#include "sparksim/monitor.h"
#include "workloads/suites.h"

namespace smoe::sim {

namespace {

constexpr double kEps = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();
/// A predictive executor survives overshooting its heap by up to 25%
/// (GC-thrashing); beyond that it dies with an OOM.
constexpr double kOomOvershoot = 1.25;
constexpr double kThrashPenalty = 9.0;  ///< predictive heap overshoot slowdown
constexpr double kSpillPenalty = 1.5;   ///< default-heap spill slowdown

enum class Phase { kProfiling, kReady, kDone };

struct ExecState {
  bool active = false;
  int app = -1;
  NodeId node = kNoId;
  Items chunk = 0;
  Items remaining = 0;
  Items processed = 0;
  Items fail_after = kInf;  ///< OOM once this many items were processed.
  GiB reserved = 0;
  GiB resident = 0;
  Seconds search_delay = 0;  ///< online-search probing; no progress meanwhile.
  double degrade = 1.0;      ///< spill/thrash factor from heap overshoot.
  double rate = 0;           ///< cached items/s for the current step.
  double planned_cpu = 0;    ///< CPU-load share booked on the node at spawn.
  Seconds spawned_at = 0;
  bool predictive = false;
};

struct AppState {
  const wl::BenchmarkSpec* spec = nullptr;
  std::unique_ptr<AppProbe> probe;
  MemoryEstimate est;
  Phase phase = Phase::kProfiling;
  Items unassigned = 0;
  std::size_t executors = 0;
  std::size_t dyn_alloc = 1;  ///< Spark dynamic-allocation executor count.
  std::size_t max_pred_executors = 1;  ///< co-location boost cap (Section 4.3).
  Items default_chunk = 0;    ///< Spark default even split.
  Items pred_chunk_cap = 0;   ///< per-executor split in predictive mode.
  std::vector<Items> rerun_chunks;  ///< OOM re-runs pending (Section 2.3).
  /// Set after an OOM: the model is clearly wrong for this application, so
  /// the dispatcher falls back to the conservative default-heap scheme
  /// (Section 4.1's confidence fallback / re-train path).
  bool model_distrusted = false;
  AppResult res;
};

struct NodeState {
  GiB reserved = 0;
  double planned_cpu = 0;
  /// Sum of cpu_load_iso over resident executors, maintained incrementally on
  /// spawn/release so refresh_rates/node_utilization need no per-event rescan.
  double cpu_iso_sum = 0;
  std::vector<int> execs;

  bool empty() const { return execs.empty(); }
};

class NullIsolatedPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "internal-isolated"; }
  DispatchMode mode() const override { return DispatchMode::kIsolated; }
  ProfilingCost profile(AppProbe&, MemoryEstimate&) override { return {}; }
};

std::string_view mode_name(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kIsolated: return "isolated";
    case DispatchMode::kPairwise: return "pairwise";
    case DispatchMode::kPredictive: return "predictive";
  }
  return "unknown";
}

/// Binds/unbinds a policy's telemetry registry around one run (exception
/// safe: a throwing run must not leave the policy pointing at a dead
/// registry).
struct MetricsBinding {
  SchedulingPolicy& policy;
  MetricsBinding(SchedulingPolicy& p, obs::Registry* registry) : policy(p) {
    policy.bind_metrics(registry);
  }
  ~MetricsBinding() { policy.bind_metrics(nullptr); }
};

struct Sim {
  const SimConfig& cfg;
  const wl::FeatureModel& features;
  SchedulingPolicy& policy;
  obs::EventSink& sink;
  /// Cached sink.enabled(): emitters skip building Event objects entirely
  /// when tracing is off, keeping the no-sink path allocation-free.
  const bool tracing;

  Seconds now = 0;
  std::vector<AppState> apps;
  std::vector<std::size_t> queue;  ///< dispatch order (Section 5.2's policy)
  std::vector<NodeState> nodes;
  std::vector<ExecState> execs;
  /// Free executor slots as a min-heap, so alloc_exec_slot picks the lowest
  /// free index in O(log n) — the same slot the old linear scan returned, so
  /// slot ids in traces are unchanged.
  std::vector<int> free_slots;
  /// Active slots in ascending order: the per-event loops (next_event_dt,
  /// advance, handle_completions) iterate live executors only instead of
  /// scanning every slot ever allocated.
  std::vector<int> active_slots;
  ResourceMonitor monitor;
  UtilizationTrace trace;
  Seconds next_report;
  std::size_t oom_total = 0;
  std::size_t executors_spawned = 0;
  std::size_t executors_degraded = 0;
  std::size_t peak_node_occupancy = 0;
  double reserved_gib_seconds = 0;
  double used_gib_seconds = 0;

  // Metrics registry + instruments resolved once (the registry is passive:
  // it is updated identically whether or not any sink is attached).
  obs::Registry metrics;
  obs::Counter& m_spawned = metrics.counter("executors_spawned");
  obs::Counter& m_spills = metrics.counter("executor_spills_total");
  obs::Counter& m_thrashes = metrics.counter("executor_thrashes_total");
  obs::Counter& m_oom = metrics.counter("oom_total");
  obs::Counter& m_reruns = metrics.counter("isolated_reruns_total");
  obs::Counter& m_reports = metrics.counter("monitor_reports_total");
  obs::Counter& m_apps_done = metrics.counter("apps_completed");
  obs::Histogram& h_lifetime = metrics.histogram(
      "executor_lifetime_seconds", {30, 60, 120, 300, 600, 1200, 3600, 7200});
  obs::Histogram& h_queue_wait = metrics.histogram(
      "dispatch_queue_wait_seconds", {1, 10, 30, 60, 300, 900, 3600});
  obs::Histogram& h_pred_err = metrics.histogram(
      "prediction_abs_error_gib", {0.25, 0.5, 1, 2, 4, 8, 16, 32});
  obs::Histogram& h_chunk = metrics.histogram(
      "executor_chunk_items", {256, 1024, 4096, 16384, 65536, 262144});

  Sim(const SimConfig& c, const wl::FeatureModel& f, SchedulingPolicy& p, obs::EventSink& s)
      : cfg(c),
        features(f),
        policy(p),
        sink(s),
        tracing(s.enabled()),
        nodes(c.cluster.n_nodes),
        monitor(c.cluster.n_nodes, c.spark.monitor_window),
        trace(c.cluster.n_nodes),
        next_report(c.spark.monitor_period) {}

  // ---- setup ---------------------------------------------------------
  void submit(const wl::TaskMix& mix) {
    SMOE_REQUIRE(!mix.empty(), "sim: empty task mix");
    if (tracing)
      sink.emit(obs::Event(now, obs::EventType::kRunStart)
                    .with("policy", policy.name())
                    .with("mode", mode_name(policy.mode()))
                    .with("n_apps", mix.size())
                    .with("n_nodes", cfg.cluster.n_nodes)
                    .with("node_ram_gib", cfg.cluster.node_ram)
                    .with("seed", static_cast<std::int64_t>(cfg.seed)));
    apps.reserve(mix.size());
    // Profiling runs share the coordinating node's limited slots, FIFO.
    std::vector<Seconds> slot_free(std::max<std::size_t>(1, cfg.spark.profiling_slots), 0.0);
    for (std::size_t i = 0; i < mix.size(); ++i) {
      const auto& inst = mix[i];
      AppState app;
      app.spec = &wl::find_benchmark(inst.benchmark);
      SMOE_REQUIRE(inst.input_items >= 2.0 * cfg.spark.min_chunk,
                   "sim: input too small: " + inst.benchmark);
      const std::uint64_t seed =
          Rng::derive(cfg.seed, "app:" + std::to_string(i) + ":" + inst.benchmark);
      app.probe = std::make_unique<AppProbe>(*app.spec, features, inst.input_items, seed);

      const ProfilingCost cost = policy.profile(*app.probe, app.est);
      Items consumed = cost.feature_items + cost.calibration_items;
      consumed = std::min(consumed, inst.input_items * 0.5);
      app.unassigned = inst.input_items - consumed;

      app.dyn_alloc = static_cast<std::size_t>(std::clamp<double>(
          std::ceil(inst.input_items / cfg.spark.dyn_alloc_items_per_executor), 1.0,
          static_cast<double>(cfg.spark.dyn_alloc_max_executors)));
      app.default_chunk = std::ceil(inst.input_items / static_cast<double>(app.dyn_alloc));
      // The paper's dispatcher spawns executors beyond the (imperfect) Spark
      // dynamic allocation when spare resources exist (Section 4.3), bounded
      // by the cluster size.
      app.max_pred_executors = std::min<std::size_t>(
          static_cast<std::size_t>(std::ceil(cfg.spark.executor_boost *
                                             static_cast<double>(app.dyn_alloc))),
          cfg.cluster.n_nodes);
      app.max_pred_executors = std::max<std::size_t>(app.max_pred_executors, 1);
      app.pred_chunk_cap = std::max<Items>(
          cfg.spark.min_chunk,
          std::ceil(inst.input_items / static_cast<double>(app.max_pred_executors)));

      app.res.benchmark = inst.benchmark;
      app.res.input_items = inst.input_items;
      app.res.feature_time = cost.feature_items / app.spec->items_per_second;
      app.res.calibration_time = cost.calibration_items / app.spec->items_per_second;
      const Seconds duration = app.res.feature_time + app.res.calibration_time;
      if (duration > 0) {
        auto slot = std::min_element(slot_free.begin(), slot_free.end());
        app.res.profile_end = *slot + duration;
        *slot = app.res.profile_end;
        app.phase = Phase::kProfiling;
      } else {
        app.res.profile_end = 0;
        app.phase = Phase::kReady;
      }
      if (tracing) {
        sink.emit(obs::Event(now, obs::EventType::kAppSubmit)
                      .with("app", i)
                      .with("benchmark", inst.benchmark)
                      .with("input_items", inst.input_items)
                      .with("profile_consumed_items", consumed)
                      .with("profile_end", app.res.profile_end)
                      .with("dyn_alloc", app.dyn_alloc)
                      .with("max_pred_executors", app.max_pred_executors));
        if (duration > 0)
          sink.emit(obs::Event(now, obs::EventType::kProfilingStart)
                        .with("app", i)
                        .with("benchmark", inst.benchmark)
                        .with("slot_start", app.res.profile_end - duration)
                        .with("planned_end", app.res.profile_end)
                        .with("feature_items", cost.feature_items)
                        .with("calibration_items", cost.calibration_items));
      }
      apps.push_back(std::move(app));
    }
    queue.resize(apps.size());
    for (std::size_t i = 0; i < queue.size(); ++i) queue[i] = i;
    if (cfg.spark.queue_order == QueueOrder::kShortestJobFirst) {
      std::stable_sort(queue.begin(), queue.end(), [&](std::size_t a, std::size_t b) {
        return apps[a].res.input_items < apps[b].res.input_items;
      });
    }
  }

  // ---- helpers -------------------------------------------------------
  GiB free_mem(const NodeState& n) const { return cfg.cluster.node_ram - n.reserved; }

  double effective_cpu(NodeId node) const {
    return std::max(nodes[static_cast<std::size_t>(node)].planned_cpu,
                    monitor.reported_cpu(node));
  }

  bool app_on_node(int app, const NodeState& n) const {
    for (const int e : n.execs)
      if (execs[static_cast<std::size_t>(e)].app == app) return true;
    return false;
  }

  int alloc_exec_slot() {
    if (free_slots.empty()) {
      execs.emplace_back();
      return static_cast<int>(execs.size()) - 1;
    }
    std::pop_heap(free_slots.begin(), free_slots.end(), std::greater<int>());
    const int slot = free_slots.back();
    free_slots.pop_back();
    return slot;
  }

  void mark_active(int slot) {
    active_slots.insert(
        std::lower_bound(active_slots.begin(), active_slots.end(), slot), slot);
  }

  void mark_inactive(int slot) {
    active_slots.erase(std::lower_bound(active_slots.begin(), active_slots.end(), slot));
    free_slots.push_back(slot);
    std::push_heap(free_slots.begin(), free_slots.end(), std::greater<int>());
  }

  /// `predicted` is the policy's predicted footprint for this chunk (GiB),
  /// or a negative value when the spawn is not prediction-sized; it feeds
  /// the dispatch event and the prediction_abs_error_gib histogram.
  void spawn(int app_idx, NodeId node_id, Items chunk, GiB reserved, bool predictive,
             bool isolated_rerun, GiB predicted = -1.0) {
    AppState& app = apps[static_cast<std::size_t>(app_idx)];
    NodeState& node = nodes[static_cast<std::size_t>(node_id)];
    SMOE_CHECK(chunk > 0, "spawn: empty chunk");
    SMOE_CHECK(reserved > 0 &&
                   approx_le(node.reserved + reserved, cfg.cluster.node_ram, kRelEps),
               "spawn: reservation over-commits node");
    const GiB free_before = free_mem(node);

    const int slot = alloc_exec_slot();
    ExecState& e = execs[static_cast<std::size_t>(slot)];
    e = ExecState{};
    e.active = true;
    e.app = app_idx;
    e.node = node_id;
    e.chunk = chunk;
    e.remaining = chunk;
    e.reserved = reserved;
    e.spawned_at = now;
    e.predictive = predictive;

    const GiB truth = app.spec->footprint(chunk);
    e.resident = std::min(truth, reserved);
    if (truth > reserved + kEps) {
      const double ratio = (truth - reserved) / reserved;
      if (predictive && truth > reserved * kOomOvershoot) {
        // Will die once the cached working set overshoots heap + tolerance.
        e.fail_after =
            std::clamp<Items>(app.spec->items_for_budget(reserved * kOomOvershoot), 1.0, chunk);
        e.degrade = 1.0 / (1.0 + kThrashPenalty * (kOomOvershoot - 1.0));
      } else {
        const double penalty = predictive ? kThrashPenalty : kSpillPenalty;
        e.degrade = 1.0 / (1.0 + penalty * ratio);
      }
    }
    e.search_delay =
        policy.spawn_search_overhead() * chunk / app.spec->items_per_second;

    node.reserved += reserved;
    e.planned_cpu = predictive ? app.est.cpu_load : app.spec->cpu_load_iso;
    node.planned_cpu += e.planned_cpu;
    node.cpu_iso_sum += app.spec->cpu_load_iso;
    node.execs.push_back(slot);
    mark_active(slot);
    ++executors_spawned;
    ++app.res.executors_used;
    peak_node_occupancy = std::max(peak_node_occupancy, node.execs.size());
    if (e.degrade < 1.0) ++executors_degraded;

    if (!isolated_rerun) {
      SMOE_CHECK(approx_ge(app.unassigned, chunk, kRelEps),
                 "spawn: chunk exceeds remaining work");
      app.unassigned -= chunk;
      if (approx_zero(app.unassigned, app.res.input_items, kRelEps)) app.unassigned = 0;
    }
    ++app.executors;
    if (app.res.start < 0) {
      h_queue_wait.observe(now - app.res.profile_end);
      app.res.start = now;
    }

    m_spawned.inc();
    h_chunk.observe(chunk);
    if (predicted >= 0) h_pred_err.observe(std::abs(predicted - truth));
    if (e.degrade < 1.0) (predictive ? m_thrashes : m_spills).inc();
    if (isolated_rerun) m_reruns.inc();

    if (tracing) {
      const ResourceMonitor::NodeView view = monitor.view(node_id);
      obs::Event decision(now, obs::EventType::kDispatch);
      decision.with("app", app_idx)
          .with("benchmark", app.spec->name)
          .with("node", node_id)
          .with("chunk_items", chunk)
          .with("reserved_gib", reserved)
          .with("predictive", predictive)
          .with("isolated_rerun", isolated_rerun)
          .with("free_gib_before", free_before)
          .with("planned_cpu", e.planned_cpu)
          .with("monitor_cpu", view.cpu)
          .with("monitor_mem_gib", view.mem)
          .with("monitor_reports", view.reports_seen);
      if (predicted >= 0) decision.with("predicted_gib", predicted);
      sink.emit(decision);
      // planned_cpu / cpu_load_iso and the node's post-spawn incremental sums
      // let an auditing sink (audit::InvariantAuditor) cross-check the
      // engine's accounting against an independent shadow model.
      sink.emit(obs::Event(now, obs::EventType::kExecutorSpawn)
                    .with("exec", slot)
                    .with("app", app_idx)
                    .with("benchmark", app.spec->name)
                    .with("node", node_id)
                    .with("chunk_items", chunk)
                    .with("reserved_gib", reserved)
                    .with("resident_gib", e.resident)
                    .with("degrade", e.degrade)
                    .with("predictive", predictive)
                    .with("isolated_rerun", isolated_rerun)
                    .with("planned_cpu", e.planned_cpu)
                    .with("cpu_load_iso", app.spec->cpu_load_iso)
                    .with("node_reserved_after", node.reserved)
                    .with("node_planned_cpu_after", node.planned_cpu)
                    .with("node_cpu_iso_after", node.cpu_iso_sum));
      if (isolated_rerun)
        sink.emit(obs::Event(now, obs::EventType::kIsolatedRerun)
                      .with("exec", slot)
                      .with("app", app_idx)
                      .with("benchmark", app.spec->name)
                      .with("node", node_id)
                      .with("chunk_items", chunk));
      if (e.degrade < 1.0)
        sink.emit(obs::Event(now, predictive ? obs::EventType::kExecutorThrash
                                             : obs::EventType::kExecutorSpill)
                      .with("exec", slot)
                      .with("app", app_idx)
                      .with("benchmark", app.spec->name)
                      .with("node", node_id)
                      .with("reserved_gib", reserved)
                      .with("working_set_gib", truth)
                      .with("degrade", e.degrade));
    }
  }

  void release(int slot) {
    ExecState& e = execs[static_cast<std::size_t>(slot)];
    NodeState& node = nodes[static_cast<std::size_t>(e.node)];
    AppState& app = apps[static_cast<std::size_t>(e.app)];
    // Floating-point residue after the final release is clamped to exactly 0.
    // Only *negative* values are clamped: zeroing anything below an epsilon
    // (the old behaviour) also erased legitimately small positive loads and
    // masked accounting drift the auditor is meant to flag.
    node.reserved -= e.reserved;
    if (node.reserved < 0) node.reserved = 0;
    node.planned_cpu -= e.planned_cpu;
    if (node.planned_cpu < 0) node.planned_cpu = 0;
    node.cpu_iso_sum -= app.spec->cpu_load_iso;
    if (node.cpu_iso_sum < 0) node.cpu_iso_sum = 0;
    std::erase(node.execs, slot);
    mark_inactive(slot);
    --app.executors;
    e.active = false;
  }

  bool app_done(const AppState& app) const {
    return app.unassigned <= 0 && app.rerun_chunks.empty() && app.executors == 0 &&
           app.phase == Phase::kReady;
  }

  // ---- dispatch ------------------------------------------------------
  void dispatch() {
    switch (policy.mode()) {
      case DispatchMode::kIsolated: dispatch_isolated(); return;
      case DispatchMode::kPairwise: dispatch_pairwise(); return;
      case DispatchMode::kPredictive: dispatch_predictive(); return;
    }
  }

  int find_empty_node() const {
    for (std::size_t n = 0; n < nodes.size(); ++n)
      if (nodes[n].empty() && nodes[n].reserved <= kEps) return static_cast<int>(n);
    return kNoId;
  }

  // One application at a time, whole-node reservations — the paper's
  // baseline ("each application exclusively using all the memory of each
  // allocated computing node", Section 6).
  void dispatch_isolated() {
    for (const std::size_t idx : queue) {
      AppState& app = apps[idx];
      if (app.phase == Phase::kDone) continue;
      if (app.phase != Phase::kReady) return;  // strictly one by one
      while (app.unassigned > 0 && app.executors < app.dyn_alloc) {
        const NodeId node = find_empty_node();
        if (node == kNoId) return;
        const Items chunk = std::min(app.unassigned, app.default_chunk);
        spawn(static_cast<int>(idx), node, chunk, cfg.cluster.node_ram,
              /*predictive=*/false, /*isolated_rerun=*/false);
      }
      return;  // only the head-of-queue application runs
    }
  }

  // FCFS; at most two executors per node; a co-located executor's heap is
  // set to all free memory (Section 5.4's Pairwise comparator).
  void dispatch_pairwise() {
    for (const std::size_t a : queue) {
      AppState& app = apps[a];
      if (app.phase != Phase::kReady || app.unassigned <= 0) continue;
      while (app.unassigned > 0 && app.executors < app.dyn_alloc) {
        // Prefer an empty node; otherwise co-locate on the singly-occupied
        // node with the most free memory.
        NodeId target = find_empty_node();
        GiB reserve = cfg.cluster.node_ram * cfg.spark.default_heap_fraction;
        if (target == kNoId) {
          GiB best_free = 1.0;  // require at least 1 GiB to co-locate
          for (std::size_t n = 0; n < nodes.size(); ++n) {
            if (nodes[n].execs.size() >= 2 || app_on_node(static_cast<int>(a), nodes[n]))
              continue;
            if (free_mem(nodes[n]) > best_free) {
              best_free = free_mem(nodes[n]);
              target = static_cast<int>(n);
            }
          }
          if (target == kNoId) break;
          reserve = free_mem(nodes[static_cast<std::size_t>(target)]);
        }
        const Items chunk = std::min(app.unassigned, app.default_chunk);
        spawn(static_cast<int>(a), target, chunk, reserve, /*predictive=*/false,
              /*isolated_rerun=*/false);
      }
    }
  }

  // Memory-aware packing (Section 4.3): spawn executors wherever predicted
  // footprint fits and the aggregate CPU stays under 100%; chunk sizes come
  // from the inverse memory function under the node's spare-memory budget.
  void dispatch_predictive() {
    for (const std::size_t a : queue) {
      AppState& app = apps[a];
      if (app.phase != Phase::kReady) continue;

      // OOM fallback: re-run failed chunks alone on a whole node.
      while (!app.rerun_chunks.empty()) {
        const NodeId node = find_empty_node();
        if (node == kNoId) break;
        spawn(static_cast<int>(a), node, app.rerun_chunks.back(), cfg.cluster.node_ram,
              /*predictive=*/false, /*isolated_rerun=*/true);
        app.rerun_chunks.pop_back();
      }

      if (!app.est.footprint || !app.est.items_for_budget) continue;

      if (app.model_distrusted) {
        // Conservative fallback after an OOM: default heaps, default chunks,
        // spill-safe executors, Spark-default parallelism.
        while (app.unassigned > 0 && app.executors < app.dyn_alloc) {
          const GiB heap = cfg.cluster.node_ram * cfg.spark.default_heap_fraction;
          // Most free memory among nodes with room for a full default heap.
          // Strict `>` picks the *first* node on ties, matching the
          // predictive loop below (the old `>=` picked the last).
          NodeId target = kNoId;
          GiB best = 0;
          for (std::size_t n = 0; n < nodes.size(); ++n) {
            if (app_on_node(static_cast<int>(a), nodes[n])) continue;
            const GiB free = free_mem(nodes[n]);
            if (free < heap) continue;
            if (free > best) {
              best = free;
              target = static_cast<int>(n);
            }
          }
          if (target == kNoId) break;
          spawn(static_cast<int>(a), target, std::min(app.unassigned, app.default_chunk),
                heap, /*predictive=*/false, /*isolated_rerun=*/false);
        }
        continue;
      }

      while (app.unassigned > 0 && app.executors < app.max_pred_executors) {
        // Best node: most free memory among those passing the CPU check.
        NodeId target = kNoId;
        GiB best_free = 2.0;  // minimum useful budget
        for (std::size_t n = 0; n < nodes.size(); ++n) {
          if (app_on_node(static_cast<int>(a), nodes[n])) continue;
          if (policy.cpu_check() &&
              effective_cpu(static_cast<int>(n)) + app.est.cpu_load > 1.0 + kEps)
            continue;
          if (free_mem(nodes[n]) > best_free) {
            best_free = free_mem(nodes[n]);
            target = static_cast<int>(n);
          }
        }
        if (target == kNoId) break;

        const GiB budget = best_free / (1.0 + cfg.spark.reservation_headroom);
        Items chunk = app.est.items_for_budget(budget);
        if (!std::isfinite(chunk)) chunk = app.unassigned;
        chunk = std::min({app.unassigned, app.pred_chunk_cap, chunk});
        GiB reserve = 0;
        GiB predicted = -1.0;
        if (chunk >= cfg.spark.min_chunk) {
          predicted = app.est.footprint(chunk);
          reserve = std::min(best_free, predicted * (1.0 + cfg.spark.reservation_headroom));
        }
        if (chunk < cfg.spark.min_chunk || reserve <= 0 || !std::isfinite(reserve)) {
          // Not enough memory for a useful chunk (or a degenerate model); on
          // an idle node fall back to the conservative default-heap scheme
          // (the Section 4.1 fallback), otherwise try again later.
          if (best_free >= cfg.cluster.node_ram - kEps) {
            const Items fallback = std::min(app.unassigned, app.default_chunk);
            spawn(static_cast<int>(a), target, fallback,
                  cfg.cluster.node_ram * cfg.spark.default_heap_fraction,
                  /*predictive=*/false, /*isolated_rerun=*/false);
            continue;
          }
          break;
        }
        spawn(static_cast<int>(a), target, chunk, reserve, /*predictive=*/true,
              /*isolated_rerun=*/false, predicted);
      }
    }
  }

  // ---- time stepping --------------------------------------------------
  void refresh_rates() {
    for (auto& node : nodes) {
      if (node.execs.empty()) continue;
      const double total_cpu = node.cpu_iso_sum;
      for (const int ei : node.execs) {
        ExecState& e = execs[static_cast<std::size_t>(ei)];
        const auto& spec = *apps[static_cast<std::size_t>(e.app)].spec;
        const double others = std::max(0.0, total_cpu - spec.cpu_load_iso);
        const double factor =
            cpu_factor(total_cpu) *
            interference_factor(spec.interference_sensitivity, others,
                                cfg.contention.interference_scale) *
            e.degrade;
        e.rate = spec.items_per_second * factor;
      }
    }
  }

  double node_utilization(const NodeState& node) const {
    return std::min(1.0, node.cpu_iso_sum);
  }

  Seconds next_event_dt() const {
    // Time to the next *work* event (profiling promotion, executor finish or
    // OOM), kept separate from the monitor-report timer: when work remains it
    // must be a finite, strictly positive step, or the schedule is stuck and
    // the main loop would spin forever — fail loudly instead.
    double dt_work = kInf;
    bool has_work = !active_slots.empty();
    for (const auto& app : apps)
      if (app.phase == Phase::kProfiling) {
        has_work = true;
        dt_work = std::min(dt_work, app.res.profile_end - now);
      }
    for (const int slot : active_slots) {
      const ExecState& e = execs[static_cast<std::size_t>(slot)];
      double t = e.search_delay;
      SMOE_CHECK(e.rate > 0, "executor with zero rate");
      const double to_finish = e.remaining / e.rate;
      const double to_fail =
          std::isfinite(e.fail_after) ? (e.fail_after - e.processed) / e.rate : kInf;
      t += std::min(to_finish, to_fail);
      dt_work = std::min(dt_work, t);
    }
    if (has_work)
      SMOE_CHECK(std::isfinite(dt_work) && dt_work > 0,
                 "sim: stuck schedule — active work but a non-positive/non-finite step");
    return std::min(dt_work, next_report - now);
  }

  void advance(Seconds dt) {
    for (std::size_t n = 0; n < nodes.size(); ++n)
      trace.accumulate(static_cast<int>(n), now, now + dt, node_utilization(nodes[n]));
    for (const int slot : active_slots) {
      ExecState& e = execs[static_cast<std::size_t>(slot)];
      reserved_gib_seconds += e.reserved * dt;
      used_gib_seconds += e.resident * dt;
      double budget = dt;
      if (e.search_delay > 0) {
        const double used = std::min(e.search_delay, budget);
        e.search_delay -= used;
        budget -= used;
        if (e.search_delay < kEps) e.search_delay = 0;
      }
      if (budget <= 0) continue;
      const double done = e.rate * budget;
      e.processed += done;
      e.remaining -= done;
    }
    now += dt;
  }

  void handle_completions() {
    // Snapshot: release() edits active_slots mid-loop. Ascending slot order
    // matches the old full-scan ordering, so same-timestep OOM re-run queues
    // build up identically.
    const std::vector<int> snapshot = active_slots;
    for (const int slot : snapshot) {
      const std::size_t i = static_cast<std::size_t>(slot);
      ExecState& e = execs[i];
      if (!e.active) continue;
      if (std::isfinite(e.fail_after) && approx_ge(e.processed, e.fail_after, kSimRelEps)) {
        // OOM: the chunk is lost and must re-run in isolation (Section 2.3).
        AppState& app = apps[static_cast<std::size_t>(e.app)];
        m_oom.inc();
        h_lifetime.observe(now - e.spawned_at);
        app.rerun_chunks.push_back(e.chunk);
        app.model_distrusted = true;
        ++app.res.oom_events;
        ++oom_total;
        release(static_cast<int>(i));
        // Emitted after release so the event carries the node's post-release
        // incremental sums for shadow-model cross-checks; rerun_queue already
        // includes the chunk just enqueued.
        if (tracing) {
          const NodeState& node = nodes[static_cast<std::size_t>(e.node)];
          sink.emit(obs::Event(now, obs::EventType::kExecutorOom)
                        .with("exec", i)
                        .with("app", e.app)
                        .with("benchmark", app.spec->name)
                        .with("node", e.node)
                        .with("chunk_items", e.chunk)
                        .with("processed_items", e.processed)
                        .with("fail_after_items", e.fail_after)
                        .with("reserved_gib", e.reserved)
                        .with("rerun_queue", app.rerun_chunks.size())
                        .with("lifetime_s", now - e.spawned_at)
                        .with("node_reserved_after", node.reserved)
                        .with("node_planned_cpu_after", node.planned_cpu)
                        .with("node_cpu_iso_after", node.cpu_iso_sum));
        }
        continue;
      }
      if (e.remaining <= rel_slack(e.chunk, kSimRelEps)) {
        h_lifetime.observe(now - e.spawned_at);
        release(static_cast<int>(i));
        if (tracing) {
          const NodeState& node = nodes[static_cast<std::size_t>(e.node)];
          sink.emit(obs::Event(now, obs::EventType::kExecutorFinish)
                        .with("exec", i)
                        .with("app", e.app)
                        .with("benchmark", apps[static_cast<std::size_t>(e.app)].spec->name)
                        .with("node", e.node)
                        .with("chunk_items", e.chunk)
                        .with("lifetime_s", now - e.spawned_at)
                        .with("node_reserved_after", node.reserved)
                        .with("node_planned_cpu_after", node.planned_cpu)
                        .with("node_cpu_iso_after", node.cpu_iso_sum));
        }
      }
    }
    for (std::size_t a = 0; a < apps.size(); ++a) {
      AppState& app = apps[a];
      if (app.phase == Phase::kReady && app_done(app) && app.res.finish < 0) {
        app.res.finish = now;
        app.phase = Phase::kDone;
        m_apps_done.inc();
        if (tracing)
          sink.emit(obs::Event(now, obs::EventType::kAppFinish)
                        .with("app", a)
                        .with("benchmark", app.spec->name)
                        .with("turnaround_s", app.res.turnaround())
                        .with("exec_time_s", app.res.exec_time())
                        .with("executors_used", app.res.executors_used)
                        .with("oom_events", app.res.oom_events));
      }
    }
  }

  void maybe_report() {
    if (now + kEps < next_report) return;
    std::vector<double> cpu(nodes.size()), mem(nodes.size());
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      cpu[n] = node_utilization(nodes[n]);
      double resident = 0;
      for (const int e : nodes[n].execs) resident += execs[static_cast<std::size_t>(e)].resident;
      mem[n] = resident;
    }
    monitor.record(cpu, mem);
    next_report += cfg.spark.monitor_period;
    m_reports.inc();
    if (tracing) {
      const std::size_t active = active_slots.size();
      sink.emit(obs::Event(now, obs::EventType::kMonitorReport)
                    .with("report", monitor.reports_seen())
                    .with("mean_cpu", monitor.last_mean_cpu())
                    .with("mean_mem_gib", monitor.last_mean_mem())
                    .with("active_executors", active));
    }
  }

  SimResult run(const wl::TaskMix& mix) {
    const MetricsBinding binding(policy, &metrics);
    submit(mix);
    std::size_t guard = 0;
    while (true) {
      // Promote applications whose profiling window has elapsed.
      for (std::size_t a = 0; a < apps.size(); ++a) {
        AppState& app = apps[a];
        if (app.phase == Phase::kProfiling && app.res.profile_end <= now + kEps) {
          app.phase = Phase::kReady;
          if (tracing)
            sink.emit(obs::Event(now, obs::EventType::kProfilingEnd)
                          .with("app", a)
                          .with("benchmark", app.spec->name)
                          .with("feature_time_s", app.res.feature_time)
                          .with("calibration_time_s", app.res.calibration_time));
        }
      }

      bool all_done = true;
      for (const auto& app : apps)
        if (app.phase != Phase::kDone) all_done = false;
      if (all_done) break;

      dispatch();
      refresh_rates();

      const double dt = next_event_dt();
      if (!std::isfinite(dt)) {
        SMOE_CHECK(false, "simulation stalled: no executors, no pending events");
      }
      advance(std::max(dt, 0.0));
      handle_completions();
      maybe_report();

      SMOE_CHECK(++guard < 5'000'000, "simulation exceeded event budget");
    }

    SimResult result;
    result.trace = std::move(trace);
    result.oom_total = oom_total;
    result.executors_spawned = executors_spawned;
    result.executors_degraded = executors_degraded;
    result.peak_node_occupancy = peak_node_occupancy;
    result.reserved_gib_hours = reserved_gib_seconds / 3600.0;
    result.used_gib_hours = used_gib_seconds / 3600.0;
    for (auto& app : apps) {
      result.makespan = std::max(result.makespan, app.res.finish);
      result.apps.push_back(app.res);
    }

    metrics.gauge("makespan_seconds").set(result.makespan);
    metrics.gauge("peak_node_occupancy").set(static_cast<double>(peak_node_occupancy));
    metrics.gauge("reserved_gib_hours").set(result.reserved_gib_hours);
    metrics.gauge("used_gib_hours").set(result.used_gib_hours);
    result.metrics = metrics.snapshot();
    if (tracing)
      sink.emit(obs::Event(now, obs::EventType::kRunEnd)
                    .with("makespan_s", result.makespan)
                    .with("executors_spawned", executors_spawned)
                    .with("executors_degraded", executors_degraded)
                    .with("oom_total", oom_total)
                    .with("peak_node_occupancy", peak_node_occupancy)
                    .with("reserved_gib_hours", result.reserved_gib_hours)
                    .with("used_gib_hours", result.used_gib_hours));
    return result;
  }
};

}  // namespace

ClusterSim::ClusterSim(SimConfig config, const wl::FeatureModel& features)
    : cfg_(config), features_(features) {
  SMOE_REQUIRE(cfg_.cluster.n_nodes > 0, "cluster needs nodes");
}

SimResult ClusterSim::run(const wl::TaskMix& mix, SchedulingPolicy& policy) {
  return run(mix, policy, cfg_.sink);
}

SimResult ClusterSim::run(const wl::TaskMix& mix, SchedulingPolicy& policy,
                          obs::EventSink* sink) {
  Sim sim(cfg_, features_, policy, sink != nullptr ? *sink : obs::null_sink());
  return sim.run(mix);
}

Seconds ClusterSim::isolated_exec_time(const wl::AppInstance& app) {
  NullIsolatedPolicy policy;
  // An internal measurement run, not part of the user's schedule — never
  // traced, whatever SimConfig::sink says.
  const SimResult result = run({app}, policy, nullptr);
  return result.apps.front().exec_time();
}

}  // namespace smoe::sim
