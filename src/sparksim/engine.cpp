#include "sparksim/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <functional>
#include <string_view>
#include <limits>
#include <memory>
#include <set>
#include <utility>

#include "common/approx.h"
#include "common/error.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "sparksim/calendar.h"
#include "sparksim/contention.h"
#include "sparksim/monitor.h"
#include "sparksim/node_index.h"
#include "workloads/suites.h"

namespace smoe::sim {

namespace {

constexpr double kEps = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Calendar slot sentinel for open-loop arrival events. Negative slots sort
/// before any executor slot at the same timestamp, so an arrival is always
/// processed before completions due at the same instant.
constexpr int kArrivalSlot = -2;
/// A predictive executor survives overshooting its heap by up to 25%
/// (GC-thrashing); beyond that it dies with an OOM.
constexpr double kOomOvershoot = 1.25;
constexpr double kThrashPenalty = 9.0;  ///< predictive heap overshoot slowdown
constexpr double kSpillPenalty = 1.5;   ///< default-heap spill slowdown

enum class Phase { kProfiling, kReady, kDone };

struct ExecState {
  bool active = false;
  int app = -1;
  NodeId node = kNoId;
  Items chunk = 0;
  Items remaining = 0;
  Items processed = 0;
  Items fail_after = kInf;  ///< OOM once this many items were processed.
  GiB reserved = 0;
  GiB resident = 0;
  Seconds search_delay = 0;  ///< online-search probing; no progress meanwhile.
  double degrade = 1.0;      ///< spill/thrash factor from heap overshoot.
  double rate = 0;           ///< items/s since the last rate refresh.
  double planned_cpu = 0;    ///< CPU-load share booked on the node at spawn.
  Seconds spawned_at = 0;
  /// Progress (processed/remaining/search_delay) is folded up to this
  /// sim-time; between folds the executor is described exactly by
  /// (rate, folded_at) and is never touched per event step.
  Seconds folded_at = 0;
  bool predictive = false;
};

struct AppState {
  const wl::BenchmarkSpec* spec = nullptr;
  std::unique_ptr<AppProbe> probe;
  MemoryEstimate est;
  Phase phase = Phase::kProfiling;
  Items unassigned = 0;
  std::size_t executors = 0;
  std::size_t dyn_alloc = 1;  ///< Spark dynamic-allocation executor count.
  std::size_t max_pred_executors = 1;  ///< co-location boost cap (Section 4.3).
  Items default_chunk = 0;    ///< Spark default even split.
  Items pred_chunk_cap = 0;   ///< per-executor split in predictive mode.
  std::vector<Items> rerun_chunks;  ///< OOM re-runs pending (Section 2.3).
  /// Set after an OOM: the model is clearly wrong for this application, so
  /// the dispatcher falls back to the conservative default-heap scheme
  /// (Section 4.1's confidence fallback / re-train path).
  bool model_distrusted = false;
  AppResult res;
};

class NullIsolatedPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "internal-isolated"; }
  DispatchMode mode() const override { return DispatchMode::kIsolated; }
  ProfilingCost profile(AppProbe&, MemoryEstimate&) override { return {}; }
};

std::string_view mode_name(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kIsolated: return "isolated";
    case DispatchMode::kPairwise: return "pairwise";
    case DispatchMode::kPredictive: return "predictive";
  }
  return "unknown";
}

/// Binds/unbinds a policy's telemetry registry around one run (exception
/// safe: a throwing run must not leave the policy pointing at a dead
/// registry).
struct MetricsBinding {
  SchedulingPolicy& policy;
  MetricsBinding(SchedulingPolicy& p, obs::Registry* registry) : policy(p) {
    policy.bind_metrics(registry);
  }
  ~MetricsBinding() { policy.bind_metrics(nullptr); }
};

struct Sim {
  const SimConfig& cfg;
  const wl::FeatureModel& features;
  SchedulingPolicy& policy;
  obs::EventSink& sink;
  /// Cached sink.enabled(): emitters skip building Event objects entirely
  /// when tracing is off, keeping the no-sink path allocation-free.
  const bool tracing;
  /// Indexed dispatch (node_index.h) vs the legacy all-nodes scan. Same
  /// decisions either way; the scan stays as the differential oracle.
  const bool use_index;

  Seconds now = 0;
  std::vector<AppState> apps;
  std::vector<std::size_t> queue;  ///< dispatch order (Section 5.2's policy)

  // ---- node state, struct-of-arrays ----------------------------------
  // The hot per-node fields live in parallel contiguous arrays instead of a
  // node struct: refresh_rates, the dispatch scans/index maintenance and the
  // monitor report stream through cache lines instead of pointer-chasing,
  // which is what keeps per-event cost flat at 10k nodes.
  std::size_t n_nodes;
  std::vector<GiB> node_reserved;
  std::vector<double> node_planned_cpu;
  /// Sum of cpu_load_iso over resident executors, maintained incrementally
  /// on spawn/release so refresh_rates/node_utilization need no rescan.
  std::vector<double> node_cpu_iso;
  /// Sum of resident memory over resident executors, maintained
  /// incrementally so monitor reports need no per-executor rescan.
  std::vector<GiB> node_resident;
  /// The utilization trace is folded up to this sim-time per node; between
  /// executor arrivals/departures a node's utilization is constant, so the
  /// trace is only touched when the executor set changes (and at run end).
  std::vector<Seconds> node_trace_from;
  /// Executor set (and therefore every executor rate on the node) changed
  /// since the last rate refresh.
  std::vector<std::uint8_t> node_dirty_flag;
  std::vector<std::vector<int>> node_execs;

  /// Per-policy node index (free-memory max-heap + empty-node min-heap with
  /// lazy invalidation) replacing the per-decision all-nodes scans.
  NodeIndex index;

  std::vector<ExecState> execs;
  /// Free executor slots as a min-heap, so alloc_exec_slot picks the lowest
  /// free index in O(log n) — the same slot the old linear scan returned, so
  /// slot ids in traces are unchanged.
  std::vector<int> free_slots;
  /// Number of currently-active executor slots. Nothing ever iterates the
  /// active set, so a bare count is all the engine needs.
  std::size_t n_active = 0;
  /// Calendar entry validity, one counter per slot: bumped on every reschedule
  /// and on release, so stale heap entries self-identify when popped.
  std::vector<std::uint64_t> versions;
  /// Absolute executor finish/OOM times, lazily invalidated via `versions`
  /// (two-level bucketed calendar; compacted when stale entries pile up).
  EventCalendar calendar;
  /// Nodes whose executor set changed since the last rate refresh.
  std::vector<int> dirty_nodes;
  /// Nodes whose load changed since the last *monitor report* — a longer
  /// horizon than dirty_nodes (rates refresh every step, reports every
  /// monitor_period), so it is tracked separately. maybe_report() feeds only
  /// these to the monitor: the O(n_nodes)-per-tick dense report was the
  /// 10k-node throughput droop.
  std::vector<int> monitor_dirty;
  std::vector<std::uint8_t> monitor_dirty_flag;
  /// Profiling windows as (profile_end, app), sorted ascending; promotion
  /// consumes a prefix via `profile_cursor` instead of rescanning all apps.
  std::vector<std::pair<Seconds, std::size_t>> profile_pending;
  std::size_t profile_cursor = 0;
  std::size_t apps_done = 0;
  /// Profiling runs share the coordinating node's limited slots, FIFO. A
  /// member (not a submit() local) so serving-mode admissions, which trickle
  /// in over the whole run, share the same slot schedule.
  std::vector<Seconds> slot_free;

  // ---- open-loop serving state (inert in batch runs) ------------------
  bool serving = false;
  const std::vector<ServingArrival>* arrivals = nullptr;
  AdmissionPolicy* admission = nullptr;
  std::size_t arrival_pushed = 0;     ///< next arrival index to file in the calendar
  std::size_t arrivals_resolved = 0;  ///< arrivals with a final admit/drop verdict
  std::deque<std::size_t> gate_queue; ///< deferred arrival indices, FIFO
  std::size_t admitted = 0;
  std::size_t dropped = 0;
  std::size_t deferrals = 0;          ///< arrivals deferred at least once
  std::vector<Seconds> app_isolated_s;  ///< per admitted app: C^iso (0 unknown)
  double norm_turnaround_sum = 0;
  std::size_t norm_turnaround_n = 0;
  // Serving-only instruments, created in run_serving(): batch runs must not
  // create them — batch MetricsSnapshots are byte-compared against goldens.
  obs::Counter* s_admit = nullptr;
  obs::Counter* s_drop = nullptr;
  obs::Counter* s_defer = nullptr;
  obs::Gauge* g_in_system = nullptr;
  obs::Gauge* g_gate = nullptr;
  obs::WindowedRate* w_arrive = nullptr;
  obs::WindowedRate* w_finish = nullptr;
  obs::QuantileEstimator* q_norm = nullptr;

  // ---- dispatch work list --------------------------------------------
  /// Rank (position in `queue`) of every application the dispatcher must
  /// still consider: phase Ready with unassigned work or pending re-runs.
  /// Apps enter on profiling promotion (or at submit when unprofiled),
  /// leave when their work is fully dispatched, and re-enter on an OOM
  /// re-run enqueue. Iterating this set in rank order visits exactly the
  /// applications on which the legacy full-queue sweep acted, so decisions
  /// are unchanged — but a million-app queue no longer costs O(apps) per
  /// event.
  std::set<std::uint32_t> ready_ranks;
  std::vector<std::uint32_t> rank_of;  ///< app id -> rank in `queue`
  /// First rank whose app is not Done — the isolated dispatcher's
  /// head-of-queue. Done-ness is permanent, so the cursor only advances.
  std::size_t head_cursor = 0;
  /// Dispatch decisions depend only on node state, monitor reports, app
  /// phases and per-app work (dispatch() runs to exhaustion and is
  /// idempotent between changes), so it is skipped until one of those
  /// actually changed: a release, a profiling promotion, or a monitor
  /// report.
  bool needs_dispatch = true;

  /// Cluster-wide incremental aggregates: advance() folds the memory-time
  /// integrals in O(1) instead of walking every active executor.
  GiB sum_reserved_all = 0;
  GiB sum_resident_all = 0;
  // Per-step scratch (cleared each iteration, never reallocated in steady
  // state).
  std::vector<int> due_slots;
  std::vector<std::size_t> touched_apps;
  std::vector<std::size_t> promo_scratch;
  std::vector<ResourceMonitor::NodeSample> report_scratch;  ///< maybe_report
  ResourceMonitor monitor;
  UtilizationTrace trace;
  Seconds next_report;
  std::size_t oom_total = 0;
  std::size_t executors_spawned = 0;
  std::size_t executors_degraded = 0;
  std::size_t peak_node_occupancy = 0;
  double reserved_gib_seconds = 0;
  double used_gib_seconds = 0;

  // Metrics registry + instruments resolved once (the registry is passive:
  // it is updated identically whether or not any sink is attached).
  obs::Registry metrics;
  obs::Counter& m_spawned = metrics.counter("executors_spawned");
  obs::Counter& m_spills = metrics.counter("executor_spills_total");
  obs::Counter& m_thrashes = metrics.counter("executor_thrashes_total");
  obs::Counter& m_oom = metrics.counter("oom_total");
  obs::Counter& m_reruns = metrics.counter("isolated_reruns_total");
  obs::Counter& m_reports = metrics.counter("monitor_reports_total");
  obs::Counter& m_apps_done = metrics.counter("apps_completed");
  obs::Histogram& h_lifetime = metrics.histogram(
      "executor_lifetime_seconds", {30, 60, 120, 300, 600, 1200, 3600, 7200});
  obs::Histogram& h_queue_wait = metrics.histogram(
      "dispatch_queue_wait_seconds", {1, 10, 30, 60, 300, 900, 3600});
  obs::Histogram& h_pred_err = metrics.histogram(
      "prediction_abs_error_gib", {0.25, 0.5, 1, 2, 4, 8, 16, 32});
  obs::Histogram& h_chunk = metrics.histogram(
      "executor_chunk_items", {256, 1024, 4096, 16384, 65536, 262144});

  // Windowed online telemetry (DESIGN.md §12): streaming P² quantiles over
  // the same streams the histograms above bucket — so percentiles survive
  // coarse buckets — plus sliding-window spawn/OOM rates over simulated
  // time, the steady-state signals an always-on serving mode exports.
  static constexpr double kTelemetryWindow = 600.0;  ///< seconds of sim-time
  obs::QuantileEstimator& q_queue_wait =
      metrics.quantile("dispatch_queue_wait_seconds", {0.5, 0.9, 0.99});
  obs::QuantileEstimator& q_sojourn =
      metrics.quantile("app_sojourn_seconds", {0.5, 0.9, 0.99});
  obs::WindowedRate& w_spawn = metrics.windowed_rate("executor_spawn_rate", kTelemetryWindow);
  obs::WindowedRate& w_oom = metrics.windowed_rate("oom_rate", kTelemetryWindow);

  Sim(const SimConfig& c, const wl::FeatureModel& f, SchedulingPolicy& p, obs::EventSink& s)
      : cfg(c),
        features(f),
        policy(p),
        sink(s),
        tracing(s.enabled()),
        use_index(c.indexed_dispatch),
        n_nodes(c.cluster.n_nodes),
        node_reserved(n_nodes, 0.0),
        node_planned_cpu(n_nodes, 0.0),
        node_cpu_iso(n_nodes, 0.0),
        node_resident(n_nodes, 0.0),
        node_trace_from(n_nodes, 0.0),
        node_dirty_flag(n_nodes, 0),
        node_execs(n_nodes),
        monitor_dirty_flag(n_nodes, 0),
        slot_free(std::max<std::size_t>(1, c.spark.profiling_slots), 0.0),
        monitor(c.cluster.n_nodes, c.spark.monitor_window),
        trace(c.cluster.n_nodes, c.trace_bin),
        next_report(c.spark.monitor_period) {
    if (use_index)
      index.reset(n_nodes, cfg.cluster.node_ram,
                  policy.mode() == DispatchMode::kPairwise
                      ? 2
                      : std::numeric_limits<std::size_t>::max());
  }

  // ---- setup ---------------------------------------------------------
  /// Create application `i` from one mix entry and append it to `apps`:
  /// profiling cost, dynamic-allocation shape, profiling-slot booking (slots
  /// are busy from max(slot free, now) — in batch runs now == 0, so this is
  /// exactly the legacy schedule), and the app_submit/profiling_start events.
  /// Shared by the batch submit() and the serving-mode gate; the caller owns
  /// queue/rank registration and profile_pending ordering.
  void submit_one(const wl::AppInstance& inst, std::size_t i) {
    AppState app;
    app.spec = &wl::find_benchmark(inst.benchmark);
    SMOE_REQUIRE(inst.input_items >= 2.0 * cfg.spark.min_chunk,
                 "sim: input too small: " + inst.benchmark);
    // Same bytes as "app:" + std::to_string(i) + ":" + benchmark, without
    // the three heap strings per application (visible at mega-queue scale).
    char seed_name[128];
    const int seed_len = std::snprintf(seed_name, sizeof seed_name, "app:%zu:%s", i,
                                       inst.benchmark.c_str());
    const std::uint64_t seed =
        seed_len > 0 && static_cast<std::size_t>(seed_len) < sizeof seed_name
            ? Rng::derive(cfg.seed, std::string_view(seed_name,
                                                     static_cast<std::size_t>(seed_len)))
            : Rng::derive(cfg.seed, "app:" + std::to_string(i) + ":" + inst.benchmark);
    app.probe = std::make_unique<AppProbe>(*app.spec, features, inst.input_items, seed);

    const ProfilingCost cost = policy.profile(*app.probe, app.est);
    Items consumed = cost.feature_items + cost.calibration_items;
    consumed = std::min(consumed, inst.input_items * 0.5);
    app.unassigned = inst.input_items - consumed;

    app.dyn_alloc = static_cast<std::size_t>(std::clamp<double>(
        std::ceil(inst.input_items / cfg.spark.dyn_alloc_items_per_executor), 1.0,
        static_cast<double>(cfg.spark.dyn_alloc_max_executors)));
    app.default_chunk = std::ceil(inst.input_items / static_cast<double>(app.dyn_alloc));
    // The paper's dispatcher spawns executors beyond the (imperfect) Spark
    // dynamic allocation when spare resources exist (Section 4.3), bounded
    // by the cluster size.
    app.max_pred_executors = std::min<std::size_t>(
        static_cast<std::size_t>(std::ceil(cfg.spark.executor_boost *
                                           static_cast<double>(app.dyn_alloc))),
        cfg.cluster.n_nodes);
    app.max_pred_executors = std::max<std::size_t>(app.max_pred_executors, 1);
    app.pred_chunk_cap = std::max<Items>(
        cfg.spark.min_chunk,
        std::ceil(inst.input_items / static_cast<double>(app.max_pred_executors)));

    app.res.benchmark = inst.benchmark;
    app.res.input_items = inst.input_items;
    app.res.submit = now;
    app.res.feature_time = cost.feature_items / app.spec->items_per_second;
    app.res.calibration_time = cost.calibration_items / app.spec->items_per_second;
    const Seconds duration = app.res.feature_time + app.res.calibration_time;
    if (duration > 0) {
      auto slot = std::min_element(slot_free.begin(), slot_free.end());
      const Seconds slot_start = std::max(*slot, now);
      app.res.profile_end = slot_start + duration;
      *slot = app.res.profile_end;
      app.phase = Phase::kProfiling;
      profile_pending.emplace_back(app.res.profile_end, i);
    } else {
      app.res.profile_end = now;
      app.phase = Phase::kReady;
    }
    if (tracing) {
      sink.emit(obs::Event(now, obs::EventType::kAppSubmit)
                    .with("app", i)
                    .with("benchmark", inst.benchmark)
                    .with("input_items", inst.input_items)
                    .with("profile_consumed_items", consumed)
                    .with("profile_end", app.res.profile_end)
                    .with("dyn_alloc", app.dyn_alloc)
                    .with("max_pred_executors", app.max_pred_executors));
      if (duration > 0)
        sink.emit(obs::Event(now, obs::EventType::kProfilingStart)
                      .with("app", i)
                      .with("benchmark", inst.benchmark)
                      .with("slot_start", app.res.profile_end - duration)
                      .with("planned_end", app.res.profile_end)
                      .with("feature_items", cost.feature_items)
                      .with("calibration_items", cost.calibration_items));
    }
    apps.push_back(std::move(app));
  }

  void submit(const wl::TaskMix& mix) {
    SMOE_REQUIRE(!mix.empty(), "sim: empty task mix");
    // Bound to a local because Event stores string *views*: the view must
    // outlive the emit() call, which a temporary argument would not.
    const std::string policy_name = policy.name();
    if (tracing)
      sink.emit(obs::Event(now, obs::EventType::kRunStart)
                    .with("policy", policy_name)
                    .with("mode", mode_name(policy.mode()))
                    .with("n_apps", mix.size())
                    .with("n_nodes", cfg.cluster.n_nodes)
                    .with("node_ram_gib", cfg.cluster.node_ram)
                    .with("seed", static_cast<std::int64_t>(cfg.seed)));
    apps.reserve(mix.size());
    for (std::size_t i = 0; i < mix.size(); ++i) submit_one(mix[i], i);
    std::sort(profile_pending.begin(), profile_pending.end());
    queue.resize(apps.size());
    for (std::size_t i = 0; i < queue.size(); ++i) queue[i] = i;
    if (cfg.spark.queue_order == QueueOrder::kShortestJobFirst) {
      // (input_items, index) is a strict total order, so plain sort produces
      // exactly the stable-sort-by-input_items permutation (queue starts as
      // 0..n-1) without the merge buffer.
      std::sort(queue.begin(), queue.end(), [&](std::size_t a, std::size_t b) {
        const auto ia = apps[a].res.input_items, ib = apps[b].res.input_items;
        return ia != ib ? ia < ib : a < b;
      });
    }
    rank_of.resize(queue.size());
    for (std::size_t r = 0; r < queue.size(); ++r) {
      rank_of[queue[r]] = static_cast<std::uint32_t>(r);
      if (apps[queue[r]].phase == Phase::kReady)
        ready_ranks.insert(static_cast<std::uint32_t>(r));
    }
  }

  // ---- helpers -------------------------------------------------------
  GiB free_mem(NodeId n) const {
    return cfg.cluster.node_ram - node_reserved[static_cast<std::size_t>(n)];
  }

  double effective_cpu(NodeId node) const {
    return std::max(node_planned_cpu[static_cast<std::size_t>(node)],
                    monitor.reported_cpu(node));
  }

  bool app_on_node(int app, NodeId node) const {
    for (const int e : node_execs[static_cast<std::size_t>(node)])
      if (execs[static_cast<std::size_t>(e)].app == app) return true;
    return false;
  }

  int alloc_exec_slot() {
    if (free_slots.empty()) {
      execs.emplace_back();
      versions.push_back(0);
      return static_cast<int>(execs.size()) - 1;
    }
    std::pop_heap(free_slots.begin(), free_slots.end(), std::greater<int>());
    const int slot = free_slots.back();
    free_slots.pop_back();
    return slot;
  }

  void mark_active(int) { ++n_active; }

  void mark_inactive(int slot) {
    --n_active;
    free_slots.push_back(slot);
    std::push_heap(free_slots.begin(), free_slots.end(), std::greater<int>());
  }

  void mark_dirty(NodeId node_id) {
    const auto n = static_cast<std::size_t>(node_id);
    if (!node_dirty_flag[n]) {
      node_dirty_flag[n] = 1;
      dirty_nodes.push_back(node_id);
    }
    if (!monitor_dirty_flag[n]) {
      monitor_dirty_flag[n] = 1;
      monitor_dirty.push_back(node_id);
    }
  }

  /// Fold the node's constant utilization into the trace up to `now`. Must be
  /// called before the node's executor set (and thus cpu_iso sum) changes.
  void flush_node_trace(NodeId node_id) {
    const auto n = static_cast<std::size_t>(node_id);
    if (now > node_trace_from[n])
      trace.accumulate(node_id, node_trace_from[n], now, node_utilization(node_id));
    node_trace_from[n] = now;
  }

  /// Bring an executor's lazily-folded progress up to `now` at its current
  /// rate. Idempotent: a second fold at the same time is a no-op.
  void fold(ExecState& e) {
    double budget = now - e.folded_at;
    if (budget <= 0) {
      e.folded_at = now;
      return;
    }
    e.folded_at = now;
    if (e.search_delay > 0) {
      const double used = std::min(e.search_delay, budget);
      e.search_delay -= used;
      budget -= used;
      if (e.search_delay < kEps) e.search_delay = 0;
    }
    if (budget <= 0) return;
    const double done = e.rate * budget;
    e.processed += done;
    e.remaining -= done;
  }

  /// (Re-)arm the executor's calendar wake-up at its next finish-or-OOM time.
  /// Bumping the version orphans any entry already in the heap for this slot.
  void schedule(int slot) {
    ExecState& e = execs[static_cast<std::size_t>(slot)];
    SMOE_CHECK(e.rate > 0, "executor with zero rate");
    const double to_finish = e.remaining / e.rate;
    const double to_fail =
        std::isfinite(e.fail_after) ? (e.fail_after - e.processed) / e.rate : kInf;
    const Seconds t = e.folded_at + e.search_delay + std::min(to_finish, to_fail);
    // Pop slack mirrors the completion test (remaining within
    // rel_slack(chunk) of zero), converted from items to seconds, so every
    // executor the legacy full scan would have completed at a step is popped
    // in the same step.
    const Seconds tol = rel_slack(e.chunk, kSimRelEps) / e.rate;
    calendar.push(t, tol, slot, ++versions[static_cast<std::size_t>(slot)]);
  }

  /// `predicted` is the policy's predicted footprint for this chunk (GiB),
  /// or a negative value when the spawn is not prediction-sized; it feeds
  /// the dispatch event and the prediction_abs_error_gib histogram.
  void spawn(int app_idx, NodeId node_id, Items chunk, GiB reserved, bool predictive,
             bool isolated_rerun, GiB predicted = -1.0) {
    AppState& app = apps[static_cast<std::size_t>(app_idx)];
    const auto n = static_cast<std::size_t>(node_id);
    SMOE_CHECK(chunk > 0, "spawn: empty chunk");
    SMOE_CHECK(reserved > 0 &&
                   approx_le(node_reserved[n] + reserved, cfg.cluster.node_ram, kRelEps),
               "spawn: reservation over-commits node");
    const GiB free_before = free_mem(node_id);

    const int slot = alloc_exec_slot();
    ExecState& e = execs[static_cast<std::size_t>(slot)];
    e = ExecState{};
    e.active = true;
    e.app = app_idx;
    e.node = node_id;
    e.chunk = chunk;
    e.remaining = chunk;
    e.reserved = reserved;
    e.spawned_at = now;
    e.folded_at = now;
    e.predictive = predictive;

    const GiB truth = app.spec->footprint(chunk);
    e.resident = std::min(truth, reserved);
    if (truth > reserved + kEps) {
      const double ratio = (truth - reserved) / reserved;
      if (predictive && truth > reserved * kOomOvershoot) {
        // Will die once the cached working set overshoots heap + tolerance.
        e.fail_after =
            std::clamp<Items>(app.spec->items_for_budget(reserved * kOomOvershoot), 1.0, chunk);
        e.degrade = 1.0 / (1.0 + kThrashPenalty * (kOomOvershoot - 1.0));
      } else {
        const double penalty = predictive ? kThrashPenalty : kSpillPenalty;
        e.degrade = 1.0 / (1.0 + penalty * ratio);
      }
    }
    e.search_delay =
        policy.spawn_search_overhead() * chunk / app.spec->items_per_second;

    flush_node_trace(node_id);  // utilization changes from `now` on
    node_reserved[n] += reserved;
    e.planned_cpu = predictive ? app.est.cpu_load : app.spec->cpu_load_iso;
    node_planned_cpu[n] += e.planned_cpu;
    node_cpu_iso[n] += app.spec->cpu_load_iso;
    node_resident[n] += e.resident;
    sum_reserved_all += reserved;
    sum_resident_all += e.resident;
    node_execs[n].push_back(slot);
    if (use_index) index.touch(node_id, free_mem(node_id), node_execs[n].size());
    mark_active(slot);
    mark_dirty(node_id);
    ++executors_spawned;
    ++app.res.executors_used;
    peak_node_occupancy = std::max(peak_node_occupancy, node_execs[n].size());
    if (e.degrade < 1.0) ++executors_degraded;

    if (!isolated_rerun) {
      SMOE_CHECK(approx_ge(app.unassigned, chunk, kRelEps),
                 "spawn: chunk exceeds remaining work");
      app.unassigned -= chunk;
      if (approx_zero(app.unassigned, app.res.input_items, kRelEps)) app.unassigned = 0;
    }
    ++app.executors;
    if (app.res.start < 0) {
      h_queue_wait.observe(now - app.res.profile_end);
      q_queue_wait.observe(now - app.res.profile_end);
      app.res.start = now;
    }

    m_spawned.inc();
    w_spawn.add(now);
    h_chunk.observe(chunk);
    if (predicted >= 0) h_pred_err.observe(std::abs(predicted - truth));
    if (e.degrade < 1.0) (predictive ? m_thrashes : m_spills).inc();
    if (isolated_rerun) m_reruns.inc();

    if (tracing) {
      const ResourceMonitor::NodeView view = monitor.view(node_id);
      obs::Event decision(now, obs::EventType::kDispatch);
      decision.with("app", app_idx)
          .with("benchmark", app.spec->name)
          .with("node", node_id)
          .with("chunk_items", chunk)
          .with("reserved_gib", reserved)
          .with("predictive", predictive)
          .with("isolated_rerun", isolated_rerun)
          .with("free_gib_before", free_before)
          .with("planned_cpu", e.planned_cpu)
          .with("monitor_cpu", view.cpu)
          .with("monitor_mem_gib", view.mem)
          .with("monitor_reports", view.reports_seen);
      if (predicted >= 0) decision.with("predicted_gib", predicted);
      sink.emit(decision);
      // planned_cpu / cpu_load_iso and the node's post-spawn incremental sums
      // let an auditing sink (audit::InvariantAuditor) cross-check the
      // engine's accounting against an independent shadow model.
      sink.emit(obs::Event(now, obs::EventType::kExecutorSpawn)
                    .with("exec", slot)
                    .with("app", app_idx)
                    .with("benchmark", app.spec->name)
                    .with("node", node_id)
                    .with("chunk_items", chunk)
                    .with("reserved_gib", reserved)
                    .with("resident_gib", e.resident)
                    .with("degrade", e.degrade)
                    .with("predictive", predictive)
                    .with("isolated_rerun", isolated_rerun)
                    .with("planned_cpu", e.planned_cpu)
                    .with("cpu_load_iso", app.spec->cpu_load_iso)
                    .with("node_reserved_after", node_reserved[n])
                    .with("node_planned_cpu_after", node_planned_cpu[n])
                    .with("node_cpu_iso_after", node_cpu_iso[n]));
      if (isolated_rerun)
        sink.emit(obs::Event(now, obs::EventType::kIsolatedRerun)
                      .with("exec", slot)
                      .with("app", app_idx)
                      .with("benchmark", app.spec->name)
                      .with("node", node_id)
                      .with("chunk_items", chunk));
      if (e.degrade < 1.0)
        sink.emit(obs::Event(now, predictive ? obs::EventType::kExecutorThrash
                                             : obs::EventType::kExecutorSpill)
                      .with("exec", slot)
                      .with("app", app_idx)
                      .with("benchmark", app.spec->name)
                      .with("node", node_id)
                      .with("reserved_gib", reserved)
                      .with("working_set_gib", truth)
                      .with("degrade", e.degrade));
    }
  }

  void release(int slot) {
    ExecState& e = execs[static_cast<std::size_t>(slot)];
    const auto n = static_cast<std::size_t>(e.node);
    AppState& app = apps[static_cast<std::size_t>(e.app)];
    flush_node_trace(e.node);  // utilization changes from `now` on
    // Floating-point residue after the final release is clamped to exactly 0.
    // Only *negative* values are clamped: zeroing anything below an epsilon
    // (the old behaviour) also erased legitimately small positive loads and
    // masked accounting drift the auditor is meant to flag.
    node_reserved[n] -= e.reserved;
    if (node_reserved[n] < 0) node_reserved[n] = 0;
    node_planned_cpu[n] -= e.planned_cpu;
    if (node_planned_cpu[n] < 0) node_planned_cpu[n] = 0;
    node_cpu_iso[n] -= app.spec->cpu_load_iso;
    if (node_cpu_iso[n] < 0) node_cpu_iso[n] = 0;
    node_resident[n] -= e.resident;
    if (node_resident[n] < 0) node_resident[n] = 0;
    sum_reserved_all -= e.reserved;
    if (sum_reserved_all < 0) sum_reserved_all = 0;
    sum_resident_all -= e.resident;
    if (sum_resident_all < 0) sum_resident_all = 0;
    std::erase(node_execs[n], slot);
    // An emptied node snaps its incremental resident sum to exactly zero so
    // monitor reports match a from-scratch recomputation.
    if (node_execs[n].empty()) node_resident[n] = 0;
    if (use_index) {
      index.touch(e.node, free_mem(e.node), node_execs[n].size());
      if (node_execs[n].empty()) index.node_emptied(e.node);
    }
    mark_inactive(slot);
    if (n_active == 0) {
      sum_reserved_all = 0;
      sum_resident_all = 0;
    }
    mark_dirty(e.node);
    touched_apps.push_back(static_cast<std::size_t>(e.app));
    ++versions[static_cast<std::size_t>(slot)];  // orphan any calendar entry
    --app.executors;
    e.active = false;
    needs_dispatch = true;  // freed memory/CPU/a node — placements may open up
  }

  bool app_done(const AppState& app) const {
    return app.unassigned <= 0 && app.rerun_chunks.empty() && app.executors == 0 &&
           app.phase == Phase::kReady;
  }

  // ---- dispatch ------------------------------------------------------
  void dispatch() {
    if (!needs_dispatch) return;
    needs_dispatch = false;
    if (use_index) index.compact_if_bloated();
    switch (policy.mode()) {
      case DispatchMode::kIsolated: dispatch_isolated(); return;
      case DispatchMode::kPairwise: dispatch_pairwise(); return;
      case DispatchMode::kPredictive: dispatch_predictive(); return;
    }
  }

  int find_empty_node() {
    if (use_index)
      return index.first_empty([&](int n) {
        const auto i = static_cast<std::size_t>(n);
        return node_execs[i].empty() && node_reserved[i] <= kEps;
      });
    for (std::size_t n = 0; n < n_nodes; ++n)
      if (node_execs[n].empty() && node_reserved[n] <= kEps) return static_cast<int>(n);
    return kNoId;
  }

  /// Park or keep one ready-set element after the dispatcher finished with
  /// it: an app with no unassigned work and no pending re-runs cannot spawn
  /// anything until an OOM re-enqueues it, so it leaves the work list.
  std::set<std::uint32_t>::iterator advance_ready(std::set<std::uint32_t>::iterator it,
                                                  const AppState& app) {
    if (app.unassigned <= 0 && app.rerun_chunks.empty()) return ready_ranks.erase(it);
    return std::next(it);
  }

  // One application at a time, whole-node reservations — the paper's
  // baseline ("each application exclusively using all the memory of each
  // allocated computing node", Section 6).
  void dispatch_isolated() {
    while (head_cursor < queue.size() &&
           apps[queue[head_cursor]].phase == Phase::kDone)
      ++head_cursor;
    if (head_cursor >= queue.size()) return;
    AppState& app = apps[queue[head_cursor]];
    if (app.phase != Phase::kReady) return;  // strictly one by one
    while (app.unassigned > 0 && app.executors < app.dyn_alloc) {
      const NodeId node = find_empty_node();
      if (node == kNoId) return;
      const Items chunk = std::min(app.unassigned, app.default_chunk);
      spawn(static_cast<int>(queue[head_cursor]), node, chunk, cfg.cluster.node_ram,
            /*predictive=*/false, /*isolated_rerun=*/false);
    }
  }

  // FCFS; at most two executors per node; a co-located executor's heap is
  // set to all free memory (Section 5.4's Pairwise comparator).
  void dispatch_pairwise() {
    for (auto it = ready_ranks.begin(); it != ready_ranks.end();) {
      // Saturation early-exit: with no empty node and at most 1 GiB free on
      // every co-locatable node, *no* application can place an executor
      // (per-app filters only shrink the candidate set further), so the
      // legacy sweep over the remaining apps would be a pure no-op.
      if (use_index && index.max_free() <= 1.0 && find_empty_node() == kNoId) return;
      const std::size_t a = queue[*it];
      AppState& app = apps[a];
      while (app.unassigned > 0 && app.executors < app.dyn_alloc) {
        // Prefer an empty node; otherwise co-locate on the singly-occupied
        // node with the most free memory.
        NodeId target = find_empty_node();
        GiB reserve = cfg.cluster.node_ram * cfg.spark.default_heap_fraction;
        if (target == kNoId) {
          if (use_index) {
            // require at least 1 GiB to co-locate
            target = index.best(1.0, /*inclusive=*/false,
                                [&](int n) { return !app_on_node(static_cast<int>(a), n); });
          } else {
            GiB best_free = 1.0;  // require at least 1 GiB to co-locate
            for (std::size_t n = 0; n < n_nodes; ++n) {
              if (node_execs[n].size() >= 2 ||
                  app_on_node(static_cast<int>(a), static_cast<int>(n)))
                continue;
              if (free_mem(static_cast<int>(n)) > best_free) {
                best_free = free_mem(static_cast<int>(n));
                target = static_cast<int>(n);
              }
            }
          }
          if (target == kNoId) break;
          reserve = free_mem(target);
        }
        const Items chunk = std::min(app.unassigned, app.default_chunk);
        spawn(static_cast<int>(a), target, chunk, reserve, /*predictive=*/false,
              /*isolated_rerun=*/false);
      }
      it = advance_ready(it, app);
    }
  }

  // Memory-aware packing (Section 4.3): spawn executors wherever predicted
  // footprint fits and the aggregate CPU stays under 100%; chunk sizes come
  // from the inverse memory function under the node's spare-memory budget.
  void dispatch_predictive() {
    const GiB default_heap = cfg.cluster.node_ram * cfg.spark.default_heap_fraction;
    for (auto it = ready_ranks.begin(); it != ready_ranks.end();) {
      // Saturation early-exit: no empty node (blocks OOM re-runs and the
      // idle-node fallback), max free at most 2 GiB (blocks the predictive
      // packing loop, which needs a strictly larger budget) and strictly
      // below the default heap (blocks the distrusted fallback) — nothing
      // can spawn for any app, so the remaining sweep is a pure no-op.
      if (use_index) {
        const GiB mf = index.max_free();
        if (mf <= 2.0 && mf < default_heap && find_empty_node() == kNoId) return;
      }
      const std::size_t a = queue[*it];
      AppState& app = apps[a];

      // OOM fallback: re-run failed chunks alone on a whole node.
      while (!app.rerun_chunks.empty()) {
        const NodeId node = find_empty_node();
        if (node == kNoId) break;
        spawn(static_cast<int>(a), node, app.rerun_chunks.back(), cfg.cluster.node_ram,
              /*predictive=*/false, /*isolated_rerun=*/true);
        app.rerun_chunks.pop_back();
      }

      if (!app.est.footprint || !app.est.items_for_budget) {
        it = std::next(it);
        continue;
      }

      if (app.model_distrusted) {
        // Conservative fallback after an OOM: default heaps, default chunks,
        // spill-safe executors, Spark-default parallelism.
        while (app.unassigned > 0 && app.executors < app.dyn_alloc) {
          const GiB heap = default_heap;
          // Most free memory among nodes with room for a full default heap.
          // Strict `>` picks the *first* node on ties, matching the
          // predictive loop below (the old `>=` picked the last).
          NodeId target = kNoId;
          if (use_index) {
            target = index.best(heap, /*inclusive=*/true,
                                [&](int n) { return !app_on_node(static_cast<int>(a), n); });
          } else {
            GiB best = 0;
            for (std::size_t n = 0; n < n_nodes; ++n) {
              if (app_on_node(static_cast<int>(a), static_cast<int>(n))) continue;
              const GiB free = free_mem(static_cast<int>(n));
              if (free < heap) continue;
              if (free > best) {
                best = free;
                target = static_cast<int>(n);
              }
            }
          }
          if (target == kNoId) break;
          spawn(static_cast<int>(a), target, std::min(app.unassigned, app.default_chunk),
                heap, /*predictive=*/false, /*isolated_rerun=*/false);
        }
        it = advance_ready(it, app);
        continue;
      }

      while (app.unassigned > 0 && app.executors < app.max_pred_executors) {
        // Best node: most free memory among those passing the CPU check.
        NodeId target = kNoId;
        if (use_index) {
          // minimum useful budget: strictly more than 2 GiB free
          target = index.best(2.0, /*inclusive=*/false, [&](int n) {
            if (app_on_node(static_cast<int>(a), n)) return false;
            if (policy.cpu_check() &&
                effective_cpu(n) + app.est.cpu_load > 1.0 + kEps)
              return false;
            return true;
          });
        } else {
          GiB best_free = 2.0;  // minimum useful budget
          for (std::size_t n = 0; n < n_nodes; ++n) {
            if (app_on_node(static_cast<int>(a), static_cast<int>(n))) continue;
            if (policy.cpu_check() &&
                effective_cpu(static_cast<int>(n)) + app.est.cpu_load > 1.0 + kEps)
              continue;
            if (free_mem(static_cast<int>(n)) > best_free) {
              best_free = free_mem(static_cast<int>(n));
              target = static_cast<int>(n);
            }
          }
        }
        if (target == kNoId) break;
        const GiB best_free = free_mem(target);

        const GiB budget = best_free / (1.0 + cfg.spark.reservation_headroom);
        Items chunk = app.est.items_for_budget(budget);
        if (!std::isfinite(chunk)) chunk = app.unassigned;
        chunk = std::min({app.unassigned, app.pred_chunk_cap, chunk});
        GiB reserve = 0;
        GiB predicted = -1.0;
        if (chunk >= cfg.spark.min_chunk) {
          predicted = app.est.footprint(chunk);
          reserve = std::min(best_free, predicted * (1.0 + cfg.spark.reservation_headroom));
        }
        if (chunk < cfg.spark.min_chunk || reserve <= 0 || !std::isfinite(reserve)) {
          // Not enough memory for a useful chunk (or a degenerate model); on
          // an idle node fall back to the conservative default-heap scheme
          // (the Section 4.1 fallback), otherwise try again later.
          if (best_free >= cfg.cluster.node_ram - kEps) {
            const Items fallback = std::min(app.unassigned, app.default_chunk);
            spawn(static_cast<int>(a), target, fallback,
                  cfg.cluster.node_ram * cfg.spark.default_heap_fraction,
                  /*predictive=*/false, /*isolated_rerun=*/false);
            continue;
          }
          break;
        }
        spawn(static_cast<int>(a), target, chunk, reserve, /*predictive=*/true,
              /*isolated_rerun=*/false, predicted);
      }
      it = advance_ready(it, app);
    }
  }

  // ---- time stepping --------------------------------------------------
  /// Recompute executor rates on nodes whose executor set changed since the
  /// last refresh. Each affected executor is folded up to `now` at its old
  /// rate first (the new rate applies only from `now` on), then re-armed in
  /// the calendar. Untouched nodes keep their rates and calendar entries.
  void refresh_rates() {
    if (dirty_nodes.empty()) return;
    std::sort(dirty_nodes.begin(), dirty_nodes.end());
    for (const int n : dirty_nodes) {
      const auto i = static_cast<std::size_t>(n);
      node_dirty_flag[i] = 0;
      const double total_cpu = node_cpu_iso[i];
      for (const int ei : node_execs[i]) {
        ExecState& e = execs[static_cast<std::size_t>(ei)];
        fold(e);
        const auto& spec = *apps[static_cast<std::size_t>(e.app)].spec;
        const double others = std::max(0.0, total_cpu - spec.cpu_load_iso);
        const double factor =
            cpu_factor(total_cpu) *
            interference_factor(spec.interference_sensitivity, others,
                                cfg.contention.interference_scale) *
            e.degrade;
        e.rate = spec.items_per_second * factor;
        schedule(ei);
      }
    }
    dirty_nodes.clear();
  }

  double node_utilization(NodeId node) const {
    return std::min(1.0, node_cpu_iso[static_cast<std::size_t>(node)]);
  }

  /// True when a calendar entry is the live wake-up for its slot (not an
  /// orphan from a rate change or a release).
  bool entry_live(const CalendarEntry& entry) const {
    // Negative slots are control events (arrival sentinel): consumed exactly
    // once when they pop, never invalidated.
    if (entry.slot < 0) return true;
    return execs[static_cast<std::size_t>(entry.slot)].active &&
           versions[static_cast<std::size_t>(entry.slot)] == entry.version;
  }

  /// Absolute time of the next event: the earliest live executor wake-up,
  /// profiling-window end, or monitor report. Stale calendar entries
  /// encountered on the way are discarded, and under invalidation churn the
  /// calendar is compacted in place so its footprint stays O(live entries).
  /// O(log n) amortized.
  Seconds next_event_time() {
    // Every active executor has exactly one live calendar entry; when stale
    // entries outnumber live ones (heavy OOM/rate churn), sweep them out.
    if (calendar.size() > 64 && calendar.size() > 2 * n_active)
      calendar.remove_stale([&](const CalendarEntry& e) { return !entry_live(e); });
    // Time to the next *work* event (profiling promotion, executor finish or
    // OOM), kept separate from the monitor-report timer: when work remains it
    // must be a finite, strictly positive step, or the schedule is stuck and
    // the main loop would spin forever — fail loudly instead.
    double t_work = kInf;
    bool has_work = n_active > 0;
    if (profile_cursor < profile_pending.size()) {
      has_work = true;
      t_work = profile_pending[profile_cursor].first;
    }
    while (!calendar.empty()) {
      if (!entry_live(calendar.top())) {
        calendar.discard_top();
        continue;
      }
      t_work = std::min(t_work, calendar.top().t);
      break;
    }
    if (has_work)
      SMOE_CHECK(std::isfinite(t_work) && t_work > now,
                 "sim: stuck schedule — active work but a non-positive/non-finite step");
    return std::min(t_work, next_report);
  }

  /// O(1) per step: the per-executor integrals are cluster-level incremental
  /// sums, executor progress is folded lazily, and the utilization trace is
  /// folded per node only when its executor set changes.
  void advance_to(Seconds t) {
    const double dt = t - now;
    if (dt <= 0) return;
    reserved_gib_seconds += sum_reserved_all * dt;
    used_gib_seconds += sum_resident_all * dt;
    now = t;
  }

  /// Promote applications whose profiling window has elapsed. Due windows are
  /// a sorted prefix of profile_pending; ties are promoted in app order, as
  /// the legacy all-apps scan did.
  void promote_profiling() {
    if (profile_cursor >= profile_pending.size()) return;
    if (profile_pending[profile_cursor].first > now + kEps) return;
    promo_scratch.clear();
    while (profile_cursor < profile_pending.size() &&
           profile_pending[profile_cursor].first <= now + kEps) {
      promo_scratch.push_back(profile_pending[profile_cursor].second);
      ++profile_cursor;
    }
    std::sort(promo_scratch.begin(), promo_scratch.end());
    for (const std::size_t a : promo_scratch) {
      AppState& app = apps[a];
      app.phase = Phase::kReady;
      ready_ranks.insert(rank_of[a]);
      needs_dispatch = true;
      if (tracing)
        sink.emit(obs::Event(now, obs::EventType::kProfilingEnd)
                      .with("app", a)
                      .with("benchmark", app.spec->name)
                      .with("feature_time_s", app.res.feature_time)
                      .with("calibration_time_s", app.res.calibration_time));
    }
  }

  void handle_completions() {
    // Pop every live wake-up due at `now` (within its per-entry items-derived
    // slack) and process them in ascending slot order — the same batch and
    // ordering the legacy full scan produced, so same-timestep OOM re-run
    // queues build up identically.
    due_slots.clear();
    while (!calendar.empty()) {
      const CalendarEntry& top = calendar.top();
      if (!entry_live(top)) {
        calendar.discard_top();
        continue;
      }
      if (top.t > now + top.tol) break;
      // Arrival sentinels are handled by handle_arrivals() before the clock
      // advances past them; one due at `now` just means the serving loop will
      // consume it on the next iteration — it is not an executor wake-up.
      if (top.slot < 0) break;
      due_slots.push_back(top.slot);
      calendar.discard_top();
    }
    std::sort(due_slots.begin(), due_slots.end());
    for (const int slot : due_slots) {
      const std::size_t i = static_cast<std::size_t>(slot);
      ExecState& e = execs[i];
      if (!e.active) continue;
      fold(e);
      if (std::isfinite(e.fail_after) && approx_ge(e.processed, e.fail_after, kSimRelEps)) {
        // OOM: the chunk is lost and must re-run in isolation (Section 2.3).
        AppState& app = apps[static_cast<std::size_t>(e.app)];
        m_oom.inc();
        w_oom.add(now);
        h_lifetime.observe(now - e.spawned_at);
        app.rerun_chunks.push_back(e.chunk);
        app.model_distrusted = true;
        ++app.res.oom_events;
        ++oom_total;
        // The app has dispatchable work again (the re-run chunk).
        ready_ranks.insert(rank_of[static_cast<std::size_t>(e.app)]);
        release(static_cast<int>(i));
        // Emitted after release so the event carries the node's post-release
        // incremental sums for shadow-model cross-checks; rerun_queue already
        // includes the chunk just enqueued.
        if (tracing) {
          const auto n = static_cast<std::size_t>(e.node);
          sink.emit(obs::Event(now, obs::EventType::kExecutorOom)
                        .with("exec", i)
                        .with("app", e.app)
                        .with("benchmark", app.spec->name)
                        .with("node", e.node)
                        .with("chunk_items", e.chunk)
                        .with("processed_items", e.processed)
                        .with("fail_after_items", e.fail_after)
                        .with("reserved_gib", e.reserved)
                        .with("rerun_queue", app.rerun_chunks.size())
                        .with("lifetime_s", now - e.spawned_at)
                        .with("node_reserved_after", node_reserved[n])
                        .with("node_planned_cpu_after", node_planned_cpu[n])
                        .with("node_cpu_iso_after", node_cpu_iso[n]));
        }
        continue;
      }
      if (e.remaining <= rel_slack(e.chunk, kSimRelEps)) {
        h_lifetime.observe(now - e.spawned_at);
        release(static_cast<int>(i));
        if (tracing) {
          const auto n = static_cast<std::size_t>(e.node);
          sink.emit(obs::Event(now, obs::EventType::kExecutorFinish)
                        .with("exec", i)
                        .with("app", e.app)
                        .with("benchmark", apps[static_cast<std::size_t>(e.app)].spec->name)
                        .with("node", e.node)
                        .with("chunk_items", e.chunk)
                        .with("lifetime_s", now - e.spawned_at)
                        .with("node_reserved_after", node_reserved[n])
                        .with("node_planned_cpu_after", node_planned_cpu[n])
                        .with("node_cpu_iso_after", node_cpu_iso[n]));
        }
        continue;
      }
      // Spurious wake-up: the pop slack admitted the entry a hair early and
      // the folded progress is still short of both thresholds. Re-arm; the
      // new wake-up is strictly in the future, so the loop cannot spin.
      schedule(slot);
    }
    // Only applications that lost an executor this step can have newly
    // finished; everything else kept its done-ness.
    if (touched_apps.empty()) return;
    std::sort(touched_apps.begin(), touched_apps.end());
    touched_apps.erase(std::unique(touched_apps.begin(), touched_apps.end()),
                       touched_apps.end());
    for (const std::size_t a : touched_apps) {
      AppState& app = apps[a];
      if (app.phase == Phase::kReady && app_done(app) && app.res.finish < 0) {
        app.res.finish = now;
        app.phase = Phase::kDone;
        ready_ranks.erase(rank_of[a]);
        ++apps_done;
        m_apps_done.inc();
        q_sojourn.observe(app.res.turnaround());
        if (serving) {
          w_finish->add(now);
          g_in_system->set(static_cast<double>(in_system()));
          const Seconds iso = app_isolated_s[a];
          if (iso > 0) {
            const double norm = app.res.turnaround() / iso;
            q_norm->observe(norm);
            norm_turnaround_sum += norm;
            ++norm_turnaround_n;
          }
        }
        if (tracing)
          sink.emit(obs::Event(now, obs::EventType::kAppFinish)
                        .with("app", a)
                        .with("benchmark", app.spec->name)
                        .with("turnaround_s", app.res.turnaround())
                        .with("exec_time_s", app.res.exec_time())
                        .with("executors_used", app.res.executors_used)
                        .with("oom_events", app.res.oom_events));
      }
    }
    touched_apps.clear();
  }

  void maybe_report() {
    if (now + kEps < next_report) return;
    // Only nodes whose executor set changed since the last tick can report a
    // new value; the monitor re-reports the sticky previous value for the
    // rest. Sorting keeps the sample list canonical (decisions don't depend
    // on it — samples write independent rows — but determinism should be
    // evident, not incidental).
    report_scratch.clear();
    std::sort(monitor_dirty.begin(), monitor_dirty.end());
    for (const int node : monitor_dirty) {
      const auto n = static_cast<std::size_t>(node);
      monitor_dirty_flag[n] = 0;
      report_scratch.push_back({node, std::min(1.0, node_cpu_iso[n]), node_resident[n]});
    }
    monitor_dirty.clear();
    monitor.record_sparse(report_scratch);
    next_report += cfg.spark.monitor_period;
    m_reports.inc();
    // Fresh smoothed CPU views can open placements the stale ones blocked.
    needs_dispatch = true;
    if (tracing) {
      const std::size_t active = n_active;
      sink.emit(obs::Event(now, obs::EventType::kMonitorReport)
                    .with("report", monitor.reports_seen())
                    .with("mean_cpu", monitor.last_mean_cpu())
                    .with("mean_mem_gib", monitor.last_mean_mem())
                    .with("active_executors", active));
    }
  }

  // ---- open-loop serving (DESIGN.md §14) -----------------------------
  std::size_t in_system() const { return apps.size() - apps_done; }

  /// Keep exactly one arrival sentinel in the calendar: the next undelivered
  /// arrival. Pushing them one at a time (instead of all n up front) keeps
  /// the calendar footprint O(live executors) in long loads.
  void push_next_arrival() {
    if (arrival_pushed < arrivals->size()) {
      calendar.push((*arrivals)[arrival_pushed].t, 0.0, kArrivalSlot,
                    static_cast<std::uint64_t>(arrival_pushed));
      ++arrival_pushed;
    }
  }

  /// Consume every arrival sentinel due at `now` (the clock never advances
  /// past an unconsumed arrival: next_event_time sees the sentinel). Each
  /// consumed arrival immediately faces the admission gate.
  void handle_arrivals() {
    while (!calendar.empty()) {
      const CalendarEntry& top = calendar.top();
      if (top.slot != kArrivalSlot) {
        if (entry_live(top)) break;
        calendar.discard_top();
        continue;
      }
      if (top.t > now + kEps) break;
      const auto idx = static_cast<std::size_t>(top.version);
      calendar.discard_top();
      push_next_arrival();
      arrive(idx);
    }
  }

  void arrive(std::size_t idx) {
    w_arrive->add(now);
    if (tracing) {
      const ServingArrival& a = (*arrivals)[idx];
      sink.emit(obs::Event(now, obs::EventType::kAppArrival)
                    .with("arrival", idx)
                    .with("benchmark", a.app.benchmark)
                    .with("input_items", a.app.input_items)
                    .with("in_system", in_system())
                    .with("gate_queue", gate_queue.size()));
    }
    decide(idx, /*retry=*/false);
  }

  /// Put arrival `idx` in front of the admission gate and act on the verdict.
  /// A first-time defer parks it at the gate; a retry defer leaves the caller
  /// (process_deferred) to keep it at the head of the gate queue.
  AdmissionVerdict decide(std::size_t idx, bool retry) {
    AdmissionContext ctx;
    ctx.now = now;
    ctx.in_system = in_system();
    ctx.waiting = gate_queue.size();
    ctx.monitor_mean_cpu = monitor.last_mean_cpu();
    ctx.monitor_mean_mem = monitor.last_mean_mem();
    ctx.node_ram = cfg.cluster.node_ram;
    ctx.n_nodes = n_nodes;
    ctx.retry = retry;
    const AdmissionVerdict verdict = admission->admit(ctx);
    switch (verdict) {
      case AdmissionVerdict::kAdmit:
        admit_arrival(idx);
        break;
      case AdmissionVerdict::kDrop:
        ++dropped;
        ++arrivals_resolved;
        s_drop->inc();
        break;
      case AdmissionVerdict::kDefer:
        if (!retry) {
          ++deferrals;
          s_defer->inc();
          gate_queue.push_back(idx);
          g_gate->set(static_cast<double>(gate_queue.size()));
        }
        break;
    }
    if (tracing) {
      const std::string_view verdict_name = to_string(verdict);
      sink.emit(obs::Event(now, obs::EventType::kAdmission)
                    .with("arrival", idx)
                    .with("verdict", verdict_name)
                    .with("retry", retry)
                    .with("in_system", in_system())
                    .with("gate_queue", gate_queue.size())
                    .with("monitor_mean_mem", ctx.monitor_mean_mem));
    }
    return verdict;
  }

  /// Admit arrival `idx` into the cluster queue. Under FCFS the application
  /// id, its queue position, and its rank all coincide, so admission is an
  /// O(1) append (plus the sorted-suffix insert for its profiling window).
  void admit_arrival(std::size_t idx) {
    const ServingArrival& arr = (*arrivals)[idx];
    const std::size_t app_id = apps.size();
    submit_one(arr.app, app_id);
    app_isolated_s.push_back(arr.isolated_s);
    queue.push_back(app_id);
    rank_of.push_back(static_cast<std::uint32_t>(queue.size() - 1));
    if (apps[app_id].phase == Phase::kReady) {
      ready_ranks.insert(rank_of[app_id]);
    } else {
      // submit_one appended (profile_end, app_id); restore the sorted-suffix
      // invariant promote_profiling relies on without touching the already
      // consumed prefix before profile_cursor.
      const auto first =
          profile_pending.begin() + static_cast<std::ptrdiff_t>(profile_cursor);
      const auto last = profile_pending.end() - 1;
      const auto pos = std::upper_bound(first, last, profile_pending.back());
      std::rotate(pos, last, profile_pending.end());
    }
    ++admitted;
    ++arrivals_resolved;
    s_admit->inc();
    g_in_system->set(static_cast<double>(in_system()));
    needs_dispatch = true;
  }

  /// Re-evaluate the gate queue head-of-line: deferred arrivals re-enter
  /// FIFO, and a head the gate still defers blocks everything behind it (the
  /// gate is a queue, not a pool).
  void process_deferred() {
    if (gate_queue.empty()) return;
    while (!gate_queue.empty()) {
      const std::size_t idx = gate_queue.front();
      gate_queue.pop_front();
      if (decide(idx, /*retry=*/true) == AdmissionVerdict::kDefer) {
        gate_queue.push_front(idx);
        break;
      }
    }
    g_gate->set(static_cast<double>(gate_queue.size()));
  }

  ServingResult run_serving(const std::vector<ServingArrival>& arr,
                            AdmissionPolicy& adm) {
    SMOE_REQUIRE(!arr.empty(), "serving: empty arrival list");
    SMOE_REQUIRE(cfg.spark.queue_order == QueueOrder::kFcfs,
                 "serving: open-loop mode requires FCFS queue order");
    SMOE_REQUIRE(arr.front().t >= 0, "serving: negative arrival time");
    for (std::size_t i = 1; i < arr.size(); ++i)
      SMOE_REQUIRE(arr[i].t >= arr[i - 1].t, "serving: arrivals must be sorted by time");

    serving = true;
    arrivals = &arr;
    admission = &adm;
    adm.reset();
    // Serving instruments are created here, never in the constructor: batch
    // runs must keep byte-identical metrics snapshots (the golden corpus pins
    // them), so the registry only ever sees these names in serving runs.
    // Windowed rates use a multi-report horizon so "steady state" means the
    // same smoothed timescale the dispatcher's monitor view uses.
    const double horizon =
        cfg.spark.monitor_period * static_cast<double>(std::max<std::size_t>(
                                       std::size_t{8}, 2 * cfg.spark.monitor_window));
    s_admit = &metrics.counter("serving_admitted_total");
    s_drop = &metrics.counter("serving_dropped_total");
    s_defer = &metrics.counter("serving_deferred_total");
    g_in_system = &metrics.gauge("serving_in_system");
    g_gate = &metrics.gauge("serving_gate_queue");
    w_arrive = &metrics.windowed_rate("serving_arrival_rate", horizon);
    w_finish = &metrics.windowed_rate("serving_finish_rate", horizon);
    q_norm = &metrics.quantile("app_norm_turnaround", {0.5, 0.9, 0.99});

    const MetricsBinding binding(policy, &metrics);
    const std::string policy_name = policy.name();
    const std::string admission_name = adm.name();
    if (tracing)
      sink.emit(obs::Event(now, obs::EventType::kRunStart)
                    .with("policy", policy_name)
                    .with("mode", mode_name(policy.mode()))
                    .with("n_apps", arr.size())
                    .with("n_nodes", cfg.cluster.n_nodes)
                    .with("node_ram_gib", cfg.cluster.node_ram)
                    .with("seed", static_cast<std::int64_t>(cfg.seed))
                    .with("open_loop", 1)
                    .with("admission", admission_name));
    apps.reserve(arr.size());
    push_next_arrival();

    std::size_t guard = 0;
    const std::size_t guard_limit = 5'000'000 + 512 * arr.size();
    while (true) {
      handle_arrivals();
      promote_profiling();
      process_deferred();
      if (arrivals_resolved == arr.size() && apps_done == apps.size()) break;

      dispatch();
      refresh_rates();

      const Seconds t = next_event_time();
      if (!std::isfinite(t)) {
        SMOE_CHECK(false, "serving stalled: arrivals pending but no next event");
      }
      advance_to(t);
      handle_arrivals();
      handle_completions();
      maybe_report();

      // Catches both non-advancing schedules and pathological gates that
      // never admit while the monitor view never changes.
      SMOE_CHECK(++guard < guard_limit, "serving run exceeded event budget");
    }

    ServingResult result;
    result.offered = arr.size();
    result.admitted = admitted;
    result.dropped = dropped;
    result.deferrals = deferrals;
    result.oom_total = oom_total;
    result.executors_spawned = executors_spawned;
    result.executors_degraded = executors_degraded;
    result.apps.reserve(apps.size());
    for (auto& app : apps) {
      result.makespan = std::max(result.makespan, app.res.finish);
      result.apps.push_back(app.res);
    }
    result.antt =
        norm_turnaround_n > 0 ? norm_turnaround_sum / static_cast<double>(norm_turnaround_n)
                              : 0.0;
    result.throughput =
        result.makespan > 0 ? static_cast<double>(apps_done) / result.makespan : 0.0;

    // Roll the windowed rates forward to the end of the run so the snapshot
    // reports the closing steady-state window, not the last-event one.
    w_arrive->advance_time(now);
    w_finish->advance_time(now);
    metrics.gauge("makespan_seconds").set(result.makespan);
    metrics.gauge("peak_node_occupancy").set(static_cast<double>(peak_node_occupancy));
    metrics.gauge("reserved_gib_hours").set(reserved_gib_seconds / 3600.0);
    metrics.gauge("used_gib_hours").set(used_gib_seconds / 3600.0);
    result.metrics = metrics.snapshot();
    if (tracing)
      sink.emit(obs::Event(now, obs::EventType::kRunEnd)
                    .with("makespan_s", result.makespan)
                    .with("executors_spawned", executors_spawned)
                    .with("executors_degraded", executors_degraded)
                    .with("oom_total", oom_total)
                    .with("peak_node_occupancy", peak_node_occupancy)
                    .with("reserved_gib_hours", reserved_gib_seconds / 3600.0)
                    .with("used_gib_hours", used_gib_seconds / 3600.0)
                    .with("offered", result.offered)
                    .with("admitted", admitted)
                    .with("dropped", dropped)
                    .with("deferred", deferrals));
    return result;
  }

  SimResult run(const wl::TaskMix& mix) {
    const MetricsBinding binding(policy, &metrics);
    submit(mix);
    std::size_t guard = 0;
    // The event budget scales with the queue: a million-app mix legitimately
    // produces tens of millions of events; the guard only has to catch
    // non-advancing schedules.
    const std::size_t guard_limit = 5'000'000 + 512 * mix.size();
    while (true) {
      promote_profiling();
      if (apps_done == apps.size()) break;

      dispatch();
      refresh_rates();

      const Seconds t = next_event_time();
      if (!std::isfinite(t)) {
        SMOE_CHECK(false, "simulation stalled: no executors, no pending events");
      }
      advance_to(t);
      handle_completions();
      maybe_report();

      SMOE_CHECK(++guard < guard_limit, "simulation exceeded event budget");
    }
    // Close out the lazily-folded utilization spans (idle nodes included: a
    // node that never hosted an executor records zero utilization for the
    // whole run, exactly as the legacy per-step accumulation did).
    for (std::size_t n = 0; n < n_nodes; ++n)
      flush_node_trace(static_cast<int>(n));

    SimResult result;
    result.trace = std::move(trace);
    result.oom_total = oom_total;
    result.executors_spawned = executors_spawned;
    result.executors_degraded = executors_degraded;
    result.peak_node_occupancy = peak_node_occupancy;
    result.reserved_gib_hours = reserved_gib_seconds / 3600.0;
    result.used_gib_hours = used_gib_seconds / 3600.0;
    for (auto& app : apps) {
      result.makespan = std::max(result.makespan, app.res.finish);
      result.apps.push_back(app.res);
    }

    metrics.gauge("makespan_seconds").set(result.makespan);
    metrics.gauge("peak_node_occupancy").set(static_cast<double>(peak_node_occupancy));
    metrics.gauge("reserved_gib_hours").set(result.reserved_gib_hours);
    metrics.gauge("used_gib_hours").set(result.used_gib_hours);
    result.metrics = metrics.snapshot();
    if (tracing)
      sink.emit(obs::Event(now, obs::EventType::kRunEnd)
                    .with("makespan_s", result.makespan)
                    .with("executors_spawned", executors_spawned)
                    .with("executors_degraded", executors_degraded)
                    .with("oom_total", oom_total)
                    .with("peak_node_occupancy", peak_node_occupancy)
                    .with("reserved_gib_hours", result.reserved_gib_hours)
                    .with("used_gib_hours", result.used_gib_hours));
    return result;
  }
};

}  // namespace

ClusterSim::ClusterSim(SimConfig config, const wl::FeatureModel& features)
    : cfg_(config), features_(features) {
  SMOE_REQUIRE(cfg_.cluster.n_nodes > 0, "cluster needs nodes");
}

SimResult ClusterSim::run(const wl::TaskMix& mix, SchedulingPolicy& policy) {
  return run(mix, policy, cfg_.sink);
}

SimResult ClusterSim::run(const wl::TaskMix& mix, SchedulingPolicy& policy,
                          obs::EventSink* sink) {
  Sim sim(cfg_, features_, policy, sink != nullptr ? *sink : obs::null_sink());
  return sim.run(mix);
}

ServingResult ClusterSim::serve(const std::vector<ServingArrival>& arrivals,
                                SchedulingPolicy& policy, AdmissionPolicy& admission,
                                obs::EventSink* sink) {
  obs::EventSink* effective = sink != nullptr ? sink : cfg_.sink;
  Sim sim(cfg_, features_, policy,
          effective != nullptr ? *effective : obs::null_sink());
  return sim.run_serving(arrivals, admission);
}

Seconds ClusterSim::isolated_exec_time(const wl::AppInstance& app) {
  NullIsolatedPolicy policy;
  // An internal measurement run, not part of the user's schedule — never
  // traced, whatever SimConfig::sink says.
  const SimResult result = run({app}, policy, nullptr);
  return result.apps.front().exec_time();
}

}  // namespace smoe::sim
