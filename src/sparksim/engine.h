// The discrete-event cluster simulator.
//
// A simulation run takes a task mix (applications + input sizes) and a
// scheduling policy and plays the cluster forward: profiling runs, executor
// dispatch under the policy's rules, contention-dependent progress, executor
// completions, OOM kills with isolated re-runs (Section 2.3), and resource
// monitor reports. Everything is deterministic given SimConfig::seed.
//
// The core is event-driven, not step-scanned: executor finish/OOM times live
// in a lazily-invalidated min-heap calendar (calendar.h), executor progress
// is folded on touch from (rate, folded_at), rates are refreshed only on
// nodes whose executor set changed, and the memory-time integrals ride on
// incremental aggregates — per-event cost is O(log n) in pending events plus
// the (unchanged) dispatch scan, independent of cluster size. DESIGN.md §10
// has the complexity table and the determinism/drift contract.
//
// Executor memory semantics: an executor's resident set is bounded by its
// reservation (a Spark executor cannot exceed its JVM heap). If the chunk's
// true working set exceeds the reservation, the executor degrades:
//   * non-predictive executors (Isolated/Pairwise heaps) spill to disk — a
//     mild slowdown, like Spark's default RDD cache eviction;
//   * predictive executors (heap sized to a prediction) GC-thrash, and die
//     with an OOM once the working set overshoots the heap by >25%; the
//     paper's fallback then re-runs the chunk in isolation.
#pragma once

#include <vector>

#include "obs/registry.h"
#include "sparksim/config.h"
#include "sparksim/policy.h"
#include "sparksim/trace.h"
#include "workloads/mixes.h"

namespace smoe::sim {

struct AppResult {
  std::string benchmark;
  Items input_items = 0;
  Seconds submit = 0;            ///< All apps are submitted at t = 0.
  Seconds profile_end = 0;       ///< When profiling finished (== submit if none).
  Seconds start = -1;            ///< First executor spawn.
  Seconds finish = -1;           ///< Last item processed.
  Seconds feature_time = 0;      ///< Feature-extraction profiling time.
  Seconds calibration_time = 0;  ///< Calibration profiling time.
  std::size_t oom_events = 0;
  std::size_t executors_used = 0;  ///< Executors spawned for this application.

  Seconds exec_time() const { return finish - start; }
  Seconds turnaround() const { return finish - submit; }
};

struct SimResult {
  std::vector<AppResult> apps;   ///< Same order as the input mix.
  Seconds makespan = 0;
  UtilizationTrace trace{1};
  std::size_t oom_total = 0;
  std::size_t executors_spawned = 0;
  std::size_t executors_degraded = 0;  ///< spilled or thrashed (heap overshoot)
  std::size_t peak_node_occupancy = 0; ///< max executors co-located on one node
  GiB reserved_gib_hours = 0;          ///< integral of reservations over time
  GiB used_gib_hours = 0;              ///< integral of resident memory over time
  /// End-of-run snapshot of the engine's metrics registry (executor
  /// lifetimes, queue waits, prediction errors, ...). Always populated,
  /// independent of whether an event sink was attached.
  obs::MetricsSnapshot metrics;
};

class ClusterSim {
 public:
  ClusterSim(SimConfig config, const wl::FeatureModel& features);

  /// Simulate the mix under the policy. Policies are stateless across apps,
  /// so one policy instance can be reused across runs. Structured events go
  /// to SimConfig::sink (none when null).
  SimResult run(const wl::TaskMix& mix, SchedulingPolicy& policy);

  /// Same, but with an explicit sink overriding SimConfig::sink for this run
  /// — pass nullptr to silence internal/baseline measurement runs without
  /// touching the config.
  SimResult run(const wl::TaskMix& mix, SchedulingPolicy& policy, obs::EventSink* sink);

  /// Execution time of one application run alone on the idle cluster with
  /// exclusive memory — the C^is_i term of the STP/ANTT metrics (Section 5.3).
  Seconds isolated_exec_time(const wl::AppInstance& app);

  const SimConfig& config() const { return cfg_; }

 private:
  SimConfig cfg_;
  const wl::FeatureModel& features_;
};

}  // namespace smoe::sim
