// The discrete-event cluster simulator.
//
// A simulation run takes a task mix (applications + input sizes) and a
// scheduling policy and plays the cluster forward: profiling runs, executor
// dispatch under the policy's rules, contention-dependent progress, executor
// completions, OOM kills with isolated re-runs (Section 2.3), and resource
// monitor reports. Everything is deterministic given SimConfig::seed.
//
// The core is event-driven, not step-scanned: executor finish/OOM times live
// in a lazily-invalidated min-heap calendar (calendar.h), executor progress
// is folded on touch from (rate, folded_at), rates are refreshed only on
// nodes whose executor set changed, and the memory-time integrals ride on
// incremental aggregates — per-event cost is O(log n) in pending events plus
// the (unchanged) dispatch scan, independent of cluster size. DESIGN.md §10
// has the complexity table and the determinism/drift contract.
//
// Executor memory semantics: an executor's resident set is bounded by its
// reservation (a Spark executor cannot exceed its JVM heap). If the chunk's
// true working set exceeds the reservation, the executor degrades:
//   * non-predictive executors (Isolated/Pairwise heaps) spill to disk — a
//     mild slowdown, like Spark's default RDD cache eviction;
//   * predictive executors (heap sized to a prediction) GC-thrash, and die
//     with an OOM once the working set overshoots the heap by >25%; the
//     paper's fallback then re-runs the chunk in isolation.
#pragma once

#include <vector>

#include "obs/registry.h"
#include "sparksim/admission.h"
#include "sparksim/config.h"
#include "sparksim/policy.h"
#include "sparksim/trace.h"
#include "workloads/mixes.h"

namespace smoe::sim {

struct AppResult {
  std::string benchmark;
  Items input_items = 0;
  Seconds submit = 0;            ///< Submission time: 0 in batch runs, the
                                 ///< admission time in serving runs.
  Seconds profile_end = 0;       ///< When profiling finished (== submit if none).
  Seconds start = -1;            ///< First executor spawn.
  Seconds finish = -1;           ///< Last item processed.
  Seconds feature_time = 0;      ///< Feature-extraction profiling time.
  Seconds calibration_time = 0;  ///< Calibration profiling time.
  std::size_t oom_events = 0;
  std::size_t executors_used = 0;  ///< Executors spawned for this application.

  Seconds exec_time() const { return finish - start; }
  Seconds turnaround() const { return finish - submit; }
};

struct SimResult {
  std::vector<AppResult> apps;   ///< Same order as the input mix.
  Seconds makespan = 0;
  UtilizationTrace trace{1};
  std::size_t oom_total = 0;
  std::size_t executors_spawned = 0;
  std::size_t executors_degraded = 0;  ///< spilled or thrashed (heap overshoot)
  std::size_t peak_node_occupancy = 0; ///< max executors co-located on one node
  GiB reserved_gib_hours = 0;          ///< integral of reservations over time
  GiB used_gib_hours = 0;              ///< integral of resident memory over time
  /// End-of-run snapshot of the engine's metrics registry (executor
  /// lifetimes, queue waits, prediction errors, ...). Always populated,
  /// independent of whether an event sink was attached.
  obs::MetricsSnapshot metrics;
};

/// Result of one open-loop serving run (DESIGN.md §14). `apps` holds the
/// *admitted* applications in admission order; dropped arrivals are counted
/// but never simulated.
struct ServingResult {
  std::vector<AppResult> apps;
  std::size_t offered = 0;     ///< arrivals played against the gate
  std::size_t admitted = 0;
  std::size_t dropped = 0;
  std::size_t deferrals = 0;   ///< arrivals that were deferred at least once
  Seconds makespan = 0;        ///< last application finish time
  /// Mean normalized turnaround (ANTT, Section 5.3) over finished apps whose
  /// arrival carried an isolated time; 0 when none did.
  double antt = 0;
  /// Finished applications per second over the whole run (offered-load STP
  /// proxy; the windowed steady-state rate lives in `metrics`).
  double throughput = 0;
  std::size_t oom_total = 0;
  std::size_t executors_spawned = 0;
  std::size_t executors_degraded = 0;
  /// End-of-run metrics snapshot. On top of the batch instruments it carries
  /// the serving-only windowed instruments: admission counters, gate/system
  /// gauges, arrival/finish windowed rates, and sojourn / normalized-
  /// turnaround quantiles (p50/p90/p99).
  obs::MetricsSnapshot metrics;
};

class ClusterSim {
 public:
  ClusterSim(SimConfig config, const wl::FeatureModel& features);

  /// Simulate the mix under the policy. Policies are stateless across apps,
  /// so one policy instance can be reused across runs. Structured events go
  /// to SimConfig::sink (none when null).
  SimResult run(const wl::TaskMix& mix, SchedulingPolicy& policy);

  /// Same, but with an explicit sink overriding SimConfig::sink for this run
  /// — pass nullptr to silence internal/baseline measurement runs without
  /// touching the config.
  SimResult run(const wl::TaskMix& mix, SchedulingPolicy& policy, obs::EventSink* sink);

  /// Open-loop serving: play `arrivals` (ascending by time) against a
  /// long-lived dispatcher. Each arrival is a first-class calendar event; the
  /// admission policy decides at the gate whether it enters the cluster
  /// queue, parks (FIFO) at the gate, or is dropped. The run drains when
  /// every arrival has a final verdict and every admitted application
  /// finished. Requires QueueOrder::kFcfs (arrival order *is* the queue
  /// order). Deterministic given the arrival list and SimConfig::seed.
  ServingResult serve(const std::vector<ServingArrival>& arrivals,
                      SchedulingPolicy& policy, AdmissionPolicy& admission,
                      obs::EventSink* sink = nullptr);

  /// Execution time of one application run alone on the idle cluster with
  /// exclusive memory — the C^is_i term of the STP/ANTT metrics (Section 5.3).
  Seconds isolated_exec_time(const wl::AppInstance& app);

  const SimConfig& config() const { return cfg_; }

 private:
  SimConfig cfg_;
  const wl::FeatureModel& features_;
};

}  // namespace smoe::sim
