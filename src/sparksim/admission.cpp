#include "sparksim/admission.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace smoe::sim {

std::string_view to_string(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmit: return "admit";
    case AdmissionVerdict::kDefer: return "defer";
    case AdmissionVerdict::kDrop: return "drop";
  }
  return "unknown";
}

std::vector<ServingArrival> poisson_load(std::size_t n, double rate, std::uint64_t seed) {
  SMOE_REQUIRE(n > 0, "poisson_load: no arrivals");
  SMOE_REQUIRE(rate > 0 && std::isfinite(rate), "poisson_load: rate must be positive");
  // Two independent derived streams: the application sequence must not depend
  // on the arrival rate (sweeps compare policies on identical offered work),
  // and the inter-arrival uniforms are rate-free too — only the -log(1-u)/rate
  // scaling changes across sweep points.
  Rng app_rng(Rng::derive(seed, "serving:apps"));
  Rng gap_rng(Rng::derive(seed, "serving:gaps"));
  const wl::TaskMix mix = wl::random_mix(n, app_rng);

  std::vector<ServingArrival> load;
  load.reserve(n);
  Seconds t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = gap_rng.uniform(0.0, 1.0);
    t += -std::log1p(-u) / rate;  // exponential inter-arrival, exact at small u
    load.push_back({t, mix[i], 0.0});
  }
  return load;
}

}  // namespace smoe::sim
