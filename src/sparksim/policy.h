// The interface scheduling policies implement. The engine owns the cluster
// mechanics (queueing, dispatch, contention, completion); a policy decides
// how an application's memory demand is estimated and which dispatch rules
// apply. Concrete policies (Isolated, Pairwise, Quasar, Online-search, MoE,
// Oracle) live in src/sched.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/units.h"
#include "sparksim/app_probe.h"

namespace smoe::obs {
class Registry;
}

namespace smoe::sim {

/// How the dispatcher places executors for this policy.
enum class DispatchMode {
  kIsolated,    ///< One application at a time, whole nodes, no co-location.
  kPairwise,    ///< At most two executors per node; co-located one gets all free memory.
  kPredictive,  ///< Memory-aware packing using the policy's estimate.
};

/// A policy's memory model for one application, produced at profiling time.
/// The callables must stay valid for the simulation's lifetime (the engine
/// keeps the AppProbe alive, so capturing it by reference is safe).
struct MemoryEstimate {
  /// Predicted executor footprint (GiB) when caching `items`.
  std::function<GiB(Items)> footprint;
  /// Largest item count predicted to fit a memory budget.
  std::function<Items(GiB)> items_for_budget;
  /// Measured/estimated average CPU load of the application.
  double cpu_load = 0.3;
};

/// Input items consumed by profiling; the engine converts them to time using
/// the application's processing rate, and deducts them from the remaining
/// work (profiling runs contribute to the final output, Section 4.1).
struct ProfilingCost {
  Items feature_items = 0;
  Items calibration_items = 0;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string name() const = 0;
  virtual DispatchMode mode() const = 0;

  /// Predictive policies respect the aggregate-CPU cap (Section 4.3).
  virtual bool cpu_check() const { return mode() == DispatchMode::kPredictive; }

  /// Extra per-spawn latency as a fraction of the chunk's processing time;
  /// models the probing of online-search schemes (Section 6.5). The time is
  /// pure overhead: the executor holds its resources but makes no progress.
  virtual double spawn_search_overhead() const { return 0.0; }

  /// Characterize one application. Fill `estimate` (for kPredictive mode)
  /// and return the profiling cost. Called once per application at submit
  /// time; `probe` outlives the returned estimate.
  virtual ProfilingCost profile(AppProbe& probe, MemoryEstimate& estimate) = 0;

  /// An independent instance safe to drive a simulation on another thread.
  /// A clone may share immutable or internally-synchronized training state
  /// with the original (each instance carries its own metrics binding), and
  /// must make the same decisions the original would. Returning nullptr means
  /// "not cloneable": the experiment runner then keeps that policy's
  /// simulations on one thread, borrowed-instance semantics unchanged.
  virtual std::unique_ptr<SchedulingPolicy> clone() const { return nullptr; }

  /// Observability: the engine binds its metrics registry for the duration
  /// of a run (and unbinds it afterwards); profile() implementations may
  /// record policy-level telemetry through metrics() when it is non-null.
  void bind_metrics(obs::Registry* registry) { metrics_ = registry; }

 protected:
  SchedulingPolicy() = default;
  /// Copies (clones) start unbound: a metrics binding is per-run, per-instance.
  SchedulingPolicy(const SchedulingPolicy&) {}
  SchedulingPolicy& operator=(const SchedulingPolicy&) { return *this; }

  obs::Registry* metrics() const { return metrics_; }

 private:
  obs::Registry* metrics_ = nullptr;
};

}  // namespace smoe::sim
