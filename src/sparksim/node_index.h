// Per-policy node indexes for O(log n) dispatch decisions on large clusters.
//
// The legacy dispatcher answered "which node should host the next executor?"
// with a linear scan over every node (max free memory, strict-`>` first-wins
// tie-break; or lowest-id empty node). At 10k nodes that scan — once per
// candidate application per event — dominates the whole simulation. The
// NodeIndex replaces both scans with lazily-invalidated heaps, mirroring the
// EventCalendar's version-counter trick:
//
//   * a free-memory max-heap ordered by (free desc, node asc). Every node
//     mutation (spawn/release) bumps the node's version and pushes a fresh
//     entry; stale entries self-identify when popped. The (free desc, node
//     asc) order means popping live entries yields exactly the node the
//     legacy scan would pick: the *first* (lowest-id) node among those with
//     maximal free memory — the strict-`>` first-wins tie-break, preserved
//     bit for bit because entries store the same `node_ram - reserved`
//     doubles the scan compares.
//   * an empty-node min-heap of node ids. Nodes are (re-)inserted when their
//     executor set empties; entries are validated against the live predicate
//     at peek time, so the top is always the lowest-id currently-empty node —
//     exactly what the legacy `find_empty_node` scan returned.
//
// Per-policy eligibility is folded into maintenance: Pairwise only ever
// co-locates on nodes with fewer than two executors, so with
// `colocate_cap = 2` nodes at the cap simply get no entry until an executor
// leaves. Per-*application* filters (an app never co-locates with itself;
// the predictive CPU check depends on the app's own load) cannot be folded
// into the index, so `best()` takes an accept predicate: rejected live
// entries are stashed and re-pushed after the decision, preserving the
// index invariant that every eligible node always has a live entry.
//
// Differential guarantee: for every lookup the index returns the same node
// id as the scan it replaces (tests/test_dispatch_index.cpp runs both paths
// over the golden corpus and randomized fuzz cells and byte-compares traces).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/units.h"

namespace smoe::sim {

class NodeIndex {
 public:
  /// Rebuild for a cluster of `n_nodes` identical nodes with `node_ram` free
  /// and zero executors each. Nodes with >= `colocate_cap` executors are
  /// ineligible for the free-memory heap (SIZE_MAX = no cap).
  void reset(std::size_t n_nodes, GiB node_ram, std::size_t colocate_cap) {
    cap_ = colocate_cap;
    ver_.assign(n_nodes, 0);
    in_empty_.assign(n_nodes, 1);
    heap_.clear();
    heap_.reserve(n_nodes);
    empty_heap_.resize(n_nodes);
    for (std::size_t n = 0; n < n_nodes; ++n) {
      heap_.push_back({node_ram, static_cast<int>(n), 0});
      empty_heap_[n] = static_cast<int>(n);
    }
    std::make_heap(heap_.begin(), heap_.end(), Less{});
    // Ascending ids already satisfy the min-heap property.
  }

  /// Record a node mutation: orphan any previous entry and, if the node is
  /// still eligible, push a fresh one with its current free memory.
  void touch(NodeId node, GiB free, std::size_t exec_count) {
    const auto n = static_cast<std::size_t>(node);
    ++ver_[n];
    if (exec_count < cap_) {
      heap_.push_back({free, node, ver_[n]});
      std::push_heap(heap_.begin(), heap_.end(), Less{});
    }
  }

  /// The node's executor set just became empty: make it findable again.
  /// (Validity — including the reserved-residue check — is re-evaluated
  /// against the live predicate at peek time.)
  void node_emptied(NodeId node) {
    const auto n = static_cast<std::size_t>(node);
    if (in_empty_[n]) return;
    in_empty_[n] = 1;
    empty_heap_.push_back(node);
    std::push_heap(empty_heap_.begin(), empty_heap_.end(), std::greater<int>());
  }

  /// Free memory of the best eligible node (stale tops are discarded on the
  /// way); -inf when no node is eligible. The saturation early-exit: when
  /// this is at or below every policy threshold and there is no empty node,
  /// *no* application can place an executor, whatever its per-app filters.
  GiB max_free() {
    while (!heap_.empty() && heap_.front().ver != ver_[static_cast<std::size_t>(
                                 heap_.front().node)]) {
      std::pop_heap(heap_.begin(), heap_.end(), Less{});
      heap_.pop_back();
    }
    return heap_.empty() ? -std::numeric_limits<GiB>::infinity() : heap_.front().free;
  }

  /// The node the legacy max-free scan would pick: the first live entry in
  /// (free desc, node asc) order whose free memory clears `min_free`
  /// (strictly when `inclusive` is false, mirroring the scan's `>` against
  /// its initial best; `>=` for the distrusted-fallback heap-size gate) and
  /// that `accept` does not filter out. The winner is *peeked*, not popped —
  /// its entry stays valid whether or not the caller spawns, and in the
  /// common accepted-at-top case the lookup does no heap sifts at all. Only
  /// rejected live entries are popped (stashed and re-pushed afterwards).
  /// kNoId when nothing qualifies. The result is a pure function of the live
  /// entry set — stale entries are transparent and heap layout never leaks.
  template <class Accept>
  NodeId best(GiB min_free, bool inclusive, Accept&& accept) {
    NodeId found = kNoId;
    stash_.clear();
    while (!heap_.empty()) {
      const Entry top = heap_.front();
      if (top.ver != ver_[static_cast<std::size_t>(top.node)]) {
        std::pop_heap(heap_.begin(), heap_.end(), Less{});
        heap_.pop_back();
        continue;
      }
      if (inclusive ? top.free < min_free : !(top.free > min_free)) break;
      if (accept(top.node)) {
        found = top.node;
        break;
      }
      std::pop_heap(heap_.begin(), heap_.end(), Less{});
      heap_.pop_back();
      stash_.push_back(top);
    }
    for (const Entry& e : stash_) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), Less{});
    }
    return found;
  }

  /// The lowest-id node satisfying the live emptiness predicate (the same
  /// one the legacy scan tested); entries failing it are discarded — they
  /// re-enter via node_emptied() on their next empty transition. kNoId when
  /// no node is empty. Peek semantics: the winner stays in the heap.
  template <class Valid>
  NodeId first_empty(Valid&& valid) {
    while (!empty_heap_.empty()) {
      const int n = empty_heap_.front();
      if (valid(n)) return n;
      std::pop_heap(empty_heap_.begin(), empty_heap_.end(), std::greater<int>());
      empty_heap_.pop_back();
      in_empty_[static_cast<std::size_t>(n)] = 0;
    }
    return kNoId;
  }

  /// Free-heap entries currently held (live + stale), for footprint tests.
  std::size_t heap_size() const { return heap_.size(); }

  /// Drop stale free-heap entries in place when they outnumber the live
  /// ones. Same amortized-compaction idea as EventCalendar::remove_stale.
  void compact_if_bloated() {
    if (heap_.size() < 64 || heap_.size() < 2 * ver_.size()) return;
    const auto it = std::remove_if(heap_.begin(), heap_.end(), [&](const Entry& e) {
      return e.ver != ver_[static_cast<std::size_t>(e.node)];
    });
    heap_.erase(it, heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Less{});
  }

 private:
  struct Entry {
    GiB free = 0;
    int node = -1;
    std::uint64_t ver = 0;
  };
  /// Heap comparator: max on free, ties broken toward the *lowest* node id.
  struct Less {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.free != b.free) return a.free < b.free;
      return a.node > b.node;
    }
  };

  std::size_t cap_ = std::numeric_limits<std::size_t>::max();
  std::vector<Entry> heap_;        ///< (free desc, node asc) with lazy staleness
  std::vector<std::uint64_t> ver_; ///< current version per node
  std::vector<int> empty_heap_;    ///< min-heap of (possibly stale) empty nodes
  std::vector<std::uint8_t> in_empty_;
  std::vector<Entry> stash_;       ///< rejected live entries, re-pushed per lookup
};

}  // namespace smoe::sim
