// The per-node resource monitor (Section 4.2): every computing node reports
// its CPU load and memory usage periodically; the job dispatcher consumes a
// windowed average (the paper uses a 5-minute window), so scheduling sees
// slightly stale, smoothed values — exactly like the real system.
//
// Dispatch queries the windowed averages orders of magnitude more often than
// nodes report (every candidate node of every decision vs. once per monitor
// period), so each node's average is computed once per report generation —
// on first query, then cached until the next record() — instead of on every
// query. Rings are stored flat (slot-major) for contiguous traversal.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/units.h"

namespace smoe::sim {

class ResourceMonitor {
 public:
  ResourceMonitor(std::size_t n_nodes, std::size_t window);

  /// Ingest one reporting tick: instantaneous CPU utilization (0..1) and
  /// memory in use (GiB) per node.
  void record(std::span<const double> cpu_now, std::span<const double> mem_now);

  /// Windowed average CPU utilization of a node; 0 before the first report.
  double reported_cpu(NodeId node) const {
    const auto n = checked(node);
    if (stamp_[n] != reports_) refresh(n);
    return avg_cpu_[n];
  }
  /// Windowed average memory usage of a node; 0 before the first report.
  GiB reported_mem(NodeId node) const {
    const auto n = checked(node);
    if (stamp_[n] != reports_) refresh(n);
    return avg_mem_[n];
  }

  /// The dispatcher-visible (stale, smoothed) view of one node, bundled so
  /// observability events can record exactly what a decision was based on.
  struct NodeView {
    double cpu = 0;                ///< windowed average CPU utilization (0..1)
    GiB mem = 0;                   ///< windowed average memory in use
    std::size_t reports_seen = 0;  ///< reports ingested cluster-wide so far
  };
  NodeView view(NodeId node) const {
    return {reported_cpu(node), reported_mem(node), reports_};
  }

  std::size_t reports_seen() const { return reports_; }

  /// Cluster-wide means of the *latest* report (not the window) — what a
  /// monitoring dashboard would chart per tick; 0 before the first report.
  double last_mean_cpu() const;
  GiB last_mean_mem() const;

 private:
  std::size_t checked(NodeId node) const;
  /// Recompute node `n`'s cached averages: sum over the filled slots in slot
  /// order (0..filled-1), then divide — exactly the summation an uncached
  /// query performs, so the cache is bit-identical to computing on demand.
  void refresh(std::size_t n) const;

  std::size_t n_nodes_;
  std::size_t window_;
  std::size_t reports_ = 0;
  // Flat ring buffers, slot-major: slot i's row is [i * n_nodes_, i * n_nodes_ + n_nodes_).
  std::vector<double> cpu_ring_, mem_ring_;
  // Per-node windowed averages, valid while stamp_[n] == reports_. Caching is
  // a pure memoization of the query, hence mutable behind const reads.
  mutable std::vector<double> avg_cpu_, avg_mem_;
  mutable std::vector<std::size_t> stamp_;
};

}  // namespace smoe::sim
