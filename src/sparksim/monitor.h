// The per-node resource monitor (Section 4.2): every computing node reports
// its CPU load and memory usage periodically; the job dispatcher consumes a
// windowed average (the paper uses a 5-minute window), so scheduling sees
// slightly stale, smoothed values — exactly like the real system.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/units.h"

namespace smoe::sim {

class ResourceMonitor {
 public:
  ResourceMonitor(std::size_t n_nodes, std::size_t window);

  /// Ingest one reporting tick: instantaneous CPU utilization (0..1) and
  /// memory in use (GiB) per node.
  void record(std::span<const double> cpu_now, std::span<const double> mem_now);

  /// Windowed average CPU utilization of a node; 0 before the first report.
  double reported_cpu(NodeId node) const;
  /// Windowed average memory usage of a node; 0 before the first report.
  GiB reported_mem(NodeId node) const;

  /// The dispatcher-visible (stale, smoothed) view of one node, bundled so
  /// observability events can record exactly what a decision was based on.
  struct NodeView {
    double cpu = 0;                ///< windowed average CPU utilization (0..1)
    GiB mem = 0;                   ///< windowed average memory in use
    std::size_t reports_seen = 0;  ///< reports ingested cluster-wide so far
  };
  NodeView view(NodeId node) const {
    return {reported_cpu(node), reported_mem(node), reports_};
  }

  std::size_t reports_seen() const { return reports_; }

  /// Cluster-wide means of the *latest* report (not the window) — what a
  /// monitoring dashboard would chart per tick; 0 before the first report.
  double last_mean_cpu() const;
  GiB last_mean_mem() const;

 private:
  std::size_t window_;
  std::size_t reports_ = 0;
  // Ring buffers, one row per report slot.
  std::vector<std::vector<double>> cpu_ring_, mem_ring_;
};

}  // namespace smoe::sim
