// The per-node resource monitor (Section 4.2): every computing node reports
// its CPU load and memory usage periodically; the job dispatcher consumes a
// windowed average (the paper uses a 5-minute window), so scheduling sees
// slightly stale, smoothed values — exactly like the real system.
//
// Report generation is *incremental*: a node's instantaneous load only
// changes when its executor set changes, so the engine hands record_sparse()
// just the nodes dirtied since the last tick instead of materializing all
// n_nodes values — the O(nodes)-per-tick report was the 10k-node throughput
// droop. Internally each node owns a node-major ring of its last `window`
// reported values, filled lazily: a node untouched for k reports has its
// ring rows materialized from its sticky current value on the next write or
// query, at most `window` rows per node. Every materialized row holds
// exactly the value a dense per-tick record() would have written (an
// unchanged node reports an unchanged value), and the windowed average sums
// the filled slots in slot order 0..filled-1 — the identical FP summation —
// so queries are bit-identical to the dense recompute, not just close
// (tests/test_monitor.cpp pins this differentially and under fuzz).
//
// Dispatch queries the windowed averages orders of magnitude more often than
// nodes report, so each node's average is cached after the first query and
// invalidated by the next record.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/units.h"

namespace smoe::sim {

class ResourceMonitor {
 public:
  ResourceMonitor(std::size_t n_nodes, std::size_t window);

  /// One node's instantaneous sample inside a sparse reporting tick.
  struct NodeSample {
    NodeId node = 0;
    double cpu = 0;  ///< instantaneous CPU utilization (0..1)
    GiB mem = 0;     ///< memory in use
  };

  /// Ingest one reporting tick: instantaneous CPU utilization (0..1) and
  /// memory in use (GiB) per node. Dense convenience wrapper over
  /// record_sparse() — every node is treated as changed.
  void record(std::span<const double> cpu_now, std::span<const double> mem_now);

  /// Ingest one reporting tick given only the nodes whose load *changed*
  /// since the previous tick; every other node implicitly reports its
  /// previous value again (0 before its first sample). O(changed x window)
  /// instead of O(n_nodes).
  void record_sparse(std::span<const NodeSample> changed);

  /// Windowed average CPU utilization of a node; 0 before the first report.
  double reported_cpu(NodeId node) const {
    const auto n = checked(node);
    if (stamp_[n] != reports_) refresh(n);
    return avg_cpu_[n];
  }
  /// Windowed average memory usage of a node; 0 before the first report.
  GiB reported_mem(NodeId node) const {
    const auto n = checked(node);
    if (stamp_[n] != reports_) refresh(n);
    return avg_mem_[n];
  }

  /// The dispatcher-visible (stale, smoothed) view of one node, bundled so
  /// observability events can record exactly what a decision was based on.
  struct NodeView {
    double cpu = 0;                ///< windowed average CPU utilization (0..1)
    GiB mem = 0;                   ///< windowed average memory in use
    std::size_t reports_seen = 0;  ///< reports ingested cluster-wide so far
  };
  NodeView view(NodeId node) const {
    return {reported_cpu(node), reported_mem(node), reports_};
  }

  std::size_t reports_seen() const { return reports_; }
  std::size_t n_nodes() const { return n_nodes_; }

  /// Cluster-wide means of the *latest* report (not the window) — what a
  /// monitoring dashboard would chart per tick; 0 before the first report.
  /// O(n_nodes): only the traced monitor_report event consumes these.
  double last_mean_cpu() const;
  GiB last_mean_mem() const;

 private:
  std::size_t checked(NodeId node) const;
  /// Materialize node n's ring rows for every report since its last write
  /// (all equal to its sticky current value), capped at `window` rows.
  void fill_node(std::size_t n) const;
  /// Recompute node `n`'s cached averages: sum over the filled slots in slot
  /// order (0..filled-1), then divide — exactly the summation the legacy
  /// dense monitor performed, so incremental ingestion is bit-identical.
  void refresh(std::size_t n) const;

  std::size_t n_nodes_;
  std::size_t window_;
  std::size_t reports_ = 0;
  // Node-major rings: node n's rows are [n * window_, (n + 1) * window_),
  // indexed by report % window_. Rows are materialized lazily (fill_node),
  // hence mutable behind const reads, like the average cache below.
  mutable std::vector<double> cpu_ring_, mem_ring_;
  /// Number of reports whose ring rows are materialized for each node:
  /// rows for reports < filled_to_[n] are valid, later ones pending.
  mutable std::vector<std::size_t> filled_to_;
  // Sticky per-node current values: what the node reports while unchanged.
  std::vector<double> cur_cpu_;
  std::vector<GiB> cur_mem_;
  // Per-node windowed averages, valid while stamp_[n] == reports_. Caching is
  // a pure memoization of the query, hence mutable behind const reads.
  mutable std::vector<double> avg_cpu_, avg_mem_;
  mutable std::vector<std::size_t> stamp_;
};

}  // namespace smoe::sim
