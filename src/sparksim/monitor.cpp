#include "sparksim/monitor.h"

#include <algorithm>

#include "common/error.h"

namespace smoe::sim {

ResourceMonitor::ResourceMonitor(std::size_t n_nodes, std::size_t window)
    : n_nodes_(n_nodes), window_(window) {
  SMOE_REQUIRE(n_nodes > 0, "monitor: no nodes");
  SMOE_REQUIRE(window > 0, "monitor: window must be >= 1");
  cpu_ring_.assign(window * n_nodes, 0.0);
  mem_ring_.assign(window * n_nodes, 0.0);
  avg_cpu_.assign(n_nodes, 0.0);
  avg_mem_.assign(n_nodes, 0.0);
  stamp_.assign(n_nodes, 0);  // matches reports_ == 0: averages are 0
}

void ResourceMonitor::record(std::span<const double> cpu_now, std::span<const double> mem_now) {
  SMOE_REQUIRE(cpu_now.size() == n_nodes_, "monitor: node count mismatch");
  SMOE_REQUIRE(mem_now.size() == cpu_now.size(), "monitor: node count mismatch");
  const std::size_t slot = reports_ % window_;
  std::copy(cpu_now.begin(), cpu_now.end(), cpu_ring_.begin() + slot * n_nodes_);
  std::copy(mem_now.begin(), mem_now.end(), mem_ring_.begin() + slot * n_nodes_);
  ++reports_;  // implicitly invalidates every per-node cache stamp
}

std::size_t ResourceMonitor::checked(NodeId node) const {
  const auto n = static_cast<std::size_t>(node);
  SMOE_REQUIRE(n < n_nodes_, "monitor: bad node id");
  return n;
}

void ResourceMonitor::refresh(std::size_t n) const {
  const std::size_t filled = std::min(reports_, window_);
  double sc = 0, sm = 0;
  for (std::size_t i = 0; i < filled; ++i) {
    sc += cpu_ring_[i * n_nodes_ + n];
    sm += mem_ring_[i * n_nodes_ + n];
  }
  avg_cpu_[n] = sc / static_cast<double>(filled);
  avg_mem_[n] = sm / static_cast<double>(filled);
  stamp_[n] = reports_;
}

namespace {

double mean_of(const double* row, std::size_t n) {
  double s = 0;
  for (std::size_t i = 0; i < n; ++i) s += row[i];
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

}  // namespace

double ResourceMonitor::last_mean_cpu() const {
  if (reports_ == 0) return 0.0;
  return mean_of(cpu_ring_.data() + ((reports_ - 1) % window_) * n_nodes_, n_nodes_);
}

GiB ResourceMonitor::last_mean_mem() const {
  if (reports_ == 0) return 0.0;
  return mean_of(mem_ring_.data() + ((reports_ - 1) % window_) * n_nodes_, n_nodes_);
}

}  // namespace smoe::sim
