#include "sparksim/monitor.h"

#include <algorithm>

#include "common/error.h"

namespace smoe::sim {

ResourceMonitor::ResourceMonitor(std::size_t n_nodes, std::size_t window)
    : n_nodes_(n_nodes), window_(window) {
  SMOE_REQUIRE(n_nodes > 0, "monitor: no nodes");
  SMOE_REQUIRE(window > 0, "monitor: window must be >= 1");
  cpu_ring_.assign(window * n_nodes, 0.0);
  mem_ring_.assign(window * n_nodes, 0.0);
  filled_to_.assign(n_nodes, 0);
  cur_cpu_.assign(n_nodes, 0.0);
  cur_mem_.assign(n_nodes, 0.0);
  avg_cpu_.assign(n_nodes, 0.0);
  avg_mem_.assign(n_nodes, 0.0);
  stamp_.assign(n_nodes, 0);  // matches reports_ == 0: averages are 0
}

void ResourceMonitor::fill_node(std::size_t n) const {
  std::size_t from = filled_to_[n];
  if (from >= reports_) return;
  // Rows older than the window were overwritten anyway; cap the back-fill.
  if (reports_ > window_) from = std::max(from, reports_ - window_);
  double* cpu_row = cpu_ring_.data() + n * window_;
  double* mem_row = mem_ring_.data() + n * window_;
  for (std::size_t r = from; r < reports_; ++r) {
    cpu_row[r % window_] = cur_cpu_[n];
    mem_row[r % window_] = cur_mem_[n];
  }
  filled_to_[n] = reports_;
}

void ResourceMonitor::record_sparse(std::span<const NodeSample> changed) {
  for (const NodeSample& s : changed) {
    const std::size_t n = checked(s.node);
    // Back-fill the reports this node sat out with its previous value, then
    // write the new value into this tick's row.
    fill_node(n);
    cur_cpu_[n] = s.cpu;
    cur_mem_[n] = s.mem;
    cpu_ring_[n * window_ + reports_ % window_] = s.cpu;
    mem_ring_[n * window_ + reports_ % window_] = s.mem;
    filled_to_[n] = reports_ + 1;
  }
  ++reports_;  // implicitly invalidates every per-node cache stamp
}

void ResourceMonitor::record(std::span<const double> cpu_now,
                             std::span<const double> mem_now) {
  SMOE_REQUIRE(cpu_now.size() == n_nodes_, "monitor: node count mismatch");
  SMOE_REQUIRE(mem_now.size() == cpu_now.size(), "monitor: node count mismatch");
  for (std::size_t n = 0; n < n_nodes_; ++n) {
    cur_cpu_[n] = cpu_now[n];
    cur_mem_[n] = mem_now[n];
    cpu_ring_[n * window_ + reports_ % window_] = cpu_now[n];
    mem_ring_[n * window_ + reports_ % window_] = mem_now[n];
    filled_to_[n] = reports_ + 1;
  }
  ++reports_;
}

std::size_t ResourceMonitor::checked(NodeId node) const {
  const auto n = static_cast<std::size_t>(node);
  SMOE_REQUIRE(n < n_nodes_, "monitor: bad node id");
  return n;
}

void ResourceMonitor::refresh(std::size_t n) const {
  fill_node(n);
  const std::size_t filled = std::min(reports_, window_);
  const double* cpu_row = cpu_ring_.data() + n * window_;
  const double* mem_row = mem_ring_.data() + n * window_;
  double sc = 0, sm = 0;
  for (std::size_t i = 0; i < filled; ++i) {
    sc += cpu_row[i];
    sm += mem_row[i];
  }
  avg_cpu_[n] = sc / static_cast<double>(filled);
  avg_mem_[n] = sm / static_cast<double>(filled);
  stamp_[n] = reports_;
}

double ResourceMonitor::last_mean_cpu() const {
  if (reports_ == 0) return 0.0;
  // cur_cpu_[n] is by construction the value node n carried in the latest
  // report; summing in node order matches the legacy latest-row mean bitwise.
  double s = 0;
  for (std::size_t n = 0; n < n_nodes_; ++n) s += cur_cpu_[n];
  return s / static_cast<double>(n_nodes_);
}

GiB ResourceMonitor::last_mean_mem() const {
  if (reports_ == 0) return 0.0;
  double s = 0;
  for (std::size_t n = 0; n < n_nodes_; ++n) s += cur_mem_[n];
  return s / static_cast<double>(n_nodes_);
}

}  // namespace smoe::sim
