#include "sparksim/monitor.h"

#include <algorithm>

#include "common/error.h"

namespace smoe::sim {

ResourceMonitor::ResourceMonitor(std::size_t n_nodes, std::size_t window) : window_(window) {
  SMOE_REQUIRE(n_nodes > 0, "monitor: no nodes");
  SMOE_REQUIRE(window > 0, "monitor: window must be >= 1");
  cpu_ring_.assign(window, std::vector<double>(n_nodes, 0.0));
  mem_ring_.assign(window, std::vector<double>(n_nodes, 0.0));
}

void ResourceMonitor::record(std::span<const double> cpu_now, std::span<const double> mem_now) {
  SMOE_REQUIRE(cpu_now.size() == cpu_ring_.front().size(), "monitor: node count mismatch");
  SMOE_REQUIRE(mem_now.size() == cpu_now.size(), "monitor: node count mismatch");
  const std::size_t slot = reports_ % window_;
  std::copy(cpu_now.begin(), cpu_now.end(), cpu_ring_[slot].begin());
  std::copy(mem_now.begin(), mem_now.end(), mem_ring_[slot].begin());
  ++reports_;
}

double ResourceMonitor::reported_cpu(NodeId node) const {
  const auto n = static_cast<std::size_t>(node);
  SMOE_REQUIRE(n < cpu_ring_.front().size(), "monitor: bad node id");
  const std::size_t filled = std::min(reports_, window_);
  if (filled == 0) return 0.0;
  double s = 0;
  for (std::size_t i = 0; i < filled; ++i) s += cpu_ring_[i][n];
  return s / static_cast<double>(filled);
}

GiB ResourceMonitor::reported_mem(NodeId node) const {
  const auto n = static_cast<std::size_t>(node);
  SMOE_REQUIRE(n < mem_ring_.front().size(), "monitor: bad node id");
  const std::size_t filled = std::min(reports_, window_);
  if (filled == 0) return 0.0;
  double s = 0;
  for (std::size_t i = 0; i < filled; ++i) s += mem_ring_[i][n];
  return s / static_cast<double>(filled);
}

namespace {

double mean_of(const std::vector<double>& v) {
  double s = 0;
  for (const double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

}  // namespace

double ResourceMonitor::last_mean_cpu() const {
  if (reports_ == 0) return 0.0;
  return mean_of(cpu_ring_[(reports_ - 1) % window_]);
}

GiB ResourceMonitor::last_mean_mem() const {
  if (reports_ == 0) return 0.0;
  return mean_of(mem_ring_[(reports_ - 1) % window_]);
}

}  // namespace smoe::sim
