// Cluster and simulation configuration, mirroring the paper's testbed
// (Section 5.1): 40 nodes, 8-core/16-thread Xeon E5-2650, 64 GB RAM, 16 GB
// swap, 10 Gbps Ethernet (disk/network contention out of scope, Section 2.2).
#pragma once

#include <cstddef>

#include "common/units.h"

namespace smoe::obs {
class EventSink;
}

namespace smoe::sim {

struct ClusterConfig {
  std::size_t n_nodes = 40;
  GiB node_ram = 64.0;
  GiB node_swap = 16.0;
  int hw_threads = 16;
};

/// Knobs of the performance/contention model. Defaults are calibrated so the
/// co-location interference stays in the envelope the paper measures
/// (Fig. 14: < 25% slowdown, < 10% median) while memory over-subscription is
/// sharply punished (swap paging).
struct ContentionConfig {
  /// Paging slowdown: speed is divided by (1 + paging_penalty * overflow/ram)
  /// for every executor on an over-subscribed node.
  double paging_penalty = 8.0;
  /// Scale applied to a benchmark's interference sensitivity.
  double interference_scale = 1.0;
};

/// Order in which waiting applications are considered by the dispatcher.
/// The paper evaluates first-come-first-serve but stresses the technique
/// "can be applied to any scheduling policy" (Section 5.2).
enum class QueueOrder {
  kFcfs,               ///< submission order (the paper's evaluation setting)
  kShortestJobFirst,   ///< smallest input first — favors turnaround time
};

/// Spark-side behaviour shared by every scheduling policy.
struct SparkConfig {
  /// Spark dynamic allocation: target items per executor before another
  /// executor is requested (~85 GB of input).
  Items dyn_alloc_items_per_executor = 87381;
  /// Dynamic allocation cap — the "not perfect" default the paper works
  /// around by spawning extra executors on spare nodes (Section 4.3).
  std::size_t dyn_alloc_max_executors = 12;
  /// How far beyond dynamic allocation a memory-aware policy may boost an
  /// application's executor count when spare resources exist (Section 4.3);
  /// 1.0 disables the boost.
  double executor_boost = 2.0;
  /// Smallest chunk worth spawning an executor for.
  Items min_chunk = 64;
  /// Fraction of node RAM a default (non-predictive) executor reserves.
  double default_heap_fraction = 0.5;
  /// Safety headroom applied on top of predicted footprints.
  double reservation_headroom = 0.05;
  /// Resource-monitor reporting period and averaging window (Section 4.2).
  Seconds monitor_period = 60.0;
  std::size_t monitor_window = 5;  ///< reports averaged (5 x 60 s = 5 min)
  /// Concurrent profiling runs the coordinating node sustains; waiting
  /// applications queue for a slot (Section 4.1: profiling happens on the
  /// lightly-loaded coordinating node while the app waits to be scheduled).
  std::size_t profiling_slots = 8;
  /// Dispatcher queue discipline.
  QueueOrder queue_order = QueueOrder::kFcfs;
};

struct SimConfig {
  ClusterConfig cluster;
  ContentionConfig contention;
  SparkConfig spark;
  /// Master seed for measurement noise in this simulation run.
  std::uint64_t seed = 42;
  /// Use the per-policy node indexes (free-memory max-heap + empty-node
  /// heap, node_index.h) for dispatch decisions instead of the legacy
  /// all-nodes scan. Decisions, traces and results are identical either way
  /// (pinned by the differential suite in tests/test_dispatch_index.cpp);
  /// the index makes each decision O(log n) instead of O(n_nodes) and is
  /// what makes 10k-node clusters tractable. The scan is retained as the
  /// differential oracle.
  bool indexed_dispatch = true;
  /// Bin width of the per-node utilization trace (SimResult::trace).
  /// 60 s matches the paper's Figure-7 resolution; large-cluster/long-mix
  /// benches widen it so the trace stays O(nodes x bins) small.
  Seconds trace_bin = 60.0;
  /// Structured-event sink (src/obs) the engine emits into; non-owning,
  /// null means off. Sinks are passive: any sink (or none) yields the same
  /// SimResult. Events carry sim-time, so traces are byte-identical across
  /// identically-seeded runs.
  obs::EventSink* sink = nullptr;
};

}  // namespace smoe::sim
