// Admission control for the open-loop serving mode (DESIGN.md §14).
//
// In batch runs every application is submitted at t = 0 and the dispatcher
// drains the queue. Serving mode instead plays an *arrival process* against a
// long-lived dispatcher: applications arrive over simulated time, and an
// AdmissionPolicy decides at the gate whether each arrival is admitted into
// the cluster queue, deferred (parked FIFO at the gate until the cluster
// drains), or dropped (rejected outright, never simulated). The decision sees
// only what a real gatekeeper would: the count of admitted-but-unfinished
// applications, the gate queue, and the resource monitor's *stale, smoothed*
// cluster view (Section 4.2) — never instantaneous engine state.
//
// Six built-in policies cover the design space the serving bench sweeps:
//   * Unbounded      — admit everything (the open-loop baseline; sojourn
//                      diverges past the saturation knee)
//   * BoundedDrop    — hard cap on apps in system; overflow is dropped
//   * BoundedDefer   — same cap, but overflow parks at the gate (backpressure)
//   * MursGate       — MURS-style memory-pressure gate: defer while the
//                      monitor's mean memory usage exceeds a fraction of node
//                      RAM (memory-aware throttling, after the paper's
//                      co-location principle)
//   * TokenBucket    — classic rate limiter: admit while tokens last, drop
//                      the burst overflow
//   * Hybrid         — MursGate backpressure plus a BoundedDrop overload cap
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "workloads/mixes.h"

namespace smoe::sim {

enum class AdmissionVerdict { kAdmit, kDefer, kDrop };

std::string_view to_string(AdmissionVerdict verdict);

/// What the gate sees when an application arrives (or a deferred arrival is
/// re-evaluated). Monitor fields are the dispatcher-visible stale view: means
/// of the *latest* periodic report, zero before the first report.
struct AdmissionContext {
  Seconds now = 0;
  std::size_t in_system = 0;      ///< admitted and not yet finished
  std::size_t waiting = 0;        ///< deferred arrivals parked at the gate
  double monitor_mean_cpu = 0;    ///< cluster mean CPU load (0..1), stale
  GiB monitor_mean_mem = 0;       ///< cluster mean memory in use, stale
  GiB node_ram = 0;
  std::size_t n_nodes = 0;
  bool retry = false;             ///< re-evaluation of a deferred arrival
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual std::string name() const = 0;
  virtual AdmissionVerdict admit(const AdmissionContext& ctx) = 0;
  /// Called at the start of every serving run so one stateful instance (e.g.
  /// a token bucket) can be reused across runs.
  virtual void reset() {}
};

/// Admit everything, immediately.
class UnboundedAdmission final : public AdmissionPolicy {
 public:
  std::string name() const override { return "unbounded"; }
  AdmissionVerdict admit(const AdmissionContext&) override {
    return AdmissionVerdict::kAdmit;
  }
};

/// At most `cap` applications in the system; overflow is dropped.
class BoundedDropAdmission final : public AdmissionPolicy {
 public:
  explicit BoundedDropAdmission(std::size_t cap) : cap_(cap) {}
  std::string name() const override { return "bounded-drop"; }
  AdmissionVerdict admit(const AdmissionContext& ctx) override {
    return ctx.in_system < cap_ ? AdmissionVerdict::kAdmit : AdmissionVerdict::kDrop;
  }

 private:
  std::size_t cap_;
};

/// At most `cap` applications in the system; overflow parks at the gate and
/// re-enters FIFO as the cluster drains (closed-queue backpressure).
class BoundedDeferAdmission final : public AdmissionPolicy {
 public:
  explicit BoundedDeferAdmission(std::size_t cap) : cap_(cap) {}
  std::string name() const override { return "bounded-defer"; }
  AdmissionVerdict admit(const AdmissionContext& ctx) override {
    return ctx.in_system < cap_ ? AdmissionVerdict::kAdmit : AdmissionVerdict::kDefer;
  }

 private:
  std::size_t cap_;
};

/// MURS-style memory-pressure gate: defer while the monitor's (stale) mean
/// memory usage exceeds `mem_fraction` of node RAM. Memory-aware throttling
/// in the spirit of the paper's co-location rule: keep admitting while the
/// cluster has spare memory, hold the queue at the gate once it doesn't.
class MursGateAdmission final : public AdmissionPolicy {
 public:
  explicit MursGateAdmission(double mem_fraction) : mem_fraction_(mem_fraction) {}
  std::string name() const override { return "murs-gate"; }
  AdmissionVerdict admit(const AdmissionContext& ctx) override {
    if (ctx.monitor_mean_mem > mem_fraction_ * ctx.node_ram)
      return AdmissionVerdict::kDefer;
    return AdmissionVerdict::kAdmit;
  }

 private:
  double mem_fraction_;
};

/// Deterministic token bucket over simulated time: `rate` tokens/s refill up
/// to `burst`; an arrival with no token is dropped (rate limiting, not
/// backpressure — deferred retries are rejected the same way).
class TokenBucketAdmission final : public AdmissionPolicy {
 public:
  TokenBucketAdmission(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst) {}
  std::string name() const override { return "token-bucket"; }
  AdmissionVerdict admit(const AdmissionContext& ctx) override {
    tokens_ = std::min(burst_, tokens_ + rate_ * (ctx.now - last_t_));
    last_t_ = ctx.now;
    if (tokens_ < 1.0) return AdmissionVerdict::kDrop;
    tokens_ -= 1.0;
    return AdmissionVerdict::kAdmit;
  }
  void reset() override {
    tokens_ = burst_;
    last_t_ = 0;
  }

 private:
  double rate_, burst_;
  double tokens_;
  Seconds last_t_ = 0;
};

/// MursGate backpressure plus a hard overload cap: drop once the system plus
/// gate queue exceeds `overload_cap`, defer on memory pressure, else admit.
class HybridAdmission final : public AdmissionPolicy {
 public:
  HybridAdmission(std::size_t overload_cap, double mem_fraction)
      : overload_cap_(overload_cap), mem_fraction_(mem_fraction) {}
  std::string name() const override { return "hybrid"; }
  AdmissionVerdict admit(const AdmissionContext& ctx) override {
    if (!ctx.retry && ctx.in_system + ctx.waiting >= overload_cap_)
      return AdmissionVerdict::kDrop;
    if (ctx.monitor_mean_mem > mem_fraction_ * ctx.node_ram)
      return AdmissionVerdict::kDefer;
    return AdmissionVerdict::kAdmit;
  }

 private:
  std::size_t overload_cap_;
  double mem_fraction_;
};

/// One offered application in a serving run.
struct ServingArrival {
  Seconds t = 0;            ///< arrival time (non-decreasing across the load)
  wl::AppInstance app;
  /// Optional isolated execution time C^iso (Section 5.3) for normalized
  /// turnaround (ANTT) accounting; 0 = unknown, excluded from ANTT.
  Seconds isolated_s = 0;
};

/// Deterministic open-loop Poisson load: `n` arrivals with exponential
/// inter-arrival times at `rate` (apps/s) and applications drawn like
/// wl::random_mix. Same (seed, n) → the same application sequence at every
/// rate, so sweeps compare policies on identical offered work.
std::vector<ServingArrival> poisson_load(std::size_t n, double rate, std::uint64_t seed);

}  // namespace smoe::sim
