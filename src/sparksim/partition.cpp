#include "sparksim/partition.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace smoe::sim {

namespace {

/// Merge shard metrics into `into`, in shard order. Only exactly-mergeable
/// instruments survive: counters add, gauges keep the max (every engine gauge
/// is a running maximum), histograms with identical bounds add bucket-wise.
void merge_metrics(obs::MetricsSnapshot& into, const obs::MetricsSnapshot& shard) {
  for (const auto& [name, v] : shard.counters) into.counters[name] += v;
  for (const auto& [name, v] : shard.gauges) {
    auto [it, inserted] = into.gauges.emplace(name, v);
    if (!inserted) it->second = std::max(it->second, v);
  }
  for (const auto& [name, h] : shard.histograms) {
    auto [it, inserted] = into.histograms.emplace(name, h);
    if (inserted) continue;
    auto& dst = it->second;
    SMOE_REQUIRE(dst.bounds == h.bounds, "partition: histogram shape mismatch: " + name);
    for (std::size_t b = 0; b < dst.buckets.size(); ++b) dst.buckets[b] += h.buckets[b];
    if (h.count > 0) {
      dst.min = dst.count == 0 ? h.min : std::min(dst.min, h.min);
      dst.max = dst.count == 0 ? h.max : std::max(dst.max, h.max);
    }
    dst.count += h.count;
    dst.sum += h.sum;
  }
  // Windowed rates and P^2 quantile sketches are intentionally dropped — see
  // the header's merge-semantics note.
}

}  // namespace

PartitionedClusterSim::PartitionedClusterSim(SimConfig config, const wl::FeatureModel& features,
                                             std::size_t n_partitions, std::size_t n_threads)
    : cfg_(std::move(config)),
      features_(features),
      n_partitions_(n_partitions),
      n_threads_(n_threads) {
  SMOE_REQUIRE(n_partitions_ >= 1, "partition: need at least one partition");
  SMOE_REQUIRE(n_partitions_ <= cfg_.cluster.n_nodes,
               "partition: more partitions than nodes");
}

SimResult PartitionedClusterSim::run(const wl::TaskMix& mix, SchedulingPolicy& policy) {
  if (n_partitions_ == 1) return ClusterSim(cfg_, features_).run(mix, policy);

  const std::size_t P = n_partitions_;
  const std::size_t n_nodes = cfg_.cluster.n_nodes;

  // Even node split: the first (n_nodes % P) shards get one extra node.
  std::vector<std::size_t> shard_nodes(P, n_nodes / P);
  for (std::size_t s = 0; s < n_nodes % P; ++s) ++shard_nodes[s];
  std::vector<std::size_t> node_offset(P, 0);
  for (std::size_t s = 1; s < P; ++s) node_offset[s] = node_offset[s - 1] + shard_nodes[s - 1];

  // Round-robin deal preserves each shard's FCFS arrival order.
  std::vector<wl::TaskMix> shard_mix(P);
  for (std::size_t i = 0; i < mix.size(); ++i)
    shard_mix[shard_of(i, P)].push_back(mix[i]);

  std::vector<SimResult> shard_result(P);
  auto run_shard = [&](std::size_t s, SchedulingPolicy& shard_policy) {
    SimConfig cfg = cfg_;
    cfg.cluster.n_nodes = shard_nodes[s];
    cfg.seed = Rng::derive(cfg_.seed, "partition:" + std::to_string(s));
    cfg.sink = nullptr;  // partitioned runs are untraced (header contract)
    shard_result[s] = ClusterSim(cfg, features_).run(shard_mix[s], shard_policy);
  };

  // Clone per shard when the policy supports it; fall back to a sequential
  // sweep with the borrowed instance otherwise. Either path yields the same
  // shard results — shards only share internally-synchronized caches whose
  // lookups are pure functions of the trained state.
  std::vector<std::unique_ptr<SchedulingPolicy>> clones(P);
  bool cloneable = true;
  for (std::size_t s = 0; s < P; ++s) {
    clones[s] = policy.clone();
    if (!clones[s]) {
      cloneable = false;
      break;
    }
  }
  if (cloneable) {
    ThreadPool pool(n_threads_);
    pool.parallel_for_each(P, [&](std::size_t s) { run_shard(s, *clones[s]); });
  } else {
    for (std::size_t s = 0; s < P; ++s) run_shard(s, policy);
  }

  // Deterministic merge, shard order throughout.
  SimResult merged;
  merged.trace = UtilizationTrace(n_nodes, cfg_.trace_bin);
  merged.apps.resize(mix.size());
  for (std::size_t i = 0; i < mix.size(); ++i)
    merged.apps[i] = shard_result[shard_of(i, P)].apps[i / P];
  for (std::size_t s = 0; s < P; ++s) {
    const SimResult& r = shard_result[s];
    merged.makespan = std::max(merged.makespan, r.makespan);
    merged.oom_total += r.oom_total;
    merged.executors_spawned += r.executors_spawned;
    merged.executors_degraded += r.executors_degraded;
    merged.peak_node_occupancy = std::max(merged.peak_node_occupancy, r.peak_node_occupancy);
    merged.reserved_gib_hours += r.reserved_gib_hours;
    merged.used_gib_hours += r.used_gib_hours;
    merged.trace.merge_shard(r.trace, node_offset[s]);
    merge_metrics(merged.metrics, r.metrics);
  }
  return merged;
}

}  // namespace smoe::sim
