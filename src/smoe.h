// Umbrella header: the public API of sparkmoe.
//
//   #include "smoe.h"
//
// pulls in the mixture-of-experts predictor (core), the workload and feature
// models, the cluster simulator, and the scheduling policies. Fine-grained
// headers remain available for targeted includes.
#pragma once

// Common substrate: errors, units, RNG, statistics.
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

// The paper's contribution: experts, pool, trainer, runtime predictor.
#include "core/expert_pool.h"
#include "core/memory_expert.h"
#include "core/predictor.h"
#include "core/serialize.h"
#include "core/trainer.h"

// Workloads: the 44 benchmarks, feature model, task mixes.
#include "workloads/benchmark.h"
#include "workloads/features.h"
#include "workloads/mixes.h"
#include "workloads/suites.h"

// Cluster simulation.
#include "sparksim/audit/invariant_auditor.h"
#include "sparksim/config.h"
#include "sparksim/engine.h"
#include "sparksim/policy.h"

// Scheduling policies, metrics and the experiment runner.
#include "sched/cpu_estimator.h"
#include "sched/experiment.h"
#include "sched/metrics.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sched/training_data.h"
