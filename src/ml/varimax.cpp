#include "ml/varimax.h"

#include <cmath>

#include "common/error.h"

namespace smoe::ml {

namespace {

// One pairwise Varimax rotation between components p and q; returns the
// criterion improvement achieved.
double rotate_pair(Matrix& l, std::size_t p, std::size_t q) {
  const std::size_t n = l.rows();
  double u_sum = 0, v_sum = 0, u2v2 = 0, uv = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = l(i, p) * l(i, p) - l(i, q) * l(i, q);
    const double v = 2.0 * l(i, p) * l(i, q);
    u_sum += u;
    v_sum += v;
    u2v2 += u * u - v * v;
    uv += u * v;
  }
  const double num = 2.0 * (uv - u_sum * v_sum / static_cast<double>(n));
  const double den = u2v2 - (u_sum * u_sum - v_sum * v_sum) / static_cast<double>(n);
  if (std::abs(num) < 1e-15 && std::abs(den) < 1e-15) return 0.0;
  const double phi = 0.25 * std::atan2(num, den);
  if (std::abs(phi) < 1e-12) return 0.0;
  const double c = std::cos(phi), s = std::sin(phi);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = l(i, p), b = l(i, q);
    l(i, p) = c * a + s * b;
    l(i, q) = -s * a + c * b;
  }
  return std::abs(phi);
}

}  // namespace

Matrix varimax_rotate(const Matrix& loadings, int max_iter, double tol) {
  SMOE_REQUIRE(loadings.rows() >= 1 && loadings.cols() >= 1, "varimax: empty loadings");
  Matrix l = loadings;
  if (l.cols() == 1) return l;  // nothing to rotate
  for (int it = 0; it < max_iter; ++it) {
    double moved = 0;
    for (std::size_t p = 0; p + 1 < l.cols(); ++p)
      for (std::size_t q = p + 1; q < l.cols(); ++q) moved += rotate_pair(l, p, q);
    if (moved < tol) break;
  }
  return l;
}

Vector feature_contributions(const Matrix& rotated_loadings,
                             const Vector& explained_variance_ratio) {
  SMOE_REQUIRE(rotated_loadings.cols() == explained_variance_ratio.size(),
               "varimax: components/variance mismatch");
  Vector contrib(rotated_loadings.rows(), 0.0);
  double total = 0;
  for (std::size_t f = 0; f < rotated_loadings.rows(); ++f) {
    double s = 0;
    for (std::size_t c = 0; c < rotated_loadings.cols(); ++c)
      s += rotated_loadings(f, c) * rotated_loadings(f, c) * explained_variance_ratio[c];
    contrib[f] = s;
    total += s;
  }
  SMOE_CHECK(total > 0.0, "varimax: degenerate loadings");
  for (auto& c : contrib) c /= total;
  return contrib;
}

}  // namespace smoe::ml
