// Curve fitting for the paper's memory-function families (Table 1):
//
//   power law     y = m * x^b          (the paper's "(piecewise) linear")
//   exponential   y = m * (1 - e^(-b*x))
//   napierian log y = m + b * ln(x)
//
// plus ordinary least squares. Each family supports full least-squares
// fitting (offline training), exact two-point calibration (the runtime 5%/10%
// profiling runs) and inversion (items that fit in a memory budget).
#pragma once

#include <cmath>
#include <limits>
#include <span>
#include <string>

#include "common/error.h"

namespace smoe::ml {

enum class CurveKind { kPowerLaw, kExponential, kNapierianLog };

std::string to_string(CurveKind kind);

struct CurveParams {
  double m = 0.0;
  double b = 0.0;
};

// curve_eval and curve_inverse are header-inline: the dispatcher evaluates
// them for every placement decision (predicted footprints and budget
// inversions), and the out-of-line call overhead was visible in
// large-cluster profiles.

/// Evaluate y = f(x) for the family. Requires x > 0 for the log family.
inline double curve_eval(CurveKind kind, CurveParams p, double x) {
  switch (kind) {
    case CurveKind::kPowerLaw:
      SMOE_REQUIRE(x >= 0.0, "power law needs x >= 0");
      return p.m * std::pow(x, p.b);
    case CurveKind::kExponential:
      return p.m * (1.0 - std::exp(-p.b * x));
    case CurveKind::kNapierianLog:
      SMOE_REQUIRE(x > 0.0, "log curve needs x > 0");
      return p.m + p.b * std::log(x);
  }
  SMOE_CHECK(false, "unreachable curve kind");
  return 0.0;
}

/// Invert the curve: the largest x with f(x) <= y. Returns +inf when the
/// curve saturates below y (exponential with y >= m), and 0 when even x -> 0
/// exceeds the budget.
inline double curve_inverse(CurveKind kind, CurveParams p, double y) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  switch (kind) {
    case CurveKind::kPowerLaw: {
      if (p.m <= 0.0 || p.b <= 0.0) return y > 0.0 ? kInf : 0.0;
      if (y <= 0.0) return 0.0;
      return std::pow(y / p.m, 1.0 / p.b);
    }
    case CurveKind::kExponential: {
      if (p.m <= 0.0 || p.b <= 0.0) return y > 0.0 ? kInf : 0.0;
      if (y <= 0.0) return 0.0;
      if (y >= p.m) return kInf;  // curve saturates below the budget
      return -std::log(1.0 - y / p.m) / p.b;
    }
    case CurveKind::kNapierianLog: {
      if (p.b <= 0.0) return y >= p.m ? kInf : 0.0;
      return std::exp((y - p.m) / p.b);
    }
  }
  SMOE_CHECK(false, "unreachable curve kind");
  return 0.0;
}

struct CurveFit {
  CurveKind kind = CurveKind::kPowerLaw;
  CurveParams params;
  double r2 = 0.0;        ///< Coefficient of determination on the fit data.
  double rmse = 0.0;
};

/// Least-squares fit of one family to (xs, ys). All xs must be positive and
/// there must be at least two distinct xs.
CurveFit fit_curve(CurveKind kind, std::span<const double> xs, std::span<const double> ys);

/// Fit every family and return the one with the highest R².
CurveFit best_fit(std::span<const double> xs, std::span<const double> ys);

/// Exact two-point calibration: solve f(x1) = y1, f(x2) = y2 for (m, b).
/// This is the runtime step the paper performs with the 5% / 10% profiling
/// runs. Requires 0 < x1 < x2 and y1, y2 > 0 (footprints are positive).
CurveParams calibrate_two_point(CurveKind kind, double x1, double y1, double x2, double y2);

/// Ordinary least squares y = a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit ols(std::span<const double> xs, std::span<const double> ys);

}  // namespace smoe::ml
