// Curve fitting for the paper's memory-function families (Table 1):
//
//   power law     y = m * x^b          (the paper's "(piecewise) linear")
//   exponential   y = m * (1 - e^(-b*x))
//   napierian log y = m + b * ln(x)
//
// plus ordinary least squares. Each family supports full least-squares
// fitting (offline training), exact two-point calibration (the runtime 5%/10%
// profiling runs) and inversion (items that fit in a memory budget).
#pragma once

#include <limits>
#include <span>
#include <string>

namespace smoe::ml {

enum class CurveKind { kPowerLaw, kExponential, kNapierianLog };

std::string to_string(CurveKind kind);

struct CurveParams {
  double m = 0.0;
  double b = 0.0;
};

/// Evaluate y = f(x) for the family. Requires x > 0 for the log family.
double curve_eval(CurveKind kind, CurveParams p, double x);

/// Invert the curve: the largest x with f(x) <= y. Returns +inf when the
/// curve saturates below y (exponential with y >= m), and 0 when even x -> 0
/// exceeds the budget.
double curve_inverse(CurveKind kind, CurveParams p, double y);

struct CurveFit {
  CurveKind kind = CurveKind::kPowerLaw;
  CurveParams params;
  double r2 = 0.0;        ///< Coefficient of determination on the fit data.
  double rmse = 0.0;
};

/// Least-squares fit of one family to (xs, ys). All xs must be positive and
/// there must be at least two distinct xs.
CurveFit fit_curve(CurveKind kind, std::span<const double> xs, std::span<const double> ys);

/// Fit every family and return the one with the highest R².
CurveFit best_fit(std::span<const double> xs, std::span<const double> ys);

/// Exact two-point calibration: solve f(x1) = y1, f(x2) = y2 for (m, b).
/// This is the runtime step the paper performs with the 5% / 10% profiling
/// runs. Requires 0 < x1 < x2 and y1, y2 > 0 (footprints are positive).
CurveParams calibrate_two_point(CurveKind kind, double x1, double y1, double x2, double y2);

/// Ordinary least squares y = a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit ols(std::span<const double> xs, std::span<const double> ys);

}  // namespace smoe::ml
