// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
// Sufficient for PCA over the 22-feature covariance matrices used here.
#pragma once

#include "ml/matrix.h"

namespace smoe::ml {

struct EigenDecomposition {
  /// Eigenvalues sorted descending.
  Vector values;
  /// Eigenvectors as columns, in the same order as `values`.
  Matrix vectors;
};

/// Decompose a symmetric matrix. Throws PreconditionError if `m` is not
/// square or not symmetric (within a small tolerance).
EigenDecomposition eigen_symmetric(const Matrix& m, double tol = 1e-18, int max_sweeps = 100);

}  // namespace smoe::ml
