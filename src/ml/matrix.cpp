#include "ml/matrix.h"

#include <cmath>

#include "common/error.h"

namespace smoe::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  SMOE_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  SMOE_REQUIRE(!rows.empty(), "from_rows: no rows");
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    SMOE_REQUIRE(rows[r].size() == cols, "from_rows: ragged rows");
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  SMOE_REQUIRE(cols_ == rhs.rows_, "matrix multiply shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
    }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  SMOE_REQUIRE(cols_ == v.size(), "matrix-vector shape mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = dot(row(i), v);
  return out;
}

Vector Matrix::col_means() const {
  Vector m(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) m[c] += (*this)(r, c);
  for (auto& x : m) x /= static_cast<double>(rows_);
  return m;
}

Matrix Matrix::covariance() const {
  SMOE_REQUIRE(rows_ >= 2, "covariance needs >= 2 rows");
  const Vector mu = col_means();
  Matrix cov(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t i = 0; i < cols_; ++i) {
      const double di = (*this)(r, i) - mu[i];
      for (std::size_t j = i; j < cols_; ++j) cov(i, j) += di * ((*this)(r, j) - mu[j]);
    }
  const double denom = static_cast<double>(rows_ - 1);
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = i; j < cols_; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  return cov;
}

double euclidean_distance(std::span<const double> a, std::span<const double> b) {
  SMOE_REQUIRE(a.size() == b.size(), "distance: size mismatch");
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s);
}

double dot(std::span<const double> a, std::span<const double> b) {
  SMOE_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace smoe::ml
