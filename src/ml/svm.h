// Linear soft-margin SVM trained with SGD on the hinge loss, extended to
// multi-class via one-vs-rest — a Table 5 comparator.
#pragma once

#include <cstdint>

#include "ml/dataset.h"

namespace smoe::ml {

struct SvmParams {
  double lambda = 1e-3;   ///< L2 regularization strength.
  std::size_t epochs = 200;
  double lr0 = 1.0;       ///< Initial learning rate (decays as lr0/(1+t*lambda)).
};

class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(SvmParams params = {}, std::uint64_t seed = 2);

  void fit(const Dataset& ds) override;
  int predict(std::span<const double> features) const override;
  std::string name() const override { return "SVM"; }

  /// Raw decision value of one one-vs-rest head.
  double decision_value(int cls, std::span<const double> features) const;

 private:
  SvmParams params_;
  std::uint64_t seed_;
  std::vector<Vector> weights_;  // one weight vector per class
  Vector biases_;
};

}  // namespace smoe::ml
