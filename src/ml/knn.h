// K-nearest-neighbour classifier — the paper's expert selector (Section 3).
// Beyond the plain class vote, it exposes the distance to the nearest
// neighbour, which the paper uses as a prediction-confidence signal (an
// application "too far from any training program" falls back to conservative
// scheduling, Section 4.1 / 6.9).
#pragma once

#include "ml/dataset.h"

namespace smoe::ml {

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(std::size_t k = 1);

  void fit(const Dataset& ds) override;
  int predict(std::span<const double> features) const override;
  std::string name() const override { return "KNN"; }

  struct Neighbour {
    std::size_t index = 0;  ///< Training-sample index.
    double distance = 0.0;  ///< Euclidean distance in the (PCA) feature space.
    int label = 0;
  };

  /// The k nearest training samples, closest first.
  std::vector<Neighbour> neighbours(std::span<const double> features) const;
  /// Distance to the single nearest neighbour (confidence signal).
  double nearest_distance(std::span<const double> features) const;

  std::size_t k() const { return k_; }
  /// The training data this classifier was fit on (for serialization).
  const Dataset& training_data() const;

 private:
  std::size_t k_;
  Dataset train_;
  bool fitted_ = false;
};

}  // namespace smoe::ml
