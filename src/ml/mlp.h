// Fully connected feed-forward networks trained with backpropagation.
//
// Two uses in the paper:
//  * MLP / "ANN" classifiers as Table 5 comparators for the expert selector
//    (the MLP has one hidden layer, the ANN mirrors the paper's 3-layer net);
//  * an ANN *regressor* as the unified single-model memory predictor the
//    mixture-of-experts is compared against in Figure 9.
#pragma once

#include <cstdint>

#include "ml/dataset.h"

namespace smoe::ml {

struct MlpParams {
  std::vector<std::size_t> hidden = {16};  ///< Hidden layer widths.
  std::size_t epochs = 400;
  double lr = 0.05;
  double l2 = 1e-5;
};

/// Core network: tanh hidden activations, linear output layer.
class NeuralNet {
 public:
  NeuralNet(std::size_t n_in, std::vector<std::size_t> hidden, std::size_t n_out,
            std::uint64_t seed);

  Vector forward(std::span<const double> x) const;

  /// One SGD step on 1/2 * ||out - target||^2 with L2 decay; returns loss.
  double train_step(std::span<const double> x, std::span<const double> target, double lr,
                    double l2);

  std::size_t n_in() const { return sizes_.front(); }
  std::size_t n_out() const { return sizes_.back(); }

 private:
  struct Layer {
    Matrix w;  // out x in
    Vector b;
  };
  std::vector<std::size_t> sizes_;
  std::vector<Layer> layers_;

  // Forward pass that keeps per-layer activations for backprop.
  std::vector<Vector> forward_all(std::span<const double> x) const;
};

/// Classifier head: one-hot targets, argmax prediction.
class MlpClassifier final : public Classifier {
 public:
  explicit MlpClassifier(MlpParams params = {}, std::uint64_t seed = 3,
                         std::string display_name = "MLP");

  void fit(const Dataset& ds) override;
  int predict(std::span<const double> features) const override;
  std::string name() const override { return display_name_; }

 private:
  MlpParams params_;
  std::uint64_t seed_;
  std::string display_name_;
  std::unique_ptr<NeuralNet> net_;
};

/// Scalar regressor used as the Figure 9 unified ANN memory model.
class AnnRegressor {
 public:
  explicit AnnRegressor(MlpParams params = {}, std::uint64_t seed = 4);

  /// Fit y ~ f(x) on rows of `x`.
  void fit(const Matrix& x, std::span<const double> y);
  double predict(std::span<const double> features) const;

 private:
  MlpParams params_;
  std::uint64_t seed_;
  std::unique_ptr<NeuralNet> net_;
};

}  // namespace smoe::ml
