// Principal Component Analysis (Section 3.2 "Feature Reduction"): the paper
// projects the 22 scaled raw features onto the top principal components that
// together explain >= 95% of the training-set variance (5 PCs in the paper),
// and reuses the stored transformation at deployment time.
#pragma once

#include "ml/matrix.h"

namespace smoe::ml {

class Pca {
 public:
  /// Fit on a (samples x features) matrix, keeping enough components to
  /// explain `variance_target` of total variance (capped at max_components,
  /// 0 = no cap).
  void fit(const Matrix& x, double variance_target = 0.95, std::size_t max_components = 0);

  /// Project one (already scaled) feature vector onto the retained PCs.
  Vector transform(std::span<const double> features) const;
  Matrix transform(const Matrix& x) const;

  std::size_t n_components() const { return components_.rows() ? components_.cols() : 0; }
  std::size_t n_features() const { return mean_.size(); }

  /// Fraction of total variance explained by each retained component.
  const Vector& explained_variance_ratio() const { return explained_ratio_; }
  /// Loadings: (features x components) matrix of eigenvectors.
  const Matrix& components() const { return components_; }
  /// Column means subtracted before projection.
  const Vector& mean() const { return mean_; }

  /// Rebuild a projection from stored parts (deserialization).
  static Pca from_parts(Vector mean, Matrix components, Vector explained_ratio);

  bool fitted() const { return !mean_.empty(); }

 private:
  Vector mean_;
  Matrix components_;      // features x kept-components
  Vector explained_ratio_; // kept components only
};

}  // namespace smoe::ml
