// Minimal dense linear algebra for the ML substrate: a row-major matrix of
// doubles plus the handful of operations PCA/Varimax/regression need. Not a
// general-purpose BLAS; sized for feature matrices of tens of rows/columns.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace smoe::ml {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer-style data; every row must be equally wide.
  static Matrix from_rows(const std::vector<Vector>& rows);
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Vector operator*(const Vector& v) const;

  /// Column means of the matrix, one per column.
  Vector col_means() const;
  /// Sample covariance matrix of the rows (n-1 normalization).
  Matrix covariance() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean distance between two equal-length vectors.
double euclidean_distance(std::span<const double> a, std::span<const double> b);
/// Dot product of two equal-length vectors.
double dot(std::span<const double> a, std::span<const double> b);
/// L2 norm.
double norm(std::span<const double> a);

}  // namespace smoe::ml
