#include "ml/naive_bayes.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace smoe::ml {

GaussianNaiveBayes::GaussianNaiveBayes(double var_smoothing) : var_smoothing_(var_smoothing) {
  SMOE_REQUIRE(var_smoothing > 0.0, "nb: smoothing must be positive");
}

void GaussianNaiveBayes::fit(const Dataset& ds) {
  ds.validate();
  const int nc = ds.n_classes();
  SMOE_REQUIRE(nc >= 2, "nb: need >= 2 classes");
  const std::size_t nf = ds.n_features();

  priors_.assign(static_cast<std::size_t>(nc), 0.0);
  means_.assign(static_cast<std::size_t>(nc), Vector(nf, 0.0));
  variances_.assign(static_cast<std::size_t>(nc), Vector(nf, 0.0));
  std::vector<std::size_t> counts(static_cast<std::size_t>(nc), 0);

  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto cls = static_cast<std::size_t>(ds.labels[i]);
    ++counts[cls];
    for (std::size_t f = 0; f < nf; ++f) means_[cls][f] += ds.x(i, f);
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(nc); ++c) {
    if (counts[c] == 0) continue;
    for (auto& m : means_[c]) m /= static_cast<double>(counts[c]);
  }
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto cls = static_cast<std::size_t>(ds.labels[i]);
    for (std::size_t f = 0; f < nf; ++f) {
      const double d = ds.x(i, f) - means_[cls][f];
      variances_[cls][f] += d * d;
    }
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(nc); ++c) {
    if (counts[c] == 0) {
      priors_[c] = -std::numeric_limits<double>::infinity();
      continue;
    }
    priors_[c] = std::log(static_cast<double>(counts[c]) / static_cast<double>(ds.size()));
    for (auto& v : variances_[c]) v = v / static_cast<double>(counts[c]) + var_smoothing_;
  }
}

int GaussianNaiveBayes::predict(std::span<const double> features) const {
  SMOE_REQUIRE(!priors_.empty(), "nb: predict before fit");
  SMOE_REQUIRE(features.size() == means_.front().size(), "nb: feature count mismatch");
  int best = 0;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < priors_.size(); ++c) {
    if (!std::isfinite(priors_[c])) continue;
    double ll = priors_[c];
    for (std::size_t f = 0; f < features.size(); ++f) {
      const double d = features[f] - means_[c][f];
      ll += -0.5 * (std::log(2.0 * M_PI * variances_[c][f]) + d * d / variances_[c][f]);
    }
    if (ll > best_ll) {
      best_ll = ll;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace smoe::ml
