#include "ml/scaling.h"

#include <algorithm>

#include "common/error.h"

namespace smoe::ml {

void MinMaxScaler::fit(const Matrix& x) {
  SMOE_REQUIRE(x.rows() >= 1, "scaler: empty training matrix");
  mins_.assign(x.cols(), 0.0);
  maxs_.assign(x.cols(), 0.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double lo = x(0, c), hi = x(0, c);
    for (std::size_t r = 1; r < x.rows(); ++r) {
      lo = std::min(lo, x(r, c));
      hi = std::max(hi, x(r, c));
    }
    mins_[c] = lo;
    maxs_[c] = hi;
  }
}

MinMaxScaler MinMaxScaler::from_parts(Vector mins, Vector maxs) {
  SMOE_REQUIRE(!mins.empty() && mins.size() == maxs.size(), "scaler: bad parts");
  MinMaxScaler s;
  s.mins_ = std::move(mins);
  s.maxs_ = std::move(maxs);
  return s;
}

Vector MinMaxScaler::transform(std::span<const double> raw) const {
  SMOE_REQUIRE(fitted(), "scaler: transform before fit");
  SMOE_REQUIRE(raw.size() == mins_.size(), "scaler: feature count mismatch");
  Vector out(raw.size());
  for (std::size_t c = 0; c < raw.size(); ++c) {
    const double range = maxs_[c] - mins_[c];
    out[c] = range > 0.0 ? std::clamp((raw[c] - mins_[c]) / range, 0.0, 1.0) : 0.0;
  }
  return out;
}

Matrix MinMaxScaler::transform(const Matrix& x) const {
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const Vector row = transform(x.row(r));
    for (std::size_t c = 0; c < x.cols(); ++c) out(r, c) = row[c];
  }
  return out;
}

}  // namespace smoe::ml
