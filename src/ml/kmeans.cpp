#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"

namespace smoe::ml {

namespace {

double sq_distance(std::span<const double> a, std::span<const double> b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return s;
}

// k-means++: pick each next centroid with probability proportional to the
// squared distance from the nearest already-chosen one.
std::vector<std::size_t> seed_centroids(const Matrix& x, std::size_t k, Rng& rng) {
  std::vector<std::size_t> chosen;
  chosen.push_back(static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(x.rows()) - 1)));
  std::vector<double> d2(x.rows(), std::numeric_limits<double>::infinity());
  while (chosen.size() < k) {
    double total = 0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      d2[r] = std::min(d2[r], sq_distance(x.row(r), x.row(chosen.back())));
      total += d2[r];
    }
    if (total <= 0) {
      // All remaining points coincide with a centroid; pick arbitrarily.
      chosen.push_back(chosen.back());
      continue;
    }
    double pick = rng.uniform(0.0, total);
    std::size_t next = x.rows() - 1;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      pick -= d2[r];
      if (pick <= 0) {
        next = r;
        break;
      }
    }
    chosen.push_back(next);
  }
  return chosen;
}

}  // namespace

KMeansResult kmeans(const Matrix& x, std::size_t k, std::uint64_t seed,
                    std::size_t max_iterations) {
  SMOE_REQUIRE(k >= 1, "kmeans: k must be >= 1");
  SMOE_REQUIRE(x.rows() >= k, "kmeans: need at least k rows");

  Rng rng(seed);
  const auto seeds = seed_centroids(x, k, rng);
  KMeansResult out;
  out.centroids = Matrix(k, x.cols());
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t f = 0; f < x.cols(); ++f) out.centroids(c, f) = x(seeds[c], f);

  out.assignment.assign(x.rows(), 0);
  for (out.iterations = 0; out.iterations < max_iterations; ++out.iterations) {
    // Assignment step.
    bool moved = false;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_distance(x.row(r), out.centroids.row(c));
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (out.assignment[r] != best) {
        out.assignment[r] = best;
        moved = true;
      }
    }
    if (!moved && out.iterations > 0) break;

    // Update step; an emptied cluster keeps its previous centroid.
    Matrix sums(k, x.cols());
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      ++counts[out.assignment[r]];
      for (std::size_t f = 0; f < x.cols(); ++f) sums(out.assignment[r], f) += x(r, f);
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t f = 0; f < x.cols(); ++f)
        out.centroids(c, f) = sums(c, f) / static_cast<double>(counts[c]);
    }
  }

  out.inertia = 0;
  for (std::size_t r = 0; r < x.rows(); ++r)
    out.inertia += sq_distance(x.row(r), out.centroids.row(out.assignment[r]));
  return out;
}

}  // namespace smoe::ml
