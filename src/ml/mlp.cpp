#include "ml/mlp.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace smoe::ml {

NeuralNet::NeuralNet(std::size_t n_in, std::vector<std::size_t> hidden, std::size_t n_out,
                     std::uint64_t seed) {
  SMOE_REQUIRE(n_in >= 1 && n_out >= 1, "net: bad dimensions");
  sizes_.push_back(n_in);
  for (const auto h : hidden) {
    SMOE_REQUIRE(h >= 1, "net: empty hidden layer");
    sizes_.push_back(h);
  }
  sizes_.push_back(n_out);

  Rng rng(seed);
  layers_.reserve(sizes_.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    Layer layer;
    layer.w = Matrix(sizes_[l + 1], sizes_[l]);
    layer.b.assign(sizes_[l + 1], 0.0);
    // Xavier-style init keeps tanh activations in their linear regime.
    const double scale = std::sqrt(1.0 / static_cast<double>(sizes_[l]));
    for (std::size_t r = 0; r < layer.w.rows(); ++r)
      for (std::size_t c = 0; c < layer.w.cols(); ++c)
        layer.w(r, c) = rng.uniform(-scale, scale);
    layers_.push_back(std::move(layer));
  }
}

std::vector<Vector> NeuralNet::forward_all(std::span<const double> x) const {
  SMOE_REQUIRE(x.size() == sizes_.front(), "net: input size mismatch");
  std::vector<Vector> acts;
  acts.emplace_back(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Vector z = layers_[l].w * acts.back();
    for (std::size_t i = 0; i < z.size(); ++i) z[i] += layers_[l].b[i];
    if (l + 1 < layers_.size())  // hidden: tanh, output: linear
      for (auto& v : z) v = std::tanh(v);
    acts.push_back(std::move(z));
  }
  return acts;
}

Vector NeuralNet::forward(std::span<const double> x) const { return forward_all(x).back(); }

double NeuralNet::train_step(std::span<const double> x, std::span<const double> target,
                             double lr, double l2) {
  SMOE_REQUIRE(target.size() == sizes_.back(), "net: target size mismatch");
  const std::vector<Vector> acts = forward_all(x);

  // Output delta for squared error with linear output.
  Vector delta(target.size());
  double loss = 0;
  for (std::size_t i = 0; i < target.size(); ++i) {
    delta[i] = acts.back()[i] - target[i];
    loss += 0.5 * delta[i] * delta[i];
  }

  for (std::size_t l = layers_.size(); l-- > 0;) {
    const Vector& input = acts[l];
    Vector next_delta(input.size(), 0.0);
    for (std::size_t r = 0; r < layers_[l].w.rows(); ++r) {
      for (std::size_t c = 0; c < layers_[l].w.cols(); ++c) {
        next_delta[c] += layers_[l].w(r, c) * delta[r];
        layers_[l].w(r, c) -= lr * (delta[r] * input[c] + l2 * layers_[l].w(r, c));
      }
      layers_[l].b[r] -= lr * delta[r];
    }
    if (l > 0) {
      // Through the tanh of the previous hidden layer: act = acts[l].
      for (std::size_t c = 0; c < next_delta.size(); ++c)
        next_delta[c] *= 1.0 - acts[l][c] * acts[l][c];
      delta = std::move(next_delta);
    }
  }
  return loss;
}

MlpClassifier::MlpClassifier(MlpParams params, std::uint64_t seed, std::string display_name)
    : params_(std::move(params)), seed_(seed), display_name_(std::move(display_name)) {}

void MlpClassifier::fit(const Dataset& ds) {
  ds.validate();
  const int nc = ds.n_classes();
  SMOE_REQUIRE(nc >= 2, "mlp: need >= 2 classes");
  net_ = std::make_unique<NeuralNet>(ds.n_features(), params_.hidden,
                                     static_cast<std::size_t>(nc), seed_);
  Rng rng(Rng::derive(seed_, "order"));
  std::vector<std::size_t> order(ds.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  Vector target(static_cast<std::size_t>(nc));
  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const auto i : order) {
      std::fill(target.begin(), target.end(), 0.0);
      target[static_cast<std::size_t>(ds.labels[i])] = 1.0;
      net_->train_step(ds.x.row(i), target, params_.lr, params_.l2);
    }
  }
}

int MlpClassifier::predict(std::span<const double> features) const {
  SMOE_REQUIRE(net_ != nullptr, "mlp: predict before fit");
  const Vector out = net_->forward(features);
  std::size_t best = 0;
  for (std::size_t i = 1; i < out.size(); ++i)
    if (out[i] > out[best]) best = i;
  return static_cast<int>(best);
}

AnnRegressor::AnnRegressor(MlpParams params, std::uint64_t seed)
    : params_(std::move(params)), seed_(seed) {}

void AnnRegressor::fit(const Matrix& x, std::span<const double> y) {
  SMOE_REQUIRE(x.rows() == y.size(), "ann: rows/targets mismatch");
  SMOE_REQUIRE(x.rows() >= 1, "ann: empty training set");
  net_ = std::make_unique<NeuralNet>(x.cols(), params_.hidden, 1, seed_);
  Rng rng(Rng::derive(seed_, "order"));
  std::vector<std::size_t> order(x.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const auto i : order) {
      const double t[1] = {y[i]};
      net_->train_step(x.row(i), t, params_.lr, params_.l2);
    }
  }
}

double AnnRegressor::predict(std::span<const double> features) const {
  SMOE_REQUIRE(net_ != nullptr, "ann: predict before fit");
  return net_->forward(features)[0];
}

}  // namespace smoe::ml
