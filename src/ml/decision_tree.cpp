#include "ml/decision_tree.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace smoe::ml {

namespace {

int majority_label(const Dataset& ds, const std::vector<std::size_t>& idx) {
  std::map<int, std::size_t> counts;
  for (const auto i : idx) ++counts[ds.labels[i]];
  int best = ds.labels[idx.front()];
  std::size_t best_count = 0;
  for (const auto& [label, count] : counts)
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  return best;
}

double gini(const std::map<int, std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (const auto& [label, count] : counts) {
    const double p = static_cast<double>(count) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

bool all_same_label(const Dataset& ds, const std::vector<std::size_t>& idx) {
  for (const auto i : idx)
    if (ds.labels[i] != ds.labels[idx.front()]) return false;
  return true;
}

}  // namespace

DecisionTree::DecisionTree(TreeParams params, std::uint64_t seed) : params_(params), rng_(seed) {
  SMOE_REQUIRE(params.max_depth >= 1, "tree: max_depth >= 1");
  SMOE_REQUIRE(params.min_samples_split >= 2, "tree: min_samples_split >= 2");
}

void DecisionTree::fit(const Dataset& ds) {
  ds.validate();
  nodes_.clear();
  std::vector<std::size_t> idx(ds.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  root_ = build(ds, idx, 0);
}

std::int32_t DecisionTree::build(const Dataset& ds, std::vector<std::size_t>& idx,
                                 std::size_t depth) {
  SMOE_CHECK(!idx.empty(), "tree: empty node");
  const auto make_leaf = [&] {
    Node leaf;
    leaf.label = majority_label(ds, idx);
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= params_.max_depth || idx.size() < params_.min_samples_split ||
      all_same_label(ds, idx))
    return make_leaf();

  // Candidate features: all, or a random subset for forests.
  std::vector<std::size_t> features;
  if (params_.max_features > 0 && params_.max_features < ds.n_features()) {
    features = rng_.sample_without_replacement(ds.n_features(), params_.max_features);
  } else {
    features.resize(ds.n_features());
    for (std::size_t f = 0; f < features.size(); ++f) features[f] = f;
  }

  // Exhaustive best split by Gini gain over midpoints of sorted unique values.
  double best_gini = 2.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  std::vector<std::pair<double, int>> vals(idx.size());

  for (const auto f : features) {
    for (std::size_t i = 0; i < idx.size(); ++i) vals[i] = {ds.x(idx[i], f), ds.labels[idx[i]]};
    std::sort(vals.begin(), vals.end());

    std::map<int, std::size_t> left_counts, right_counts;
    for (const auto& [v, l] : vals) ++right_counts[l];

    for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
      ++left_counts[vals[i].second];
      if (--right_counts[vals[i].second] == 0) right_counts.erase(vals[i].second);
      if (vals[i].first == vals[i + 1].first) continue;
      const std::size_t nl = i + 1, nr = vals.size() - nl;
      const double g = (static_cast<double>(nl) * gini(left_counts, nl) +
                        static_cast<double>(nr) * gini(right_counts, nr)) /
                       static_cast<double>(vals.size());
      if (g < best_gini) {
        best_gini = g;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (vals[i].first + vals[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  std::vector<std::size_t> left_idx, right_idx;
  for (const auto i : idx) {
    if (ds.x(i, static_cast<std::size_t>(best_feature)) <= best_threshold)
      left_idx.push_back(i);
    else
      right_idx.push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return make_leaf();

  const std::int32_t left = build(ds, left_idx, depth + 1);
  const std::int32_t right = build(ds, right_idx, depth + 1);
  Node inner;
  inner.feature = best_feature;
  inner.threshold = best_threshold;
  inner.left = left;
  inner.right = right;
  nodes_.push_back(inner);
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

int DecisionTree::predict(std::span<const double> features) const {
  SMOE_REQUIRE(root_ >= 0, "tree: predict before fit");
  std::int32_t cur = root_;
  while (true) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.feature < 0) return n.label;
    SMOE_REQUIRE(static_cast<std::size_t>(n.feature) < features.size(),
                 "tree: feature count mismatch");
    cur = features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
}

std::size_t DecisionTree::depth_of(std::int32_t node) const {
  if (node < 0) return 0;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.feature < 0) return 1;
  return 1 + std::max(depth_of(n.left), depth_of(n.right));
}

std::size_t DecisionTree::depth() const { return depth_of(root_); }

}  // namespace smoe::ml
