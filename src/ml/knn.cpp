#include "ml/knn.h"

#include <algorithm>

#include "common/error.h"

namespace smoe::ml {

namespace {

/// Per-thread scratch for the distance sweep. The fitted classifier is shared
/// (const) across runner threads by cloned MoE policies, so the reusable
/// buffer cannot live in the classifier itself; one vector per thread keeps
/// the sweep allocation-free in steady state without any locking.
thread_local std::vector<KnnClassifier::Neighbour> t_scratch;

}  // namespace

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  SMOE_REQUIRE(k >= 1, "knn: k must be >= 1");
}

void KnnClassifier::fit(const Dataset& ds) {
  ds.validate();
  train_ = ds;
  fitted_ = true;
}

std::vector<KnnClassifier::Neighbour> KnnClassifier::neighbours(
    std::span<const double> features) const {
  SMOE_REQUIRE(fitted_, "knn: predict before fit");
  std::vector<Neighbour>& all = t_scratch;
  all.clear();
  all.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i)
    all.push_back({i, euclidean_distance(features, train_.x.row(i)), train_.labels[i]});
  const std::size_t k = std::min(k_, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k), all.end(),
                    [](const Neighbour& a, const Neighbour& b) { return a.distance < b.distance; });
  return {all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k)};
}

int KnnClassifier::predict(std::span<const double> features) const {
  const auto nn = neighbours(features);
  SMOE_CHECK(!nn.empty(), "knn: no neighbours");
  // Majority vote; ties broken by the closest member of the tied classes.
  // k is a handful, so the quadratic scan beats any associative container.
  std::size_t best_count = 0;
  for (const auto& n : nn) {
    std::size_t count = 0;
    for (const auto& m : nn) count += static_cast<std::size_t>(m.label == n.label);
    best_count = std::max(best_count, count);
  }
  for (const auto& n : nn) {
    std::size_t count = 0;
    for (const auto& m : nn) count += static_cast<std::size_t>(m.label == n.label);
    if (count == best_count) return n.label;
  }
  return nn.front().label;
}

double KnnClassifier::nearest_distance(std::span<const double> features) const {
  SMOE_REQUIRE(fitted_, "knn: predict before fit");
  SMOE_CHECK(train_.size() > 0, "knn: no neighbours");
  // Confidence signal only needs the minimum — no sort, no allocation.
  double best = euclidean_distance(features, train_.x.row(0));
  for (std::size_t i = 1; i < train_.size(); ++i)
    best = std::min(best, euclidean_distance(features, train_.x.row(i)));
  return best;
}

const Dataset& KnnClassifier::training_data() const {
  SMOE_REQUIRE(fitted_, "knn: no training data before fit");
  return train_;
}

}  // namespace smoe::ml
