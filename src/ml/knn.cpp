#include "ml/knn.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace smoe::ml {

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  SMOE_REQUIRE(k >= 1, "knn: k must be >= 1");
}

void KnnClassifier::fit(const Dataset& ds) {
  ds.validate();
  train_ = ds;
  fitted_ = true;
}

std::vector<KnnClassifier::Neighbour> KnnClassifier::neighbours(
    std::span<const double> features) const {
  SMOE_REQUIRE(fitted_, "knn: predict before fit");
  std::vector<Neighbour> all;
  all.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i)
    all.push_back({i, euclidean_distance(features, train_.x.row(i)), train_.labels[i]});
  const std::size_t k = std::min(k_, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k), all.end(),
                    [](const Neighbour& a, const Neighbour& b) { return a.distance < b.distance; });
  all.resize(k);
  return all;
}

int KnnClassifier::predict(std::span<const double> features) const {
  const auto nn = neighbours(features);
  SMOE_CHECK(!nn.empty(), "knn: no neighbours");
  // Majority vote; ties broken by the closest member of the tied classes.
  std::map<int, std::size_t> votes;
  for (const auto& n : nn) ++votes[n.label];
  std::size_t best_count = 0;
  for (const auto& [label, count] : votes) best_count = std::max(best_count, count);
  for (const auto& n : nn)
    if (votes[n.label] == best_count) return n.label;
  return nn.front().label;
}

double KnnClassifier::nearest_distance(std::span<const double> features) const {
  return neighbours(features).front().distance;
}

const Dataset& KnnClassifier::training_data() const {
  SMOE_REQUIRE(fitted_, "knn: no training data before fit");
  return train_;
}

}  // namespace smoe::ml
