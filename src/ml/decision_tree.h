// CART-style decision tree with Gini impurity — a Table 5 comparator and the
// base learner for the random forest.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "ml/dataset.h"

namespace smoe::ml {

struct TreeParams {
  std::size_t max_depth = 16;
  std::size_t min_samples_split = 2;
  /// When set, each split considers only this many randomly chosen features
  /// (used by the random forest); 0 means consider all features.
  std::size_t max_features = 0;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(TreeParams params = {}, std::uint64_t seed = 0);

  void fit(const Dataset& ds) override;
  int predict(std::span<const double> features) const override;
  std::string name() const override { return "Decision Tree"; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

 private:
  struct Node {
    // Leaf iff feature < 0.
    int feature = -1;
    double threshold = 0.0;
    int label = 0;
    std::int32_t left = -1, right = -1;
  };

  std::int32_t build(const Dataset& ds, std::vector<std::size_t>& idx, std::size_t depth);
  std::size_t depth_of(std::int32_t node) const;

  TreeParams params_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace smoe::ml
