#include "ml/random_forest.h"

#include <cmath>
#include <map>

#include "common/error.h"

namespace smoe::ml {

RandomForest::RandomForest(ForestParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {
  SMOE_REQUIRE(params.n_trees >= 1, "forest: need >= 1 tree");
}

void RandomForest::fit(const Dataset& ds) {
  ds.validate();
  trees_.clear();
  trees_.reserve(params_.n_trees);

  TreeParams tp = params_.tree;
  if (tp.max_features == 0) {
    // sqrt(d) features per split, the usual forest default.
    tp.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(ds.n_features()))));
  }

  Rng rng(seed_);
  for (std::size_t t = 0; t < params_.n_trees; ++t) {
    // Bootstrap sample of the training set.
    std::vector<std::size_t> boot(ds.size());
    for (auto& b : boot)
      b = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(ds.size()) - 1));
    const Dataset bag = ds.subset(boot);
    auto tree = std::make_unique<DecisionTree>(tp, Rng::derive(seed_, "tree" + std::to_string(t)));
    tree->fit(bag);
    trees_.push_back(std::move(tree));
  }
}

int RandomForest::predict(std::span<const double> features) const {
  SMOE_REQUIRE(!trees_.empty(), "forest: predict before fit");
  std::map<int, std::size_t> votes;
  for (const auto& tree : trees_) ++votes[tree->predict(features)];
  int best = 0;
  std::size_t best_count = 0;
  for (const auto& [label, count] : votes)
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  return best;
}

}  // namespace smoe::ml
