#include "ml/dataset.h"

#include <algorithm>

#include "common/error.h"

namespace smoe::ml {

int Dataset::n_classes() const {
  int maxl = -1;
  for (const int l : labels) maxl = std::max(maxl, l);
  return maxl + 1;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  SMOE_REQUIRE(!indices.empty(), "subset: empty index list");
  Dataset out;
  out.x = Matrix(indices.size(), x.cols());
  out.labels.reserve(indices.size());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    SMOE_REQUIRE(indices[r] < size(), "subset: index out of range");
    for (std::size_t c = 0; c < x.cols(); ++c) out.x(r, c) = x(indices[r], c);
    out.labels.push_back(labels[indices[r]]);
  }
  return out;
}

Dataset Dataset::without(std::size_t holdout) const {
  SMOE_REQUIRE(holdout < size(), "without: index out of range");
  SMOE_REQUIRE(size() >= 2, "without: dataset too small");
  std::vector<std::size_t> keep;
  keep.reserve(size() - 1);
  for (std::size_t i = 0; i < size(); ++i)
    if (i != holdout) keep.push_back(i);
  return subset(keep);
}

void Dataset::validate() const {
  SMOE_REQUIRE(x.rows() == labels.size(), "dataset: rows/labels mismatch");
  SMOE_REQUIRE(!labels.empty(), "dataset: empty");
  for (const int l : labels) SMOE_REQUIRE(l >= 0, "dataset: negative label");
}

double loocv_accuracy(const Dataset& ds, const ClassifierFactory& make) {
  ds.validate();
  SMOE_REQUIRE(ds.size() >= 2, "loocv: need >= 2 samples");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Dataset train = ds.without(i);
    auto clf = make();
    clf->fit(train);
    if (clf->predict(ds.x.row(i)) == ds.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

}  // namespace smoe::ml
