#include "ml/regression.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/stats.h"

namespace smoe::ml {

namespace {

void check_fit_inputs(std::span<const double> xs, std::span<const double> ys) {
  SMOE_REQUIRE(xs.size() == ys.size(), "fit: xs/ys size mismatch");
  SMOE_REQUIRE(xs.size() >= 2, "fit: need >= 2 points");
  bool distinct = false;
  for (const double x : xs) {
    SMOE_REQUIRE(x > 0.0, "fit: xs must be positive");
    if (x != xs.front()) distinct = true;
  }
  SMOE_REQUIRE(distinct, "fit: xs must contain >= 2 distinct values");
}

double sse_for(CurveKind kind, CurveParams p, std::span<const double> xs,
               std::span<const double> ys) {
  double s = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d = curve_eval(kind, p, xs[i]) - ys[i];
    s += d * d;
  }
  return s;
}

CurveFit finalize(CurveKind kind, CurveParams p, std::span<const double> xs,
                  std::span<const double> ys) {
  CurveFit fit;
  fit.kind = kind;
  fit.params = p;
  std::vector<double> pred(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) pred[i] = curve_eval(kind, p, xs[i]);
  fit.r2 = smoe::r_squared(ys, pred);
  fit.rmse = std::sqrt(sse_for(kind, p, xs, ys) / static_cast<double>(xs.size()));
  return fit;
}

// For a fixed exponential rate b, the amplitude m that minimizes SSE has a
// closed form: m = sum(y*g) / sum(g^2), g = 1 - e^(-b*x).
double best_exp_amplitude(double b, std::span<const double> xs, std::span<const double> ys) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double g = 1.0 - std::exp(-b * xs[i]);
    num += ys[i] * g;
    den += g * g;
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace

std::string to_string(CurveKind kind) {
  switch (kind) {
    case CurveKind::kPowerLaw: return "PowerLaw";
    case CurveKind::kExponential: return "Exponential";
    case CurveKind::kNapierianLog: return "NapierianLog";
  }
  return "?";
}

LinearFit ols(std::span<const double> xs, std::span<const double> ys) {
  SMOE_REQUIRE(xs.size() == ys.size(), "ols: size mismatch");
  SMOE_REQUIRE(xs.size() >= 2, "ols: need >= 2 points");
  const double mx = smoe::mean(xs), my = smoe::mean(ys);
  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  SMOE_REQUIRE(sxx > 0.0, "ols: xs are all equal");
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  return f;
}

CurveFit fit_curve(CurveKind kind, std::span<const double> xs, std::span<const double> ys) {
  check_fit_inputs(xs, ys);
  switch (kind) {
    case CurveKind::kPowerLaw: {
      // Log-log least squares gives the initial exponent; a golden-section
      // refinement then minimizes the *linear-space* SSE (with the closed
      // form m = sum(y*x^b)/sum(x^2b) for a fixed b), so the fit competes
      // fairly with the other families' linear-space fits.
      std::vector<double> lx, ly;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (ys[i] <= 0.0) continue;
        lx.push_back(std::log(xs[i]));
        ly.push_back(std::log(ys[i]));
      }
      SMOE_REQUIRE(lx.size() >= 2, "power fit: need >= 2 positive ys");
      const LinearFit lf = ols(lx, ly);
      // One pow per point per candidate exponent: the basis values x^b feed
      // both the closed-form amplitude and the SSE, so cache them instead of
      // recomputing through curve_eval (bit-identical — m * x^b is the same
      // product either way).
      std::vector<double> g(xs.size());
      auto best_m = [&](double b) {
        double num = 0, den = 0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
          g[i] = std::pow(xs[i], b);
          num += ys[i] * g[i];
          den += g[i] * g[i];
        }
        return den > 0.0 ? num / den : 0.0;
      };
      auto sse_at = [&](double b) {
        const double m = best_m(b);
        double s = 0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
          const double d = m * g[i] - ys[i];
          s += d * d;
        }
        return s;
      };
      double lo = lf.slope - 0.25, hi = lf.slope + 0.25;
      constexpr double kPhi = 0.6180339887498949;
      for (int it = 0; it < 60; ++it) {
        const double x1 = hi - kPhi * (hi - lo);
        const double x2 = lo + kPhi * (hi - lo);
        const double f1 = sse_at(x1);
        const double f2 = sse_at(x2);
        if (f1 < f2)
          hi = x2;
        else
          lo = x1;
      }
      const double b = 0.5 * (lo + hi);
      return finalize(kind, {best_m(b), b}, xs, ys);
    }
    case CurveKind::kNapierianLog: {
      std::vector<double> lx(xs.size());
      for (std::size_t i = 0; i < xs.size(); ++i) lx[i] = std::log(xs[i]);
      const LinearFit lf = ols(lx, ys);
      return finalize(kind, {lf.intercept, lf.slope}, xs, ys);
    }
    case CurveKind::kExponential: {
      // 1-D search over the rate b (log-spaced coarse grid, then golden
      // section refinement); amplitude m is closed-form given b.
      const double xmax = *std::max_element(xs.begin(), xs.end());
      const double xmin = *std::min_element(xs.begin(), xs.end());
      const double blo = 1e-4 / xmax, bhi = 50.0 / std::max(xmin, 1e-12);
      // As in the power-law branch, cache g = 1 - e^(-b*x) per point so each
      // candidate rate pays one exp per point instead of two (amplitude and
      // SSE share the basis; the products are bit-identical).
      std::vector<double> g(xs.size());
      auto sse_at = [&](double b) {
        double num = 0, den = 0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
          g[i] = 1.0 - std::exp(-b * xs[i]);
          num += ys[i] * g[i];
          den += g[i] * g[i];
        }
        const double m = den > 0.0 ? num / den : 0.0;
        double s = 0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
          const double d = m * g[i] - ys[i];
          s += d * d;
        }
        return s;
      };
      double best_b = blo, best_sse = std::numeric_limits<double>::infinity();
      constexpr int kGrid = 200;
      for (int i = 0; i <= kGrid; ++i) {
        const double b = blo * std::pow(bhi / blo, static_cast<double>(i) / kGrid);
        const double sse = sse_at(b);
        if (sse < best_sse) {
          best_sse = sse;
          best_b = b;
        }
      }
      // Golden-section refinement around the best grid cell (in log space).
      double lo = best_b / std::pow(bhi / blo, 1.0 / kGrid);
      double hi = best_b * std::pow(bhi / blo, 1.0 / kGrid);
      constexpr double kPhi = 0.6180339887498949;
      for (int it = 0; it < 80; ++it) {
        const double la = std::log(lo), lb = std::log(hi);
        const double x1 = std::exp(lb - kPhi * (lb - la));
        const double x2 = std::exp(la + kPhi * (lb - la));
        const double f1 = sse_at(x1);
        const double f2 = sse_at(x2);
        if (f1 < f2)
          hi = x2;
        else
          lo = x1;
      }
      const double b = std::sqrt(lo * hi);
      return finalize(kind, {best_exp_amplitude(b, xs, ys), b}, xs, ys);
    }
  }
  SMOE_CHECK(false, "unreachable curve kind");
  return {};
}

CurveFit best_fit(std::span<const double> xs, std::span<const double> ys) {
  CurveFit best;
  bool first = true;
  for (const CurveKind kind :
       {CurveKind::kPowerLaw, CurveKind::kExponential, CurveKind::kNapierianLog}) {
    const CurveFit fit = fit_curve(kind, xs, ys);
    if (first || fit.r2 > best.r2) {
      best = fit;
      first = false;
    }
  }
  return best;
}

CurveParams calibrate_two_point(CurveKind kind, double x1, double y1, double x2, double y2) {
  SMOE_REQUIRE(x1 > 0.0 && x2 > x1, "calibrate: need 0 < x1 < x2");
  SMOE_REQUIRE(y1 > 0.0 && y2 > 0.0, "calibrate: footprints must be positive");
  switch (kind) {
    case CurveKind::kPowerLaw: {
      const double b = std::log(y2 / y1) / std::log(x2 / x1);
      const double m = y1 / std::pow(x1, b);
      return {m, b};
    }
    case CurveKind::kNapierianLog: {
      const double b = (y2 - y1) / std::log(x2 / x1);
      const double m = y1 - b * std::log(x1);
      return {m, b};
    }
    case CurveKind::kExponential: {
      // Solve r(b) = (1 - e^(-b*x2)) / (1 - e^(-b*x1)) = y2/y1 by bisection.
      // r decreases monotonically from x2/x1 (b -> 0) to 1 (b -> inf), so a
      // solution exists iff 1 < y2/y1 < x2/x1; otherwise clamp to the nearest
      // meaningful regime (near-linear or fully saturated).
      const double target = y2 / y1;
      const double ratio_lo_b = x2 / x1;
      auto ratio = [&](double b) {
        return (1.0 - std::exp(-b * x2)) / (1.0 - std::exp(-b * x1));
      };
      double b;
      if (target >= ratio_lo_b) {
        b = 1e-9 / x2;  // effectively linear regime
      } else if (target <= 1.0) {
        b = 50.0 / x1;  // fully saturated at both probes
      } else {
        double lo = 1e-9 / x2, hi = 50.0 / x1;
        for (int it = 0; it < 200; ++it) {
          const double mid = std::sqrt(lo * hi);
          if (ratio(mid) > target)
            lo = mid;
          else
            hi = mid;
        }
        b = std::sqrt(lo * hi);
      }
      const double m = y1 / (1.0 - std::exp(-b * x1));
      return {m, b};
    }
  }
  SMOE_CHECK(false, "unreachable curve kind");
  return {};
}

}  // namespace smoe::ml
