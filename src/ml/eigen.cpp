#include "ml/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace smoe::ml {

EigenDecomposition eigen_symmetric(const Matrix& m, double tol, int max_sweeps) {
  SMOE_REQUIRE(m.rows() == m.cols(), "eigen: matrix must be square");
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      SMOE_REQUIRE(std::abs(m(i, j) - m(j, i)) < 1e-8 * (1.0 + std::abs(m(i, j))),
                   "eigen: matrix must be symmetric");

  Matrix a = m;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of squares of off-diagonal elements; stop when negligible.
    double off = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (off < tol) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = std::copysign(1.0, theta) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort by eigenvalue, descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) > a(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    out.values[c] = a(order[c], order[c]);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, c) = v(r, order[c]);
  }
  return out;
}

}  // namespace smoe::ml
