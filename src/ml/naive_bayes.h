// Gaussian Naive Bayes classifier — one of the alternatives the paper
// compares the KNN expert selector against (Table 5).
#pragma once

#include "ml/dataset.h"

namespace smoe::ml {

class GaussianNaiveBayes final : public Classifier {
 public:
  /// `var_smoothing` is added to every per-class variance to keep the
  /// likelihood well-defined for (near-)constant features.
  explicit GaussianNaiveBayes(double var_smoothing = 1e-6);

  void fit(const Dataset& ds) override;
  int predict(std::span<const double> features) const override;
  std::string name() const override { return "Naive Bayes"; }

 private:
  double var_smoothing_;
  std::vector<double> priors_;        // log prior per class
  std::vector<Vector> means_;         // per class
  std::vector<Vector> variances_;     // per class
};

}  // namespace smoe::ml
