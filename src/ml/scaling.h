// Min-max feature scaling (Section 3.2 "Feature Scaling"): each feature is
// mapped to [0, 1] using the extrema observed on the training set; the same
// extrema are reapplied to features of new applications at deployment time.
#pragma once

#include "ml/matrix.h"

namespace smoe::ml {

class MinMaxScaler {
 public:
  /// Learn per-column minima/maxima from the training matrix.
  void fit(const Matrix& x);

  /// Scale one feature vector using the learned extrema; constant columns map
  /// to 0. Values outside the training range are clamped to [0, 1] — at
  /// deployment a new application may exceed what training saw.
  Vector transform(std::span<const double> raw) const;
  Matrix transform(const Matrix& x) const;

  /// Rebuild a scaler from stored extrema (deserialization).
  static MinMaxScaler from_parts(Vector mins, Vector maxs);

  bool fitted() const { return !mins_.empty(); }
  const Vector& mins() const { return mins_; }
  const Vector& maxs() const { return maxs_; }

 private:
  Vector mins_, maxs_;
};

}  // namespace smoe::ml
