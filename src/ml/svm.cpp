#include "ml/svm.h"

#include <limits>

#include "common/error.h"
#include "common/rng.h"

namespace smoe::ml {

LinearSvm::LinearSvm(SvmParams params, std::uint64_t seed) : params_(params), seed_(seed) {
  SMOE_REQUIRE(params.lambda > 0.0, "svm: lambda must be positive");
  SMOE_REQUIRE(params.epochs >= 1, "svm: epochs >= 1");
}

void LinearSvm::fit(const Dataset& ds) {
  ds.validate();
  const int nc = ds.n_classes();
  SMOE_REQUIRE(nc >= 2, "svm: need >= 2 classes");
  const std::size_t nf = ds.n_features();

  weights_.assign(static_cast<std::size_t>(nc), Vector(nf, 0.0));
  biases_.assign(static_cast<std::size_t>(nc), 0.0);

  Rng rng(seed_);
  std::vector<std::size_t> order(ds.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Pegasos-style SGD, one binary head per class.
  for (std::size_t c = 0; c < static_cast<std::size_t>(nc); ++c) {
    Vector& w = weights_[c];
    double& b = biases_[c];
    std::size_t t = 1;
    for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
      rng.shuffle(order);
      for (const auto i : order) {
        const double y = ds.labels[i] == static_cast<int>(c) ? 1.0 : -1.0;
        const double eta = params_.lr0 / (1.0 + params_.lambda * static_cast<double>(t));
        const double margin = y * (dot(w, ds.x.row(i)) + b);
        for (std::size_t f = 0; f < nf; ++f) w[f] *= (1.0 - eta * params_.lambda);
        if (margin < 1.0) {
          for (std::size_t f = 0; f < nf; ++f) w[f] += eta * y * ds.x(i, f);
          b += eta * y;
        }
        ++t;
      }
    }
  }
}

double LinearSvm::decision_value(int cls, std::span<const double> features) const {
  SMOE_REQUIRE(!weights_.empty(), "svm: predict before fit");
  SMOE_REQUIRE(cls >= 0 && static_cast<std::size_t>(cls) < weights_.size(), "svm: bad class");
  return dot(weights_[static_cast<std::size_t>(cls)], features) +
         biases_[static_cast<std::size_t>(cls)];
}

int LinearSvm::predict(std::span<const double> features) const {
  SMOE_REQUIRE(!weights_.empty(), "svm: predict before fit");
  int best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    const double s = decision_value(static_cast<int>(c), features);
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace smoe::ml
