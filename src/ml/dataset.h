// Labeled datasets and cross-validation helpers for the expert selector.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.h"

namespace smoe::ml {

/// A classification dataset: one row of `x` per sample, integer class labels
/// in [0, n_classes).
struct Dataset {
  Matrix x;
  std::vector<int> labels;

  std::size_t size() const { return labels.size(); }
  std::size_t n_features() const { return x.cols(); }
  int n_classes() const;

  /// Subset by sample indices (used by cross-validation and bagging).
  Dataset subset(std::span<const std::size_t> indices) const;
  /// All samples except the one at `holdout` (leave-one-out split).
  Dataset without(std::size_t holdout) const;

  void validate() const;  ///< Throws if rows/labels disagree or labels < 0.
};

/// Interface implemented by every classifier in the substrate.
class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual void fit(const Dataset& ds) = 0;
  virtual int predict(std::span<const double> features) const = 0;
  virtual std::string name() const = 0;
};

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// Leave-one-out cross-validation accuracy: for each sample, train a fresh
/// classifier on the rest and test on the held-out sample. This mirrors the
/// paper's evaluation methodology (Section 5.2).
double loocv_accuracy(const Dataset& ds, const ClassifierFactory& make);

}  // namespace smoe::ml
