// Varimax rotation (Section 3.2 "Feature Analysis"): rotates the PCA loading
// matrix to maximize the variance of squared loadings, which concentrates
// each raw feature's contribution onto few components and lets us rank raw
// features by importance (the paper's Figure 4b / Table 2 ordering).
#pragma once

#include "ml/matrix.h"

namespace smoe::ml {

/// Rotate a (features x components) loading matrix with the Varimax
/// criterion. Returns the rotated loadings.
Matrix varimax_rotate(const Matrix& loadings, int max_iter = 100, double tol = 1e-8);

/// Per-feature importance: for each raw feature, the sum of squared rotated
/// loadings weighted by each component's explained-variance share. Result is
/// normalized to sum to 1 (so entries read as "% contribution to variance").
Vector feature_contributions(const Matrix& rotated_loadings,
                             const Vector& explained_variance_ratio);

}  // namespace smoe::ml
