#include "ml/pca.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "ml/eigen.h"

namespace smoe::ml {

void Pca::fit(const Matrix& x, double variance_target, std::size_t max_components) {
  SMOE_REQUIRE(x.rows() >= 2, "pca: need >= 2 samples");
  SMOE_REQUIRE(variance_target > 0.0 && variance_target <= 1.0, "pca: variance target");

  mean_ = x.col_means();
  const EigenDecomposition eig = eigen_symmetric(x.covariance());

  double total = 0;
  for (const double v : eig.values) total += std::max(v, 0.0);
  SMOE_REQUIRE(total > 0.0, "pca: zero total variance");

  std::size_t keep = 0;
  double acc = 0;
  for (std::size_t i = 0; i < eig.values.size(); ++i) {
    acc += std::max(eig.values[i], 0.0) / total;
    ++keep;
    if (acc >= variance_target) break;
  }
  if (max_components > 0) keep = std::min(keep, max_components);
  keep = std::max<std::size_t>(keep, 1);

  components_ = Matrix(x.cols(), keep);
  explained_ratio_.assign(keep, 0.0);
  for (std::size_t c = 0; c < keep; ++c) {
    explained_ratio_[c] = std::max(eig.values[c], 0.0) / total;
    for (std::size_t r = 0; r < x.cols(); ++r) components_(r, c) = eig.vectors(r, c);
  }
}

Pca Pca::from_parts(Vector mean, Matrix components, Vector explained_ratio) {
  SMOE_REQUIRE(!mean.empty(), "pca: empty mean");
  SMOE_REQUIRE(components.rows() == mean.size(), "pca: components/mean mismatch");
  SMOE_REQUIRE(components.cols() == explained_ratio.size(), "pca: components/ratio mismatch");
  Pca p;
  p.mean_ = std::move(mean);
  p.components_ = std::move(components);
  p.explained_ratio_ = std::move(explained_ratio);
  return p;
}

Vector Pca::transform(std::span<const double> features) const {
  SMOE_REQUIRE(fitted(), "pca: transform before fit");
  SMOE_REQUIRE(features.size() == mean_.size(), "pca: feature count mismatch");
  Vector centered(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) centered[i] = features[i] - mean_[i];
  Vector out(n_components(), 0.0);
  for (std::size_t c = 0; c < n_components(); ++c) {
    double s = 0;
    for (std::size_t r = 0; r < centered.size(); ++r) s += centered[r] * components_(r, c);
    out[c] = s;
  }
  return out;
}

Matrix Pca::transform(const Matrix& x) const {
  Matrix out(x.rows(), n_components());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const Vector t = transform(x.row(r));
    for (std::size_t c = 0; c < t.size(); ++c) out(r, c) = t[c];
  }
  return out;
}

}  // namespace smoe::ml
