// Random forest (bagged CART trees with random feature subsets) — a Table 5
// comparator for the expert selector.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "ml/decision_tree.h"

namespace smoe::ml {

struct ForestParams {
  std::size_t n_trees = 50;
  TreeParams tree;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(ForestParams params = {}, std::uint64_t seed = 1);

  void fit(const Dataset& ds) override;
  int predict(std::span<const double> features) const override;
  std::string name() const override { return "Random Forests"; }

 private:
  ForestParams params_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace smoe::ml
