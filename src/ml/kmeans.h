// Lloyd's k-means with k-means++ seeding. Used by the Figure 16 analysis to
// *discover* the program clusters instead of assuming them, and generally
// useful for workload characterization.
#pragma once

#include <cstdint>

#include "ml/matrix.h"

namespace smoe::ml {

struct KMeansResult {
  Matrix centroids;                    ///< k x features
  std::vector<std::size_t> assignment; ///< cluster index per input row
  double inertia = 0.0;                ///< sum of squared distances to centroids
  std::size_t iterations = 0;
};

/// Cluster the rows of `x` into `k` groups. Deterministic given `seed`.
KMeansResult kmeans(const Matrix& x, std::size_t k, std::uint64_t seed,
                    std::size_t max_iterations = 100);

}  // namespace smoe::ml
