// The synthetic runtime-feature model standing in for vmstat / perf / PAPI.
//
// The paper characterizes an application by 22 raw features captured while
// the program processes a ~100 MB slice of its input (Table 2). We reproduce
// the *statistical structure* of those measurements with a generative model:
//
//   raw[f] = base[f] + scale[f] * ( M[f] . z  +  eps_f )
//
// where z is a 5-dimensional latent "program characteristics" vector whose
// first two coordinates carry the memory-function cluster structure of
// Fig. 16 (set per benchmark in suites.cpp), the remaining three are smaller
// per-benchmark traits, eps is per-run measurement noise, and the mixing
// matrix M gives features their Table 2 importance ordering: top-ranked
// features (L1_TCM, L1_DCM, vcache, ...) align with the high-variance latent
// dimensions, low-ranked ones (US, SY) mostly with the small ones.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "ml/matrix.h"
#include "workloads/benchmark.h"

namespace smoe::wl {

inline constexpr std::size_t kNumRawFeatures = 22;
inline constexpr std::size_t kNumLatents = 5;

struct RawFeatureInfo {
  const char* abbr;
  const char* desc;
};

/// The 22 raw features in the paper's importance order (Table 2).
std::span<const RawFeatureInfo, kNumRawFeatures> raw_feature_table();

class FeatureModel {
 public:
  explicit FeatureModel(std::uint64_t seed = 0x5eed);

  /// One profiling run's raw feature vector for a benchmark. `run_rng` drives
  /// the per-run measurement noise; the benchmark's identity contributes a
  /// deterministic latent position, so repeated runs of the same program
  /// cluster tightly (the paper's Pearson > 0.9999 within clusters).
  /// `noise_scale` multiplies the per-run noise — short or unusually-sized
  /// characterization runs measure the counters less cleanly.
  ml::Vector sample(const BenchmarkSpec& bench, Rng& run_rng, double noise_scale = 1.0) const;

  /// The noise-free latent position of a benchmark (used by analysis benches).
  std::array<double, kNumLatents> latent(const BenchmarkSpec& bench) const;

  /// Per-run measurement noise scale (std-dev in latent units).
  double run_noise() const { return run_noise_; }

 private:
  /// Traits for an arbitrary spec, bypassing the registry cache.
  std::array<double, kNumLatents> compute_latent(const BenchmarkSpec& bench) const;

  std::uint64_t seed_;
  double run_noise_ = 0.012;
  // Traits precomputed for every registered benchmark at construction: they
  // are a pure function of (seed, name), and deriving the trait stream per
  // call shows up in large-sweep profiles. Read-only after the constructor,
  // so the model stays shareable across threads; unregistered specs fall
  // back to computing on the fly.
  std::unordered_map<std::string, std::array<double, kNumLatents>> trait_cache_;
  // M[f][d]: feature-by-latent mixing weights; base/scale map latent space to
  // plausible counter magnitudes.
  std::array<std::array<double, kNumLatents>, kNumRawFeatures> mix_{};
  std::array<double, kNumRawFeatures> base_{};
  std::array<double, kNumRawFeatures> scale_{};
};

}  // namespace smoe::wl
