#include "workloads/suites.h"

#include <cmath>
#include <map>

#include "common/error.h"

namespace smoe::wl {

namespace {

using ml::CurveKind;
using ml::CurveParams;

// The paper expresses memory functions over input size in GB (Fig. 3); our
// canonical x-axis is RDD items (1 item ~ 1 MiB, so x_items = 1024 * x_gb).
// These helpers convert GB-space (m, b) into item-space parameters.

// y = m * (1 - e^(-b_gb * x_gb))  ->  b_items = b_gb / 1024.
CurveParams exp_gb(double m, double b_gb) { return {m, b_gb / 1024.0}; }

// y = m + b * ln(x_gb)  ->  m_items = m - b * ln(1024).
CurveParams log_gb(double m, double b) { return {m - b * std::log(1024.0), b}; }

// y = m * x_gb^b  ->  m_items = m / 1024^b.
CurveParams pow_gb(double m, double b) { return {m / std::pow(1024.0, b), b}; }

struct Maker {
  std::vector<BenchmarkSpec> specs;
  // Per-family jitter counters give deterministic, distinct latent positions.
  int n_pow = 0, n_exp = 0, n_log = 0;

  void add(std::string name, Suite suite, CurveKind kind, CurveParams params, double cpu,
           double rate, double sensitivity) {
    BenchmarkSpec s;
    s.name = std::move(name);
    s.suite = suite;
    s.true_kind = kind;
    s.true_params = params;
    s.cpu_load_iso = std::max(0.05, cpu - 0.04);
    s.items_per_second = rate;
    s.interference_sensitivity = sensitivity;
    // Cluster centers in the latent program-characteristics plane (Fig. 16);
    // members spiral deterministically around their family's center.
    double cx = 0, cy = 0;
    int k = 0;
    switch (kind) {
      case CurveKind::kPowerLaw: cx = 1.60; cy = 0.80; k = n_pow++; break;
      case CurveKind::kExponential: cx = 0.25; cy = 0.30; k = n_exp++; break;
      case CurveKind::kNapierianLog: cx = 0.00; cy = 1.35; k = n_log++; break;
    }
    const double angle = 2.399963 * k;  // golden angle: even angular coverage
    const double radius = 0.04 + 0.055 * std::sqrt(static_cast<double>(k));
    s.latent1 = cx + radius * std::cos(angle);
    s.latent2 = cy + radius * std::sin(angle);
    specs.push_back(std::move(s));
  }
};

std::vector<BenchmarkSpec> make_all() {
  Maker mk;
  const auto HB = Suite::kHiBench;
  const auto BDB = Suite::kBigDataBench;
  const auto SP = Suite::kSparkPerf;
  const auto SB = Suite::kSparkBench;
  const auto EXP = CurveKind::kExponential;
  const auto LOG = CurveKind::kNapierianLog;
  const auto POW = CurveKind::kPowerLaw;

  // ---- HiBench (9) ---------------------------------------------------
  // HB.Sort uses the exact fit the paper reports in Section 3.1.
  mk.add("HB.Sort", HB, EXP, exp_gb(5.768, 4.479), 0.12, 120, 0.10);
  mk.add("HB.WordCount", HB, EXP, exp_gb(3.9, 3.1), 0.28, 110, 0.18);
  mk.add("HB.TeraSort", HB, EXP, exp_gb(6.4, 2.8), 0.22, 95, 0.16);
  mk.add("HB.Scan", HB, EXP, exp_gb(2.7, 5.2), 0.08, 140, 0.08);
  mk.add("HB.Aggregation", HB, EXP, exp_gb(4.6, 3.6), 0.47, 70, 0.42);
  mk.add("HB.Join", HB, EXP, exp_gb(5.1, 2.4), 0.33, 85, 0.26);
  // HB.PageRank uses the exact fit the paper reports in Section 3.1.
  mk.add("HB.PageRank", HB, LOG, log_gb(16.333, 1.79), 0.38, 55, 0.30);
  mk.add("HB.Kmeans", HB, POW, pow_gb(0.84, 0.88), 0.42, 60, 0.33);
  mk.add("HB.Bayes", HB, LOG, log_gb(18.0, 1.55), 0.36, 65, 0.28);

  // ---- BigDataBench (7) ----------------------------------------------
  mk.add("BDB.Sort", BDB, POW, pow_gb(0.80, 0.88), 0.14, 115, 0.12);
  mk.add("BDB.WordCount", BDB, EXP, exp_gb(4.3, 3.3), 0.26, 105, 0.20);
  mk.add("BDB.Grep", BDB, EXP, exp_gb(3.2, 4.8), 0.10, 135, 0.09);
  mk.add("BDB.PageRank", BDB, LOG, log_gb(24.6, 2.35), 0.40, 50, 0.34);
  mk.add("BDB.Kmeans", BDB, POW, pow_gb(0.90, 0.87), 0.44, 58, 0.35);
  mk.add("BDB.Con.Com", BDB, POW, pow_gb(0.73, 0.86), 0.34, 62, 0.27);
  mk.add("BDB.NaiveBayes", BDB, LOG, log_gb(17.4, 1.5), 0.31, 68, 0.24);

  // ---- Spark-Perf (17) -----------------------------------------------
  mk.add("SP.Kmeans", SP, POW, pow_gb(0.87, 0.88), 0.43, 59, 0.34);
  mk.add("SP.glm-classification", SP, POW, pow_gb(0.80, 0.92), 0.37, 72, 0.29);
  mk.add("SP.glm-regression", SP, POW, pow_gb(0.87, 0.90), 0.35, 74, 0.28);
  mk.add("SP.Pca", SP, POW, pow_gb(1.16, 0.88), 0.39, 66, 0.31);
  mk.add("SP.NaiveBayes", SP, LOG, log_gb(17.9, 1.6), 0.30, 70, 0.23);
  mk.add("SP.DecisionTree", SP, LOG, log_gb(18.6, 1.75), 0.41, 63, 0.32);
  mk.add("SP.Spearman", SP, POW, pow_gb(1.38, 0.85), 0.25, 88, 0.19);
  mk.add("SP.Pearson", SP, POW, pow_gb(1.09, 0.87), 0.23, 92, 0.17);
  mk.add("SP.Chi-sq", SP, POW, pow_gb(0.94, 0.86), 0.20, 98, 0.15);
  mk.add("SP.Gmm", SP, LOG, log_gb(22.1, 2.2), 0.46, 54, 0.37);
  mk.add("SP.Sum.Statis", SP, POW, pow_gb(0.65, 0.90), 0.16, 118, 0.11);
  mk.add("SP.B.MatrixMult", SP, POW, pow_gb(1.45, 0.94), 0.56, 48, 0.45);
  mk.add("SP.CoreRDD", SP, POW, pow_gb(0.58, 0.95), 0.18, 125, 0.13);
  mk.add("SP.ALS", SP, LOG, log_gb(21.6, 2.15), 0.45, 56, 0.36);
  mk.add("SP.FPGrowth", SP, EXP, exp_gb(5.9, 2.2), 0.29, 78, 0.22);
  mk.add("SP.Word2Vec", SP, EXP, exp_gb(4.8, 2.6), 0.32, 76, 0.25);
  mk.add("SP.LDA", SP, LOG, log_gb(19.2, 1.85), 0.39, 61, 0.30);

  // ---- Spark-Bench (11) ----------------------------------------------
  mk.add("SB.Hive", SB, EXP, exp_gb(4.1, 3.9), 0.19, 102, 0.14);
  mk.add("SB.MatrixFact", SB, POW, pow_gb(1.40, 0.91), 0.48, 52, 0.40);
  mk.add("SB.SVD++", SB, POW, pow_gb(1.42, 0.89), 0.55, 50, 0.43);
  mk.add("SB.LogRegre", SB, POW, pow_gb(1.02, 0.90), 0.33, 77, 0.26);
  mk.add("SB.RDDRelation", SB, EXP, exp_gb(3.6, 4.2), 0.15, 112, 0.11);
  mk.add("SB.TriangleCount", SB, LOG, log_gb(20.5, 1.9), 0.37, 60, 0.29);
  mk.add("SB.ShortestPath", SB, LOG, log_gb(19.0, 1.65), 0.35, 64, 0.27);
  mk.add("SB.SVM", SB, POW, pow_gb(1.23, 0.89), 0.36, 71, 0.28);
  mk.add("SB.PregelOp", SB, LOG, log_gb(18.2, 1.6), 0.27, 69, 0.21);
  mk.add("SB.LabelProp", SB, LOG, log_gb(19.9, 1.8), 0.32, 62, 0.25);
  mk.add("SB.StronglyConnected", SB, LOG, log_gb(21.0, 2.0), 0.38, 57, 0.31);

  SMOE_CHECK(mk.specs.size() == 44, "expected exactly 44 Spark benchmarks");
  return mk.specs;
}

std::vector<ParsecSpec> make_parsec() {
  // Compute-bound co-runners; CPU loads and sensitivities chosen so Fig. 15's
  // slowdowns stay under ~30% with most cases under 20%.
  return {
      {"Blackscholes", 0.92, 0.7, 420, 0.12},
      {"Bodytrack", 0.88, 1.1, 520, 0.22},
      {"Canneal", 0.72, 2.3, 610, 0.34},
      {"Facesim", 0.85, 2.8, 700, 0.27},
      {"Ferret", 0.83, 1.6, 560, 0.25},
      {"Fluidanimate", 0.90, 1.9, 640, 0.24},
      {"Freqmine", 0.86, 2.1, 590, 0.28},
      {"Raytrace", 0.89, 1.4, 530, 0.18},
      {"Streamcluster", 0.78, 1.2, 660, 0.36},
      {"Swaptions", 0.94, 0.5, 400, 0.10},
      {"Vips", 0.84, 1.3, 480, 0.21},
      {"X264", 0.91, 1.0, 450, 0.19},
  };
}

}  // namespace

const std::vector<BenchmarkSpec>& all_spark_benchmarks() {
  static const std::vector<BenchmarkSpec> specs = make_all();
  return specs;
}

std::vector<BenchmarkSpec> training_benchmarks() {
  std::vector<BenchmarkSpec> out;
  for (const auto& s : all_spark_benchmarks())
    if (s.suite == Suite::kHiBench || s.suite == Suite::kBigDataBench) out.push_back(s);
  SMOE_CHECK(out.size() == 16, "expected 16 training benchmarks");
  return out;
}

const std::vector<ParsecSpec>& parsec_benchmarks() {
  static const std::vector<ParsecSpec> specs = make_parsec();
  return specs;
}

const BenchmarkSpec& find_benchmark(const std::string& name) {
  for (const auto& s : all_spark_benchmarks())
    if (s.name == name) return s;
  SMOE_REQUIRE(false, "unknown benchmark: " + name);
  return all_spark_benchmarks().front();  // unreachable
}

std::vector<std::string> excluded_from_training(const std::string& name) {
  // Equivalent implementations across suites (Section 5.2): testing one
  // excludes the others so the selector cannot cheat via a twin program.
  static const std::vector<std::vector<std::string>> kEquivalents = {
      {"HB.Sort", "BDB.Sort"},
      {"HB.WordCount", "BDB.WordCount"},
      {"HB.PageRank", "BDB.PageRank"},
      {"HB.Kmeans", "BDB.Kmeans", "SP.Kmeans"},
      {"HB.Bayes", "BDB.NaiveBayes", "SP.NaiveBayes"},
  };
  std::vector<std::string> out = {name};
  for (const auto& group : kEquivalents) {
    bool in_group = false;
    for (const auto& member : group)
      if (member == name) in_group = true;
    if (!in_group) continue;
    for (const auto& member : group)
      if (member != name) out.push_back(member);
  }
  return out;
}

Items items_for_input_class(InputClass cls) {
  switch (cls) {
    case InputClass::kSmall: return 300;         // ~300 MB
    case InputClass::kMedium: return 30 * 1024;  // ~30 GB
    case InputClass::kLarge: return 1024 * 1024; // ~1 TB
  }
  SMOE_CHECK(false, "unreachable input class");
  return 0;
}

std::string to_string(InputClass cls) {
  switch (cls) {
    case InputClass::kSmall: return "small(~300MB)";
    case InputClass::kMedium: return "medium(~30GB)";
    case InputClass::kLarge: return "large(~1TB)";
  }
  return "?";
}

}  // namespace smoe::wl
