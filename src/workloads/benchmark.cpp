#include "workloads/benchmark.h"

#include "common/error.h"

namespace smoe::wl {

std::string to_string(Suite suite) {
  switch (suite) {
    case Suite::kHiBench: return "HiBench";
    case Suite::kBigDataBench: return "BigDataBench";
    case Suite::kSparkPerf: return "Spark-Perf";
    case Suite::kSparkBench: return "Spark-Bench";
    case Suite::kParsec: return "PARSEC";
  }
  return "?";
}

GiB BenchmarkSpec::footprint(Items items) const {
  SMOE_REQUIRE(items > 0.0, "footprint: items must be positive");
  return ml::curve_eval(true_kind, true_params, items);
}

Items BenchmarkSpec::items_for_budget(GiB budget) const {
  return ml::curve_inverse(true_kind, true_params, budget);
}

}  // namespace smoe::wl
