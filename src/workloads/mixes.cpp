#include "workloads/mixes.h"

#include <array>

#include "common/error.h"

namespace smoe::wl {

namespace {

constexpr std::array<Scenario, 10> kScenarios = {{
    {"L1", 2}, {"L2", 6}, {"L3", 7}, {"L4", 9}, {"L5", 11},
    {"L6", 13}, {"L7", 19}, {"L8", 23}, {"L9", 26}, {"L10", 30},
}};

Items random_input(Rng& rng) {
  // Small inputs are rare in the evaluation mixes (Table 4 has one); weight
  // toward the medium and large classes the paper emphasises.
  const double p = rng.uniform(0.0, 1.0);
  if (p < 0.10) return items_for_input_class(InputClass::kSmall);
  if (p < 0.55) return items_for_input_class(InputClass::kMedium);
  return items_for_input_class(InputClass::kLarge);
}

}  // namespace

std::span<const Scenario> scenarios() { return kScenarios; }

const Scenario& scenario_by_label(const std::string& label) {
  for (const auto& sc : kScenarios)
    if (sc.label == label) return sc;
  SMOE_REQUIRE(false, "unknown scenario: " + label);
  return kScenarios.front();  // unreachable
}

TaskMix random_mix(std::size_t n_apps, Rng& rng) {
  SMOE_REQUIRE(n_apps >= 1, "mix needs >= 1 app");
  const auto& all = all_spark_benchmarks();
  TaskMix mix;
  mix.reserve(n_apps);
  const auto idx = rng.sample_without_replacement(all.size(), n_apps);
  for (std::size_t i = 0; i < n_apps; ++i) {
    // When n_apps exceeds the suite size, wrap around with repeats.
    const auto& bench = all[idx[i % idx.size()]];
    mix.push_back({bench.name, random_input(rng)});
  }
  return mix;
}

std::vector<TaskMix> scenario_mixes(const Scenario& sc, std::size_t n_mixes,
                                    std::uint64_t seed) {
  SMOE_REQUIRE(n_mixes >= 1, "need >= 1 mix");
  const auto& all = all_spark_benchmarks();
  Rng rng(Rng::derive(seed, "mixes:" + sc.label));

  // Deal benchmarks from reshuffled decks so every benchmark shows up across
  // the scenario's batch of mixes.
  std::vector<std::size_t> deck;
  auto refill = [&] {
    deck.resize(all.size());
    for (std::size_t i = 0; i < deck.size(); ++i) deck[i] = i;
    rng.shuffle(deck);
  };
  refill();

  std::vector<TaskMix> out;
  out.reserve(n_mixes);
  for (std::size_t m = 0; m < n_mixes; ++m) {
    TaskMix mix;
    mix.reserve(sc.n_apps);
    for (std::size_t a = 0; a < sc.n_apps; ++a) {
      if (deck.empty()) refill();
      const auto& bench = all[deck.back()];
      deck.pop_back();
      mix.push_back({bench.name, random_input(rng)});
    }
    out.push_back(std::move(mix));
  }
  return out;
}

TaskMix table4_mix() {
  const Items kSmall = items_for_input_class(InputClass::kSmall);
  const Items k30GB = items_for_input_class(InputClass::kMedium);
  const Items k1TB = items_for_input_class(InputClass::kLarge);
  // Table 4 of the paper, in submission order 1..30.
  return {
      {"BDB.WordCount", k30GB},        {"SP.Kmeans", k1TB},
      {"SP.glm-classification", k1TB}, {"SP.glm-regression", k1TB},
      {"SP.Pca", k30GB},               {"SB.SVD++", k1TB},
      {"HB.Scan", k30GB},              {"HB.TeraSort", k1TB},
      {"SB.Hive", k1TB},               {"SP.NaiveBayes", k1TB},
      {"BDB.PageRank", k1TB},          {"HB.PageRank", k30GB},
      {"SP.DecisionTree", k30GB},      {"SP.Spearman", k1TB},
      {"SB.MatrixFact", k1TB},         {"BDB.Grep", k1TB},
      {"SB.LogRegre", k1TB},           {"BDB.NaiveBayes", k30GB},
      {"BDB.Kmeans", k30GB},           {"HB.Sort", k1TB},
      {"SP.CoreRDD", kSmall},          {"SP.Gmm", k1TB},
      {"HB.Join", k1TB},               {"SP.Sum.Statis", k30GB},
      {"SP.B.MatrixMult", k1TB},       {"BDB.Sort", k30GB},
      {"SB.RDDRelation", k1TB},        {"SP.Pearson", k1TB},
      {"SP.Chi-sq", k30GB},            {"HB.Kmeans", k1TB},
  };
}

}  // namespace smoe::wl
