// Runtime scenarios: the task-mix generator behind Table 3 (scenarios L1-L10
// with 2-30 randomly selected applications, ~100 mixes per scenario, every
// benchmark covered) and the fixed 30-application mix of Table 4 that drives
// Figures 7 and 8.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "workloads/suites.h"

namespace smoe::wl {

/// One application submission: which benchmark, and how many RDD items.
struct AppInstance {
  std::string benchmark;
  Items input_items = 0;
};

using TaskMix = std::vector<AppInstance>;

struct Scenario {
  std::string label;    ///< "L1" .. "L10"
  std::size_t n_apps;   ///< Table 3 application count.
};

/// Table 3: the ten runtime scenarios.
std::span<const Scenario> scenarios();
const Scenario& scenario_by_label(const std::string& label);

/// One random mix of `n_apps` applications with input sizes drawn from the
/// paper's small/medium/large classes.
TaskMix random_mix(std::size_t n_apps, Rng& rng);

/// A batch of mixes for a scenario. Benchmarks are dealt round-robin from
/// shuffled decks so that across the batch every one of the 44 benchmarks
/// appears (the paper: "make sure all benchmarks are included in each
/// scenario").
std::vector<TaskMix> scenario_mixes(const Scenario& sc, std::size_t n_mixes,
                                    std::uint64_t seed);

/// The fixed 30-application mix of Table 4 (Figures 7 and 8), in submission
/// order.
TaskMix table4_mix();

}  // namespace smoe::wl
