#include "workloads/features.h"

#include <cmath>

#include "common/error.h"
#include "workloads/suites.h"

namespace smoe::wl {

namespace {

// Table 2 of the paper, in importance order.
constexpr std::array<RawFeatureInfo, kNumRawFeatures> kRawFeatures = {{
    {"L1_TCM", "L1 total cache miss rate"},
    {"L1_DCM", "L1 data cache miss rate"},
    {"vcache", "% of memory used as cache"},
    {"L1_STM", "L1 cache store miss rate"},
    {"bo", "# blocks sent (/s)"},
    {"L2_TCM", "L2 total cache miss rate"},
    {"L3_TCM", "L3 total cache miss rate"},
    {"cs", "# context switches / s"},
    {"FLOPs", "# floating point operations / s"},
    {"in", "# interrupts / s"},
    {"L2_DCM", "L2 data cache miss rate"},
    {"L2_LDM", "L2 cache load miss rate"},
    {"L1_ICM", "L1 instr. cache miss rate"},
    {"swpd", "% of virtual memory used"},
    {"L2_STM", "L2 cache store miss rate"},
    {"IPC", "instructions per cycle"},
    {"L1_LDM", "L1 cache load miss rate"},
    {"L2_ICM", "L2 instr. cache miss rate"},
    {"ID", "% of idle time"},
    {"WA", "% of time on IO waiting"},
    {"US", "% spent on user time"},
    {"SY", "% spent on kernel time"},
}};

// Plausible magnitudes so raw vectors read like real counter output; the
// min-max scaler normalizes these away before learning.
constexpr std::array<double, kNumRawFeatures> kBase = {
    0.08, 0.06, 32.0, 0.03, 1800.0, 0.05,  0.04, 5200.0, 2.1e9, 900.0, 0.03,
    0.02, 0.01, 4.0,  0.015, 1.1,   0.025, 0.008, 55.0,  3.0,   38.0,  7.0};
constexpr std::array<double, kNumRawFeatures> kScale = {
    0.05, 0.04, 14.0, 0.02, 900.0, 0.03,  0.025, 2400.0, 1.2e9, 420.0, 0.02,
    0.012, 0.006, 2.5, 0.009, 0.4, 0.014, 0.005, 18.0,   1.6,   12.0,  3.0};

// Standard deviations of the per-benchmark latent traits z3..z5 (z1/z2 come
// from the cluster geometry in suites.cpp). Kept well below the
// cluster-center separation so programs sharing a memory function stay
// tightly correlated (Section 6.9's Pearson > 0.9999 within clusters).
constexpr double kLatentSigma[kNumLatents] = {0.0, 0.0, 0.12, 0.10, 0.08};

}  // namespace

std::span<const RawFeatureInfo, kNumRawFeatures> raw_feature_table() { return kRawFeatures; }

FeatureModel::FeatureModel(std::uint64_t seed) : seed_(seed) {
  base_ = kBase;
  scale_ = kScale;
  // Mixing profile per importance rank r: alignment with the dominant latent
  // z1 decays with rank; z2..z5 peak at successively later ranks, so
  // lower-ranked features draw their (smaller) variance from the
  // lower-variance latent traits. This reproduces both the PCA variance
  // concentration (Fig. 4a) and the Varimax importance ordering (Fig. 4b).
  for (std::size_t r = 0; r < kNumRawFeatures; ++r) {
    const double fr = static_cast<double>(r);
    mix_[r][0] = std::exp(-fr / 5.5);
    mix_[r][1] = 1.00 * std::exp(-std::abs(fr - 3.5) / 3.5);
    mix_[r][2] = 0.42 * std::exp(-std::abs(fr - 10.0) / 4.5);
    mix_[r][3] = 0.38 * std::exp(-std::abs(fr - 15.0) / 4.5);
    mix_[r][4] = 0.36 * std::exp(-std::abs(fr - 20.0) / 4.5);
  }
  for (const auto& bench : all_spark_benchmarks())
    trait_cache_.emplace(bench.name, compute_latent(bench));
}

std::array<double, kNumLatents> FeatureModel::compute_latent(const BenchmarkSpec& bench) const {
  std::array<double, kNumLatents> z{};
  z[0] = bench.latent1;
  z[1] = bench.latent2;
  // Per-benchmark traits are a pure function of (model seed, benchmark name).
  Rng trait_rng(Rng::derive(seed_, "traits:" + bench.name));
  for (std::size_t d = 2; d < kNumLatents; ++d) z[d] = trait_rng.normal(0.0, kLatentSigma[d]);
  return z;
}

std::array<double, kNumLatents> FeatureModel::latent(const BenchmarkSpec& bench) const {
  const auto it = trait_cache_.find(bench.name);
  if (it != trait_cache_.end()) {
    auto z = it->second;
    // Latent1/latent2 come from the spec itself, so a caller-modified copy of
    // a registered benchmark still sees its own cluster coordinates.
    z[0] = bench.latent1;
    z[1] = bench.latent2;
    return z;
  }
  return compute_latent(bench);
}

ml::Vector FeatureModel::sample(const BenchmarkSpec& bench, Rng& run_rng,
                                double noise_scale) const {
  SMOE_REQUIRE(noise_scale >= 0.0, "noise scale must be non-negative");
  const auto z = latent(bench);
  ml::Vector raw(kNumRawFeatures);
  for (std::size_t f = 0; f < kNumRawFeatures; ++f) {
    double signal = 0;
    for (std::size_t d = 0; d < kNumLatents; ++d) signal += mix_[f][d] * z[d];
    signal += run_rng.normal(0.0, run_noise_ * noise_scale);
    raw[f] = base_[f] + scale_[f] * signal;
  }
  return raw;
}

}  // namespace smoe::wl
