// Benchmark specifications: the synthetic stand-ins for the paper's 44 Spark
// applications (HiBench, BigDataBench, Spark-Perf, Spark-Bench) and the 12
// PARSEC co-runners used in the interference study (Fig. 15).
//
// Each Spark benchmark carries a ground-truth per-executor memory function
// drawn from the paper's three families (Table 1), an isolation-mode CPU load
// (Fig. 13), a processing rate and an interference sensitivity. The predictor
// under test never sees the ground truth — it only observes footprints
// through (noisy) profiling runs, exactly like the real system observed a
// Spark executor's RSS.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "ml/regression.h"

namespace smoe::wl {

enum class Suite { kHiBench, kBigDataBench, kSparkPerf, kSparkBench, kParsec };

std::string to_string(Suite suite);

struct BenchmarkSpec {
  std::string name;  ///< e.g. "HB.Sort"; unique across suites.
  Suite suite = Suite::kHiBench;

  /// Ground-truth memory behaviour of one executor: footprint in GiB as a
  /// function of the number of RDD items the executor caches.
  ml::CurveKind true_kind = ml::CurveKind::kPowerLaw;
  ml::CurveParams true_params;

  /// Average CPU load (fraction of one node) when running in isolation.
  double cpu_load_iso = 0.3;
  /// Items one executor processes per second on an uncontended node.
  double items_per_second = 80.0;
  /// Sensitivity to co-runner interference (cache/bandwidth); the slowdown of
  /// this benchmark is roughly `sensitivity * sum(co-runner CPU loads)`.
  double interference_sensitivity = 0.2;

  /// Latent "program characteristics" coordinates driving the synthetic
  /// feature model; benchmarks of the same memory-function family cluster
  /// together (the structure of Fig. 16).
  double latent1 = 0.0, latent2 = 0.0;

  /// True memory footprint (GiB) of an executor caching `items` items.
  GiB footprint(Items items) const;
  /// Largest number of items whose footprint fits in `budget` GiB.
  Items items_for_budget(GiB budget) const;

  /// Label used for expert-selection datasets: the index of the true family.
  int family_label() const { return static_cast<int>(true_kind); }
};

/// A PARSEC-style compute-bound co-runner (Fig. 15): high CPU demand, small
/// fixed memory, fixed standalone runtime.
struct ParsecSpec {
  std::string name;
  double cpu_load = 0.9;
  GiB memory = 2.0;
  Seconds runtime_iso = 600.0;
  double interference_sensitivity = 0.25;
};

}  // namespace smoe::wl
