// The benchmark registry: 44 Spark applications across four suites (the
// paper's Section 5.1 workloads) and 12 PARSEC co-runners, plus the standard
// input-size classes and the training/testing split rules of Section 5.2.
#pragma once

#include <span>
#include <vector>

#include "workloads/benchmark.h"

namespace smoe::wl {

/// All 44 Spark benchmarks. Stable order; index is a stable benchmark id.
const std::vector<BenchmarkSpec>& all_spark_benchmarks();

/// The 16 HiBench + BigDataBench programs used to train the memory models.
std::vector<BenchmarkSpec> training_benchmarks();

/// The 12 PARSEC v3.0 compute-bound applications of Fig. 15.
const std::vector<ParsecSpec>& parsec_benchmarks();

/// Lookup by unique name; throws PreconditionError when unknown.
const BenchmarkSpec& find_benchmark(const std::string& name);

/// Names of training programs that must be excluded when testing `name`,
/// implementing Section 5.2's leave-one-out rule: the benchmark itself plus
/// any equivalent implementation in another suite (e.g. testing HB.Sort
/// excludes BDB.Sort).
std::vector<std::string> excluded_from_training(const std::string& name);

/// The paper's input-size classes (Section 5.2): small ~300 MB, medium
/// ~30 GB, large ~1 TB, expressed in RDD items.
enum class InputClass { kSmall, kMedium, kLarge };
Items items_for_input_class(InputClass cls);
std::string to_string(InputClass cls);

}  // namespace smoe::wl
