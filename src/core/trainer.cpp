#include "core/trainer.h"

#include "common/error.h"

namespace smoe::core {

ml::Vector SelectorModel::project(std::span<const double> raw_features) const {
  return pca.transform(scaler.transform(raw_features));
}

SelectorModel train_selector(const ExpertPool& pool,
                             const std::vector<TrainingExample>& examples,
                             const TrainerOptions& options) {
  SMOE_REQUIRE(pool.size() >= 1, "trainer: empty expert pool");
  SMOE_REQUIRE(examples.size() >= 2, "trainer: need >= 2 training programs");

  SelectorModel model;

  // 1. Label each program with its best-fitting expert.
  std::vector<int> labels;
  labels.reserve(examples.size());
  std::vector<ml::Vector> raw_rows;
  raw_rows.reserve(examples.size());
  for (const auto& ex : examples) {
    SMOE_REQUIRE(!ex.raw_features.empty(), "trainer: example without features: " + ex.name);
    const ExpertPool::BestFit best = pool.best_fit(ex.profile_items, ex.profile_footprints);
    SelectorModel::ProgramRecord rec;
    rec.name = ex.name;
    rec.expert_index = best.index;
    rec.fit = best.fit;
    model.programs.push_back(std::move(rec));
    labels.push_back(best.index);
    raw_rows.push_back(ex.raw_features);
  }

  // 2. Scale + PCA over the raw feature matrix.
  const ml::Matrix raw = ml::Matrix::from_rows(raw_rows);
  model.scaler.fit(raw);
  const ml::Matrix scaled = model.scaler.transform(raw);
  model.pca.fit(scaled, options.pca_variance_target, options.pca_max_components);
  const ml::Matrix pcs = model.pca.transform(scaled);

  // 3. Train the KNN selector on PC features.
  ml::Dataset ds;
  ds.x = pcs;
  ds.labels = labels;
  model.knn = ml::KnnClassifier(options.knn_k);
  model.knn.fit(ds);

  for (std::size_t i = 0; i < model.programs.size(); ++i) {
    model.programs[i].pc_features.assign(pcs.row(i).begin(), pcs.row(i).end());
  }
  return model;
}

}  // namespace smoe::core
