// The extensible registry of memory-function experts. Expert indices are the
// class labels of the expert selector; adding a new expert does not disturb
// existing labels (one of the advantages of KNN the paper highlights: no
// retraining is needed when a function is added).
#pragma once

#include <memory>
#include <vector>

#include "core/memory_expert.h"

namespace smoe::core {

class ExpertPool {
 public:
  ExpertPool() = default;
  ExpertPool(ExpertPool&&) = default;
  ExpertPool& operator=(ExpertPool&&) = default;

  /// The paper's Table 1 pool: power law, exponential, Napierian log — with
  /// indices matching ml::CurveKind's enumerators.
  static ExpertPool paper_default();

  /// Register an expert; returns its index (= selector class label).
  int add(std::unique_ptr<MemoryExpert> expert);

  const MemoryExpert& at(int index) const;
  std::size_t size() const { return experts_.size(); }

  /// Fit every expert to an offline profile and return the index of the best
  /// (highest R²) together with its fit.
  struct BestFit {
    int index = -1;
    FitResult fit;
  };
  BestFit best_fit(std::span<const double> xs, std::span<const double> ys) const;

 private:
  std::vector<std::unique_ptr<MemoryExpert>> experts_;
};

}  // namespace smoe::core
