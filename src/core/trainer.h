// Offline training (Section 3.1/3.3, Figure 2):
//   1. for every training program, fit each expert to the program's offline
//      memory profile and label the program with the best-fitting expert;
//   2. min-max scale the raw feature vectors and fit PCA keeping the top
//      components (>= 95% variance, capped at 5 like the paper);
//   3. train the KNN expert selector on (PC features -> expert label).
//
// Training is a one-off cost; the resulting SelectorModel is reused by every
// runtime prediction.
#pragma once

#include <string>
#include <vector>

#include "core/expert_pool.h"
#include "ml/dataset.h"
#include "ml/knn.h"
#include "ml/pca.h"
#include "ml/scaling.h"

namespace smoe::core {

/// Everything the trainer needs to know about one training program.
struct TrainingExample {
  std::string name;
  /// Raw 22-feature vector from the ~100 MB characterization run.
  ml::Vector raw_features;
  /// Offline profile: footprint (GiB) observed at each input size (items).
  std::vector<double> profile_items;
  std::vector<double> profile_footprints;
};

/// The trained expert selector plus the bookkeeping the benches inspect.
struct SelectorModel {
  ml::MinMaxScaler scaler;
  ml::Pca pca;
  ml::KnnClassifier knn;

  /// Per-training-program outcome, aligned with the input examples.
  struct ProgramRecord {
    std::string name;
    int expert_index = -1;
    FitResult fit;            ///< Offline least-squares fit of the chosen expert.
    ml::Vector pc_features;   ///< The program's position in PCA space.
  };
  std::vector<ProgramRecord> programs;

  /// Project a raw feature vector into the selector's PCA space.
  ml::Vector project(std::span<const double> raw_features) const;
};

struct TrainerOptions {
  double pca_variance_target = 0.95;
  std::size_t pca_max_components = 5;  ///< The paper keeps the top 5 PCs.
  std::size_t knn_k = 1;               ///< Nearest-neighbour selection (Section 4.1).
};

/// Train the selector against an expert pool. The pool must outlive any
/// MemoryModel later produced from this selector.
SelectorModel train_selector(const ExpertPool& pool,
                             const std::vector<TrainingExample>& examples,
                             const TrainerOptions& options = {});

}  // namespace smoe::core
