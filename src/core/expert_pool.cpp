#include "core/expert_pool.h"

#include "common/error.h"

namespace smoe::core {

ExpertPool ExpertPool::paper_default() {
  ExpertPool pool;
  pool.add(make_builtin_expert(ml::CurveKind::kPowerLaw));
  pool.add(make_builtin_expert(ml::CurveKind::kExponential));
  pool.add(make_builtin_expert(ml::CurveKind::kNapierianLog));
  return pool;
}

int ExpertPool::add(std::unique_ptr<MemoryExpert> expert) {
  SMOE_REQUIRE(expert != nullptr, "null expert");
  experts_.push_back(std::move(expert));
  return static_cast<int>(experts_.size()) - 1;
}

const MemoryExpert& ExpertPool::at(int index) const {
  SMOE_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < experts_.size(),
               "expert index out of range");
  return *experts_[static_cast<std::size_t>(index)];
}

ExpertPool::BestFit ExpertPool::best_fit(std::span<const double> xs,
                                         std::span<const double> ys) const {
  SMOE_REQUIRE(!experts_.empty(), "empty expert pool");
  BestFit best;
  for (std::size_t i = 0; i < experts_.size(); ++i) {
    const FitResult fit = experts_[i]->fit(xs, ys);
    if (best.index < 0 || fit.r2 > best.fit.r2) {
      best.index = static_cast<int>(i);
      best.fit = fit;
    }
  }
  return best;
}

}  // namespace smoe::core
