#include "core/serialize.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace smoe::core {

namespace {

constexpr const char* kMagic = "sparkmoe-selector";
constexpr int kVersion = 1;

void write_vector(std::ostream& os, const ml::Vector& v) {
  os << v.size();
  for (const double x : v) os << ' ' << x;
  os << '\n';
}

ml::Vector read_vector(std::istream& is, const char* what) {
  std::size_t n = 0;
  if (!(is >> n)) throw SerializationError(std::string("expected size of ") + what);
  ml::Vector v(n);
  for (auto& x : v)
    if (!(is >> x)) throw SerializationError(std::string("truncated ") + what);
  return v;
}

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected)
    throw SerializationError("expected token '" + expected + "', got '" + token + "'");
}

}  // namespace

void save_selector(const SelectorModel& model, std::ostream& os) {
  SMOE_REQUIRE(model.scaler.fitted() && model.pca.fitted(), "save: model not trained");
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << kMagic << ' ' << kVersion << '\n';

  os << "scaler ";
  write_vector(os, model.scaler.mins());
  os << "       ";
  write_vector(os, model.scaler.maxs());

  os << "pca-mean ";
  write_vector(os, model.pca.mean());
  const ml::Matrix& comp = model.pca.components();
  os << "pca-components " << comp.rows() << ' ' << comp.cols() << '\n';
  for (std::size_t r = 0; r < comp.rows(); ++r) {
    for (std::size_t c = 0; c < comp.cols(); ++c) os << comp(r, c) << ' ';
    os << '\n';
  }
  os << "pca-ratios ";
  {
    ml::Vector ratios = model.pca.explained_variance_ratio();
    write_vector(os, ratios);
  }

  const ml::Dataset& knn = model.knn.training_data();
  os << "knn " << model.knn.k() << ' ' << knn.size() << ' ' << knn.n_features() << '\n';
  for (std::size_t i = 0; i < knn.size(); ++i) {
    os << knn.labels[i];
    for (std::size_t c = 0; c < knn.n_features(); ++c) os << ' ' << knn.x(i, c);
    os << '\n';
  }

  os << "programs " << model.programs.size() << '\n';
  for (const auto& p : model.programs) {
    SMOE_REQUIRE(p.name.find_first_of(" \t\n") == std::string::npos,
                 "save: program name contains whitespace");
    os << p.name << ' ' << p.expert_index << ' ' << p.fit.r2 << ' ' << p.fit.rmse << ' '
       << p.fit.params.m << ' ' << p.fit.params.b << ' ';
    write_vector(os, p.pc_features);
  }
  if (!os) throw SerializationError("stream failure while saving selector");
}

SelectorModel load_selector(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic)
    throw SerializationError("not a sparkmoe selector file");
  if (version != kVersion)
    throw SerializationError("unsupported selector version " + std::to_string(version));

  SelectorModel model;

  expect_token(is, "scaler");
  ml::Vector mins = read_vector(is, "scaler mins");
  ml::Vector maxs = read_vector(is, "scaler maxs");
  if (mins.size() != maxs.size()) throw SerializationError("scaler extrema size mismatch");
  model.scaler = ml::MinMaxScaler::from_parts(std::move(mins), std::move(maxs));

  expect_token(is, "pca-mean");
  ml::Vector mean = read_vector(is, "pca mean");
  expect_token(is, "pca-components");
  std::size_t rows = 0, cols = 0;
  if (!(is >> rows >> cols) || rows == 0 || cols == 0)
    throw SerializationError("bad pca component dimensions");
  ml::Matrix comp(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (!(is >> comp(r, c))) throw SerializationError("truncated pca components");
  expect_token(is, "pca-ratios");
  ml::Vector ratios = read_vector(is, "pca ratios");
  try {
    model.pca = ml::Pca::from_parts(std::move(mean), std::move(comp), std::move(ratios));
  } catch (const PreconditionError& e) {
    throw SerializationError(std::string("inconsistent pca parts: ") + e.what());
  }

  expect_token(is, "knn");
  std::size_t k = 0, n = 0, dims = 0;
  if (!(is >> k >> n >> dims) || k == 0 || n == 0 || dims == 0)
    throw SerializationError("bad knn header");
  ml::Dataset ds;
  ds.x = ml::Matrix(n, dims);
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> ds.labels[i])) throw SerializationError("truncated knn labels");
    if (ds.labels[i] < 0) throw SerializationError("negative knn label");
    for (std::size_t c = 0; c < dims; ++c)
      if (!(is >> ds.x(i, c))) throw SerializationError("truncated knn features");
  }
  model.knn = ml::KnnClassifier(k);
  model.knn.fit(ds);

  expect_token(is, "programs");
  std::size_t n_programs = 0;
  if (!(is >> n_programs)) throw SerializationError("bad program count");
  model.programs.resize(n_programs);
  for (auto& p : model.programs) {
    if (!(is >> p.name >> p.expert_index >> p.fit.r2 >> p.fit.rmse >> p.fit.params.m >>
          p.fit.params.b))
      throw SerializationError("truncated program record");
    p.pc_features = read_vector(is, "program pc features");
  }
  if (model.programs.size() != n)
    throw SerializationError("program/knn sample count mismatch");
  return model;
}

void save_selector_file(const SelectorModel& model, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw SerializationError("cannot open for writing: " + path);
  save_selector(model, os);
}

SelectorModel load_selector_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw SerializationError("cannot open for reading: " + path);
  return load_selector(is);
}

}  // namespace smoe::core
