// Persistence for trained selector models. The offline training of Section 3
// is a one-off cost; a deployment trains once, saves the model, and every
// scheduler instance loads it at startup. The format is a versioned,
// line-oriented text format — diffable, and stable across platforms with
// round-trippable doubles (max_digits10).
//
// Note: only the selector (scaler + PCA + KNN data + program records) is
// persisted. The expert pool is code, not data — a loaded model must be used
// with a pool whose expert indices match the one it was trained against
// (the built-in Table 1 pool, plus any custom experts in registration order).
#pragma once

#include <iosfwd>
#include <string>

#include "core/trainer.h"

namespace smoe::core {

/// Thrown when parsing a persisted model fails.
class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Write the selector to a stream.
void save_selector(const SelectorModel& model, std::ostream& os);

/// Read a selector back. Throws SerializationError on malformed input.
SelectorModel load_selector(std::istream& is);

/// Convenience file wrappers. Throw SerializationError on I/O failure.
void save_selector_file(const SelectorModel& model, const std::string& path);
SelectorModel load_selector_file(const std::string& path);

}  // namespace smoe::core
