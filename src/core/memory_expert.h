// The "expert" abstraction of the mixture-of-experts framework (Section 3).
//
// An expert is a two-parameter memory-function family y = f_{m,b}(x) mapping
// input size (RDD items) to an executor's memory footprint (GiB). Experts
// support:
//   * eval/inverse        — used by the job dispatcher at runtime,
//   * fit                 — full least-squares fit, used in offline training,
//   * calibrate           — exact two-point solve, used at runtime with the
//                           5%/10% profiling measurements.
//
// The paper ships three families (Table 1); the framework's headline design
// property is that *new* families can be plugged in without retraining the
// KNN selector (examples/custom_expert.cpp demonstrates this).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/units.h"
#include "ml/regression.h"

namespace smoe::core {

/// Two calibratable parameters, shared by every family in the paper.
using Params = ml::CurveParams;

struct FitResult {
  Params params;
  double r2 = 0.0;
  double rmse = 0.0;
};

class MemoryExpert {
 public:
  virtual ~MemoryExpert() = default;

  virtual std::string name() const = 0;
  /// Human-readable formula, e.g. "y = m * (1 - e^(-b*x))".
  virtual std::string formula() const = 0;

  /// Footprint (GiB) for `x` items under parameters `p`.
  virtual GiB eval(Params p, Items x) const = 0;
  /// Largest item count whose footprint fits in `budget`; may be +inf for
  /// saturating families, or 0 when nothing fits.
  virtual Items inverse(Params p, GiB budget) const = 0;

  /// Least-squares fit against a full offline profile.
  virtual FitResult fit(std::span<const double> xs, std::span<const double> ys) const = 0;
  /// Exact two-point calibration from runtime profiling measurements.
  virtual Params calibrate(Items x1, GiB y1, Items x2, GiB y2) const = 0;
};

/// Built-in expert wrapping one of the Table 1 regression families.
std::unique_ptr<MemoryExpert> make_builtin_expert(ml::CurveKind kind);

/// A calibrated memory model: the selected expert plus instantiated
/// parameters. This is what the runtime scheduler consumes.
class MemoryModel {
 public:
  MemoryModel() = default;
  MemoryModel(const MemoryExpert* expert, Params params) : expert_(expert), params_(params) {}

  bool valid() const { return expert_ != nullptr; }
  GiB footprint(Items x) const;
  Items items_for_budget(GiB budget) const;
  const MemoryExpert& expert() const;
  Params params() const { return params_; }

 private:
  const MemoryExpert* expert_ = nullptr;  // non-owning; pool outlives models
  Params params_;
};

}  // namespace smoe::core
