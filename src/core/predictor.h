// Runtime prediction (Section 4.1): select the memory function for an unseen
// application from its profiling features, then calibrate the function's
// parameters from two small profiling measurements. The KNN distance doubles
// as a confidence signal — applications far from every training program can
// be routed to a conservative fallback policy.
#pragma once

#include "core/trainer.h"

namespace smoe::core {

struct Selection {
  int expert_index = -1;
  /// Euclidean distance in PCA space to the nearest training program.
  double distance = 0.0;
  /// Name of that nearest training program (diagnostics / Fig. 16 analysis).
  std::string nearest_program;
};

/// Two runtime footprint measurements (the 5% and 10% profiling runs).
struct CalibrationProbes {
  Items x1 = 0;
  GiB y1 = 0;
  Items x2 = 0;
  GiB y2 = 0;
};

class MoePredictor {
 public:
  /// Both the pool and the selector must outlive the predictor and any
  /// MemoryModel it produces.
  MoePredictor(const ExpertPool& pool, const SelectorModel& selector,
               double confidence_distance = 1.0);

  /// Pick the expert for an application from its raw profiling features.
  Selection select(std::span<const double> raw_features) const;

  /// True when the selection is close enough to the training set to trust
  /// (Section 4.1's soundness guarantee).
  bool confident(const Selection& sel) const { return sel.distance <= confidence_distance_; }

  /// Instantiate the selected expert's parameters from the probe runs.
  MemoryModel calibrate(const Selection& sel, const CalibrationProbes& probes) const;

  /// Convenience: select + calibrate in one step.
  MemoryModel predict(std::span<const double> raw_features,
                      const CalibrationProbes& probes) const;

  const ExpertPool& pool() const { return pool_; }
  const SelectorModel& selector() const { return selector_; }

 private:
  const ExpertPool& pool_;
  const SelectorModel& selector_;
  double confidence_distance_;
};

}  // namespace smoe::core
