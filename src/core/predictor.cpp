#include "core/predictor.h"

#include "common/error.h"

namespace smoe::core {

MoePredictor::MoePredictor(const ExpertPool& pool, const SelectorModel& selector,
                           double confidence_distance)
    : pool_(pool), selector_(selector), confidence_distance_(confidence_distance) {
  SMOE_REQUIRE(confidence_distance > 0.0, "confidence distance must be positive");
}

Selection MoePredictor::select(std::span<const double> raw_features) const {
  const ml::Vector pcs = selector_.project(raw_features);
  const auto nn = selector_.knn.neighbours(pcs);
  SMOE_CHECK(!nn.empty(), "selector has no training data");
  Selection sel;
  sel.expert_index = selector_.knn.predict(pcs);
  sel.distance = nn.front().distance;
  sel.nearest_program = selector_.programs[nn.front().index].name;
  return sel;
}

MemoryModel MoePredictor::calibrate(const Selection& sel, const CalibrationProbes& probes) const {
  SMOE_REQUIRE(sel.expert_index >= 0, "calibrate: invalid selection");
  const MemoryExpert& expert = pool_.at(sel.expert_index);
  const Params p = expert.calibrate(probes.x1, probes.y1, probes.x2, probes.y2);
  return MemoryModel(&expert, p);
}

MemoryModel MoePredictor::predict(std::span<const double> raw_features,
                                  const CalibrationProbes& probes) const {
  return calibrate(select(raw_features), probes);
}

}  // namespace smoe::core
