#include "core/memory_expert.h"

#include "common/error.h"

namespace smoe::core {

namespace {

class BuiltinExpert final : public MemoryExpert {
 public:
  explicit BuiltinExpert(ml::CurveKind kind) : kind_(kind) {}

  std::string name() const override { return ml::to_string(kind_); }

  std::string formula() const override {
    switch (kind_) {
      case ml::CurveKind::kPowerLaw: return "y = m * x^b";
      case ml::CurveKind::kExponential: return "y = m * (1 - e^(-b*x))";
      case ml::CurveKind::kNapierianLog: return "y = m + b * ln(x)";
    }
    return "?";
  }

  GiB eval(Params p, Items x) const override { return ml::curve_eval(kind_, p, x); }

  Items inverse(Params p, GiB budget) const override {
    return ml::curve_inverse(kind_, p, budget);
  }

  FitResult fit(std::span<const double> xs, std::span<const double> ys) const override {
    const ml::CurveFit f = ml::fit_curve(kind_, xs, ys);
    return {f.params, f.r2, f.rmse};
  }

  Params calibrate(Items x1, GiB y1, Items x2, GiB y2) const override {
    return ml::calibrate_two_point(kind_, x1, y1, x2, y2);
  }

 private:
  ml::CurveKind kind_;
};

}  // namespace

std::unique_ptr<MemoryExpert> make_builtin_expert(ml::CurveKind kind) {
  return std::make_unique<BuiltinExpert>(kind);
}

GiB MemoryModel::footprint(Items x) const {
  SMOE_REQUIRE(valid(), "memory model not calibrated");
  return expert_->eval(params_, x);
}

Items MemoryModel::items_for_budget(GiB budget) const {
  SMOE_REQUIRE(valid(), "memory model not calibrated");
  return expert_->inverse(params_, budget);
}

const MemoryExpert& MemoryModel::expert() const {
  SMOE_REQUIRE(valid(), "memory model not calibrated");
  return *expert_;
}

}  // namespace smoe::core
