#include "sched/training_data.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace smoe::sched {

core::TrainingExample make_training_example(const wl::BenchmarkSpec& bench,
                                            const wl::FeatureModel& features,
                                            std::uint64_t seed, const ProfileOptions& opt) {
  SMOE_REQUIRE(opt.sweep_points >= 2, "profile: need >= 2 sweep points");
  SMOE_REQUIRE(opt.sweep_max > opt.sweep_min && opt.sweep_min > 0, "profile: bad sweep range");

  core::TrainingExample ex;
  ex.name = bench.name;
  Rng rng(Rng::derive(seed, "profile:" + bench.name));
  ex.raw_features = features.sample(bench, rng);

  for (std::size_t i = 0; i < opt.sweep_points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(opt.sweep_points - 1);
    const Items x = opt.sweep_min * std::pow(opt.sweep_max / opt.sweep_min, frac);
    const GiB y = bench.footprint(x) * std::max(0.5, rng.normal(1.0, opt.measurement_noise));
    ex.profile_items.push_back(x);
    ex.profile_footprints.push_back(y);
  }
  return ex;
}

std::vector<core::TrainingExample> make_training_set(const wl::FeatureModel& features,
                                                     std::uint64_t seed,
                                                     const std::vector<std::string>& excluded,
                                                     const ProfileOptions& opt) {
  std::vector<core::TrainingExample> out;
  for (const auto& bench : wl::training_benchmarks()) {
    if (std::find(excluded.begin(), excluded.end(), bench.name) != excluded.end()) continue;
    out.push_back(make_training_example(bench, features, seed, opt));
  }
  SMOE_CHECK(out.size() >= 2, "training set too small after exclusions");
  return out;
}

SelectorCache::SelectorCache(const wl::FeatureModel& features, std::uint64_t seed,
                             core::TrainerOptions trainer_options,
                             ProfileOptions profile_options)
    : features_(features),
      seed_(seed),
      trainer_options_(trainer_options),
      profile_options_(profile_options) {}

const SelectorCache::Entry& SelectorCache::for_test_benchmark(
    const std::string& benchmark_name) {
  std::vector<std::string> excluded = wl::excluded_from_training(benchmark_name);
  std::sort(excluded.begin(), excluded.end());
  std::string key;
  for (const auto& name : excluded) {
    key += name;
    key += '|';
  }
  // First miss trains under the lock (deterministic in the seed; concurrent
  // misses serialize). Entries are immutable once inserted and never erased,
  // so the returned reference stays valid — and readable without the lock —
  // for the cache's lifetime.
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->pool = core::ExpertPool::paper_default();
    entry->selector = core::train_selector(
        entry->pool, make_training_set(features_, seed_, excluded, profile_options_),
        trainer_options_);
    it = cache_.emplace(key, std::move(entry)).first;
  }
  return *it->second;
}

}  // namespace smoe::sched
