#include "sched/cpu_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "sparksim/app_probe.h"

namespace smoe::sched {

CpuLoadEstimator::CpuLoadEstimator(const wl::FeatureModel& features, std::uint64_t seed,
                                   std::size_t k)
    : k_(k) {
  SMOE_REQUIRE(k >= 1, "cpu estimator: k must be >= 1");

  std::vector<ml::Vector> rows;
  for (const auto& bench : wl::training_benchmarks()) {
    Rng rng(Rng::derive(seed, "cpu-train:" + bench.name));
    rows.push_back(features.sample(bench, rng));
    // The training-time load measurement comes from the same profiling
    // machinery the runtime uses.
    sim::AppProbe probe(bench, features, 30720, Rng::derive(seed, "cpu-probe:" + bench.name));
    cpu_.push_back(probe.measure_cpu_load());
  }
  const ml::Matrix raw = ml::Matrix::from_rows(rows);
  scaler_.fit(raw);
  pca_.fit(scaler_.transform(raw), 0.95, 5);
  for (const auto& row : rows) pcs_.push_back(pca_.transform(scaler_.transform(row)));
}

double CpuLoadEstimator::estimate(std::span<const double> raw_features) const {
  const ml::Vector pcs = pca_.transform(scaler_.transform(raw_features));
  // Gather distances to every training program, keep the k closest.
  std::vector<std::pair<double, double>> by_distance;  // (distance, cpu)
  by_distance.reserve(pcs_.size());
  for (std::size_t i = 0; i < pcs_.size(); ++i)
    by_distance.emplace_back(ml::euclidean_distance(pcs, pcs_[i]), cpu_[i]);
  const std::size_t k = std::min(k_, by_distance.size());
  std::partial_sort(by_distance.begin(), by_distance.begin() + static_cast<std::ptrdiff_t>(k),
                    by_distance.end());

  // Inverse-distance weighting; an exact hit wins outright.
  double num = 0, den = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto& [d, cpu] = by_distance[i];
    if (d < 1e-12) return cpu;
    const double w = 1.0 / d;
    num += w * cpu;
    den += w;
  }
  return std::clamp(num / den, 0.01, 1.0);
}

}  // namespace smoe::sched
