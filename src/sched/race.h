// Best-arm-identification racing over replicated simulation cells
// (DESIGN.md §15). Instead of replicating every (policy, mix) cell to the
// same fixed budget, cells in a race *group* (the policies competing on one
// mix, or the gates competing at one load point) are sampled round by round
// and a cell stops as soon as its confidence interval separates from the
// group's current best arm — samples are spent only where the ranking is
// still uncertain, the successive-elimination idea MAGPIE's simmer/bai
// machinery applies to move racing.
//
// Determinism contract: a sample is a pure function of its (cell, replay)
// pair, and every statistical decision — accumulator updates, eliminations,
// convergence stops, final verdicts — is evaluated on the calling thread in
// canonical (replay round, cell index) order. The worker pool only
// *computes* sample values into pre-sized slots, so any --threads N is
// byte-identical to a sequential run. The one exception is an active
// --budget-seconds wall-clock cutoff: the cut point depends on machine
// speed, so budgeted runs are reproducible only in simulated time, not
// across machines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"

namespace smoe::sched {

struct RaceOptions {
  std::size_t min_replays = 2;   ///< Replays before any stop decision.
  std::size_t max_replays = 12;  ///< Fixed-budget ceiling per cell.
  /// Section 5.2 stop: a cell converges when its full CI width drops below
  /// this fraction of its mean.
  double target_rel_ci = 0.05;
  double confidence = 0.95;
  /// Student-t bounds for n < 30 (racing default — the normal approximation
  /// materially undercovers at 3..10 replays, which would eliminate arms on
  /// intervals that are too narrow). Legacy replication keeps normal bounds.
  bool use_t_bounds = true;
  /// Wall-clock budget in seconds; 0 = unlimited. When exceeded, cells that
  /// are still running stop as CellStop::kBudget with their current stats.
  double budget_seconds = 0;
};

enum class CellStop : std::uint8_t {
  kSeparated,  ///< CI separated below the group's best arm; eliminated early.
  kConverged,  ///< Own CI reached the Section 5.2 relative-width target.
  kBudget,     ///< Hit max_replays (or the wall-clock budget) undecided.
};

const char* to_string(CellStop stop);

/// One replay's worth of measurements for a cell. `value` is the racing
/// metric (higher is better); the rest ride along for reporting.
struct RaceSample {
  double value = 0;      ///< e.g. normalized STP
  double secondary = 0;  ///< e.g. ANTT reduction
  double makespan = 0;
  std::size_t oom = 0;
};

struct CellOutcome {
  std::size_t replays_used = 0;  ///< Samples consumed by the decision logic.
  double mean = 0;               ///< Mean racing metric over replays_used.
  double ci_half = 0;            ///< CI half-width at stop time (0 if n < 2).
  double secondary_mean = 0;
  double makespan_mean = 0;
  std::size_t oom_total = 0;  ///< Summed over consumed replays.
  CellStop stop = CellStop::kBudget;
  /// Final verdict: this cell's upper confidence bound lies strictly below
  /// the group best arm's lower bound (always false for the best arm itself).
  bool separated_from_best = false;
};

/// Feeds the worker pool one round of still-contested cells at a time,
/// widest relative confidence interval first, so workers drain uncertainty
/// instead of idling on converged cells. Purely an execution-order
/// optimization: compute() writes into per-cell slots and the replicator
/// consumes them in canonical order, so dispatch order never affects results.
/// Jobs marked caller_thread (non-cloneable policies, shared trace sinks) run
/// on the calling thread before the pool fan-out.
class SampleScheduler {
 public:
  struct Job {
    std::size_t cell = 0;
    std::size_t replay = 0;
    double priority = 0;  ///< Descending; ties broken by ascending cell index.
    bool caller_thread = false;
  };

  explicit SampleScheduler(ThreadPool& pool) : pool_(pool) {}

  /// Run every job exactly once (barrier on return). Pool-eligible jobs are
  /// dispatched in priority order.
  void run_round(std::vector<Job> jobs, const std::function<void(const Job&)>& compute);

 private:
  ThreadPool& pool_;
};

/// Races groups of cells with successive elimination under LUCB-style
/// confidence bounds. A group of one degenerates to the plain Section 5.2
/// replicate-until-CI loop (no elimination possible), which is how
/// ExperimentRunner::run_mix_replicated is implemented on top of this.
class RacingReplicator {
 public:
  /// Must return the same value for the same (cell, replay) on every call —
  /// replay seeds derived from the replay index, never from wall clock or
  /// call order. Called concurrently from pool workers unless the cell is
  /// marked caller-thread-only.
  using SampleFn = std::function<RaceSample(std::size_t cell, std::size_t replay)>;

  RacingReplicator(const RaceOptions& opt, ThreadPool& pool);

  /// Race `n_cells` cells; cells with equal `group_of` value race each other
  /// (group_of empty = one global group). `caller_only[c]` nonzero forces
  /// cell c's samples onto the calling thread. Returns one outcome per cell.
  std::vector<CellOutcome> race(std::size_t n_cells, const SampleFn& sample,
                                const std::vector<std::size_t>& group_of = {},
                                const std::vector<std::uint8_t>& caller_only = {});

  const RaceOptions& options() const { return opt_; }

 private:
  RaceOptions opt_;
  ThreadPool& pool_;
};

}  // namespace smoe::sched
