// Section 3.4 extension: the mixture-of-experts framework "can be extended
// to model other metrics, e.g. CPU contention". This estimator predicts an
// application's average CPU load from the same 22 runtime features the
// memory-expert selector uses — a K-nearest-neighbour regression over the
// training programs' measured loads — so a scheduler can make CPU-aware
// placement decisions even before a reliable /proc sample is available.
#pragma once

#include <span>
#include <vector>

#include "ml/knn.h"
#include "ml/pca.h"
#include "ml/scaling.h"
#include "workloads/features.h"
#include "workloads/suites.h"

namespace smoe::sched {

class CpuLoadEstimator {
 public:
  /// Trains on the 16 HiBench/BigDataBench programs' characterization runs
  /// and their measured isolation-mode CPU loads.
  CpuLoadEstimator(const wl::FeatureModel& features, std::uint64_t seed, std::size_t k = 3);

  /// Distance-weighted KNN estimate of the CPU load (fraction of one node).
  double estimate(std::span<const double> raw_features) const;

  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  ml::MinMaxScaler scaler_;
  ml::Pca pca_;
  std::vector<ml::Vector> pcs_;   // training-program positions
  std::vector<double> cpu_;       // measured training loads
};

}  // namespace smoe::sched
