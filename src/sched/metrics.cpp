#include "sched/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"

namespace smoe::sched {

IsolatedTimes::Key IsolatedTimes::make_key(const std::string& benchmark, Items input_items) {
  return {benchmark, static_cast<long long>(std::llround(input_items))};
}

Seconds IsolatedTimes::get(const std::string& benchmark, Items input_items) {
  const Key key = make_key(benchmark, input_items);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Measure outside the lock: ClusterSim::run builds per-run state, so
  // concurrent measurement runs are independent. A racing thread may compute
  // the same key; both arrive at the identical (deterministic) value.
  const Seconds t = sim_.isolated_exec_time({benchmark, input_items});
  SMOE_CHECK(t > 0, "isolated execution time must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.emplace(key, t).first->second;
}

void IsolatedTimes::warm(const std::vector<wl::TaskMix>& mixes, ThreadPool& pool) {
  // Deterministic, deduplicated work list of keys not yet cached.
  std::vector<std::pair<Key, Items>> missing;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& mix : mixes) {
      for (const auto& app : mix) {
        const Key key = make_key(app.benchmark, app.input_items);
        if (cache_.contains(key)) continue;
        if (std::any_of(missing.begin(), missing.end(),
                        [&](const auto& m) { return m.first == key; }))
          continue;
        missing.emplace_back(key, app.input_items);
      }
    }
  }
  if (missing.empty()) return;
  std::vector<Seconds> times(missing.size());
  pool.parallel_for_each(missing.size(), [&](std::size_t i) {
    times[i] = sim_.isolated_exec_time({missing[i].first.first, missing[i].second});
    SMOE_CHECK(times[i] > 0, "isolated execution time must be positive");
  });
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < missing.size(); ++i) cache_.emplace(missing[i].first, times[i]);
}

MixMetrics compute_metrics(const sim::SimResult& result, IsolatedTimes& iso) {
  SMOE_REQUIRE(!result.apps.empty(), "metrics: empty result");
  MixMetrics m;
  for (const auto& app : result.apps) {
    SMOE_REQUIRE(app.finish >= 0, "metrics: unfinished application " + app.benchmark);
    const Seconds c_is = iso.get(app.benchmark, app.input_items);
    const Seconds c_cl = app.turnaround();
    SMOE_CHECK(c_cl > 0, "metrics: non-positive turnaround");
    m.stp += c_is / c_cl;
    m.antt += c_cl / c_is;
  }
  m.antt /= static_cast<double>(result.apps.size());
  m.makespan = result.makespan;
  return m;
}

NormalizedMetrics normalize(const MixMetrics& scheme, const MixMetrics& baseline) {
  SMOE_REQUIRE(baseline.stp > 0 && baseline.antt > 0, "normalize: bad baseline");
  NormalizedMetrics n;
  n.norm_stp = scheme.stp / baseline.stp;
  n.antt_reduction = 1.0 - scheme.antt / baseline.antt;
  return n;
}

}  // namespace smoe::sched
