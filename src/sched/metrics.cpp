#include "sched/metrics.h"

#include <cmath>

#include "common/error.h"

namespace smoe::sched {

Seconds IsolatedTimes::get(const std::string& benchmark, Items input_items) {
  const auto key = std::make_pair(benchmark, static_cast<long long>(std::llround(input_items)));
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    const Seconds t = sim_.isolated_exec_time({benchmark, input_items});
    SMOE_CHECK(t > 0, "isolated execution time must be positive");
    it = cache_.emplace(key, t).first;
  }
  return it->second;
}

MixMetrics compute_metrics(const sim::SimResult& result, IsolatedTimes& iso) {
  SMOE_REQUIRE(!result.apps.empty(), "metrics: empty result");
  MixMetrics m;
  for (const auto& app : result.apps) {
    SMOE_REQUIRE(app.finish >= 0, "metrics: unfinished application " + app.benchmark);
    const Seconds c_is = iso.get(app.benchmark, app.input_items);
    const Seconds c_cl = app.turnaround();
    SMOE_CHECK(c_cl > 0, "metrics: non-positive turnaround");
    m.stp += c_is / c_cl;
    m.antt += c_cl / c_is;
  }
  m.antt /= static_cast<double>(result.apps.size());
  m.makespan = result.makespan;
  return m;
}

NormalizedMetrics normalize(const MixMetrics& scheme, const MixMetrics& baseline) {
  SMOE_REQUIRE(baseline.stp > 0 && baseline.antt > 0, "normalize: bad baseline");
  NormalizedMetrics n;
  n.norm_stp = scheme.stp / baseline.stp;
  n.antt_reduction = 1.0 - scheme.antt / baseline.antt;
  return n;
}

}  // namespace smoe::sched
