// Offline training-data generation (Section 3.3): profile each training
// program in isolation — one ~100 MB feature-extraction run plus a sweep of
// input sizes from ~300 MB to ~1 TB whose memory footprints are recorded —
// and assemble core::TrainingExample records. Also provides the per-test-app
// selector cache implementing the leave-one-out rule of Section 5.2.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "workloads/features.h"
#include "workloads/suites.h"

namespace smoe::sched {

struct ProfileOptions {
  std::size_t sweep_points = 10;         ///< log-spaced input sizes
  Items sweep_min = 300;                 ///< ~300 MB
  Items sweep_max = 1024 * 1024;         ///< ~1 TB
  double measurement_noise = 0.003;      ///< relative footprint jitter (averaged runs)
  Items feature_run_items = 100;         ///< ~100 MB characterization run
};

/// Profile one benchmark offline (isolated host, noisy measurements).
core::TrainingExample make_training_example(const wl::BenchmarkSpec& bench,
                                            const wl::FeatureModel& features,
                                            std::uint64_t seed,
                                            const ProfileOptions& opt = {});

/// Profile the 16 HiBench+BigDataBench programs, minus `excluded` names.
std::vector<core::TrainingExample> make_training_set(
    const wl::FeatureModel& features, std::uint64_t seed,
    const std::vector<std::string>& excluded = {}, const ProfileOptions& opt = {});

/// Trained selectors keyed by the test benchmark's exclusion set, so that
/// evaluating HB.Sort never trains on HB.Sort or its BDB twin. Entries stay
/// alive for the cache's lifetime (MemoryModels point into their pools).
/// Thread-safe: lookups (and first-miss training) serialize on an internal
/// mutex; returned entries are immutable and safe to read concurrently.
class SelectorCache {
 public:
  SelectorCache(const wl::FeatureModel& features, std::uint64_t seed,
                core::TrainerOptions trainer_options = {}, ProfileOptions profile_options = {});

  struct Entry {
    core::ExpertPool pool;
    core::SelectorModel selector;
  };

  /// Selector trained with the Section 5.2 exclusions for this benchmark.
  const Entry& for_test_benchmark(const std::string& benchmark_name);

 private:
  const wl::FeatureModel& features_;
  std::uint64_t seed_;
  core::TrainerOptions trainer_options_;
  ProfileOptions profile_options_;
  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Entry>> cache_;
};

}  // namespace smoe::sched
