// Non-learned scheduling policies: the isolated baseline, the Pairwise
// comparator, the Oracle upper bound, and the online-search scheme
// (Sections 5.4 and 6.5).
#pragma once

#include <cstdint>
#include <memory>

#include "sparksim/policy.h"

namespace smoe::sched {

/// The normalization baseline: applications one by one, exclusive memory.
class IsolatedPolicy final : public sim::SchedulingPolicy {
 public:
  std::string name() const override { return "Isolated"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kIsolated; }
  sim::ProfilingCost profile(sim::AppProbe&, sim::MemoryEstimate&) override { return {}; }
  std::unique_ptr<sim::SchedulingPolicy> clone() const override {
    return std::make_unique<IsolatedPolicy>(*this);
  }
};

/// Pairwise co-location: at most one extra task per host, heap set to all
/// free memory, Spark-default chunking (Section 5.4).
class PairwisePolicy final : public sim::SchedulingPolicy {
 public:
  std::string name() const override { return "Pairwise"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPairwise; }
  sim::ProfilingCost profile(sim::AppProbe&, sim::MemoryEstimate&) override { return {}; }
  std::unique_ptr<sim::SchedulingPolicy> clone() const override {
    return std::make_unique<PairwisePolicy>(*this);
  }
};

/// Perfect memory predictor with zero profiling overhead; defines the upper
/// bound our approach is measured against (83.9% / 93.4% of Oracle).
class OraclePolicy final : public sim::SchedulingPolicy {
 public:
  std::string name() const override { return "Oracle"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPredictive; }
  sim::ProfilingCost profile(sim::AppProbe& probe, sim::MemoryEstimate& estimate) override;
  std::unique_ptr<sim::SchedulingPolicy> clone() const override {
    return std::make_unique<OraclePolicy>(*this);
  }
};

/// Descent-gradient online search (Section 6.5): no model — the right chunk
/// size for a budget is found by repeated trial runs at dispatch time, which
/// is accurate but pays a large per-spawn probing overhead.
class OnlineSearchPolicy final : public sim::SchedulingPolicy {
 public:
  /// `search_overhead` is the probing cost as a fraction of each chunk's
  /// processing time.
  explicit OnlineSearchPolicy(double search_overhead = 1.25);

  std::string name() const override { return "OnlineSearch"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPredictive; }
  double spawn_search_overhead() const override { return search_overhead_; }
  sim::ProfilingCost profile(sim::AppProbe& probe, sim::MemoryEstimate& estimate) override;
  std::unique_ptr<sim::SchedulingPolicy> clone() const override {
    return std::make_unique<OnlineSearchPolicy>(*this);
  }

 private:
  double search_overhead_;
};

}  // namespace smoe::sched
