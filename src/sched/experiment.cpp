#include "sched/experiment.h"

#include <memory>
#include <span>

#include "common/error.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/sink.h"

namespace smoe::sched {

namespace {

SchemeScenarioResult aggregate_scheme(std::string scheme, std::string scenario,
                                      std::span<const double> stps,
                                      std::span<const double> antt_reds,
                                      std::span<const double> makespans, std::size_t oom) {
  SchemeScenarioResult r;
  r.scheme = std::move(scheme);
  r.scenario = std::move(scenario);
  r.stp_geomean = geomean(stps);
  r.stp_min = min_of(stps);
  r.stp_max = max_of(stps);
  r.antt_red_mean = mean(antt_reds);
  r.antt_red_min = min_of(antt_reds);
  r.antt_red_max = max_of(antt_reds);
  r.mean_makespan = mean(makespans);
  r.oom_total = oom;
  return r;
}

}  // namespace

ExperimentRunner::ExperimentRunner(sim::SimConfig config, const wl::FeatureModel& features,
                                   std::size_t n_mixes, std::uint64_t mix_seed,
                                   std::size_t n_threads)
    : features_(features), sim_(config, features), iso_(sim_), n_mixes_(n_mixes),
      mix_seed_(mix_seed), pool_(n_threads) {
  SMOE_REQUIRE(n_mixes >= 1, "need >= 1 mix");
}

bool ExperimentRunner::tracing() const {
  const obs::EventSink* sink = sim_.config().sink;
  return sink != nullptr && sink->enabled();
}

ReplicatedMetrics ExperimentRunner::run_mix_replicated(const wl::TaskMix& mix,
                                                       sim::SchedulingPolicy& policy,
                                                       std::size_t max_replays,
                                                       double target_rel_ci) {
  SMOE_REQUIRE(max_replays >= 2, "replication needs >= 2 replays");
  SMOE_REQUIRE(target_rel_ci > 0.0, "replication: bad CI target");

  iso_.warm({mix}, pool_);
  const MixMetrics baseline =
      compute_metrics(sim_.run(mix, baseline_policy_, nullptr), iso_);

  // A single-cell race: no elimination possible, so the racer degenerates to
  // the plain Section 5.2 replicate-until-CI loop, one replay per round with
  // the stop evaluated after each — no surplus replays to discard. Normal
  // bounds keep the stop rule byte-comparable with the pre-racing waves.
  RaceOptions opt;
  opt.max_replays = max_replays;
  opt.target_rel_ci = target_rel_ci;
  opt.use_t_bounds = false;
  RacingReplicator racer(opt, pool_);
  // A shared trace sink or a non-cloneable policy keeps replays on this
  // thread (ordered trace, un-clonable state); otherwise each replay runs a
  // clone, like the old wave fan-out.
  const bool inline_only = tracing() || policy.clone() == nullptr;
  const auto sample = [&](std::size_t, std::size_t replay) -> RaceSample {
    sim::SimConfig cfg = sim_.config();
    cfg.seed = Rng::derive(cfg.seed, "replay:" + std::to_string(replay));
    sim::ClusterSim replay_sim(cfg, features_);
    const std::unique_ptr<sim::SchedulingPolicy> local = inline_only ? nullptr : policy.clone();
    sim::SchedulingPolicy& p = local ? *local : policy;
    const NormalizedMetrics norm =
        normalize(compute_metrics(replay_sim.run(mix, p), iso_), baseline);
    return {norm.norm_stp, norm.antt_reduction, 0.0, 0};
  };
  const CellOutcome cell =
      racer.race(1, sample, {}, {static_cast<std::uint8_t>(inline_only ? 1 : 0)}).front();

  ReplicatedMetrics out;
  out.stp_mean = cell.mean;
  out.stp_ci_half = cell.ci_half;
  out.antt_reduction_mean = cell.secondary_mean;
  out.replays = cell.replays_used;
  out.converged = cell.stop == CellStop::kConverged;
  return out;
}

ExperimentRunner::SingleMix ExperimentRunner::run_mix(const wl::TaskMix& mix,
                                                      sim::SchedulingPolicy& policy) {
  SingleMix out;
  out.result = sim_.run(mix, policy);
  out.metrics = compute_metrics(out.result, iso_);
  const sim::SimResult base = sim_.run(mix, baseline_policy_, nullptr);
  out.normalized = normalize(out.metrics, compute_metrics(base, iso_));
  return out;
}

std::vector<SchemeScenarioResult> ExperimentRunner::run_scenario(
    const wl::Scenario& scenario, const std::vector<sim::SchedulingPolicy*>& policies) {
  SMOE_REQUIRE(!policies.empty(), "no policies");
  for (sim::SchedulingPolicy* policy : policies) SMOE_REQUIRE(policy != nullptr, "null policy");
  const std::vector<wl::TaskMix> mixes = wl::scenario_mixes(scenario, n_mixes_, mix_seed_);

  // Pre-warm the isolated-time cache so the fan-out below only reads it.
  iso_.warm(mixes, pool_);

  // With a single shared trace sink everything stays on this thread: events
  // from concurrent runs would interleave in the sink. A sink *factory*
  // lifts that restriction — every cell traces into its own sink, so the
  // sweep fans out even when traced. Results are identical either way; only
  // the wall clock differs.
  const bool parallel = pool_.size() > 1 && (sink_factory_ != nullptr || !tracing());

  const std::vector<MixMetrics> baselines = mix_baselines(mixes, parallel);

  // One cell per (policy, mix), written into pre-sized slots so the
  // aggregation below consumes them in the exact sequential order no matter
  // which worker finished first.
  struct Cell {
    NormalizedMetrics norm;
    double makespan = 0;
    std::size_t oom = 0;
  };
  std::vector<Cell> cells(policies.size() * mixes.size());
  auto run_cell = [&](std::size_t p, std::size_t m, sim::SchedulingPolicy& policy) {
    sim::SimResult result;
    if (sink_factory_ != nullptr) {
      // Each cell's sink sees exactly one deterministic run, so the per-cell
      // byte stream is independent of which worker ran it or when.
      const std::unique_ptr<obs::EventSink> cell_sink = sink_factory_->make(
          scenario.label + "/" + policies[p]->name() + "/mix" + std::to_string(m));
      result = sim_.run(mixes[m], policy, cell_sink.get());
      cell_sink->close();
    } else {
      result = sim_.run(mixes[m], policy);
    }
    Cell& cell = cells[p * mixes.size() + m];
    cell.norm = normalize(compute_metrics(result, iso_), baselines[m]);
    cell.makespan = result.makespan;
    cell.oom = result.oom_total;
  };

  if (parallel) {
    // Cloneable policies fan every cell out; the rest run here. Learned
    // policies build their training caches on first use — profile() already
    // serializes cache misses internally, so cold-start jobs are safe.
    std::vector<std::size_t> sequential_policies;
    std::vector<std::pair<std::size_t, std::size_t>> jobs;
    jobs.reserve(policies.size() * mixes.size());
    for (std::size_t p = 0; p < policies.size(); ++p) {
      if (policies[p]->clone() == nullptr) {
        sequential_policies.push_back(p);
        continue;
      }
      for (std::size_t m = 0; m < mixes.size(); ++m) jobs.emplace_back(p, m);
    }
    pool_.parallel_for_each(jobs.size(), [&](std::size_t j) {
      const auto [p, m] = jobs[j];
      const std::unique_ptr<sim::SchedulingPolicy> local = policies[p]->clone();
      run_cell(p, m, *local);
    });
    for (const std::size_t p : sequential_policies)
      for (std::size_t m = 0; m < mixes.size(); ++m) run_cell(p, m, *policies[p]);
  } else {
    for (std::size_t p = 0; p < policies.size(); ++p)
      for (std::size_t m = 0; m < mixes.size(); ++m) run_cell(p, m, *policies[p]);
  }

  // Aggregation in sequential order — byte-identical at any thread count.
  std::vector<SchemeScenarioResult> out;
  out.reserve(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::vector<double> stps, antt_reds, makespans;
    std::size_t oom = 0;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      const Cell& cell = cells[p * mixes.size() + m];
      stps.push_back(cell.norm.norm_stp);
      antt_reds.push_back(cell.norm.antt_reduction);
      makespans.push_back(cell.makespan);
      oom += cell.oom;
    }
    out.push_back(
        aggregate_scheme(policies[p]->name(), scenario.label, stps, antt_reds, makespans, oom));
  }
  return out;
}

std::vector<MixMetrics> ExperimentRunner::mix_baselines(const std::vector<wl::TaskMix>& mixes,
                                                        bool parallel) {
  // Baseline metrics once per mix, shared by every scheme; never traced.
  // Each job uses a local baseline policy instance so metrics bindings never
  // cross threads.
  std::vector<MixMetrics> baselines(mixes.size());
  auto run_baseline = [&](std::size_t m, sim::SchedulingPolicy& p) {
    baselines[m] = compute_metrics(sim_.run(mixes[m], p, nullptr), iso_);
  };
  if (parallel && pool_.size() > 1) {
    pool_.parallel_for_each(mixes.size(), [&](std::size_t m) {
      IsolatedPolicy baseline;
      run_baseline(m, baseline);
    });
  } else {
    for (std::size_t m = 0; m < mixes.size(); ++m) run_baseline(m, baseline_policy_);
  }
  return baselines;
}

RaceSample ExperimentRunner::replay_cell(const std::vector<wl::TaskMix>& mixes,
                                         const std::vector<MixMetrics>& baselines,
                                         const std::vector<sim::SchedulingPolicy*>& policies,
                                         const std::vector<std::uint8_t>& caller_only,
                                         std::size_t p, std::size_t m, std::size_t replay) {
  sim::SimConfig cfg = sim_.config();
  cfg.seed = Rng::derive(cfg.seed, "replay:" + std::to_string(replay));
  sim::ClusterSim replay_sim(cfg, features_);
  const std::unique_ptr<sim::SchedulingPolicy> local =
      caller_only[p] ? nullptr : policies[p]->clone();
  sim::SchedulingPolicy& policy = local ? *local : *policies[p];
  // Replays are statistical samples, never traced (explicit null sink).
  const sim::SimResult result = replay_sim.run(mixes[m], policy, nullptr);
  const NormalizedMetrics norm = normalize(compute_metrics(result, iso_), baselines[m]);
  return {norm.norm_stp, norm.antt_reduction, result.makespan, result.oom_total};
}

ExperimentRunner::RacedScenarioResult ExperimentRunner::run_scenario_raced(
    const wl::Scenario& scenario, const std::vector<sim::SchedulingPolicy*>& policies,
    const RaceOptions& race) {
  SMOE_REQUIRE(!policies.empty(), "no policies");
  for (sim::SchedulingPolicy* policy : policies) SMOE_REQUIRE(policy != nullptr, "null policy");
  const std::vector<wl::TaskMix> mixes = wl::scenario_mixes(scenario, n_mixes_, mix_seed_);
  iso_.warm(mixes, pool_);
  const std::vector<MixMetrics> baselines = mix_baselines(mixes, true);

  const std::size_t n_policies = policies.size();
  const std::size_t n_mixes = mixes.size();
  std::vector<std::uint8_t> policy_caller_only(n_policies, 0);
  for (std::size_t p = 0; p < n_policies; ++p)
    policy_caller_only[p] = policies[p]->clone() == nullptr ? 1 : 0;

  // Internal cell ids are mix-major so each race group (all the policies on
  // one mix, replaying with paired noise seeds) is contiguous and mean ties
  // break toward the earlier policy in the caller's list.
  std::vector<std::size_t> group_of(n_policies * n_mixes);
  std::vector<std::uint8_t> caller_only(n_policies * n_mixes);
  for (std::size_t m = 0; m < n_mixes; ++m) {
    for (std::size_t p = 0; p < n_policies; ++p) {
      group_of[m * n_policies + p] = m;
      caller_only[m * n_policies + p] = policy_caller_only[p];
    }
  }

  RacingReplicator racer(race, pool_);
  const std::vector<CellOutcome> raced = racer.race(
      n_policies * n_mixes,
      [&](std::size_t cell, std::size_t replay) {
        return replay_cell(mixes, baselines, policies, policy_caller_only, cell % n_policies,
                           cell / n_policies, replay);
      },
      group_of, caller_only);

  RacedScenarioResult out;
  out.cells.resize(n_policies * n_mixes);
  out.fixed_budget_simulations = n_policies * n_mixes * race.max_replays;
  for (std::size_t m = 0; m < n_mixes; ++m)
    for (std::size_t p = 0; p < n_policies; ++p)
      out.cells[p * n_mixes + m] = raced[m * n_policies + p];
  for (const CellOutcome& cell : out.cells) out.total_simulations += cell.replays_used;
  out.samples_saved_pct =
      100.0 * (1.0 - static_cast<double>(out.total_simulations) /
                         static_cast<double>(out.fixed_budget_simulations));

  out.schemes.reserve(n_policies);
  for (std::size_t p = 0; p < n_policies; ++p) {
    std::vector<double> stps, antt_reds, makespans;
    std::size_t oom = 0;
    for (std::size_t m = 0; m < n_mixes; ++m) {
      const CellOutcome& cell = out.cells[p * n_mixes + m];
      stps.push_back(cell.mean);
      antt_reds.push_back(cell.secondary_mean);
      makespans.push_back(cell.makespan_mean);
      oom += cell.oom_total;
    }
    out.schemes.push_back(
        aggregate_scheme(policies[p]->name(), scenario.label, stps, antt_reds, makespans, oom));
  }
  return out;
}

ExperimentRunner::ReplicatedScenarioResult ExperimentRunner::run_scenario_replicated(
    const wl::Scenario& scenario, const std::vector<sim::SchedulingPolicy*>& policies,
    std::size_t max_replays, double target_rel_ci, std::size_t wave) {
  SMOE_REQUIRE(!policies.empty(), "no policies");
  for (sim::SchedulingPolicy* policy : policies) SMOE_REQUIRE(policy != nullptr, "null policy");
  SMOE_REQUIRE(max_replays >= 2, "replication needs >= 2 replays");
  SMOE_REQUIRE(target_rel_ci > 0.0, "replication: bad CI target");
  const std::vector<wl::TaskMix> mixes = wl::scenario_mixes(scenario, n_mixes_, mix_seed_);
  iso_.warm(mixes, pool_);
  const std::vector<MixMetrics> baselines = mix_baselines(mixes, true);

  const std::size_t n_policies = policies.size();
  const std::size_t n_mixes = mixes.size();
  const std::size_t wave_n =
      std::min(wave == 0 ? std::max<std::size_t>(pool_.size(), 1) : wave, max_replays);
  std::vector<std::uint8_t> policy_caller_only(n_policies, 0);
  for (std::size_t p = 0; p < n_policies; ++p)
    policy_caller_only[p] = policies[p]->clone() == nullptr ? 1 : 0;

  ReplicatedScenarioResult out;
  out.cells.resize(n_policies * n_mixes);
  std::vector<std::size_t> executed(n_policies * n_mixes, 0);
  std::vector<double> cell_makespan(n_policies * n_mixes, 0);
  std::vector<std::size_t> cell_oom(n_policies * n_mixes, 0);

  // One pool job per cell; replays inside a cell stay sequential (the legacy
  // wave loop), so the executed-replay totals are a pure function of
  // (wave_n, max_replays, seeds) and never of the thread count.
  auto run_cell = [&](std::size_t p, std::size_t m) {
    Welford stp, antt_red, makespan;
    std::size_t oom = 0;
    ReplicatedMetrics rm;
    std::vector<RaceSample> samples(wave_n);
    for (std::size_t start = 0; start < max_replays && !rm.converged; start += wave_n) {
      const std::size_t count = std::min(wave_n, max_replays - start);
      executed[p * n_mixes + m] += count;
      for (std::size_t i = 0; i < count; ++i)
        samples[i] = replay_cell(mixes, baselines, policies, policy_caller_only, p, m, start + i);
      // The Section 5.2 early stop in replay order; the rest of the wave is
      // executed-and-discarded, exactly like the old pool waves.
      for (std::size_t i = 0; i < count && !rm.converged; ++i) {
        stp.add(samples[i].value);
        antt_red.add(samples[i].secondary);
        makespan.add(samples[i].makespan);
        oom += samples[i].oom;
        rm.replays = start + i + 1;
        if (stp.count() >= 2) {
          rm.stp_mean = stp.mean();
          rm.stp_ci_half = stp.ci_half_width();
          if (2.0 * rm.stp_ci_half < target_rel_ci * rm.stp_mean) rm.converged = true;
        }
      }
    }
    rm.stp_mean = stp.mean();
    rm.stp_ci_half = stp.ci_half_width();
    rm.antt_reduction_mean = antt_red.mean();
    out.cells[p * n_mixes + m] = rm;
    cell_makespan[p * n_mixes + m] = makespan.mean();
    cell_oom[p * n_mixes + m] = oom;
  };

  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  std::vector<std::size_t> sequential_policies;
  for (std::size_t p = 0; p < n_policies; ++p) {
    if (policy_caller_only[p]) {
      sequential_policies.push_back(p);
      continue;
    }
    for (std::size_t m = 0; m < n_mixes; ++m) jobs.emplace_back(p, m);
  }
  pool_.parallel_for_each(jobs.size(), [&](std::size_t j) { run_cell(jobs[j].first, jobs[j].second); });
  for (const std::size_t p : sequential_policies)
    for (std::size_t m = 0; m < n_mixes; ++m) run_cell(p, m);

  for (const std::size_t n : executed) out.total_simulations += n;
  out.schemes.reserve(n_policies);
  for (std::size_t p = 0; p < n_policies; ++p) {
    std::vector<double> stps, antt_reds, makespans;
    std::size_t oom = 0;
    for (std::size_t m = 0; m < n_mixes; ++m) {
      stps.push_back(out.cells[p * n_mixes + m].stp_mean);
      antt_reds.push_back(out.cells[p * n_mixes + m].antt_reduction_mean);
      makespans.push_back(cell_makespan[p * n_mixes + m]);
      oom += cell_oom[p * n_mixes + m];
    }
    out.schemes.push_back(
        aggregate_scheme(policies[p]->name(), scenario.label, stps, antt_reds, makespans, oom));
  }
  return out;
}

obs::RunReport make_run_report(const ExperimentRunner::SingleMix& run, std::string title) {
  obs::RunReport report;
  report.title = std::move(title);
  const sim::SimResult& r = run.result;
  report.add("applications", std::to_string(r.apps.size()))
      .add("makespan (min)", TextTable::num(r.makespan / 60.0, 1))
      .add("normalized STP", TextTable::num(run.normalized.norm_stp, 2) + "x")
      .add("ANTT reduction", TextTable::pct(run.normalized.antt_reduction, 1))
      .add("mean node utilization", TextTable::pct(r.trace.overall_mean(), 1))
      .add("executors spawned", std::to_string(r.executors_spawned))
      .add("executors degraded", std::to_string(r.executors_degraded))
      .add("OOM kills", std::to_string(r.oom_total))
      .add("peak node occupancy", std::to_string(r.peak_node_occupancy))
      .add("GiB-hours reserved/used", TextTable::num(r.reserved_gib_hours, 0) + " / " +
                                          TextTable::num(r.used_gib_hours, 0));
  report.metrics = r.metrics;
  return report;
}

}  // namespace smoe::sched
