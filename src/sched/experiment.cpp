#include "sched/experiment.h"

#include <memory>

#include "common/error.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/sink.h"

namespace smoe::sched {

ExperimentRunner::ExperimentRunner(sim::SimConfig config, const wl::FeatureModel& features,
                                   std::size_t n_mixes, std::uint64_t mix_seed,
                                   std::size_t n_threads)
    : features_(features), sim_(config, features), iso_(sim_), n_mixes_(n_mixes),
      mix_seed_(mix_seed), pool_(n_threads) {
  SMOE_REQUIRE(n_mixes >= 1, "need >= 1 mix");
}

bool ExperimentRunner::tracing() const {
  const obs::EventSink* sink = sim_.config().sink;
  return sink != nullptr && sink->enabled();
}

ReplicatedMetrics ExperimentRunner::run_mix_replicated(const wl::TaskMix& mix,
                                                       sim::SchedulingPolicy& policy,
                                                       std::size_t max_replays,
                                                       double target_rel_ci) {
  SMOE_REQUIRE(max_replays >= 2, "replication needs >= 2 replays");
  SMOE_REQUIRE(target_rel_ci > 0.0, "replication: bad CI target");

  iso_.warm({mix}, pool_);
  const MixMetrics baseline =
      compute_metrics(sim_.run(mix, baseline_policy_, nullptr), iso_);

  // All replay simulations up-front, in pool-sized waves. Each replay owns a
  // ClusterSim and (when fanned out) a policy clone; replay r always uses the
  // seed derived from r, so the sequence of results is the same at any wave
  // size. A non-cloneable policy (or an attached trace sink) degrades to
  // wave size 1 == the plain sequential loop.
  const std::size_t wave =
      tracing() ? 1 : std::min(std::max<std::size_t>(pool_.size(), 1), max_replays);
  std::vector<NormalizedMetrics> replay(max_replays);
  auto run_replay = [&](std::size_t r, sim::SchedulingPolicy& p) {
    sim::SimConfig cfg = sim_.config();
    cfg.seed = Rng::derive(cfg.seed, "replay:" + std::to_string(r));
    sim::ClusterSim replay_sim(cfg, features_);
    replay[r] = normalize(compute_metrics(replay_sim.run(mix, p), iso_), baseline);
  };

  std::vector<double> stps, antt_reds;
  ReplicatedMetrics out;
  for (std::size_t start = 0; start < max_replays && !out.converged; start += wave) {
    const std::size_t count = std::min(wave, max_replays - start);
    if (count > 1 && policy.clone() != nullptr) {
      pool_.parallel_for_each(count, [&](std::size_t i) {
        const auto local = policy.clone();
        run_replay(start + i, *local);
      });
    } else {
      for (std::size_t i = 0; i < count; ++i) run_replay(start + i, policy);
    }
    // The Section 5.2 early stop, evaluated strictly in replay order; surplus
    // replays computed by the wave are discarded, matching a sequential run.
    for (std::size_t i = 0; i < count && !out.converged; ++i) {
      const std::size_t r = start + i;
      stps.push_back(replay[r].norm_stp);
      antt_reds.push_back(replay[r].antt_reduction);
      out.replays = r + 1;
      if (stps.size() >= 2) {
        out.stp_mean = mean(stps);
        out.stp_ci_half = ci_half_width(stps);
        if (2.0 * out.stp_ci_half < target_rel_ci * out.stp_mean) out.converged = true;
      }
    }
  }
  out.stp_mean = mean(stps);
  out.stp_ci_half = ci_half_width(stps);
  out.antt_reduction_mean = mean(antt_reds);
  return out;
}

ExperimentRunner::SingleMix ExperimentRunner::run_mix(const wl::TaskMix& mix,
                                                      sim::SchedulingPolicy& policy) {
  SingleMix out;
  out.result = sim_.run(mix, policy);
  out.metrics = compute_metrics(out.result, iso_);
  const sim::SimResult base = sim_.run(mix, baseline_policy_, nullptr);
  out.normalized = normalize(out.metrics, compute_metrics(base, iso_));
  return out;
}

std::vector<SchemeScenarioResult> ExperimentRunner::run_scenario(
    const wl::Scenario& scenario, const std::vector<sim::SchedulingPolicy*>& policies) {
  SMOE_REQUIRE(!policies.empty(), "no policies");
  for (sim::SchedulingPolicy* policy : policies) SMOE_REQUIRE(policy != nullptr, "null policy");
  const std::vector<wl::TaskMix> mixes = wl::scenario_mixes(scenario, n_mixes_, mix_seed_);

  // Pre-warm the isolated-time cache so the fan-out below only reads it.
  iso_.warm(mixes, pool_);

  // With a single shared trace sink everything stays on this thread: events
  // from concurrent runs would interleave in the sink. A sink *factory*
  // lifts that restriction — every cell traces into its own sink, so the
  // sweep fans out even when traced. Results are identical either way; only
  // the wall clock differs.
  const bool parallel = pool_.size() > 1 && (sink_factory_ != nullptr || !tracing());

  // Baseline metrics once per mix, shared by every scheme. Each job uses a
  // local baseline policy instance so metrics bindings never cross threads.
  std::vector<MixMetrics> baselines(mixes.size());
  auto run_baseline = [&](std::size_t m, sim::SchedulingPolicy& p) {
    baselines[m] = compute_metrics(sim_.run(mixes[m], p, nullptr), iso_);
  };
  if (parallel) {
    pool_.parallel_for_each(mixes.size(), [&](std::size_t m) {
      IsolatedPolicy baseline;
      run_baseline(m, baseline);
    });
  } else {
    for (std::size_t m = 0; m < mixes.size(); ++m) run_baseline(m, baseline_policy_);
  }

  // One cell per (policy, mix), written into pre-sized slots so the
  // aggregation below consumes them in the exact sequential order no matter
  // which worker finished first.
  struct Cell {
    NormalizedMetrics norm;
    double makespan = 0;
    std::size_t oom = 0;
  };
  std::vector<Cell> cells(policies.size() * mixes.size());
  auto run_cell = [&](std::size_t p, std::size_t m, sim::SchedulingPolicy& policy) {
    sim::SimResult result;
    if (sink_factory_ != nullptr) {
      // Each cell's sink sees exactly one deterministic run, so the per-cell
      // byte stream is independent of which worker ran it or when.
      const std::unique_ptr<obs::EventSink> cell_sink = sink_factory_->make(
          scenario.label + "/" + policies[p]->name() + "/mix" + std::to_string(m));
      result = sim_.run(mixes[m], policy, cell_sink.get());
      cell_sink->close();
    } else {
      result = sim_.run(mixes[m], policy);
    }
    Cell& cell = cells[p * mixes.size() + m];
    cell.norm = normalize(compute_metrics(result, iso_), baselines[m]);
    cell.makespan = result.makespan;
    cell.oom = result.oom_total;
  };

  if (parallel) {
    // Cloneable policies fan every cell out; the rest run here. Learned
    // policies build their training caches on first use — profile() already
    // serializes cache misses internally, so cold-start jobs are safe.
    std::vector<std::size_t> sequential_policies;
    std::vector<std::pair<std::size_t, std::size_t>> jobs;
    jobs.reserve(policies.size() * mixes.size());
    for (std::size_t p = 0; p < policies.size(); ++p) {
      if (policies[p]->clone() == nullptr) {
        sequential_policies.push_back(p);
        continue;
      }
      for (std::size_t m = 0; m < mixes.size(); ++m) jobs.emplace_back(p, m);
    }
    pool_.parallel_for_each(jobs.size(), [&](std::size_t j) {
      const auto [p, m] = jobs[j];
      const std::unique_ptr<sim::SchedulingPolicy> local = policies[p]->clone();
      run_cell(p, m, *local);
    });
    for (const std::size_t p : sequential_policies)
      for (std::size_t m = 0; m < mixes.size(); ++m) run_cell(p, m, *policies[p]);
  } else {
    for (std::size_t p = 0; p < policies.size(); ++p)
      for (std::size_t m = 0; m < mixes.size(); ++m) run_cell(p, m, *policies[p]);
  }

  // Aggregation in sequential order — byte-identical at any thread count.
  std::vector<SchemeScenarioResult> out;
  out.reserve(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::vector<double> stps, antt_reds, makespans;
    std::size_t oom = 0;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      const Cell& cell = cells[p * mixes.size() + m];
      stps.push_back(cell.norm.norm_stp);
      antt_reds.push_back(cell.norm.antt_reduction);
      makespans.push_back(cell.makespan);
      oom += cell.oom;
    }
    SchemeScenarioResult r;
    r.scheme = policies[p]->name();
    r.scenario = scenario.label;
    r.stp_geomean = geomean(stps);
    r.stp_min = min_of(stps);
    r.stp_max = max_of(stps);
    r.antt_red_mean = mean(antt_reds);
    r.antt_red_min = min_of(antt_reds);
    r.antt_red_max = max_of(antt_reds);
    r.mean_makespan = mean(makespans);
    r.oom_total = oom;
    out.push_back(std::move(r));
  }
  return out;
}

obs::RunReport make_run_report(const ExperimentRunner::SingleMix& run, std::string title) {
  obs::RunReport report;
  report.title = std::move(title);
  const sim::SimResult& r = run.result;
  report.add("applications", std::to_string(r.apps.size()))
      .add("makespan (min)", TextTable::num(r.makespan / 60.0, 1))
      .add("normalized STP", TextTable::num(run.normalized.norm_stp, 2) + "x")
      .add("ANTT reduction", TextTable::pct(run.normalized.antt_reduction, 1))
      .add("mean node utilization", TextTable::pct(r.trace.overall_mean(), 1))
      .add("executors spawned", std::to_string(r.executors_spawned))
      .add("executors degraded", std::to_string(r.executors_degraded))
      .add("OOM kills", std::to_string(r.oom_total))
      .add("peak node occupancy", std::to_string(r.peak_node_occupancy))
      .add("GiB-hours reserved/used", TextTable::num(r.reserved_gib_hours, 0) + " / " +
                                          TextTable::num(r.used_gib_hours, 0));
  report.metrics = r.metrics;
  return report;
}

}  // namespace smoe::sched
