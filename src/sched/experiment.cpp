#include "sched/experiment.h"

#include "common/error.h"
#include "common/stats.h"
#include "common/table.h"

namespace smoe::sched {

ExperimentRunner::ExperimentRunner(sim::SimConfig config, const wl::FeatureModel& features,
                                   std::size_t n_mixes, std::uint64_t mix_seed)
    : features_(features), sim_(config, features), iso_(sim_), n_mixes_(n_mixes),
      mix_seed_(mix_seed) {
  SMOE_REQUIRE(n_mixes >= 1, "need >= 1 mix");
}

ReplicatedMetrics ExperimentRunner::run_mix_replicated(const wl::TaskMix& mix,
                                                       sim::SchedulingPolicy& policy,
                                                       std::size_t max_replays,
                                                       double target_rel_ci) {
  SMOE_REQUIRE(max_replays >= 2, "replication needs >= 2 replays");
  SMOE_REQUIRE(target_rel_ci > 0.0, "replication: bad CI target");

  const MixMetrics baseline =
      compute_metrics(sim_.run(mix, baseline_policy_, nullptr), iso_);
  std::vector<double> stps, antt_reds;
  ReplicatedMetrics out;
  for (std::size_t r = 0; r < max_replays; ++r) {
    sim::SimConfig cfg = sim_.config();
    cfg.seed = Rng::derive(cfg.seed, "replay:" + std::to_string(r));
    sim::ClusterSim replay_sim(cfg, features_);
    const NormalizedMetrics norm =
        normalize(compute_metrics(replay_sim.run(mix, policy), iso_), baseline);
    stps.push_back(norm.norm_stp);
    antt_reds.push_back(norm.antt_reduction);
    out.replays = r + 1;
    if (stps.size() >= 2) {
      out.stp_mean = mean(stps);
      out.stp_ci_half = ci_half_width(stps);
      if (2.0 * out.stp_ci_half < target_rel_ci * out.stp_mean) {
        out.converged = true;
        break;
      }
    }
  }
  out.stp_mean = mean(stps);
  out.stp_ci_half = ci_half_width(stps);
  out.antt_reduction_mean = mean(antt_reds);
  return out;
}

ExperimentRunner::SingleMix ExperimentRunner::run_mix(const wl::TaskMix& mix,
                                                      sim::SchedulingPolicy& policy) {
  SingleMix out;
  out.result = sim_.run(mix, policy);
  out.metrics = compute_metrics(out.result, iso_);
  const sim::SimResult base = sim_.run(mix, baseline_policy_, nullptr);
  out.normalized = normalize(out.metrics, compute_metrics(base, iso_));
  return out;
}

std::vector<SchemeScenarioResult> ExperimentRunner::run_scenario(
    const wl::Scenario& scenario, const std::vector<sim::SchedulingPolicy*>& policies) {
  SMOE_REQUIRE(!policies.empty(), "no policies");
  const std::vector<wl::TaskMix> mixes = wl::scenario_mixes(scenario, n_mixes_, mix_seed_);

  // Baseline metrics once per mix, shared by every scheme.
  std::vector<MixMetrics> baselines;
  baselines.reserve(mixes.size());
  for (const auto& mix : mixes)
    baselines.push_back(compute_metrics(sim_.run(mix, baseline_policy_, nullptr), iso_));

  std::vector<SchemeScenarioResult> out;
  for (sim::SchedulingPolicy* policy : policies) {
    SMOE_REQUIRE(policy != nullptr, "null policy");
    std::vector<double> stps, antt_reds, makespans;
    std::size_t oom = 0;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      const sim::SimResult result = sim_.run(mixes[m], *policy);
      const NormalizedMetrics norm = normalize(compute_metrics(result, iso_), baselines[m]);
      stps.push_back(norm.norm_stp);
      antt_reds.push_back(norm.antt_reduction);
      makespans.push_back(result.makespan);
      oom += result.oom_total;
    }
    SchemeScenarioResult r;
    r.scheme = policy->name();
    r.scenario = scenario.label;
    r.stp_geomean = geomean(stps);
    r.stp_min = min_of(stps);
    r.stp_max = max_of(stps);
    r.antt_red_mean = mean(antt_reds);
    r.antt_red_min = min_of(antt_reds);
    r.antt_red_max = max_of(antt_reds);
    r.mean_makespan = mean(makespans);
    r.oom_total = oom;
    out.push_back(std::move(r));
  }
  return out;
}

obs::RunReport make_run_report(const ExperimentRunner::SingleMix& run, std::string title) {
  obs::RunReport report;
  report.title = std::move(title);
  const sim::SimResult& r = run.result;
  report.add("applications", std::to_string(r.apps.size()))
      .add("makespan (min)", TextTable::num(r.makespan / 60.0, 1))
      .add("normalized STP", TextTable::num(run.normalized.norm_stp, 2) + "x")
      .add("ANTT reduction", TextTable::pct(run.normalized.antt_reduction, 1))
      .add("mean node utilization", TextTable::pct(r.trace.overall_mean(), 1))
      .add("executors spawned", std::to_string(r.executors_spawned))
      .add("executors degraded", std::to_string(r.executors_degraded))
      .add("OOM kills", std::to_string(r.oom_total))
      .add("peak node occupancy", std::to_string(r.peak_node_occupancy))
      .add("GiB-hours reserved/used", TextTable::num(r.reserved_gib_hours, 0) + " / " +
                                          TextTable::num(r.used_gib_hours, 0));
  report.metrics = r.metrics;
  return report;
}

}  // namespace smoe::sched
