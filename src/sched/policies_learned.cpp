#include "sched/policies_learned.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "common/error.h"
#include "obs/registry.h"

namespace smoe::sched {

namespace {

/// Generic monotone inverse for model-based estimators without a closed-form
/// inverse (doubling + bisection on the predicted footprint).
Items inverse_by_search(const std::function<GiB(Items)>& footprint, GiB budget,
                        Items max_items) {
  Items lo = 1.0, hi = 1.0;
  while (footprint(hi) < budget) {
    lo = hi;
    hi *= 2.0;
    if (hi >= max_items) return hi;
  }
  for (int it = 0; it < 40; ++it) {
    const Items mid = 0.5 * (lo + hi);
    if (footprint(mid) < budget)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

/// Clamp a learned model's output to a sane footprint.
GiB sane_footprint(GiB value) {
  if (!std::isfinite(value)) return 1e6;  // absurd prediction -> never fits
  return std::max(0.05, value);
}

}  // namespace

Items calibration_probe_items(Items input_items, Items x1_cap, Items x2_cap) {
  const Items x1 = std::clamp(0.05 * input_items, 16.0, x1_cap);
  const Items x2 = std::clamp(0.10 * input_items, 2.0 * x1, std::max(x2_cap, 2.0 * x1));
  return x1 + x2;
}

core::CalibrationProbes take_calibration_probes(sim::AppProbe& probe, Items x1_cap,
                                                Items x2_cap) {
  core::CalibrationProbes probes;
  probes.x1 = std::clamp(0.05 * probe.input_items(), 16.0, x1_cap);
  probes.x2 =
      std::clamp(0.10 * probe.input_items(), 2.0 * probes.x1, std::max(x2_cap, 2.0 * probes.x1));
  probes.y1 = probe.measure_footprint(probes.x1);
  probes.y2 = probe.measure_footprint(probes.x2);
  return probes;
}

// ---------------------------------------------------------------- MoE ----

MoePolicy::MoePolicy(const wl::FeatureModel& features, std::uint64_t seed, MoeOptions options)
    : cache_(std::make_shared<SelectorCache>(features, seed)), options_(options),
      diagnostics_(std::make_shared<Diagnostics>()) {}

MoePolicy::MoePolicy(std::shared_ptr<SelectorCache> cache, MoeOptions options,
                     std::shared_ptr<Diagnostics> diagnostics)
    : cache_(std::move(cache)), options_(options), diagnostics_(std::move(diagnostics)) {}

std::unique_ptr<sim::SchedulingPolicy> MoePolicy::clone() const {
  return std::unique_ptr<sim::SchedulingPolicy>(
      new MoePolicy(cache_, options_, diagnostics_));
}

std::map<int, std::size_t> MoePolicy::selection_counts() const {
  const std::lock_guard<std::mutex> lock(diagnostics_->mutex);
  return diagnostics_->selection_counts;
}

std::size_t MoePolicy::fallback_count() const {
  const std::lock_guard<std::mutex> lock(diagnostics_->mutex);
  return diagnostics_->fallback_count;
}

sim::ProfilingCost MoePolicy::profile(sim::AppProbe& probe, sim::MemoryEstimate& estimate) {
  const SelectorCache::Entry& entry = cache_->for_test_benchmark(probe.name());
  const core::MoePredictor predictor(entry.pool, entry.selector, options_.confidence_distance);

  const ml::Vector features = probe.raw_features();
  const core::Selection sel = predictor.select(features);
  const core::CalibrationProbes probes =
      take_calibration_probes(probe, options_.probe_x1_cap, options_.probe_x2_cap);
  const core::MemoryModel model = predictor.calibrate(sel, probes);
  {
    const std::lock_guard<std::mutex> lock(diagnostics_->mutex);
    ++diagnostics_->selection_counts[sel.expert_index];
  }
  if (obs::Registry* reg = metrics()) {
    reg->counter("moe_profiles_total").inc();
    reg->histogram("moe_selector_distance", {0.125, 0.25, 0.5, 1.0, 2.0, 4.0})
        .observe(sel.distance);
  }

  // Section 4.1: an application too far from every training program gets a
  // conservative treatment — here, padded reservations — instead of blind
  // trust in the selected expert.
  double inflation = 1.0;
  if (options_.conservative_fallback && !predictor.confident(sel)) {
    inflation += options_.fallback_inflation;
    {
      const std::lock_guard<std::mutex> lock(diagnostics_->mutex);
      ++diagnostics_->fallback_count;
    }
    if (obs::Registry* reg = metrics()) reg->counter("moe_fallback_total").inc();
  }

  estimate.footprint = [model, inflation](Items x) {
    return sane_footprint(inflation * model.footprint(x));
  };
  estimate.items_for_budget = [model, inflation](GiB budget) {
    return model.items_for_budget(budget / inflation);
  };
  estimate.cpu_load = probe.measure_cpu_load();

  sim::ProfilingCost cost;
  cost.feature_items = kFeatureRunItems;
  cost.calibration_items = probes.x1 + probes.x2;
  return cost;
}

// ------------------------------------------------------------- Quasar ----

struct QuasarPolicy::Entry {
  ml::MinMaxScaler scaler;
  ml::Pca pca;
  std::vector<ml::Vector> pcs;          // training-program positions
  std::vector<ml::CurveFit> power_fit;  // the single monolithic model, per program
};

QuasarPolicy::QuasarPolicy(const wl::FeatureModel& features, std::uint64_t seed,
                           GiB resource_class)
    : features_(features), seed_(seed), resource_class_(resource_class),
      cache_(std::make_shared<Cache>()) {
  SMOE_REQUIRE(resource_class > 0.0, "quasar: resource class must be positive");
}

QuasarPolicy::~QuasarPolicy() = default;

std::unique_ptr<sim::SchedulingPolicy> QuasarPolicy::clone() const {
  return std::unique_ptr<sim::SchedulingPolicy>(new QuasarPolicy(*this));
}

const QuasarPolicy::Entry& QuasarPolicy::entry_for(const std::string& benchmark_name) {
  std::vector<std::string> excluded = wl::excluded_from_training(benchmark_name);
  std::sort(excluded.begin(), excluded.end());
  std::string key;
  for (const auto& name : excluded) key += name + "|";
  // First miss trains under the lock (deterministic in the seed; concurrent
  // misses for the same key serialize). Entries are immutable once inserted
  // and never erased, so the returned reference outlives the lock.
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it = cache_->entries.find(key);
  if (it != cache_->entries.end()) return *it->second;

  const auto examples = make_training_set(features_, seed_, excluded);
  auto entry = std::make_unique<Entry>();
  std::vector<ml::Vector> rows;
  for (const auto& ex : examples) rows.push_back(ex.raw_features);
  const ml::Matrix raw = ml::Matrix::from_rows(rows);
  entry->scaler.fit(raw);
  entry->pca.fit(entry->scaler.transform(raw), 0.95, 5);
  for (const auto& ex : examples) {
    entry->pcs.push_back(entry->pca.transform(entry->scaler.transform(ex.raw_features)));
    // Quasar's one-size-fits-all resource model: a power-law fit regardless
    // of the program's actual memory behaviour.
    entry->power_fit.push_back(
        ml::fit_curve(ml::CurveKind::kPowerLaw, ex.profile_items, ex.profile_footprints));
  }
  return *cache_->entries.emplace(key, std::move(entry)).first->second;
}

sim::ProfilingCost QuasarPolicy::profile(sim::AppProbe& probe, sim::MemoryEstimate& estimate) {
  const Entry& entry = entry_for(probe.name());
  const ml::Vector pcs = entry.pca.transform(entry.scaler.transform(probe.raw_features()));

  // Classify: nearest training program in feature space.
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entry.pcs.size(); ++i) {
    const double d = ml::euclidean_distance(pcs, entry.pcs[i]);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  const ml::CurveFit fit = entry.power_fit[best];

  // Quasar characterizes applications with short profiling runs at a small
  // reference size and transfers the classified program's (single-family)
  // curve, rescaled at that point. The long extrapolation from a small probe
  // through a one-size-fits-all function is exactly the weakness the paper's
  // per-family two-point calibration removes.
  const Items x_probe = std::clamp(0.05 * probe.input_items(), 16.0, 768.0);
  const GiB y_probe = probe.measure_footprint(x_probe);
  const double predicted_at_probe = ml::curve_eval(fit.kind, fit.params, x_probe);
  const double scale =
      predicted_at_probe > 0 ? std::clamp(y_probe / predicted_at_probe, 0.33, 3.0) : 1.0;

  // Quasar allocates from coarse resource classes (discrete resource
  // vectors): the estimate snaps to the nearest class. Snapping down
  // under-provisions and causes the memory contention the paper observes for
  // Quasar (Section 6.2); snapping up wastes co-location headroom.
  const GiB klass = resource_class_;
  estimate.footprint = [fit, scale, klass](Items x) {
    const GiB raw = sane_footprint(scale * ml::curve_eval(fit.kind, fit.params, x));
    return std::max(klass, std::round(raw / klass) * klass);
  };
  estimate.items_for_budget = [fit, scale](GiB budget) {
    return ml::curve_inverse(fit.kind, fit.params, budget / scale);
  };
  estimate.cpu_load = probe.measure_cpu_load();
  if (obs::Registry* reg = metrics()) {
    reg->counter("quasar_profiles_total").inc();
    reg->histogram("quasar_classify_distance", {0.125, 0.25, 0.5, 1.0, 2.0, 4.0})
        .observe(best_dist);
  }

  sim::ProfilingCost cost;
  cost.feature_items = kFeatureRunItems;
  cost.calibration_items = x_probe;
  return cost;
}

// ------------------------------------------------------ unified curves ----

UnifiedCurvePolicy::UnifiedCurvePolicy(ml::CurveKind kind, const wl::FeatureModel& features,
                                       std::uint64_t seed)
    : kind_(kind), features_(features), seed_(seed), cache_(std::make_shared<Cache>()) {}

std::unique_ptr<sim::SchedulingPolicy> UnifiedCurvePolicy::clone() const {
  return std::unique_ptr<sim::SchedulingPolicy>(new UnifiedCurvePolicy(*this));
}

const ml::CurveFit& UnifiedCurvePolicy::fit_for(const std::string& benchmark_name) {
  std::vector<std::string> excluded = wl::excluded_from_training(benchmark_name);
  std::sort(excluded.begin(), excluded.end());
  std::string key;
  for (const auto& name : excluded) key += name + "|";
  // std::map nodes are stable, so the reference outlives the lock.
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it = cache_->fits.find(key);
  if (it != cache_->fits.end()) return it->second;

  // One curve for everything: pool every training program's profile points.
  std::vector<double> xs, ys;
  for (const auto& ex : make_training_set(features_, seed_, excluded)) {
    xs.insert(xs.end(), ex.profile_items.begin(), ex.profile_items.end());
    ys.insert(ys.end(), ex.profile_footprints.begin(), ex.profile_footprints.end());
  }
  return cache_->fits.emplace(key, ml::fit_curve(kind_, xs, ys)).first->second;
}

std::string UnifiedCurvePolicy::name() const {
  switch (kind_) {
    case ml::CurveKind::kPowerLaw: return "Linear Regression";
    case ml::CurveKind::kExponential: return "Exponential Regression";
    case ml::CurveKind::kNapierianLog: return "Napierian Log. Regression";
  }
  return "?";
}

sim::ProfilingCost UnifiedCurvePolicy::profile(sim::AppProbe& probe,
                                               sim::MemoryEstimate& estimate) {
  const ml::CurveFit fit = fit_for(probe.name());

  // The single model's level is adjusted to the application with one probe;
  // its shape is whatever the unified family learned offline.
  const Items x_probe = std::clamp(0.05 * probe.input_items(), 16.0, 768.0);
  const GiB y_probe = probe.measure_footprint(x_probe);
  const double at_probe = ml::curve_eval(fit.kind, fit.params, x_probe);
  const double scale = at_probe > 0 ? std::clamp(y_probe / at_probe, 0.2, 5.0) : 1.0;

  estimate.footprint = [fit, scale](Items x) {
    return sane_footprint(scale * ml::curve_eval(fit.kind, fit.params, x));
  };
  estimate.items_for_budget = [fit, scale](GiB budget) {
    return ml::curve_inverse(fit.kind, fit.params, budget / scale);
  };
  estimate.cpu_load = probe.measure_cpu_load();

  sim::ProfilingCost cost;
  cost.calibration_items = x_probe;
  return cost;
}

// --------------------------------------------------------- unified ANN ----

namespace {
constexpr double kAnnTargetScale = 32.0;  // GiB; keeps targets near tanh range
double ann_size_input(Items x) { return std::log10(std::max(1.0, x)) / 6.0; }
}  // namespace

struct UnifiedAnnPolicy::Entry {
  ml::MinMaxScaler scaler;
  ml::Pca pca;
  ml::AnnRegressor ann{ml::MlpParams{{12, 8}, 600, 0.02, 1e-6}, 0xA99};
};

UnifiedAnnPolicy::UnifiedAnnPolicy(const wl::FeatureModel& features, std::uint64_t seed)
    : features_(features), seed_(seed), cache_(std::make_shared<Cache>()) {}

UnifiedAnnPolicy::~UnifiedAnnPolicy() = default;

std::unique_ptr<sim::SchedulingPolicy> UnifiedAnnPolicy::clone() const {
  return std::unique_ptr<sim::SchedulingPolicy>(new UnifiedAnnPolicy(*this));
}

const UnifiedAnnPolicy::Entry& UnifiedAnnPolicy::entry_for(const std::string& benchmark_name) {
  std::vector<std::string> excluded = wl::excluded_from_training(benchmark_name);
  std::sort(excluded.begin(), excluded.end());
  std::string key;
  for (const auto& name : excluded) key += name + "|";
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it = cache_->entries.find(key);
  if (it != cache_->entries.end()) return *it->second;

  const auto examples = make_training_set(features_, seed_, excluded);
  auto entry = std::make_unique<Entry>();
  std::vector<ml::Vector> rows;
  for (const auto& ex : examples) rows.push_back(ex.raw_features);
  const ml::Matrix raw = ml::Matrix::from_rows(rows);
  entry->scaler.fit(raw);
  entry->pca.fit(entry->scaler.transform(raw), 0.95, 5);

  // One row per (program, sweep point): [pc features..., log size] -> y.
  std::vector<ml::Vector> x_rows;
  std::vector<double> targets;
  for (const auto& ex : examples) {
    const ml::Vector pcs = entry->pca.transform(entry->scaler.transform(ex.raw_features));
    for (std::size_t i = 0; i < ex.profile_items.size(); ++i) {
      ml::Vector row = pcs;
      row.push_back(ann_size_input(ex.profile_items[i]));
      x_rows.push_back(std::move(row));
      targets.push_back(ex.profile_footprints[i] / kAnnTargetScale);
    }
  }
  entry->ann.fit(ml::Matrix::from_rows(x_rows), targets);
  return *cache_->entries.emplace(key, std::move(entry)).first->second;
}

sim::ProfilingCost UnifiedAnnPolicy::profile(sim::AppProbe& probe,
                                             sim::MemoryEstimate& estimate) {
  const Entry& entry = entry_for(probe.name());
  const ml::Vector pcs = entry.pca.transform(entry.scaler.transform(probe.raw_features()));

  auto raw_predict = [&entry, pcs](Items x) {
    ml::Vector row = pcs;
    row.push_back(ann_size_input(x));
    return entry.ann.predict(row) * kAnnTargetScale;
  };

  // A single probe rescales the network to the target application.
  const Items x_probe = std::clamp(0.10 * probe.input_items(), 32.0, 4096.0);
  const GiB y_probe = probe.measure_footprint(x_probe);
  const double at_probe = raw_predict(x_probe);
  const double scale = at_probe > 0.05 ? std::clamp(y_probe / at_probe, 0.2, 5.0) : 1.0;

  const Items max_items = probe.input_items() * 4.0;
  auto footprint = [raw_predict, scale](Items x) {
    return sane_footprint(scale * raw_predict(x));
  };
  estimate.footprint = footprint;
  estimate.items_for_budget = [footprint, max_items](GiB budget) {
    return inverse_by_search(footprint, budget, max_items);
  };
  estimate.cpu_load = probe.measure_cpu_load();

  sim::ProfilingCost cost;
  cost.feature_items = kFeatureRunItems;
  cost.calibration_items = x_probe;
  return cost;
}

}  // namespace smoe::sched
