// The experiment runner behind Figures 6, 9 and 10: for each runtime
// scenario (Table 3) it simulates a batch of random task mixes under every
// scheme, normalizes against the one-by-one isolated baseline, and reports
// geometric-mean / min / max normalized STP and mean ANTT reduction, the way
// the paper reports them (Section 5.2's "geometric mean performance across
// all configurations" with min-max bars).
//
// Parallel execution: every (policy, mix) simulation and every baseline run
// is independent and seed-deterministic, so run_scenario fans them out over
// a fixed-size thread pool (--threads / SMOE_THREADS; defaults to all
// hardware threads). Results land in pre-sized slots and are aggregated in
// the same order as a sequential run, so the output is byte-identical at any
// thread count. Policies are cloned per job (SchedulingPolicy::clone shares
// trained caches); a policy that cannot be cloned simply runs its cells on
// the calling thread. When a single shared event sink is attached the runner
// stays sequential, so traces remain well-ordered; attach an
// obs::SinkFactory instead (set_sink_factory) and every (policy, mix) cell
// traces into its own sink, which keeps the sweep parallel and each per-cell
// trace byte-identical at any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "obs/report.h"
#include "obs/sink_factory.h"
#include "sched/metrics.h"
#include "sched/policies_basic.h"
#include "sched/race.h"
#include "sparksim/engine.h"
#include "workloads/mixes.h"

namespace smoe::sched {

struct SchemeScenarioResult {
  std::string scheme;
  std::string scenario;
  double stp_geomean = 0, stp_min = 0, stp_max = 0;
  double antt_red_mean = 0, antt_red_min = 0, antt_red_max = 0;
  double mean_makespan = 0;
  std::size_t oom_total = 0;
};

/// Section 5.2: "we replay the schedule decisions for each test case multiple
/// times, until the difference between the upper and lower confidence bounds
/// under a 95% confidence interval setting is smaller than 5%". Each replay
/// re-simulates the mix with a fresh measurement-noise seed.
struct ReplicatedMetrics {
  double stp_mean = 0;            ///< mean normalized STP over replays
  double stp_ci_half = 0;         ///< 95% CI half-width of that mean
  double antt_reduction_mean = 0;
  std::size_t replays = 0;
  bool converged = false;         ///< CI target reached before max_replays
};

class ExperimentRunner {
 public:
  /// `n_mixes` random mixes are evaluated per scenario (the paper uses ~100;
  /// the benches default to fewer to keep runtimes friendly — the seed is
  /// printed so any batch size is reproducible). `n_threads` sizes the worker
  /// pool: 0 means SMOE_THREADS (environment) or else all hardware threads;
  /// 1 forces sequential execution. Any thread count produces byte-identical
  /// results.
  ExperimentRunner(sim::SimConfig config, const wl::FeatureModel& features,
                   std::size_t n_mixes, std::uint64_t mix_seed, std::size_t n_threads = 0);

  /// Worker threads actually in the pool.
  std::size_t threads() const { return pool_.size(); }

  /// Evaluate the policies on one scenario. Policies are borrowed and may be
  /// reused across calls (they carry only training caches). Cloneable
  /// policies run their simulations across the pool; the originals still
  /// observe shared diagnostics (clone() contracts).
  std::vector<SchemeScenarioResult> run_scenario(
      const wl::Scenario& scenario, const std::vector<sim::SchedulingPolicy*>& policies);

  /// run_scenario with best-arm racing (DESIGN.md §15): for every mix the
  /// policies race each other over replays of that mix with paired noise
  /// seeds, and a (policy, mix) cell stops replaying as soon as its
  /// confidence interval separates from the mix's best arm (or meets the
  /// Section 5.2 width target). Scheme aggregates are computed from per-cell
  /// replay means, so the ranking matches fixed-budget replication while
  /// running several times fewer simulations. Cells never trace (racing is a
  /// statistical sweep); byte-identical at any thread count.
  struct RacedScenarioResult {
    std::vector<SchemeScenarioResult> schemes;
    /// Per-cell outcomes, policy-major: cells[p * n_mixes + m].
    std::vector<CellOutcome> cells;
    std::size_t total_simulations = 0;        ///< replays consumed across cells
    std::size_t fixed_budget_simulations = 0; ///< n_cells * max_replays ceiling
    double samples_saved_pct = 0;             ///< 100 * (1 - total / fixed_budget)
  };
  RacedScenarioResult run_scenario_raced(const wl::Scenario& scenario,
                                         const std::vector<sim::SchedulingPolicy*>& policies,
                                         const RaceOptions& race = {});

  /// Fixed-wave replication of every (policy, mix) cell — the legacy cost
  /// model and the baseline arm of bench_sweep_cost. Each cell replays in
  /// waves of `wave` simulations (0 = pool size) with the Section 5.2
  /// normal-approximation early stop evaluated in replay order; surplus
  /// replays of the final wave are executed and discarded, exactly what the
  /// pre-racing pool waves did. total_simulations counts executed replays,
  /// including the discarded surplus, so pass an explicit `wave` when the
  /// total must not depend on the machine's core count.
  struct ReplicatedScenarioResult {
    std::vector<SchemeScenarioResult> schemes;
    std::vector<ReplicatedMetrics> cells;  ///< policy-major like RacedScenarioResult
    std::size_t total_simulations = 0;     ///< executed replays incl. discarded surplus
  };
  ReplicatedScenarioResult run_scenario_replicated(
      const wl::Scenario& scenario, const std::vector<sim::SchedulingPolicy*>& policies,
      std::size_t max_replays = 12, double target_rel_ci = 0.05, std::size_t wave = 0);

  /// Normalized metrics of one specific mix under one policy (Fig. 7/8).
  struct SingleMix {
    MixMetrics metrics;
    NormalizedMetrics normalized;
    sim::SimResult result;
  };
  SingleMix run_mix(const wl::TaskMix& mix, sim::SchedulingPolicy& policy);

  /// Replay one mix with fresh noise seeds until the 95% CI of the mean
  /// normalized STP is below `target_rel_ci` of the mean (Section 5.2), or
  /// `max_replays` is reached. Implemented as a single-cell race: the
  /// round-based RacingReplicator replays one at a time with the early stop
  /// evaluated in replay order (normal-approximation bounds, for continuity
  /// with previously committed bench numbers), so the outcome is identical
  /// at any thread count and no surplus replays are executed at all.
  ReplicatedMetrics run_mix_replicated(const wl::TaskMix& mix, sim::SchedulingPolicy& policy,
                                       std::size_t max_replays = 10,
                                       double target_rel_ci = 0.05);

  sim::ClusterSim& cluster() { return sim_; }

  /// Baseline and isolated-time measurement runs are never traced: only the
  /// evaluated policy's own schedule reaches SimConfig::sink, so a captured
  /// trace is exactly one schedule per run_mix call.

  /// Per-cell tracing for run_scenario: each (policy, mix) cell gets its own
  /// sink from `factory->make("<scenario>/<policy>/mix<m>")`, closed when
  /// the cell finishes. Takes precedence over SimConfig::sink for scenario cells and
  /// keeps the sweep parallel (a shared sink forces sequential execution).
  /// Borrowed; pass nullptr to detach.
  void set_sink_factory(obs::SinkFactory* factory) { sink_factory_ = factory; }

 private:
  bool tracing() const;
  /// Baseline metrics once per mix (never traced), parallel when asked.
  std::vector<MixMetrics> mix_baselines(const std::vector<wl::TaskMix>& mixes, bool parallel);
  /// One raced/replicated replay of mixes[m] under policies[p]; never traced.
  RaceSample replay_cell(const std::vector<wl::TaskMix>& mixes,
                         const std::vector<MixMetrics>& baselines,
                         const std::vector<sim::SchedulingPolicy*>& policies,
                         const std::vector<std::uint8_t>& caller_only, std::size_t p,
                         std::size_t m, std::size_t replay);

  const wl::FeatureModel& features_;
  sim::ClusterSim sim_;
  IsolatedTimes iso_;
  IsolatedPolicy baseline_policy_;
  std::size_t n_mixes_;
  std::uint64_t mix_seed_;
  ThreadPool pool_;
  obs::SinkFactory* sink_factory_ = nullptr;
};

/// Post-run reporting: headline rows (makespan, STP, ANTT, executor and
/// memory totals) + the engine's metrics snapshot, ready for
/// obs::render_text / obs::render_json.
obs::RunReport make_run_report(const ExperimentRunner::SingleMix& run, std::string title);

}  // namespace smoe::sched
