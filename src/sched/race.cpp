#include "sched/race.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.h"

namespace smoe::sched {

const char* to_string(CellStop stop) {
  switch (stop) {
    case CellStop::kSeparated: return "separated";
    case CellStop::kConverged: return "converged";
    case CellStop::kBudget: return "budget";
  }
  return "unknown";
}

void SampleScheduler::run_round(std::vector<Job> jobs,
                                const std::function<void(const Job&)>& compute) {
  // Caller-thread jobs run here, first: they share un-clonable state with the
  // caller, so interleaving them with the fan-out would race.
  std::vector<Job> pool_jobs;
  pool_jobs.reserve(jobs.size());
  for (const Job& job : jobs) {
    if (job.caller_thread) compute(job);
    else pool_jobs.push_back(job);
  }
  if (pool_jobs.empty()) return;
  // Widest interval first: the most contested cells start earliest, so the
  // round's tail is short. Execution order never affects results — samples
  // land in per-cell slots and are consumed in canonical cell order.
  std::sort(pool_jobs.begin(), pool_jobs.end(), [](const Job& a, const Job& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.cell < b.cell;
  });
  pool_.parallel_for_each(pool_jobs.size(),
                          [&](std::size_t i) { compute(pool_jobs[i]); });
}

RacingReplicator::RacingReplicator(const RaceOptions& opt, ThreadPool& pool)
    : opt_(opt), pool_(pool) {
  SMOE_REQUIRE(opt_.min_replays >= 2, "race: min_replays must be >= 2");
  SMOE_REQUIRE(opt_.max_replays >= opt_.min_replays, "race: max_replays < min_replays");
  SMOE_REQUIRE(opt_.target_rel_ci > 0.0, "race: bad CI target");
  SMOE_REQUIRE(opt_.confidence > 0.0 && opt_.confidence < 1.0, "race: bad confidence");
  SMOE_REQUIRE(opt_.budget_seconds >= 0.0, "race: bad wall-clock budget");
}

std::vector<CellOutcome> RacingReplicator::race(std::size_t n_cells, const SampleFn& sample,
                                                const std::vector<std::size_t>& group_of,
                                                const std::vector<std::uint8_t>& caller_only) {
  SMOE_REQUIRE(n_cells >= 1, "race: no cells");
  SMOE_REQUIRE(group_of.empty() || group_of.size() == n_cells, "race: group_of size mismatch");
  SMOE_REQUIRE(caller_only.empty() || caller_only.size() == n_cells,
               "race: caller_only size mismatch");

  struct CellState {
    Welford value, secondary, makespan;
    std::size_t oom = 0;
    bool active = true;
    bool eliminated = false;
  };
  std::vector<CellState> state(n_cells);
  std::vector<CellOutcome> out(n_cells);

  // Groups ordered by first member, members in ascending cell index — the
  // canonical decision order. Ties on the mean favor the lowest cell index.
  std::vector<std::vector<std::size_t>> groups;
  {
    std::unordered_map<std::size_t, std::size_t> slot_of;
    for (std::size_t c = 0; c < n_cells; ++c) {
      const std::size_t id = group_of.empty() ? 0 : group_of[c];
      const auto [it, inserted] = slot_of.emplace(id, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(c);
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto budget_exceeded = [&] {
    if (opt_.budget_seconds <= 0.0) return false;
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    return dt.count() > opt_.budget_seconds;
  };
  const auto half_width = [&](const CellState& s) {
    return s.value.ci_half_width(opt_.confidence, opt_.use_t_bounds);
  };
  // Separation tests use an infinite half-width until a cell has enough
  // samples for a variance estimate, so nothing separates on one sample.
  const auto separation_half = [&](const CellState& s) {
    if (s.value.count() < 2) return std::numeric_limits<double>::infinity();
    return half_width(s);
  };

  SampleScheduler scheduler(pool_);
  std::vector<RaceSample> slot(n_cells);

  for (std::size_t r = 0; r < opt_.max_replays; ++r) {
    std::vector<SampleScheduler::Job> jobs;
    jobs.reserve(n_cells);
    for (std::size_t c = 0; c < n_cells; ++c) {
      if (!state[c].active) continue;
      SampleScheduler::Job job;
      job.cell = c;
      job.replay = r;
      job.priority = state[c].value.count() >= 2 && state[c].value.mean() != 0.0
                         ? half_width(state[c]) / std::abs(state[c].value.mean())
                         : std::numeric_limits<double>::infinity();
      job.caller_thread = !caller_only.empty() && caller_only[c] != 0;
      jobs.push_back(job);
    }
    if (jobs.empty()) break;
    if (budget_exceeded()) {
      for (std::size_t c = 0; c < n_cells; ++c)
        if (state[c].active) state[c].active = false;  // stop stays kBudget
      break;
    }

    scheduler.run_round(std::move(jobs), [&](const SampleScheduler::Job& job) {
      slot[job.cell] = sample(job.cell, job.replay);
    });

    // Consume the round in canonical cell order on this thread.
    for (std::size_t c = 0; c < n_cells; ++c) {
      if (!state[c].active) continue;
      const RaceSample& s = slot[c];
      state[c].value.add(s.value);
      state[c].secondary.add(s.secondary);
      state[c].makespan.add(s.makespan);
      state[c].oom += s.oom;
      out[c].replays_used = r + 1;
    }
    if (r + 1 < opt_.min_replays) continue;

    // Stop decisions per group: elimination against the current best arm
    // first (the stronger statement), then the Section 5.2 convergence stop.
    for (const std::vector<std::size_t>& members : groups) {
      // Best arm among the non-eliminated members (active or converged).
      std::size_t best = members.front();
      bool have_best = false;
      for (const std::size_t c : members) {
        if (state[c].eliminated || state[c].value.count() == 0) continue;
        if (!have_best || state[c].value.mean() > state[best].value.mean()) {
          best = c;
          have_best = true;
        }
      }
      if (!have_best) continue;
      const double best_lower = state[best].value.mean() - separation_half(state[best]);
      for (const std::size_t c : members) {
        if (!state[c].active || c == best) continue;
        if (state[c].value.mean() + separation_half(state[c]) < best_lower) {
          state[c].active = false;
          state[c].eliminated = true;
          out[c].stop = CellStop::kSeparated;
        }
      }
      for (const std::size_t c : members) {
        if (!state[c].active) continue;
        const double mean = state[c].value.mean();
        if (2.0 * half_width(state[c]) < opt_.target_rel_ci * std::abs(mean)) {
          state[c].active = false;
          out[c].stop = CellStop::kConverged;
        }
      }
    }
  }
  // Anything still active ran out of replay budget undecided.
  for (std::size_t c = 0; c < n_cells; ++c)
    if (state[c].active) state[c].active = false;  // stop stays kBudget

  // Final stats and the explicit separated-from-best verdict, from each
  // cell's stats at its own stop time. The verdict's best arm is the highest
  // final mean over the whole group (eliminated cells included, so an unsound
  // elimination shows up as a non-separated verdict rather than hiding).
  for (std::size_t c = 0; c < n_cells; ++c) {
    const CellState& s = state[c];
    out[c].mean = s.value.count() >= 1 ? s.value.mean() : 0.0;
    out[c].ci_half = s.value.count() >= 2 ? half_width(s) : 0.0;
    out[c].secondary_mean = s.secondary.count() >= 1 ? s.secondary.mean() : 0.0;
    out[c].makespan_mean = s.makespan.count() >= 1 ? s.makespan.mean() : 0.0;
    out[c].oom_total = s.oom;
  }
  for (const std::vector<std::size_t>& members : groups) {
    std::size_t best = members.front();
    bool have_best = false;
    for (const std::size_t c : members) {
      if (state[c].value.count() == 0) continue;
      if (!have_best || state[c].value.mean() > state[best].value.mean()) {
        best = c;
        have_best = true;
      }
    }
    if (!have_best) continue;
    const double best_lower = state[best].value.mean() - separation_half(state[best]);
    for (const std::size_t c : members) {
      if (c == best || state[c].value.count() == 0) continue;
      out[c].separated_from_best =
          state[c].value.mean() + separation_half(state[c]) < best_lower;
    }
  }
  return out;
}

}  // namespace smoe::sched
