// The paper's evaluation metrics (Section 5.3, definitions from Eyerman &
// Eeckhout):
//
//   STP  = sum_i C^is_i / C^cl_i            (higher is better)
//   ANTT = (1/n) sum_i C^cl_i / C^is_i      (lower is better)
//
// where C^is_i is application i's execution time alone on the idle cluster
// and C^cl_i its time under the evaluated schedule (all applications are
// submitted together, so C^cl is the turnaround from creation to completion,
// "indicating the average user-perceived delay").
//
// Section 6 reports both normalized to the one-by-one isolated baseline:
// normalized STP = STP / STP_baseline, and the ANTT *reduction*
// 1 - ANTT/ANTT_baseline (shown as a percentage).
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sparksim/engine.h"

namespace smoe {
class ThreadPool;
}

namespace smoe::sched {

/// Memoized isolated execution times C^is per (benchmark, input size).
/// Thread-safe: concurrent get() calls may duplicate a measurement for a
/// missing key (the simulation is deterministic, so both compute the same
/// value) but never corrupt the cache. warm() pre-computes every key a batch
/// of mixes will need — in parallel — so that the experiment fan-out only
/// ever reads.
class IsolatedTimes {
 public:
  explicit IsolatedTimes(sim::ClusterSim& sim) : sim_(sim) {}

  Seconds get(const std::string& benchmark, Items input_items);

  /// Measure every (benchmark, input size) appearing in `mixes` that is not
  /// cached yet, fanning the measurement runs out on `pool`.
  void warm(const std::vector<wl::TaskMix>& mixes, ThreadPool& pool);

 private:
  using Key = std::pair<std::string, long long>;
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::string>{}(k.first) ^
             (std::hash<long long>{}(k.second) * 0x9e3779b97f4a7c15ULL);
    }
  };
  static Key make_key(const std::string& benchmark, Items input_items);

  sim::ClusterSim& sim_;
  std::mutex mutex_;
  std::unordered_map<Key, Seconds, KeyHash> cache_;
};

struct MixMetrics {
  double stp = 0;        ///< Eq. (1)
  double antt = 0;       ///< Eq. (2)
  Seconds makespan = 0;  ///< Wall-clock to drain the whole mix (Fig. 8b).
};

MixMetrics compute_metrics(const sim::SimResult& result, IsolatedTimes& iso);

struct NormalizedMetrics {
  double norm_stp = 0;        ///< STP / STP_baseline
  double antt_reduction = 0;  ///< 1 - ANTT/ANTT_baseline (fraction)
};

NormalizedMetrics normalize(const MixMetrics& scheme, const MixMetrics& baseline);

}  // namespace smoe::sched
