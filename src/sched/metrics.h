// The paper's evaluation metrics (Section 5.3, definitions from Eyerman &
// Eeckhout):
//
//   STP  = sum_i C^is_i / C^cl_i            (higher is better)
//   ANTT = (1/n) sum_i C^cl_i / C^is_i      (lower is better)
//
// where C^is_i is application i's execution time alone on the idle cluster
// and C^cl_i its time under the evaluated schedule (all applications are
// submitted together, so C^cl is the turnaround from creation to completion,
// "indicating the average user-perceived delay").
//
// Section 6 reports both normalized to the one-by-one isolated baseline:
// normalized STP = STP / STP_baseline, and the ANTT *reduction*
// 1 - ANTT/ANTT_baseline (shown as a percentage).
#pragma once

#include <map>
#include <string>

#include "sparksim/engine.h"

namespace smoe::sched {

/// Memoized isolated execution times C^is per (benchmark, input size).
class IsolatedTimes {
 public:
  explicit IsolatedTimes(sim::ClusterSim& sim) : sim_(sim) {}

  Seconds get(const std::string& benchmark, Items input_items);

 private:
  sim::ClusterSim& sim_;
  std::map<std::pair<std::string, long long>, Seconds> cache_;
};

struct MixMetrics {
  double stp = 0;        ///< Eq. (1)
  double antt = 0;       ///< Eq. (2)
  Seconds makespan = 0;  ///< Wall-clock to drain the whole mix (Fig. 8b).
};

MixMetrics compute_metrics(const sim::SimResult& result, IsolatedTimes& iso);

struct NormalizedMetrics {
  double norm_stp = 0;        ///< STP / STP_baseline
  double antt_reduction = 0;  ///< 1 - ANTT/ANTT_baseline (fraction)
};

NormalizedMetrics normalize(const MixMetrics& scheme, const MixMetrics& baseline);

}  // namespace smoe::sched
