// Learned scheduling policies:
//   * MoePolicy       — the paper's approach: KNN expert selection over PCA
//                       features + two-point runtime calibration (Section 4).
//   * QuasarPolicy    — the state-of-the-art comparator (Section 5.4):
//                       classification against the same training programs,
//                       but a single monolithic resource model.
//   * UnifiedCurvePolicy — Figure 9 comparators: one fixed regression family
//                       for every application.
//   * UnifiedAnnPolicy — Figure 9's ANN: one neural network regressor for
//                       every application.
//
// All learned policies honour the Section 5.2 leave-one-out rule: models
// used for benchmark X are trained without X and without X's equivalent
// implementations in other suites.
//
// Concurrency: every learned policy supports clone() for the parallel
// experiment runner. Clones share the trained-model caches (mutex-protected;
// entries are immutable once built, so concurrent readers need no lock after
// lookup) and the diagnostic counters, while each instance keeps its own
// metrics binding. Training is deterministic in the seed, so decisions do not
// depend on which instance — or in what order — populated a cache.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "core/predictor.h"
#include "ml/mlp.h"
#include "sched/training_data.h"
#include "sparksim/policy.h"

namespace smoe::sched {

/// The 5% / 10% calibration probes of Section 4.1, with sizes bounded so the
/// probes stay "small sets of unprocessed input data items" even for ~1 TB
/// inputs (matching the paper's <10% total profiling overhead).
core::CalibrationProbes take_calibration_probes(sim::AppProbe& probe,
                                                Items x1_cap = 512, Items x2_cap = 1536);
/// Items consumed by those probes.
Items calibration_probe_items(Items input_items, Items x1_cap = 512, Items x2_cap = 1536);
/// Items consumed by the ~100 MB feature-extraction run.
inline constexpr Items kFeatureRunItems = 100;

/// Tunables of the deployed mixture-of-experts policy. Defaults reproduce
/// the paper's configuration; the ablation bench sweeps them.
struct MoeOptions {
  /// Upper bounds on the 5% / 10% calibration probe sizes (items).
  Items probe_x1_cap = 512;
  Items probe_x2_cap = 1536;
  /// KNN distance in PCA space beyond which the selection is not trusted
  /// (Section 4.1's soundness guarantee).
  double confidence_distance = 1.0;
  /// When unconfident, fall back to a conservative scheme: inflate the
  /// predicted footprint by this fraction instead of trusting it blindly.
  double fallback_inflation = 0.25;
  bool conservative_fallback = true;
};

class MoePolicy final : public sim::SchedulingPolicy {
 public:
  MoePolicy(const wl::FeatureModel& features, std::uint64_t seed, MoeOptions options = {});

  std::string name() const override { return "Ours (MoE)"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPredictive; }
  sim::ProfilingCost profile(sim::AppProbe& probe, sim::MemoryEstimate& estimate) override;
  std::unique_ptr<sim::SchedulingPolicy> clone() const override;

  /// Expert selections made so far, per expert index (diagnostics). Shared
  /// with clones: counts accumulate across every instance of this policy.
  std::map<int, std::size_t> selection_counts() const;
  /// Applications routed to the conservative fallback so far (clone-shared).
  std::size_t fallback_count() const;

 private:
  /// Clone-shared diagnostics (commutative, so accumulation order across
  /// threads cannot change what callers observe after a join).
  struct Diagnostics {
    mutable std::mutex mutex;
    std::map<int, std::size_t> selection_counts;
    std::size_t fallback_count = 0;
  };

  MoePolicy(std::shared_ptr<SelectorCache> cache, MoeOptions options,
            std::shared_ptr<Diagnostics> diagnostics);

  std::shared_ptr<SelectorCache> cache_;
  MoeOptions options_;
  std::shared_ptr<Diagnostics> diagnostics_;
};

class QuasarPolicy final : public sim::SchedulingPolicy {
 public:
  /// `resource_class` is the granularity of Quasar's discrete resource
  /// vectors; estimates snap to the nearest multiple.
  QuasarPolicy(const wl::FeatureModel& features, std::uint64_t seed,
               GiB resource_class = 8.0);
  ~QuasarPolicy() override;  // out-of-line: Entry is incomplete here

  std::string name() const override { return "Quasar"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPredictive; }
  sim::ProfilingCost profile(sim::AppProbe& probe, sim::MemoryEstimate& estimate) override;
  std::unique_ptr<sim::SchedulingPolicy> clone() const override;

 private:
  struct Entry;
  struct Cache {
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Entry>> entries;
  };
  const Entry& entry_for(const std::string& benchmark_name);

  const wl::FeatureModel& features_;
  std::uint64_t seed_;
  GiB resource_class_;
  std::shared_ptr<Cache> cache_;
};

/// One fixed Table 1 family for every application (Figure 9): a single curve
/// of the chosen family is fit offline to the pooled profiles of all
/// training programs ("one modeling technique to describe the application's
/// memory behavior"), and only its level is rescaled per application from a
/// short probe. Unlike the mixture of experts, the shape cannot adapt.
class UnifiedCurvePolicy final : public sim::SchedulingPolicy {
 public:
  UnifiedCurvePolicy(ml::CurveKind kind, const wl::FeatureModel& features, std::uint64_t seed);

  std::string name() const override;
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPredictive; }
  sim::ProfilingCost profile(sim::AppProbe& probe, sim::MemoryEstimate& estimate) override;
  std::unique_ptr<sim::SchedulingPolicy> clone() const override;

 private:
  struct Cache {
    std::mutex mutex;
    std::map<std::string, ml::CurveFit> fits;  // keyed by exclusion set
  };
  const ml::CurveFit& fit_for(const std::string& benchmark_name);

  ml::CurveKind kind_;
  const wl::FeatureModel& features_;
  std::uint64_t seed_;
  std::shared_ptr<Cache> cache_;
};

/// A single 3-layer neural network trained on (PCA features, log input size)
/// -> footprint, rescaled per application by one probe (Figure 9's ANN).
class UnifiedAnnPolicy final : public sim::SchedulingPolicy {
 public:
  UnifiedAnnPolicy(const wl::FeatureModel& features, std::uint64_t seed);
  ~UnifiedAnnPolicy() override;  // out-of-line: Entry is incomplete here

  std::string name() const override { return "ANN"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPredictive; }
  sim::ProfilingCost profile(sim::AppProbe& probe, sim::MemoryEstimate& estimate) override;
  std::unique_ptr<sim::SchedulingPolicy> clone() const override;

 private:
  struct Entry;
  struct Cache {
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Entry>> entries;
  };
  const Entry& entry_for(const std::string& benchmark_name);

  const wl::FeatureModel& features_;
  std::uint64_t seed_;
  std::shared_ptr<Cache> cache_;
};

}  // namespace smoe::sched
