#include "sched/policies_basic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/registry.h"
#include "workloads/suites.h"

namespace smoe::sched {

sim::ProfilingCost OraclePolicy::profile(sim::AppProbe& probe, sim::MemoryEstimate& estimate) {
  // The Oracle is defined to know the true memory function with no profiling
  // cost (Section 5.4) — the one policy allowed to look at the ground truth.
  const wl::BenchmarkSpec& spec = wl::find_benchmark(probe.name());
  estimate.footprint = [&spec](Items x) { return spec.footprint(x); };
  estimate.items_for_budget = [&spec](GiB budget) { return spec.items_for_budget(budget); };
  estimate.cpu_load = spec.cpu_load_iso;
  return {};
}

OnlineSearchPolicy::OnlineSearchPolicy(double search_overhead)
    : search_overhead_(search_overhead) {
  SMOE_REQUIRE(search_overhead >= 0.0, "negative search overhead");
}

sim::ProfilingCost OnlineSearchPolicy::profile(sim::AppProbe& probe,
                                               sim::MemoryEstimate& estimate) {
  // Every estimate is answered by *measuring* trial sizes at dispatch time —
  // accurate, but the repeated trials cost spawn_search_overhead() per
  // executor. The probe outlives the estimate (engine guarantee), so
  // capturing it by reference is safe. The registry pointer is the engine's
  // per-run binding; it outlives the estimates for the same reason.
  obs::Registry* reg = metrics();
  estimate.footprint = [&probe, reg](Items x) {
    if (reg) reg->counter("online_search_trials_total").inc();
    return probe.measure_footprint(x);
  };
  estimate.items_for_budget = [&probe, reg](GiB budget) {
    // Doubling search followed by bisection on measured footprints.
    const auto measure = [&probe, reg](Items x) {
      if (reg) reg->counter("online_search_trials_total").inc();
      return probe.measure_footprint(x);
    };
    Items lo = 1.0, hi = 1.0;
    while (measure(hi) < budget) {
      lo = hi;
      hi *= 2.0;
      if (hi >= probe.input_items() * 4.0) return hi;  // saturates under budget
    }
    for (int it = 0; it < 24; ++it) {
      const Items mid = 0.5 * (lo + hi);
      if (measure(mid) < budget)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  };
  estimate.cpu_load = probe.measure_cpu_load();
  return {};  // no up-front profiling; all cost is paid per spawn
}

}  // namespace smoe::sched
