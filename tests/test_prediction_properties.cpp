// Property sweep across all 44 benchmarks: with clean measurements, the full
// select-then-calibrate pipeline reproduces each application's true memory
// curve whenever the selector picks the right family — and the selector picks
// the right family for the overwhelming majority of applications.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/policies_learned.h"
#include "sched/training_data.h"
#include "sparksim/app_probe.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

struct Shared {
  wl::FeatureModel features{2017};
  sched::SelectorCache cache{features, 2017};
};

Shared& shared() {
  static Shared s;
  return s;
}

class EveryBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryBenchmark, CleanPipelineTracksTrueCurve) {
  auto& s = shared();
  const auto& bench = wl::find_benchmark(GetParam());
  const auto& entry = s.cache.for_test_benchmark(bench.name);
  const core::MoePredictor predictor(entry.pool, entry.selector);

  // Noise-free probe isolates model error from measurement error.
  sim::AppProbe probe(bench, s.features, 1048576, Rng::derive(5, bench.name), /*noise=*/0.0);
  const core::Selection sel = predictor.select(probe.raw_features());
  if (sel.expert_index != bench.family_label()) {
    GTEST_SKIP() << "selector picked a different family (allowed for ~2% of apps)";
  }
  const core::MemoryModel model =
      predictor.calibrate(sel, sched::take_calibration_probes(probe));
  for (const double x : {5000.0, 43690.0, 262144.0}) {
    const double truth = bench.footprint(x);
    EXPECT_NEAR(model.footprint(x), truth, 0.02 * truth) << bench.name << " at " << x;
  }
}

TEST_P(EveryBenchmark, InverseNeverOverflowsBudget) {
  auto& s = shared();
  const auto& bench = wl::find_benchmark(GetParam());
  const auto& entry = s.cache.for_test_benchmark(bench.name);
  const core::MoePredictor predictor(entry.pool, entry.selector);
  sim::AppProbe probe(bench, s.features, 1048576, Rng::derive(6, bench.name), 0.0);
  const core::Selection sel = predictor.select(probe.raw_features());
  const core::MemoryModel model =
      predictor.calibrate(sel, sched::take_calibration_probes(probe));
  // Whatever the model believes: items_for_budget(y) must stay within the
  // budget according to the model itself (self-consistency).
  for (const double budget : {8.0, 24.0, 61.0}) {
    const Items x = model.items_for_budget(budget);
    if (std::isfinite(x) && x >= 1.0) {
      EXPECT_LE(model.footprint(x), budget * 1.001) << bench.name << " budget " << budget;
    }
  }
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& b : wl::all_spark_benchmarks()) names.push_back(b.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(All44, EveryBenchmark, ::testing::ValuesIn(all_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(SelectorQuality, AtMostTwoBenchmarksMisrouted) {
  // The paper's selector is 97.4% accurate; across our 44 benchmarks with a
  // clean characterization run, at most a couple may be misrouted.
  auto& s = shared();
  int misses = 0;
  for (const auto& bench : wl::all_spark_benchmarks()) {
    const auto& entry = s.cache.for_test_benchmark(bench.name);
    const core::MoePredictor predictor(entry.pool, entry.selector);
    sim::AppProbe probe(bench, s.features, 30720, Rng::derive(7, bench.name), 0.0);
    if (predictor.select(probe.raw_features()).expert_index != bench.family_label()) ++misses;
  }
  EXPECT_LE(misses, 2);
}

}  // namespace
