// End-to-end regression guards for the paper's headline claims (Section 6.1).
// These pin the qualitative *shape* of the reproduction: who wins, by
// roughly what factor, and that the predictor's accuracy/overhead stay in
// the paper's envelope. Thresholds are deliberately looser than the paper's
// point estimates so legitimate refactors don't trip them.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

struct Fixture {
  wl::FeatureModel features{2017};
  sim::SimConfig cfg;
  Fixture() { cfg.seed = 2017; }
};

Fixture& fx() {
  static Fixture f;
  return f;
}

TEST(PaperClaims, SchedulerOrderingOnMediumScenario) {
  auto& f = fx();
  sched::ExperimentRunner runner(f.cfg, f.features, 3, 11);
  sched::PairwisePolicy pairwise;
  sched::QuasarPolicy quasar(f.features, 2017);
  sched::MoePolicy ours(f.features, 2017);
  sched::OraclePolicy oracle;
  const auto r = runner.run_scenario(wl::scenario_by_label("L8"),
                                     {&pairwise, &quasar, &ours, &oracle});
  // Fig. 6 ordering: Oracle >= Ours > Quasar > Pairwise on STP.
  EXPECT_GT(r[3].stp_geomean, 0.95 * r[2].stp_geomean);  // Oracle ~ top
  EXPECT_GT(r[2].stp_geomean, r[1].stp_geomean);         // ours beats Quasar
  EXPECT_GT(r[1].stp_geomean, r[0].stp_geomean);         // Quasar beats Pairwise
  // §6.1: ours achieves a large multiple of isolated execution...
  EXPECT_GT(r[2].stp_geomean, 4.0);
  // ...and a large fraction of the Oracle (paper: 83.9%).
  EXPECT_GT(r[2].stp_geomean / r[3].stp_geomean, 0.70);
  // ANTT: co-location shortens turnarounds dramatically vs one-by-one.
  EXPECT_GT(r[2].antt_red_mean, 0.5);
}

TEST(PaperClaims, OnlineSearchLosesByALargeFactor) {
  auto& f = fx();
  sched::ExperimentRunner runner(f.cfg, f.features, 3, 13);
  sched::OnlineSearchPolicy online;
  sched::MoePolicy ours(f.features, 2017);
  const auto r = runner.run_scenario(wl::scenario_by_label("L6"), {&online, &ours});
  // Fig. 10: ours is much better (paper: 2.4x on STP).
  EXPECT_GT(r[1].stp_geomean / r[0].stp_geomean, 1.4);
}

TEST(PaperClaims, PredictionErrorEnvelope) {
  // §6.9: ~5% average error; worst cases ~12% over-provisioning.
  auto& f = fx();
  sched::MoePolicy ours(f.features, 2017);
  std::vector<double> errors;
  for (const auto& bench : wl::all_spark_benchmarks()) {
    sim::AppProbe probe(bench, f.features, 1048576, Rng::derive(23, bench.name));
    sim::MemoryEstimate est;
    ours.profile(probe, est);
    const double truth = bench.footprint(43690);
    errors.push_back(std::abs(est.footprint(43690) - truth) / truth);
  }
  EXPECT_LT(mean(errors), 0.08);
  EXPECT_LT(percentile(errors, 90), 0.15);
}

TEST(PaperClaims, ProfilingOverheadEnvelope) {
  // Fig. 11/12: feature extraction + calibration stay a modest share of the
  // total execution time, and the profiled items count toward the output.
  auto& f = fx();
  sim::ClusterSim sim(f.cfg, f.features);
  sched::MoePolicy ours(f.features, 2017);
  for (const char* name : {"HB.Sort", "BDB.PageRank", "SP.Gmm"}) {
    const auto r = sim.run({{name, items_from_gib(280.0)}}, ours);
    const auto& app = r.apps.front();
    const double share = (app.feature_time + app.calibration_time) /
                         (app.feature_time + app.calibration_time + app.exec_time());
    EXPECT_LT(share, 0.15) << name;
    EXPECT_GT(share, 0.0) << name;
  }
}

TEST(PaperClaims, CoLocationInterferenceEnvelope) {
  // Fig. 14: co-locating one extra task slows the target by < 25%.
  auto& f = fx();
  sim::SimConfig cfg = f.cfg;
  cfg.cluster.n_nodes = 1;
  sim::ClusterSim sim(cfg, f.features);
  sched::MoePolicy ours(f.features, 2017);
  const Items big = items_from_gib(280.0);
  for (const char* target : {"HB.Sort", "HB.Aggregation"}) {
    const Seconds alone = sim.run({{target, big}}, ours).apps[0].exec_time();
    for (const char* other : {"HB.Scan", "SP.Gmm", "SB.SVM"}) {
      const auto r = sim.run({{target, big}, {other, big}}, ours);
      const double slowdown = r.apps[0].exec_time() / alone - 1.0;
      EXPECT_LT(slowdown, 0.25) << target << " + " << other;
      EXPECT_GT(slowdown, -0.05) << target << " + " << other;
    }
  }
}

TEST(PaperClaims, CoLocationPacksMultipleAppsPerNode) {
  // The point of accurate footprints: more than pairwise packing (§6.2's
  // "Pairwise does not scale up beyond pairwise co-location").
  auto& f = fx();
  sim::ClusterSim sim(f.cfg, f.features);
  sched::MoePolicy ours(f.features, 2017);
  sched::PairwisePolicy pairwise;
  const auto mix = wl::table4_mix();
  EXPECT_GE(sim.run(mix, ours).peak_node_occupancy, 3u);
  EXPECT_LE(sim.run(mix, pairwise).peak_node_occupancy, 2u);
}

TEST(PaperClaims, UtilizationRankingMatchesFig7) {
  auto& f = fx();
  sim::ClusterSim sim(f.cfg, f.features);
  sched::MoePolicy ours(f.features, 2017);
  sched::PairwisePolicy pairwise;
  const auto mix = wl::table4_mix();
  const auto r_ours = sim.run(mix, ours);
  const auto r_pair = sim.run(mix, pairwise);
  // "Our approach leads to the highest server utilization and quickest
  // turnaround time."
  EXPECT_GT(r_ours.trace.overall_mean(), r_pair.trace.overall_mean());
  EXPECT_LT(r_ours.makespan, r_pair.makespan);
}

}  // namespace
