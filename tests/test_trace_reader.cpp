// TraceReader round-trip pinning: every trace JsonlSink can emit — fast
// path, memo hits, and the string-append slow path; random and adversarial
// values — parses back field-for-field and re-emits byte-identically. Plus
// the golden corpus as the "real traces" anchor, and malformed-input errors.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis/trace_reader.h"
#include "obs/sink.h"

#ifndef SMOE_GOLDEN_DIR
#error "SMOE_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace smoe;
using namespace smoe::obs;

// ---- event-type name round trip ----

TEST(TraceReader, EventTypeNamesRoundTrip) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto type = static_cast<EventType>(i);
    EventType parsed = EventType::kRunEnd;
    ASSERT_TRUE(event_type_from_string(to_string(type), parsed)) << to_string(type);
    EXPECT_EQ(parsed, type);
  }
  EventType out = EventType::kRunStart;
  EXPECT_FALSE(event_type_from_string("no_such_event", out));
  EXPECT_FALSE(event_type_from_string("", out));
  EXPECT_EQ(out, EventType::kRunStart) << "out must be untouched on failure";
}

// ---- golden corpus: parse + re-emit is the identity ----

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(TraceReader, GoldenCorpusReEmitsByteIdentically) {
  const std::vector<std::string> policies = {"isolated", "pairwise", "oracle",
                                             "online",   "moe",      "quasar"};
  for (const std::string& p : policies) {
    const std::string path = std::string(SMOE_GOLDEN_DIR) + "/trace_" + p + ".jsonl";
    const std::string original = read_file(path);
    ASSERT_FALSE(original.empty()) << path;
    const std::vector<OwnedEvent> events = TraceReader::read_file(path);
    ASSERT_FALSE(events.empty()) << path;
    EXPECT_EQ(events.front().type, EventType::kRunStart) << path;
    EXPECT_EQ(events.back().type, EventType::kRunEnd) << path;
    EXPECT_EQ(render_jsonl(events), original) << path << ": round trip not byte-exact";
  }
}

// ---- differential round trip over generated events ----

// Keys must be literals with stable addresses: JsonlSink memoizes formatted
// fields by key *pointer*.
constexpr const char* kKeys[] = {"alpha", "beta",  "gamma", "delta", "items",
                                 "node",  "ratio", "label", "x",     "y"};

const std::vector<double>& double_pool() {
  static const std::vector<double> pool = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.5,
      1.0 / 3.0,
      5.0,  // emits as "5": reclassified int64 on parse, same bytes out
      123456789012345.0,
      1e-300,
      -1e300,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::epsilon(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
  };
  return pool;
}

const std::vector<std::int64_t>& int_pool() {
  static const std::vector<std::int64_t> pool = {
      0,  1,  -1, 42, -42, 1000000007,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max(),
  };
  return pool;
}

std::string random_string(std::mt19937_64& rng, bool huge) {
  // Adversarial content: quotes, backslashes, control chars, multi-byte
  // UTF-8, and (huge) strings far past the sink's stack scratch so the
  // slow path runs.
  static const std::string alphabet =
      "abc \"\\\n\r\t\x01\x1f/{}:,\xc3\xa9\xe2\x82\xac";
  std::uniform_int_distribution<std::size_t> len(0, huge ? 6000 : 24);
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::string s;
  const std::size_t n = len(rng);
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) s += alphabet[pick(rng)];
  return s;
}

/// Canonical rendering of a parsed value, for field-for-field comparison
/// against the bytes the sink wrote for the original.
std::string render_value(const OwnedEvent::Field& f) {
  std::string out;
  if (const auto* i = std::get_if<std::int64_t>(&f.value)) {
    obs::detail::append_json_number(out, *i);
  } else if (const auto* d = std::get_if<double>(&f.value)) {
    obs::detail::append_json_number(out, *d);
  } else {
    obs::detail::append_json_string(out, std::get<std::string>(f.value));
  }
  return out;
}

TEST(TraceReader, DifferentialRandomRoundTrip) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> n_fields(0, Event::kMaxFields - 2);
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_int_distribution<std::size_t> key_pick(0, std::size(kKeys) - 1);
  std::uniform_real_distribution<double> uniform(-1e6, 1e6);
  std::uniform_int_distribution<std::int64_t> uniform_i(-1'000'000'000'000,
                                                        1'000'000'000'000);

  // Storage for generated values so the Event string_views stay valid until
  // emit() — and for the expected-value comparison afterwards.
  struct Expected {
    double t;
    EventType type;
    std::vector<std::string> keys;
    std::vector<std::variant<std::int64_t, double, std::string>> values;
  };

  for (const std::size_t buffer_bytes : {std::size_t{256}, kSinkBufferBytes}) {
    std::ostringstream os;
    SinkOptions opts;
    opts.buffer_bytes = buffer_bytes;
    JsonlSink sink(os, opts);
    std::vector<Expected> expected;
    std::vector<std::string> string_arena;  // outlives each emit
    string_arena.reserve(4096);

    for (int iter = 0; iter < 400; ++iter) {
      Expected exp;
      exp.t = kind(rng) == 0 ? static_cast<double>(iter)
                             : uniform(rng) * (kind(rng) == 1 ? 1e-7 : 1.0);
      exp.type = static_cast<EventType>(iter % kEventTypeCount);
      Event e(exp.t, exp.type);
      const int nf = n_fields(rng);
      for (int f = 0; f < nf; ++f) {
        const char* key = kKeys[key_pick(rng)];
        exp.keys.emplace_back(key);
        switch (kind(rng)) {
          case 0: {
            const auto& pool = int_pool();
            const std::int64_t v =
                iter % 3 == 0 ? pool[static_cast<std::size_t>(iter / 3) % pool.size()]
                              : uniform_i(rng);
            e.with(key, v);
            exp.values.emplace_back(v);
            break;
          }
          case 1: {
            const auto& pool = double_pool();
            const double v =
                iter % 2 == 0 ? pool[static_cast<std::size_t>(iter) % pool.size()]
                              : uniform(rng);
            e.with(key, v);
            exp.values.emplace_back(v);
            break;
          }
          default: {
            string_arena.push_back(random_string(rng, iter % 37 == 0));
            e.with(key, std::string_view(string_arena.back()));
            exp.values.emplace_back(string_arena.back());
            break;
          }
        }
      }
      sink.emit(e);
      expected.push_back(std::move(exp));
    }
    sink.close();

    const std::string emitted = os.str();
    std::istringstream in(emitted);
    const std::vector<OwnedEvent> parsed = TraceReader::read_all(in);
    ASSERT_EQ(parsed.size(), expected.size());

    // Byte-level: re-emission is the identity.
    EXPECT_EQ(render_jsonl(parsed), emitted)
        << "buffer_bytes=" << buffer_bytes << ": re-emission not byte-exact";

    // Field-for-field: every key survives verbatim; every value renders to
    // the same bytes the sink wrote and coerces to the same number.
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      const OwnedEvent& got = parsed[i];
      const Expected& want = expected[i];
      EXPECT_EQ(got.type, want.type) << "event " << i;
      ASSERT_EQ(got.fields.size(), want.keys.size()) << "event " << i;
      for (std::size_t f = 0; f < got.fields.size(); ++f) {
        EXPECT_EQ(got.fields[f].key, want.keys[f]) << "event " << i << " field " << f;
        const auto& wv = want.values[f];
        const auto& gv = got.fields[f].value;
        std::string want_bytes;
        if (const auto* s = std::get_if<std::string>(&wv)) {
          obs::detail::append_json_string(want_bytes, *s);
          ASSERT_TRUE(std::holds_alternative<std::string>(gv))
              << "event " << i << " field " << f;
          EXPECT_EQ(std::get<std::string>(gv), *s) << "event " << i << " field " << f;
        } else if (const auto* d = std::get_if<double>(&wv)) {
          obs::detail::append_json_number(want_bytes, *d);
          if (std::isnan(*d) || std::isinf(*d)) {
            // Non-finite collapses to null -> NaN; payload unrecoverable.
            ASSERT_TRUE(std::holds_alternative<double>(gv));
            EXPECT_TRUE(std::isnan(std::get<double>(gv)));
          } else if (const auto* gi = std::get_if<std::int64_t>(&gv)) {
            // Integer-valued double, reclassified; numerically identical.
            EXPECT_EQ(static_cast<double>(*gi), *d) << "event " << i << " field " << f;
          } else {
            EXPECT_EQ(std::get<double>(gv), *d) << "event " << i << " field " << f;
          }
        } else {
          const std::int64_t iv = std::get<std::int64_t>(wv);
          obs::detail::append_json_number(want_bytes, iv);
          ASSERT_TRUE(std::holds_alternative<std::int64_t>(gv))
              << "event " << i << " field " << f;
          EXPECT_EQ(std::get<std::int64_t>(gv), iv) << "event " << i << " field " << f;
        }
        EXPECT_EQ(render_value(got.fields[f]), want_bytes)
            << "event " << i << " field " << f << ": value bytes drifted";
      }
    }
  }
}

// ---- scalar semantics ----

TEST(TraceReader, NullParsesAsNaNAndReEmitsAsNull) {
  const OwnedEvent e = TraceReader::parse_line(R"({"t":1.5,"type":"run_end","x":null})");
  ASSERT_EQ(e.fields.size(), 1u);
  const auto* d = std::get_if<double>(&e.fields[0].value);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(std::isnan(*d));
  EXPECT_EQ(render_jsonl({e}), "{\"t\":1.5,\"type\":\"run_end\",\"x\":null}\n");
}

TEST(TraceReader, NegativeZeroStaysDouble) {
  const OwnedEvent e = TraceReader::parse_line(R"({"t":0,"type":"run_end","x":-0})");
  ASSERT_TRUE(std::holds_alternative<double>(e.fields[0].value));
  EXPECT_EQ(render_jsonl({e}), "{\"t\":0,\"type\":\"run_end\",\"x\":-0}\n");
}

TEST(TraceReader, IntegerTokensParseAsInt64) {
  const OwnedEvent e = TraceReader::parse_line(
      R"({"t":0,"type":"dispatch","a":9223372036854775807,"b":-9223372036854775808,"c":1.0,"d":1e3})");
  EXPECT_EQ(std::get<std::int64_t>(e.fields[0].value),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(std::get<std::int64_t>(e.fields[1].value),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(std::holds_alternative<double>(e.fields[2].value));
  EXPECT_TRUE(std::holds_alternative<double>(e.fields[3].value));
}

TEST(TraceReader, EscapedStringsUnescape) {
  const OwnedEvent e = TraceReader::parse_line(
      "{\"t\":0,\"type\":\"run_start\",\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\\u00e9\"}");
  EXPECT_EQ(std::get<std::string>(e.fields[0].value),
            std::string("a\"b\\c\n\t\x01\xc3\xa9"));
}

// ---- streaming interface ----

TEST(TraceReader, NextSkipsBlankLinesAndTracksLineNumbers) {
  std::istringstream in(
      "{\"t\":0,\"type\":\"run_start\"}\r\n"
      "\n"
      "{\"t\":1,\"type\":\"run_end\"}\n");
  TraceReader reader(in);
  auto e1 = reader.next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->type, EventType::kRunStart);
  EXPECT_EQ(reader.line(), 1u);
  auto e2 = reader.next();
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->type, EventType::kRunEnd);
  EXPECT_EQ(reader.line(), 3u) << "blank line must count toward line numbers";
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.events_read(), 2u);
}

// ---- malformed input ----

TEST(TraceReader, MalformedLinesThrowWithLineNumber) {
  const std::vector<std::string> bad = {
      "",                                          // empty (via parse_line)
      "not json",                                  //
      "{\"type\":\"run_end\",\"t\":0}",            // t must come first
      "{\"t\":0}",                                 // missing type
      "{\"t\":0,\"type\":\"bogus_event\"}",        // unknown type
      "{\"t\":0,\"type\":\"run_end\"} trailing",   // trailing garbage
      "{\"t\":0,\"type\":\"run_end\",\"x\":}",     // missing value
      "{\"t\":0,\"type\":\"run_end\",\"x\":1e}",   // bad number
      "{\"t\":0,\"type\":\"run_end\",\"x\":\"a",   // unterminated string
      "{\"t\":0,\"type\":\"run_end\",\"x\":\"\\q\"}",    // unknown escape
      "{\"t\":0,\"type\":\"run_end\",\"x\":\"\\u12\"}",  // truncated \u
      "{\"t\":0,\"type\":\"run_end\",\"x\":\"\\ud800\"}",  // surrogate
      "{\"t\":0,\"type\":\"run_end\"",             // unterminated object
  };
  for (const std::string& line : bad) {
    EXPECT_THROW(TraceReader::parse_line(line, 7), TraceParseError) << line;
    try {
      TraceReader::parse_line(line, 7);
    } catch (const TraceParseError& e) {
      EXPECT_NE(std::string(e.what()).find("line 7"), std::string::npos) << line;
    }
  }
}

TEST(TraceReader, MissingFileThrows) {
  EXPECT_THROW(TraceReader::read_file("/nonexistent/trace.jsonl"), PreconditionError);
}

}  // namespace
