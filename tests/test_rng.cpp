// Determinism and distribution sanity for the seeded RNG wrapper, plus the
// differential pin of the lazy Mt64 engine against std::mt19937_64.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "common/error.h"
#include "common/mt64.h"
#include "common/rng.h"
#include "common/stats.h"

namespace {

using namespace smoe;

// Mt64 must reproduce std::mt19937_64 *exactly* — the entire repo's
// determinism story rides on it. Draw counts straddle the lazy first block
// (312 words), the first batch twist and a second twist.
TEST(Mt64, BitIdenticalToStdMersenne) {
  const std::uint64_t seeds[] = {0,    1,      5489,       424242,
                                 2017, 515151, 0xDEADBEEF, ~std::uint64_t{0}};
  for (const std::uint64_t seed : seeds) {
    std::mt19937_64 ref(seed);
    Mt64 ours(seed);
    for (int i = 0; i < 1000; ++i)
      ASSERT_EQ(ours(), ref()) << "seed " << seed << " draw " << i;
  }
}

// Short prefixes from fresh engines (the hot path the lazy block exists for):
// every prefix length must match, including length 1.
TEST(Mt64, ShortStreamPrefixesMatch) {
  for (int len = 1; len <= 350; len += 7) {
    std::mt19937_64 ref(9000 + static_cast<std::uint64_t>(len));
    Mt64 ours(9000 + static_cast<std::uint64_t>(len));
    for (int i = 0; i < len; ++i)
      ASSERT_EQ(ours(), ref()) << "len " << len << " draw " << i;
  }
}

// The standard distributions are templated on the engine's value sequence and
// min/max, so identical raw output means identical distribution draws; pin it
// anyway for the draws the simulator actually uses.
TEST(Mt64, DistributionsMatchStdEngine) {
  std::mt19937_64 ref(77);
  Mt64 ours(77);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(std::uniform_real_distribution<double>(0.0, 1.0)(ours),
              std::uniform_real_distribution<double>(0.0, 1.0)(ref));
    ASSERT_EQ(std::uniform_int_distribution<std::int64_t>(0, 1000)(ours),
              std::uniform_int_distribution<std::int64_t>(0, 1000)(ref));
    ASSERT_EQ(std::normal_distribution<double>(0.0, 1.0)(ours),
              std::normal_distribution<double>(0.0, 1.0)(ref));
  }
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, DeriveIsDeterministicAndNameSensitive) {
  EXPECT_EQ(Rng::derive(7, "alpha"), Rng::derive(7, "alpha"));
  EXPECT_NE(Rng::derive(7, "alpha"), Rng::derive(7, "beta"));
  EXPECT_NE(Rng::derive(7, "alpha"), Rng::derive(8, "alpha"));
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, BadBoundsThrow) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(1, 0), PreconditionError);
  EXPECT_THROW(rng.uniform_int(3, 2), PreconditionError);
  EXPECT_THROW(rng.normal(0, -1), PreconditionError);
  EXPECT_THROW(rng.chance(1.5), PreconditionError);
  EXPECT_THROW(rng.lognormal_median(0, 1), PreconditionError);
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(5, 2));
  EXPECT_NEAR(mean(xs), 5.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, NormalWithZeroStddevIsConstant) {
  Rng rng(6);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, LognormalMedian) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.lognormal_median(4.0, 0.6));
  EXPECT_NEAR(median(xs), 4.0, 0.15);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(10);
  const auto idx = rng.sample_without_replacement(20, 5);
  ASSERT_EQ(idx.size(), 5u);
  const std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 5u);
  for (const auto i : idx) EXPECT_LT(i, 20u);
}

TEST(Rng, SampleMoreThanPopulationReturnsAll) {
  Rng rng(11);
  const auto idx = rng.sample_without_replacement(3, 10);
  EXPECT_EQ(idx.size(), 3u);
}

}  // namespace
