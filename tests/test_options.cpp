// Tests for the configurable knobs: MoeOptions, Quasar's resource class, the
// engine's executor boost, and the profiling-slot configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/engine.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

TEST(MoeOptions, ProbeCapsBoundCalibrationCost) {
  const wl::FeatureModel features(1);
  sched::MoeOptions small_probes;
  small_probes.probe_x1_cap = 64;
  small_probes.probe_x2_cap = 128;
  sched::MoePolicy moe(features, 2, small_probes);
  sim::AppProbe probe(wl::find_benchmark("SP.Gmm"), features, 1048576, 3);
  sim::MemoryEstimate est;
  const sim::ProfilingCost cost = moe.profile(probe, est);
  EXPECT_LE(cost.calibration_items, 64.0 + 128.0);
}

TEST(MoeOptions, ProbeHelperKeepsOrdering) {
  for (const double input : {300.0, 30720.0, 1048576.0}) {
    const Items total = sched::calibration_probe_items(input, 512, 1536);
    EXPECT_GT(total, 0.0);
    EXPECT_LE(total, 0.15 * input + 2048.0);
  }
  // Degenerate caps still give x2 > x1.
  const auto probes_total = sched::calibration_probe_items(1048576.0, 2048, 64);
  EXPECT_GT(probes_total, 2048.0);
}

TEST(MoeOptions, TightConfidenceTriggersConservativeFallback) {
  const wl::FeatureModel features(1);
  sched::MoeOptions strict;
  strict.confidence_distance = 1e-9;  // nothing is ever confident
  strict.fallback_inflation = 0.5;
  sched::MoePolicy guarded(features, 2, strict);
  sched::MoePolicy plain(features, 2);

  sim::AppProbe p1(wl::find_benchmark("SP.Gmm"), features, 30720, 4);
  sim::AppProbe p2(wl::find_benchmark("SP.Gmm"), features, 30720, 4);
  sim::MemoryEstimate e1, e2;
  guarded.profile(p1, e1);
  plain.profile(p2, e2);
  EXPECT_EQ(guarded.fallback_count(), 1u);
  EXPECT_EQ(plain.fallback_count(), 0u);
  // The guarded estimate reserves 1.5x the plain one.
  EXPECT_NEAR(e1.footprint(20000), 1.5 * e2.footprint(20000), 1e-6);
  // And fits fewer items into the same budget.
  EXPECT_LT(e1.items_for_budget(30.0), e2.items_for_budget(30.0));
}

TEST(MoeOptions, FallbackCanBeDisabled) {
  const wl::FeatureModel features(1);
  sched::MoeOptions opts;
  opts.confidence_distance = 1e-9;
  opts.conservative_fallback = false;
  sched::MoePolicy moe(features, 2, opts);
  sim::AppProbe probe(wl::find_benchmark("SP.Gmm"), features, 30720, 4);
  sim::MemoryEstimate est;
  moe.profile(probe, est);
  EXPECT_EQ(moe.fallback_count(), 0u);
}

TEST(QuasarOptions, ResourceClassGranularityHonoured) {
  const wl::FeatureModel features(1);
  sched::QuasarPolicy coarse(features, 2, 16.0);
  sim::AppProbe probe(wl::find_benchmark("SP.Gmm"), features, 286720, 5);
  sim::MemoryEstimate est;
  coarse.profile(probe, est);
  for (const double x : {2000.0, 50000.0}) {
    const double v = est.footprint(x);
    EXPECT_GE(v, 16.0);
    EXPECT_NEAR(std::fmod(v, 16.0), 0.0, 1e-9);
  }
  EXPECT_THROW(sched::QuasarPolicy(features, 2, 0.0), PreconditionError);
}

TEST(EngineOptions, ExecutorBoostSpeedsUpLoneLargeApp) {
  const wl::FeatureModel features(1);
  sched::OraclePolicy oracle;
  auto run_with_boost = [&](double boost) {
    sim::SimConfig cfg;
    cfg.seed = 6;
    cfg.spark.executor_boost = boost;
    sim::ClusterSim sim(cfg, features);
    return sim.run({{"HB.TeraSort", 1048576.0}}, oracle).makespan;
  };
  const Seconds none = run_with_boost(1.0);
  const Seconds twice = run_with_boost(2.0);
  const Seconds triple = run_with_boost(3.0);
  EXPECT_GT(none, 1.5 * twice);
  EXPECT_GE(twice, triple - 1e-9);
}

TEST(EngineOptions, BoostNeverExceedsClusterSize) {
  const wl::FeatureModel features(1);
  sched::OraclePolicy oracle;
  sim::SimConfig cfg;
  cfg.seed = 6;
  cfg.cluster.n_nodes = 4;
  cfg.spark.executor_boost = 100.0;
  sim::ClusterSim sim(cfg, features);
  const sim::SimResult r = sim.run({{"HB.TeraSort", 1048576.0}}, oracle);
  EXPECT_GE(r.makespan, 1048576.0 / 4.0 / wl::find_benchmark("HB.TeraSort").items_per_second -
                            1.0);
}

}  // namespace
