// Open-loop serving mode: arrival delivery, the admission gate, steady-state
// accounting, and the closed-batch equivalence anchor (DESIGN.md §14).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "sched/policies_basic.h"
#include "sparksim/admission.h"
#include "sparksim/audit/invariant_auditor.h"
#include "sparksim/engine.h"
#include "workloads/features.h"
#include "workloads/mixes.h"

namespace {

using namespace smoe;

sim::SimConfig serving_config() {
  sim::SimConfig cfg;
  cfg.seed = 77;
  cfg.cluster.n_nodes = 8;  // small cluster: contention (and the gate) matter
  return cfg;
}

wl::TaskMix small_mix(std::size_t n) {
  Rng rng(20170815);
  return wl::random_mix(n, rng);
}

std::vector<sim::ServingArrival> arrivals_at(const wl::TaskMix& mix, Seconds t,
                                             Seconds isolated_s = 0) {
  std::vector<sim::ServingArrival> out;
  out.reserve(mix.size());
  for (const auto& app : mix) out.push_back({t, app, isolated_s});
  return out;
}

// ---- equivalence anchor ----------------------------------------------------

// The serving engine with every arrival at t = 0 and an unbounded gate is the
// batch engine: same per-app schedule to the last bit. This pins the serving
// refactor (submit_one, member profiling slots, the arrival sentinel) to the
// golden-tested batch path.
TEST(Serving, UnboundedAllAtTimeZeroMatchesBatchRun) {
  const wl::FeatureModel features(1);
  const wl::TaskMix mix = small_mix(8);

  sim::ClusterSim batch_sim(serving_config(), features);
  sched::OraclePolicy batch_policy;
  const sim::SimResult batch = batch_sim.run(mix, batch_policy);

  sim::ClusterSim serve_sim(serving_config(), features);
  sched::OraclePolicy serve_policy;
  sim::UnboundedAdmission gate;
  const sim::ServingResult served =
      serve_sim.serve(arrivals_at(mix, 0.0), serve_policy, gate);

  EXPECT_EQ(served.offered, mix.size());
  EXPECT_EQ(served.admitted, mix.size());
  EXPECT_EQ(served.dropped, 0u);
  EXPECT_EQ(served.deferrals, 0u);
  ASSERT_EQ(served.apps.size(), batch.apps.size());
  for (std::size_t i = 0; i < batch.apps.size(); ++i) {
    EXPECT_EQ(served.apps[i].benchmark, batch.apps[i].benchmark);
    EXPECT_DOUBLE_EQ(served.apps[i].profile_end, batch.apps[i].profile_end);
    EXPECT_DOUBLE_EQ(served.apps[i].start, batch.apps[i].start);
    EXPECT_DOUBLE_EQ(served.apps[i].finish, batch.apps[i].finish);
  }
  EXPECT_DOUBLE_EQ(served.makespan, batch.makespan);
  EXPECT_EQ(served.oom_total, batch.oom_total);
  EXPECT_EQ(served.executors_spawned, batch.executors_spawned);
}

// ---- determinism -----------------------------------------------------------

TEST(Serving, PoissonLoadIsDeterministicAndRateIndependent) {
  const auto a = sim::poisson_load(20, 0.01, 42);
  const auto b = sim::poisson_load(20, 0.01, 42);
  const auto fast = sim::poisson_load(20, 1.0, 42);
  ASSERT_EQ(a.size(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].app.benchmark, b[i].app.benchmark);
    // Same seed → the same application sequence at every rate, so sweeps
    // compare admission policies on identical offered work.
    EXPECT_EQ(a[i].app.benchmark, fast[i].app.benchmark);
    EXPECT_DOUBLE_EQ(a[i].app.input_items, fast[i].app.input_items);
    if (i > 0) EXPECT_GE(a[i].t, a[i - 1].t);
  }
  // ~100x the arrival rate compresses the timeline by ~100x.
  EXPECT_GT(a.back().t, 50.0 * fast.back().t);
}

TEST(Serving, ServingRunIsDeterministic) {
  const wl::FeatureModel features(1);
  const auto load = sim::poisson_load(12, 1.0 / 400.0, 7);
  sim::ServingResult results[2];
  for (auto& result : results) {
    sim::ClusterSim cluster(serving_config(), features);
    sched::OraclePolicy policy;
    sim::BoundedDeferAdmission gate(3);
    result = cluster.serve(load, policy, gate);
  }
  EXPECT_DOUBLE_EQ(results[0].makespan, results[1].makespan);
  EXPECT_EQ(results[0].admitted, results[1].admitted);
  EXPECT_EQ(results[0].deferrals, results[1].deferrals);
  ASSERT_EQ(results[0].apps.size(), results[1].apps.size());
  for (std::size_t i = 0; i < results[0].apps.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[0].apps[i].submit, results[1].apps[i].submit);
    EXPECT_DOUBLE_EQ(results[0].apps[i].finish, results[1].apps[i].finish);
  }
}

// ---- admission policies ----------------------------------------------------

TEST(Serving, BoundedDropShedsOverflowAndBalancesCounts) {
  const wl::FeatureModel features(1);
  // A burst: everything arrives before anything can finish.
  const auto load = arrivals_at(small_mix(10), 0.0);
  sim::ClusterSim cluster(serving_config(), features);
  sched::OraclePolicy policy;
  sim::BoundedDropAdmission gate(3);
  const sim::ServingResult r = cluster.serve(load, policy, gate);
  EXPECT_EQ(r.admitted, 3u);
  EXPECT_EQ(r.dropped, 7u);
  EXPECT_EQ(r.admitted + r.dropped, r.offered);
  EXPECT_EQ(r.apps.size(), r.admitted);
  EXPECT_EQ(r.metrics.counters.at("serving_admitted_total"), 3u);
  EXPECT_EQ(r.metrics.counters.at("serving_dropped_total"), 7u);
}

TEST(Serving, BoundedDeferBackpressuresButLosesNothing) {
  const wl::FeatureModel features(1);
  const auto load = arrivals_at(small_mix(10), 0.0);
  sim::ClusterSim cluster(serving_config(), features);
  sched::OraclePolicy policy;
  sim::BoundedDeferAdmission gate(3);
  const sim::ServingResult r = cluster.serve(load, policy, gate);
  EXPECT_EQ(r.admitted, 10u);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_GE(r.deferrals, 7u);  // at least the burst overflow parked once
  ASSERT_EQ(r.apps.size(), 10u);
  // Deferred apps were admitted later: some submit times are strictly
  // positive, and admission order is FCFS (submit times non-decreasing).
  EXPECT_GT(r.apps.back().submit, 0.0);
  for (std::size_t i = 1; i < r.apps.size(); ++i)
    EXPECT_GE(r.apps[i].submit, r.apps[i - 1].submit);
}

TEST(Serving, TokenBucketCapsBurstAdmission) {
  const wl::FeatureModel features(1);
  const auto load = arrivals_at(small_mix(10), 0.0);
  sim::ClusterSim cluster(serving_config(), features);
  sched::OraclePolicy policy;
  // Refill is negligible over the burst: only the burst allowance admits.
  sim::TokenBucketAdmission gate(1e-9, 4.0);
  const sim::ServingResult r = cluster.serve(load, policy, gate);
  EXPECT_EQ(r.admitted, 4u);
  EXPECT_EQ(r.dropped, 6u);
  EXPECT_EQ(r.deferrals, 0u);
}

TEST(Serving, MursGateDefersUnderMemoryPressureThenDrains) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg = serving_config();
  cfg.cluster.n_nodes = 4;  // tiny cluster: the monitor view saturates fast
  // Spread arrivals across a few monitor periods so the gate sees a stale
  // view with real memory pressure on it.
  auto load = sim::poisson_load(10, 1.0 / 90.0, 11);
  sim::ClusterSim cluster(cfg, features);
  sched::OraclePolicy policy;
  sim::MursGateAdmission gate(0.05);  // very low threshold → gate must close
  const sim::ServingResult r = cluster.serve(load, policy, gate);
  // Nothing is ever dropped, everything eventually runs and finishes.
  EXPECT_EQ(r.admitted, 10u);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_GT(r.deferrals, 0u);
  for (const auto& app : r.apps) EXPECT_GE(app.finish, 0.0);
}

// ---- steady-state accounting ----------------------------------------------

TEST(Serving, NormalizedTurnaroundUsesIsolatedBaseline) {
  const wl::FeatureModel features(1);
  const auto load = arrivals_at(small_mix(6), 0.0, /*isolated_s=*/100.0);
  sim::ClusterSim cluster(serving_config(), features);
  sched::OraclePolicy policy;
  sim::UnboundedAdmission gate;
  const sim::ServingResult r = cluster.serve(load, policy, gate);
  EXPECT_GT(r.antt, 0.0);
  EXPECT_GT(r.throughput, 0.0);
  const auto& q = r.metrics.quantiles.at("app_norm_turnaround");
  EXPECT_EQ(q.count, 6u);
  // ANTT is the mean of the same normalized samples the quantile sketch saw.
  EXPECT_NEAR(r.antt, q.sum / static_cast<double>(q.count), 1e-12);
  const auto& arrive = r.metrics.windows.at("serving_arrival_rate");
  const auto& finish = r.metrics.windows.at("serving_finish_rate");
  EXPECT_EQ(arrive.total_count, 6u);
  EXPECT_EQ(finish.total_count, 6u);
}

// ---- invariant audit -------------------------------------------------------

TEST(Serving, AllPoliciesProduceAuditCleanTraces) {
  const wl::FeatureModel features(1);
  const auto load = sim::poisson_load(8, 1.0 / 150.0, 5);
  sim::UnboundedAdmission unbounded;
  sim::BoundedDropAdmission drop(3);
  sim::BoundedDeferAdmission defer(3);
  sim::MursGateAdmission murs(0.3);
  sim::TokenBucketAdmission bucket(1.0 / 300.0, 3.0);
  sim::HybridAdmission hybrid(6, 0.3);
  sim::AdmissionPolicy* gates[] = {&unbounded, &drop, &defer, &murs, &bucket, &hybrid};
  for (sim::AdmissionPolicy* gate : gates) {
    SCOPED_TRACE(gate->name());
    sim::audit::InvariantAuditor auditor;
    sim::ClusterSim cluster(serving_config(), features);
    sched::OraclePolicy policy;
    const sim::ServingResult r = cluster.serve(load, policy, *gate, &auditor);
    EXPECT_EQ(auditor.runs_completed(), 1u);
    EXPECT_EQ(r.admitted + r.dropped, r.offered);
    EXPECT_EQ(r.apps.size(), r.admitted);
  }
}

// ---- preconditions ---------------------------------------------------------

TEST(Serving, RejectsNonFcfsQueueOrder) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg = serving_config();
  cfg.spark.queue_order = sim::QueueOrder::kShortestJobFirst;
  sim::ClusterSim cluster(cfg, features);
  sched::OraclePolicy policy;
  sim::UnboundedAdmission gate;
  const auto load = arrivals_at(small_mix(2), 0.0);
  EXPECT_THROW(cluster.serve(load, policy, gate), PreconditionError);
}

TEST(Serving, RejectsEmptyAndUnsortedLoads) {
  const wl::FeatureModel features(1);
  sim::ClusterSim cluster(serving_config(), features);
  sched::OraclePolicy policy;
  sim::UnboundedAdmission gate;
  EXPECT_THROW(cluster.serve({}, policy, gate), PreconditionError);
  auto load = arrivals_at(small_mix(2), 10.0);
  load[1].t = 5.0;  // goes backwards
  EXPECT_THROW(cluster.serve(load, policy, gate), PreconditionError);
  EXPECT_THROW(sim::poisson_load(0, 1.0, 1), PreconditionError);
  EXPECT_THROW(sim::poisson_load(3, 0.0, 1), PreconditionError);
}

}  // namespace
