// Tests for the Jacobi symmetric eigensolver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "ml/eigen.h"

namespace {

using namespace smoe;
using ml::Matrix;

TEST(Eigen, DiagonalMatrix) {
  Matrix m(3, 3);
  m(0, 0) = 1;
  m(1, 1) = 5;
  m(2, 2) = 3;
  const auto eig = ml::eigen_symmetric(m);
  EXPECT_NEAR(eig.values[0], 5, 1e-10);
  EXPECT_NEAR(eig.values[1], 3, 1e-10);
  EXPECT_NEAR(eig.values[2], 1, 1e-10);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix m = Matrix::from_rows({{2, 1}, {1, 2}});
  const auto eig = ml::eigen_symmetric(m);
  EXPECT_NEAR(eig.values[0], 3, 1e-10);
  EXPECT_NEAR(eig.values[1], 1, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), 1 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::abs(eig.vectors(1, 0)), 1 / std::sqrt(2.0), 1e-8);
}

TEST(Eigen, RejectsNonSquareAndNonSymmetric) {
  EXPECT_THROW(ml::eigen_symmetric(Matrix(2, 3)), PreconditionError);
  const Matrix m = Matrix::from_rows({{1, 2}, {0, 1}});
  EXPECT_THROW(ml::eigen_symmetric(m), PreconditionError);
}

// Property sweep over random symmetric matrices: A v = lambda v, orthonormal
// eigenvectors, and trace preservation.
class EigenProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EigenProperty, ReconstructionAndOrthonormality) {
  Rng rng(GetParam());
  const std::size_t n = 6;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = rng.uniform(-2, 2);
      m(j, i) = m(i, j);
    }

  const auto eig = ml::eigen_symmetric(m);

  // Trace == sum of eigenvalues.
  double trace = 0, sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += m(i, i);
    sum += eig.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-8);

  // Sorted descending.
  for (std::size_t i = 0; i + 1 < n; ++i) EXPECT_GE(eig.values[i], eig.values[i + 1] - 1e-12);

  // A v_k = lambda_k v_k.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t r = 0; r < n; ++r) {
      double av = 0;
      for (std::size_t c = 0; c < n; ++c) av += m(r, c) * eig.vectors(c, k);
      EXPECT_NEAR(av, eig.values[k] * eig.vectors(r, k), 1e-6);
    }
  }

  // Orthonormal columns.
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b) {
      double d = 0;
      for (std::size_t r = 0; r < n; ++r) d += eig.vectors(r, a) * eig.vectors(r, b);
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
