// Unit tests for the dense matrix substrate.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "ml/matrix.h"

namespace {

using namespace smoe;
using ml::Matrix;
using ml::Vector;

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -4;
  EXPECT_DOUBLE_EQ(m(0, 1), -4);
}

TEST(Matrix, ZeroDimensionThrows) {
  EXPECT_THROW(Matrix(0, 3), PreconditionError);
  EXPECT_THROW(Matrix(3, 0), PreconditionError);
}

TEST(Matrix, FromRowsAndRaggedRejected) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), PreconditionError);
  EXPECT_THROW(Matrix::from_rows({}), PreconditionError);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transpose) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
}

TEST(Matrix, Multiply) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, PreconditionError);
}

TEST(Matrix, MatrixVector) {
  const Matrix a = Matrix::from_rows({{1, 0, 2}, {0, 3, 0}});
  const Vector v = {1, 2, 3};
  const Vector out = a * v;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 7);
  EXPECT_DOUBLE_EQ(out[1], 6);
}

TEST(Matrix, ColMeans) {
  const Matrix m = Matrix::from_rows({{1, 10}, {3, 30}});
  const Vector mu = m.col_means();
  EXPECT_DOUBLE_EQ(mu[0], 2);
  EXPECT_DOUBLE_EQ(mu[1], 20);
}

TEST(Matrix, CovarianceMatchesHandComputation) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 6}, {5, 10}});
  const Matrix cov = m.covariance();
  EXPECT_NEAR(cov(0, 0), 4.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 16.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 8.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-12);
}

TEST(Matrix, CovarianceIsSymmetricPsdOnRandomData) {
  Rng rng(5);
  Matrix m(30, 6);
  for (std::size_t r = 0; r < 30; ++r)
    for (std::size_t c = 0; c < 6; ++c) m(r, c) = rng.normal(0, 1 + static_cast<double>(c));
  const Matrix cov = m.covariance();
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GE(cov(i, i), 0.0);
    for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(cov(i, j), cov(j, i), 1e-12);
  }
}

TEST(VectorOps, DistanceDotNorm) {
  const Vector a = {3, 4};
  const Vector b = {0, 0};
  EXPECT_DOUBLE_EQ(ml::euclidean_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(ml::dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(ml::norm(a), 5.0);
  const Vector c = {1};
  EXPECT_THROW(ml::dot(a, c), PreconditionError);
}

}  // namespace
