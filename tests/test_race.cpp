// Best-arm racing (DESIGN.md §15): determinism across thread counts,
// elimination soundness, stop-rule semantics, and the sweep-cost accounting
// of run_scenario_raced.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sched/race.h"

namespace {

using namespace smoe;

constexpr std::uint64_t kSeed = 404;

/// Deterministic synthetic arm: base[cell] plus zero-mean noise that is a
/// pure function of (cell, replay) — the same determinism contract real
/// simulation samples satisfy.
sched::RacingReplicator::SampleFn synthetic_arms(std::vector<double> base, double sigma) {
  return [base = std::move(base), sigma](std::size_t cell, std::size_t replay) {
    Rng rng(Rng::derive(Rng::derive(kSeed, "cell:" + std::to_string(cell)),
                        "replay:" + std::to_string(replay)));
    const double value = base[cell] + rng.normal(0.0, sigma);
    return sched::RaceSample{value, value * 0.5, value * 2.0, replay % 2};
  };
}

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.cluster.n_nodes = 4;
  return cfg;
}

TEST(Race, RequiresSaneOptions) {
  ThreadPool pool(1);
  sched::RaceOptions opt;
  opt.min_replays = 1;
  EXPECT_THROW(sched::RacingReplicator(opt, pool), PreconditionError);
  opt = {};
  opt.max_replays = 1;
  EXPECT_THROW(sched::RacingReplicator(opt, pool), PreconditionError);
  opt = {};
  opt.target_rel_ci = 0.0;
  EXPECT_THROW(sched::RacingReplicator(opt, pool), PreconditionError);
  opt = {};
  opt.confidence = 1.0;
  EXPECT_THROW(sched::RacingReplicator(opt, pool), PreconditionError);
  opt = {};
  sched::RacingReplicator racer(opt, pool);
  EXPECT_THROW(racer.race(0, synthetic_arms({1.0}, 0.1)), PreconditionError);
  EXPECT_THROW(racer.race(2, synthetic_arms({1.0, 2.0}, 0.1), {0}), PreconditionError);
}

TEST(Race, SeparatedArmsStopEarlyAndBestConverges) {
  ThreadPool pool(1);
  sched::RaceOptions opt;
  opt.max_replays = 12;
  sched::RacingReplicator racer(opt, pool);
  // Widely separated means with tiny noise: the losers must be eliminated at
  // the first decision point, the winner converges on its own CI.
  const auto out = racer.race(3, synthetic_arms({1.0, 5.0, 2.0}, 0.01));
  EXPECT_EQ(out[0].stop, sched::CellStop::kSeparated);
  EXPECT_EQ(out[2].stop, sched::CellStop::kSeparated);
  EXPECT_EQ(out[0].replays_used, opt.min_replays);
  EXPECT_EQ(out[2].replays_used, opt.min_replays);
  EXPECT_TRUE(out[0].separated_from_best);
  EXPECT_TRUE(out[2].separated_from_best);
  EXPECT_EQ(out[1].stop, sched::CellStop::kConverged);
  EXPECT_FALSE(out[1].separated_from_best);
  EXPECT_NEAR(out[1].mean, 5.0, 0.1);
  EXPECT_NEAR(out[1].secondary_mean, out[1].mean * 0.5, 1e-9);
  EXPECT_NEAR(out[1].makespan_mean, out[1].mean * 2.0, 1e-9);
  EXPECT_EQ(out[1].oom_total, out[1].replays_used / 2);  // replay % 2 summed
}

TEST(Race, IndistinguishableArmsRunToTheBudget) {
  ThreadPool pool(1);
  sched::RaceOptions opt;
  opt.max_replays = 6;
  opt.target_rel_ci = 1e-6;  // unreachable, so convergence can't trigger
  sched::RacingReplicator racer(opt, pool);
  const auto out = racer.race(2, synthetic_arms({1.0, 1.0}, 0.5));
  for (const auto& cell : out) {
    EXPECT_EQ(cell.stop, sched::CellStop::kBudget);
    EXPECT_EQ(cell.replays_used, opt.max_replays);
    EXPECT_FALSE(cell.separated_from_best);
  }
}

TEST(Race, GroupsRaceIndependently) {
  ThreadPool pool(1);
  sched::RaceOptions opt;
  opt.max_replays = 10;
  sched::RacingReplicator racer(opt, pool);
  // Cells 0,1 form group A (separable); cells 2,3 form group B (identical
  // means — nothing may separate even though group A's best dominates B).
  const auto out = racer.race(4, synthetic_arms({1.0, 5.0, 2.0, 2.0}, 0.01),
                              {7, 7, 9, 9});
  EXPECT_EQ(out[0].stop, sched::CellStop::kSeparated);
  EXPECT_FALSE(out[1].separated_from_best);
  EXPECT_FALSE(out[2].separated_from_best);
  EXPECT_FALSE(out[3].separated_from_best);
  EXPECT_NE(out[2].stop, sched::CellStop::kSeparated);
  EXPECT_NE(out[3].stop, sched::CellStop::kSeparated);
}

TEST(Race, EliminationIsSoundAgainstTheFullBudget) {
  // Every eliminated arm, had it replayed to the full budget, must still sit
  // below the full-budget best arm — racing may only cut samples that could
  // not have changed the conclusion.
  ThreadPool pool(2);
  sched::RaceOptions opt;
  opt.max_replays = 12;
  sched::RacingReplicator racer(opt, pool);
  const std::vector<double> base = {1.0, 1.8, 2.6, 3.4, 4.2, 5.0};
  const auto sample = synthetic_arms(base, 0.15);
  const auto out = racer.race(base.size(), sample);

  // Full-budget stats per cell, computed directly from the pure sample fn.
  std::vector<Welford> full(base.size());
  for (std::size_t c = 0; c < base.size(); ++c)
    for (std::size_t r = 0; r < opt.max_replays; ++r) full[c].add(sample(c, r).value);
  std::size_t best = 0;
  for (std::size_t c = 1; c < base.size(); ++c)
    if (full[c].mean() > full[best].mean()) best = c;

  std::size_t eliminated = 0;
  for (std::size_t c = 0; c < base.size(); ++c) {
    if (out[c].stop != sched::CellStop::kSeparated) continue;
    ++eliminated;
    EXPECT_NE(c, best);
    EXPECT_LT(full[c].mean() + full[c].ci_half_width(0.95, true),
              full[best].mean() - full[best].ci_half_width(0.95, true))
        << "eliminated cell " << c << " was not separated at full budget";
    EXPECT_LT(out[c].replays_used, opt.max_replays);
  }
  EXPECT_GE(eliminated, 3u) << "well-separated arms should mostly be eliminated";
}

TEST(Race, ThreadCountDoesNotChangeOutcomes) {
  // The tentpole determinism contract, at the replicator level: 16 cells in
  // 4 groups, moderately noisy, raced on 1 vs 4 threads.
  std::vector<double> base;
  std::vector<std::size_t> group_of;
  for (std::size_t c = 0; c < 16; ++c) {
    base.push_back(1.0 + 0.35 * static_cast<double>(c % 4));
    group_of.push_back(c / 4);
  }
  sched::RaceOptions opt;
  opt.max_replays = 10;
  const auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    sched::RacingReplicator racer(opt, pool);
    return racer.race(base.size(), synthetic_arms(base, 0.2), group_of);
  };
  const auto seq = run(1);
  const auto par = run(4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t c = 0; c < seq.size(); ++c) {
    EXPECT_EQ(seq[c].replays_used, par[c].replays_used) << "cell " << c;
    EXPECT_EQ(seq[c].mean, par[c].mean) << "cell " << c;  // bitwise
    EXPECT_EQ(seq[c].ci_half, par[c].ci_half) << "cell " << c;
    EXPECT_EQ(seq[c].secondary_mean, par[c].secondary_mean) << "cell " << c;
    EXPECT_EQ(seq[c].makespan_mean, par[c].makespan_mean) << "cell " << c;
    EXPECT_EQ(seq[c].oom_total, par[c].oom_total) << "cell " << c;
    EXPECT_EQ(seq[c].stop, par[c].stop) << "cell " << c;
    EXPECT_EQ(seq[c].separated_from_best, par[c].separated_from_best) << "cell " << c;
  }
}

TEST(Race, CallerOnlyCellsRunOnTheCallingThread) {
  ThreadPool pool(4);
  sched::RaceOptions opt;
  opt.max_replays = 4;
  sched::RacingReplicator racer(opt, pool);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::uint8_t> on_caller(2, 1);
  bool ok = true;
  const auto out = racer.race(
      2,
      [&](std::size_t cell, std::size_t replay) {
        if (std::this_thread::get_id() != caller) ok = false;
        return synthetic_arms({1.0, 1.0}, 0.3)(cell, replay);
      },
      {}, on_caller);
  EXPECT_TRUE(ok);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Race, TinyWallClockBudgetStopsBeforeAnyRound) {
  ThreadPool pool(1);
  sched::RaceOptions opt;
  opt.budget_seconds = 1e-12;  // elapses before the first round is dispatched
  sched::RacingReplicator racer(opt, pool);
  const auto out = racer.race(2, synthetic_arms({1.0, 2.0}, 0.1));
  for (const auto& cell : out) {
    EXPECT_EQ(cell.stop, sched::CellStop::kBudget);
    EXPECT_EQ(cell.replays_used, 0u);
    EXPECT_DOUBLE_EQ(cell.mean, 0.0);
    EXPECT_FALSE(cell.separated_from_best);
  }
}

TEST(Race, StopLabelsRoundTrip) {
  EXPECT_STREQ(sched::to_string(sched::CellStop::kSeparated), "separated");
  EXPECT_STREQ(sched::to_string(sched::CellStop::kConverged), "converged");
  EXPECT_STREQ(sched::to_string(sched::CellStop::kBudget), "budget");
}

// ---- run_scenario_raced on real simulations --------------------------------

TEST(Race, RacedScenarioIsThreadCountInvariant) {
  // 4 policies x 4 mixes = 16 simulation cells, raced on 1 vs 4 threads:
  // every per-cell outcome and every scheme aggregate must match bitwise.
  const wl::FeatureModel features(kSeed);
  const auto scenario = wl::scenarios().front();
  sched::RaceOptions race;
  race.max_replays = 6;
  const auto run = [&](std::size_t threads) {
    sched::ExperimentRunner runner(small_config(), features, 4, Rng::derive(kSeed, "race"),
                                   threads);
    sched::PairwisePolicy pairwise;
    sched::QuasarPolicy quasar(features, kSeed);
    sched::MoePolicy moe(features, kSeed);
    sched::OraclePolicy oracle;
    return runner.run_scenario_raced(scenario, {&pairwise, &quasar, &moe, &oracle}, race);
  };
  const auto seq = run(1);
  const auto par = run(4);
  EXPECT_EQ(seq.total_simulations, par.total_simulations);
  EXPECT_EQ(seq.fixed_budget_simulations, par.fixed_budget_simulations);
  ASSERT_EQ(seq.cells.size(), par.cells.size());
  for (std::size_t c = 0; c < seq.cells.size(); ++c) {
    EXPECT_EQ(seq.cells[c].replays_used, par.cells[c].replays_used) << "cell " << c;
    EXPECT_EQ(seq.cells[c].mean, par.cells[c].mean) << "cell " << c;
    EXPECT_EQ(seq.cells[c].ci_half, par.cells[c].ci_half) << "cell " << c;
    EXPECT_EQ(seq.cells[c].stop, par.cells[c].stop) << "cell " << c;
    EXPECT_EQ(seq.cells[c].separated_from_best, par.cells[c].separated_from_best)
        << "cell " << c;
  }
  ASSERT_EQ(seq.schemes.size(), par.schemes.size());
  for (std::size_t p = 0; p < seq.schemes.size(); ++p) {
    EXPECT_EQ(seq.schemes[p].stp_geomean, par.schemes[p].stp_geomean);
    EXPECT_EQ(seq.schemes[p].antt_red_mean, par.schemes[p].antt_red_mean);
    EXPECT_EQ(seq.schemes[p].mean_makespan, par.schemes[p].mean_makespan);
    EXPECT_EQ(seq.schemes[p].oom_total, par.schemes[p].oom_total);
  }
}

TEST(Race, RacedScenarioSavesSamplesAndKeepsTheRanking) {
  const wl::FeatureModel features(kSeed);
  const auto scenario = wl::scenarios().front();
  sched::ExperimentRunner runner(small_config(), features, 4, Rng::derive(kSeed, "save"), 2);
  sched::IsolatedPolicy isolated;
  sched::PairwisePolicy pairwise;
  sched::OraclePolicy oracle;
  const std::vector<sim::SchedulingPolicy*> policies = {&isolated, &pairwise, &oracle};

  sched::RaceOptions race;
  race.max_replays = 8;
  const auto raced = runner.run_scenario_raced(scenario, policies, race);
  const auto fixed =
      runner.run_scenario_replicated(scenario, policies, race.max_replays, 0.05, 4);

  // Accounting invariants.
  std::size_t sum = 0;
  for (const auto& cell : raced.cells) {
    sum += cell.replays_used;
    EXPECT_GE(cell.replays_used, race.min_replays);
    EXPECT_LE(cell.replays_used, race.max_replays);
  }
  EXPECT_EQ(sum, raced.total_simulations);
  EXPECT_EQ(raced.fixed_budget_simulations, raced.cells.size() * race.max_replays);
  EXPECT_NEAR(raced.samples_saved_pct,
              100.0 * (1.0 - static_cast<double>(sum) /
                                 static_cast<double>(raced.fixed_budget_simulations)),
              1e-9);

  // Racing must not change the statistical conclusion: same ordering of
  // schemes by stp_geomean as the fixed-wave baseline, from fewer sims.
  EXPECT_LT(raced.total_simulations, fixed.total_simulations);
  const auto order = [](const std::vector<sched::SchemeScenarioResult>& schemes) {
    std::vector<std::size_t> idx(schemes.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return schemes[a].stp_geomean > schemes[b].stp_geomean;
    });
    return idx;
  };
  EXPECT_EQ(order(raced.schemes), order(fixed.schemes));
  // Oracle dominates Isolated clearly enough that its cells should separate.
  std::size_t isolated_separated = 0;
  for (std::size_t m = 0; m < 4; ++m)
    isolated_separated += raced.cells[0 * 4 + m].separated_from_best ? 1 : 0;
  EXPECT_GE(isolated_separated, 3u);
}

TEST(Race, FixedWaveTotalsAreWaveDependentNotThreadDependent) {
  const wl::FeatureModel features(kSeed);
  const auto scenario = wl::scenarios().front();
  sched::PairwisePolicy pairwise;
  sched::OraclePolicy oracle;
  const std::vector<sim::SchedulingPolicy*> policies = {&pairwise, &oracle};
  const auto run = [&](std::size_t threads, std::size_t wave) {
    sched::ExperimentRunner runner(small_config(), features, 3, Rng::derive(kSeed, "wave"),
                                   threads);
    return runner.run_scenario_replicated(scenario, policies, 8, 0.05, wave);
  };
  const auto a = run(1, 4);
  const auto b = run(3, 4);
  EXPECT_EQ(a.total_simulations, b.total_simulations);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].replays, b.cells[c].replays);
    EXPECT_EQ(a.cells[c].stp_mean, b.cells[c].stp_mean);
    EXPECT_EQ(a.cells[c].converged, b.cells[c].converged);
  }
  // A wave of 1 never executes surplus replays, so its total can only be <=
  // the wave-4 total (which rounds execution up to whole waves).
  const auto c = run(2, 1);
  EXPECT_LE(c.total_simulations, a.total_simulations);
}

}  // namespace
