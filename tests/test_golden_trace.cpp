// Golden-trace regression pinning of the engine core.
//
// Replays a fixed (seed, mix, cluster) cell under all six scheduling policies
// and byte-compares the full JSONL event stream plus a full-precision
// SimResult rendering against recorded goldens in tests/golden/. Any engine
// change that alters a scheduling decision, an event field, or a result
// value — even in the last floating-point digit — shows up as a byte diff.
//
// Regenerate (after an *intentional*, documented engine change) with:
//   SMOE_REGEN_GOLDEN=1 ./build/tests/test_golden_trace
// and record the drift bound in DESIGN.md §10.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/sink.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/audit/invariant_auditor.h"
#include "sparksim/engine.h"
#include "workloads/features.h"
#include "workloads/mixes.h"

#ifndef SMOE_GOLDEN_DIR
#error "SMOE_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace smoe;

constexpr std::uint64_t kSeed = 424242;

/// Shortest-round-trip number rendering (the JSONL formatter), so the result
/// files are exactly as sensitive as the traces.
std::string num(double v) {
  std::string s;
  obs::detail::append_json_number(s, v);
  return s;
}

sim::SimConfig golden_config() {
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.cluster.n_nodes = 6;
  return cfg;
}

/// Small but eventful: mixes co-location, profiling queues and an OOM-prone
/// benchmark spread, yet keeps each golden file a few tens of KiB.
wl::TaskMix golden_mix() {
  return {{"HB.TeraSort", 131072.0}, {"SP.Gmm", 30720.0},   {"SB.SVM", 30720.0},
          {"BDB.Grep", 4096.0},      {"HB.Scan", 61440.0},  {"HB.PageRank", 30720.0}};
}

std::string render_result(const sim::SimResult& r) {
  std::string out;
  out += "makespan=" + num(r.makespan) + "\n";
  out += "oom_total=" + std::to_string(r.oom_total) + "\n";
  out += "executors_spawned=" + std::to_string(r.executors_spawned) + "\n";
  out += "executors_degraded=" + std::to_string(r.executors_degraded) + "\n";
  out += "peak_node_occupancy=" + std::to_string(r.peak_node_occupancy) + "\n";
  out += "reserved_gib_hours=" + num(r.reserved_gib_hours) + "\n";
  out += "used_gib_hours=" + num(r.used_gib_hours) + "\n";
  out += "trace_overall_mean=" + num(r.trace.overall_mean()) + "\n";
  for (const auto& a : r.apps) {
    out += a.benchmark + " start=" + num(a.start) + " finish=" + num(a.finish) +
           " profile_end=" + num(a.profile_end) + " oom=" + std::to_string(a.oom_events) +
           " execs=" + std::to_string(a.executors_used) + "\n";
  }
  return out;
}

struct PolicyCell {
  std::string name;
  std::unique_ptr<sim::SchedulingPolicy> policy;
};

std::vector<PolicyCell> golden_policies(const wl::FeatureModel& features) {
  std::vector<PolicyCell> cells;
  cells.push_back({"isolated", std::make_unique<sched::IsolatedPolicy>()});
  cells.push_back({"pairwise", std::make_unique<sched::PairwisePolicy>()});
  cells.push_back({"oracle", std::make_unique<sched::OraclePolicy>()});
  cells.push_back({"online", std::make_unique<sched::OnlineSearchPolicy>()});
  cells.push_back({"moe", std::make_unique<sched::MoePolicy>(features, kSeed)});
  cells.push_back({"quasar", std::make_unique<sched::QuasarPolicy>(features, kSeed)});
  return cells;
}

std::string golden_path(const std::string& file) {
  return std::string(SMOE_GOLDEN_DIR) + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool regen() { return std::getenv("SMOE_REGEN_GOLDEN") != nullptr; }

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << "cannot write golden " << path;
  out << content;
}

void run_golden_cell(const sim::SimConfig& base_cfg, const wl::TaskMix& mix,
                     const std::string& prefix) {
  const wl::FeatureModel features(1);
  auto cells = golden_policies(features);
  for (auto& cell : cells) {
    // The auditor rides along so a golden update can never smuggle in an
    // invariant violation; it tees into the JSONL sink under test.
    sim::audit::InvariantAuditor auditor;
    std::ostringstream os;
    obs::JsonlSink jsonl(os);
    obs::TeeSink tee(jsonl, auditor);

    sim::SimConfig cfg = base_cfg;
    cfg.sink = &tee;
    sim::ClusterSim sim(cfg, features);
    const sim::SimResult result = sim.run(mix, *cell.policy);
    jsonl.close();

    const std::string trace = os.str();
    const std::string rendered = render_result(result);
    ASSERT_FALSE(trace.empty()) << cell.name;

    const std::string trace_file = golden_path(prefix + "trace_" + cell.name + ".jsonl");
    const std::string result_file = golden_path(prefix + "result_" + cell.name + ".txt");
    if (regen()) {
      write_file(trace_file, trace);
      write_file(result_file, rendered);
      continue;
    }
    const std::string want_trace = read_file(trace_file);
    const std::string want_result = read_file(result_file);
    ASSERT_FALSE(want_trace.empty())
        << "missing golden " << trace_file << " — run with SMOE_REGEN_GOLDEN=1";
    // Byte-for-byte: find the first differing line for a readable failure.
    if (trace != want_trace) {
      std::istringstream got(trace), want(want_trace);
      std::string g, w;
      std::size_t line = 0;
      while (std::getline(got, g) && std::getline(want, w)) {
        ++line;
        ASSERT_EQ(g, w) << cell.name << ": first trace divergence at line " << line;
      }
      FAIL() << cell.name << ": traces differ in length (" << trace.size() << " vs "
             << want_trace.size() << " bytes)";
    }
    EXPECT_EQ(rendered, want_result) << cell.name << ": SimResult drifted";
  }
}

TEST(GoldenTrace, AllPoliciesByteIdentical) {
  run_golden_cell(golden_config(), golden_mix(), "");
}

// Paper-scale cell: 40 nodes (the Middleware '17 testbed size) under a wider
// mix, recorded as trace40_<policy>.jsonl / result40_<policy>.txt. Pins the
// indexed-dispatch path at a size where the node index actually reorders its
// heap, not just the 6-node toy cell.
TEST(GoldenTrace, PaperScaleAllPoliciesByteIdentical) {
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.cluster.n_nodes = 40;
  Rng rng(Rng::derive(kSeed, "golden-40"));
  const wl::TaskMix mix = wl::random_mix(12, rng);
  run_golden_cell(cfg, mix, "40_");
}

}  // namespace
