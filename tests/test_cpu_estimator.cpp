// Tests for the Section 3.4 extension: CPU load modeled from the same
// runtime features as the memory experts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "sched/cpu_estimator.h"

namespace {

using namespace smoe;

TEST(CpuEstimator, RecoversTrainingProgramLoads) {
  const wl::FeatureModel features(1);
  const sched::CpuLoadEstimator est(features, 2);
  // A fresh characterization run of a training program lands essentially on
  // top of its training point, so the estimate matches its measured load.
  for (const char* name : {"HB.Aggregation", "HB.Scan", "BDB.PageRank"}) {
    const auto& bench = wl::find_benchmark(name);
    Rng rng(Rng::derive(3, name));
    const double got = est.estimate(features.sample(bench, rng));
    EXPECT_NEAR(got, bench.cpu_load_iso, 0.12) << name;
  }
}

TEST(CpuEstimator, GeneralizesToUnseenApplications) {
  const wl::FeatureModel features(1);
  const sched::CpuLoadEstimator est(features, 2);
  std::vector<double> errors;
  for (const auto& bench : wl::all_spark_benchmarks()) {
    if (bench.suite == wl::Suite::kHiBench || bench.suite == wl::Suite::kBigDataBench)
      continue;  // unseen Spark-Perf / Spark-Bench programs only
    Rng rng(Rng::derive(4, bench.name));
    errors.push_back(std::abs(est.estimate(features.sample(bench, rng)) - bench.cpu_load_iso));
  }
  // Feature-space neighbours share memory behaviour, not exact CPU levels,
  // so this is a coarse estimate — but good enough for the <=100% dispatch
  // check (the paper's use of the CPU signal).
  EXPECT_LT(mean(errors), 0.12);
  EXPECT_LT(max_of(errors), 0.35);
}

TEST(CpuEstimator, EstimatesStayInValidRange) {
  const wl::FeatureModel features(1);
  const sched::CpuLoadEstimator est(features, 2, 5);
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    ml::Vector junk(wl::kNumRawFeatures);
    for (auto& v : junk) v = rng.uniform(-1e3, 1e9);
    const double got = est.estimate(junk);
    EXPECT_GE(got, 0.01);
    EXPECT_LE(got, 1.0);
  }
}

TEST(CpuEstimator, KZeroRejected) {
  const wl::FeatureModel features(1);
  EXPECT_THROW(sched::CpuLoadEstimator(features, 2, 0), PreconditionError);
}

}  // namespace
