// Partitioned-cluster mode (sparksim/partition.h): P == 1 byte-equality with
// the plain simulator, thread-count determinism of the merged result, the
// round-robin deal / even node split, and merge conservation laws.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/engine.h"
#include "sparksim/partition.h"
#include "workloads/features.h"
#include "workloads/mixes.h"

namespace {

using namespace smoe;

constexpr std::uint64_t kSeed = 515151;

wl::TaskMix test_mix(std::size_t n_apps, const std::string& tag) {
  Rng rng(Rng::derive(kSeed, "partition-mix:" + tag));
  return wl::random_mix(n_apps, rng);
}

void expect_identical(const sim::SimResult& a, const sim::SimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.oom_total, b.oom_total) << label;
  EXPECT_EQ(a.executors_spawned, b.executors_spawned) << label;
  EXPECT_EQ(a.executors_degraded, b.executors_degraded) << label;
  EXPECT_EQ(a.peak_node_occupancy, b.peak_node_occupancy) << label;
  EXPECT_EQ(a.reserved_gib_hours, b.reserved_gib_hours) << label;
  EXPECT_EQ(a.used_gib_hours, b.used_gib_hours) << label;
  EXPECT_TRUE(a.metrics == b.metrics) << label << ": metrics differ";
  ASSERT_EQ(a.apps.size(), b.apps.size()) << label;
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].benchmark, b.apps[i].benchmark) << label << " app " << i;
    EXPECT_EQ(a.apps[i].start, b.apps[i].start) << label << " app " << i;
    EXPECT_EQ(a.apps[i].finish, b.apps[i].finish) << label << " app " << i;
    EXPECT_EQ(a.apps[i].executors_used, b.apps[i].executors_used) << label << " app " << i;
  }
  ASSERT_EQ(a.trace.n_bins(), b.trace.n_bins()) << label;
  ASSERT_EQ(a.trace.n_nodes(), b.trace.n_nodes()) << label;
  for (std::size_t n = 0; n < a.trace.n_nodes(); ++n)
    for (std::size_t bin = 0; bin < a.trace.n_bins(); ++bin)
      ASSERT_EQ(a.trace.value(static_cast<int>(n), bin),
                b.trace.value(static_cast<int>(n), bin))
          << label << " node " << n << " bin " << bin;
}

TEST(Partition, SinglePartitionIsByteIdenticalToPlainSim) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.cluster.n_nodes = 8;
  const wl::TaskMix mix = test_mix(6, "p1");
  sched::MoePolicy policy(features, kSeed);

  sim::PartitionedClusterSim part(cfg, features, /*n_partitions=*/1);
  const sim::SimResult a = part.run(mix, policy);
  const sim::SimResult b = sim::ClusterSim(cfg, features).run(mix, policy);
  expect_identical(a, b, "P1-vs-plain");
}

TEST(Partition, MergedResultIsIdenticalAtAnyThreadCount) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.cluster.n_nodes = 13;  // uneven split: shards of 4, 3, 3, 3
  const wl::TaskMix mix = test_mix(9, "threads");
  sched::MoePolicy policy(features, kSeed);

  sim::PartitionedClusterSim seq(cfg, features, /*n_partitions=*/4, /*n_threads=*/1);
  sim::PartitionedClusterSim par(cfg, features, /*n_partitions=*/4, /*n_threads=*/3);
  const sim::SimResult a = seq.run(mix, policy);
  const sim::SimResult b = par.run(mix, policy);
  expect_identical(a, b, "threads-1-vs-3");
}

TEST(Partition, MergeConservesShardAggregates) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.cluster.n_nodes = 12;
  const std::size_t P = 3;
  const wl::TaskMix mix = test_mix(8, "conserve");
  sched::PairwisePolicy policy;

  sim::PartitionedClusterSim part(cfg, features, P, 1);
  const sim::SimResult merged = part.run(mix, policy);
  ASSERT_EQ(merged.apps.size(), mix.size());

  // Replay each shard standalone: the merged result must be the deterministic
  // composition of the standalone shard runs.
  std::vector<sim::SimResult> shard(P);
  Seconds max_makespan = 0;
  std::size_t ooms = 0, execs = 0;
  for (std::size_t s = 0; s < P; ++s) {
    sim::SimConfig scfg = cfg;
    scfg.cluster.n_nodes = cfg.cluster.n_nodes / P;
    scfg.seed = Rng::derive(cfg.seed, "partition:" + std::to_string(s));
    wl::TaskMix sub;
    for (std::size_t i = s; i < mix.size(); i += P) sub.push_back(mix[i]);
    shard[s] = sim::ClusterSim(scfg, features).run(sub, policy);
    max_makespan = std::max(max_makespan, shard[s].makespan);
    ooms += shard[s].oom_total;
    execs += shard[s].executors_spawned;
  }
  EXPECT_EQ(merged.makespan, max_makespan);
  EXPECT_EQ(merged.oom_total, ooms);
  EXPECT_EQ(merged.executors_spawned, execs);
  // App i in the merged result is app i/P of shard i%P, and the shard trace
  // occupies the node range at its offset.
  for (std::size_t i = 0; i < mix.size(); ++i) {
    EXPECT_EQ(merged.apps[i].benchmark, mix[i].benchmark) << i;
    EXPECT_EQ(merged.apps[i].finish, shard[i % P].apps[i / P].finish) << i;
  }
  for (std::size_t s = 0; s < P; ++s) {
    const std::size_t per = cfg.cluster.n_nodes / P;
    for (std::size_t n = 0; n < per; ++n)
      for (std::size_t bin = 0; bin < shard[s].trace.n_bins(); ++bin)
        ASSERT_EQ(merged.trace.value(static_cast<int>(s * per + n), bin),
                  shard[s].trace.value(static_cast<int>(n), bin))
            << "shard " << s << " node " << n << " bin " << bin;
  }
}

TEST(Partition, RoundRobinDealAndValidation) {
  EXPECT_EQ(sim::PartitionedClusterSim::shard_of(0, 4), 0u);
  EXPECT_EQ(sim::PartitionedClusterSim::shard_of(5, 4), 1u);
  EXPECT_EQ(sim::PartitionedClusterSim::shard_of(7, 4), 3u);

  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.cluster.n_nodes = 4;
  EXPECT_THROW(sim::PartitionedClusterSim(cfg, features, 5), std::exception);
  EXPECT_THROW(sim::PartitionedClusterSim(cfg, features, 0), std::exception);
}

}  // namespace
