// Unit and differential tests of the two-level bucketed event calendar
// (sparksim/calendar.h): exact (t, slot) pop order including ties, window
// advancement, far-heap re-anchoring, the window-overtake regression, stale
// compaction, and a randomized differential against a plain sorted model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sparksim/calendar.h"

namespace {

using namespace smoe;
using sim::CalendarEntry;
using sim::EventCalendar;

/// Drain the calendar, returning (t, slot) in pop order.
std::vector<std::pair<double, int>> drain(EventCalendar& cal) {
  std::vector<std::pair<double, int>> out;
  while (!cal.empty()) {
    const CalendarEntry& e = cal.top();
    out.emplace_back(e.t, e.slot);
    cal.discard_top();
  }
  return out;
}

TEST(Calendar, PopsInTimeOrderWithSlotTieBreak) {
  EventCalendar cal;
  // Two ties at t=3 (slots 7 and 2 — slot ascending must win) and a "past"
  // push after pops started.
  cal.push(3.0, 0, 7, 1);
  cal.push(10.0, 0, 1, 1);
  cal.push(3.0, 0, 2, 1);
  cal.push(0.5, 0, 9, 1);
  EXPECT_EQ(cal.size(), 4u);
  EXPECT_EQ(cal.top().slot, 9);
  cal.discard_top();
  cal.push(0.25, 0, 4, 1);  // earlier than everything still queued
  const auto order = drain(cal);
  const std::vector<std::pair<double, int>> want = {
      {0.25, 4}, {3.0, 2}, {3.0, 7}, {10.0, 1}};
  EXPECT_EQ(order, want);
  EXPECT_TRUE(cal.empty());
}

TEST(Calendar, ReanchorsAcrossWideTimeSpans) {
  EventCalendar cal;
  // Spans ~9 orders of magnitude: entries land in cur_, the ring and far_,
  // and popping forces at least one re-anchor.
  std::vector<double> times = {1e-3, 0.7, 3.0, 511.0, 513.0, 1e4, 5e6, 5e6, 1e9};
  int slot = 0;
  for (const double t : times) cal.push(t, 0, slot++, 1);
  const auto order = drain(cal);
  ASSERT_EQ(order.size(), times.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(order[i - 1].first, order[i].first);
    if (order[i - 1].first == order[i].first) {
      EXPECT_LT(order[i - 1].second, order[i].second);
    }
  }
}

// Regression for the window-overtake hazard: an entry filed to the far heap
// under an old horizon must be re-filed once the window slides past its
// bucket — otherwise a later-time push that lands inside the ring would pop
// *before* it. Sequence engineered against kBuckets=512, initial width 1.0.
TEST(Calendar, FarEntryIsNotOvertakenByLaterRingPush) {
  EventCalendar cal;
  cal.push(5.0, 0, 0, 1);    // ring bucket 5
  cal.push(600.0, 0, 1, 1);  // beyond the initial horizon -> far heap
  EXPECT_EQ(cal.top().t, 5.0);
  cal.discard_top();  // window advances to bucket 5; horizon now 517
  cal.push(516.5, 0, 2, 1);  // ring bucket 516, inside the new horizon
  EXPECT_EQ(cal.top().t, 516.5);
  cal.discard_top();  // window at bucket 516; horizon now 1028 — 600 is inside
  cal.push(1000.0, 0, 3, 1);  // ring bucket 1000; must NOT pop before 600
  EXPECT_EQ(cal.top().t, 600.0);
  cal.discard_top();
  EXPECT_EQ(cal.top().t, 1000.0);
  cal.discard_top();
  EXPECT_TRUE(cal.empty());
}

TEST(Calendar, RemoveStaleKeepsSurvivorOrderAndBoundsSize) {
  EventCalendar cal;
  // Simulate reschedule churn: slot s is re-armed 64 times; only the last
  // version is live. Entries spread across cur_/ring/far_.
  std::vector<std::uint64_t> live_version(8, 0);
  Rng rng(7);
  for (int round = 0; round < 64; ++round) {
    for (int s = 0; s < 8; ++s) {
      const double t = rng.uniform(0.0, 1e6);
      cal.push(t, 0, s, ++live_version[static_cast<std::uint64_t>(s)]);
    }
  }
  EXPECT_EQ(cal.size(), 512u);
  const std::size_t removed = cal.remove_stale([&](const CalendarEntry& e) {
    return e.version != live_version[static_cast<std::size_t>(e.slot)];
  });
  // One live entry per slot survives: footprint is O(live), not O(pushes).
  EXPECT_EQ(removed, 512u - 8u);
  EXPECT_EQ(cal.size(), 8u);
  const auto order = drain(cal);
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(order[i - 1].first, order[i].first);
}

// Randomized differential against a plain sorted model: interleaved pushes
// (across 12 orders of magnitude), pops, and stale sweeps must match the
// model's (t, slot)-ascending order exactly.
TEST(Calendar, RandomizedDifferentialAgainstSortedModel) {
  Rng rng(20170828);
  for (int round = 0; round < 50; ++round) {
    EventCalendar cal;
    std::vector<CalendarEntry> model;  // live entries only
    auto model_pop_min = [&]() {
      auto it = std::min_element(model.begin(), model.end(),
                                 [](const CalendarEntry& a, const CalendarEntry& b) {
                                   if (a.t != b.t) return a.t < b.t;
                                   return a.slot < b.slot;
                                 });
      const CalendarEntry e = *it;
      model.erase(it);
      return e;
    };
    int next_slot = 0;
    double now = 0;  // pops only move forward; pushes may be past or future
    for (int op = 0; op < 400; ++op) {
      const double r = rng.uniform(0.0, 1.0);
      if (r < 0.55 || model.empty()) {
        const double scale = std::pow(10.0, rng.uniform(-3.0, 9.0));
        const double t = now + rng.uniform(0.0, scale);
        const int slot = next_slot++;
        cal.push(t, 0, slot, 1);
        model.push_back({t, 0, slot, 1});
      } else if (r < 0.9) {
        ASSERT_FALSE(cal.empty());
        const CalendarEntry got = cal.top();
        cal.discard_top();
        const CalendarEntry want = model_pop_min();
        ASSERT_EQ(got.t, want.t) << "round " << round << " op " << op;
        ASSERT_EQ(got.slot, want.slot) << "round " << round << " op " << op;
        now = got.t;
      } else {
        // Sweep a random time band as "stale" from both structures.
        const double cut = rng.uniform(0.0, 2.0 * now + 1.0);
        const auto stale = [&](const CalendarEntry& e) {
          return e.t < cut && (e.slot % 3 == round % 3);
        };
        cal.remove_stale(stale);
        model.erase(std::remove_if(model.begin(), model.end(), stale), model.end());
      }
      ASSERT_EQ(cal.size(), model.size());
    }
    // Drain and compare the tail.
    while (!model.empty()) {
      const CalendarEntry got = cal.top();
      cal.discard_top();
      const CalendarEntry want = model_pop_min();
      ASSERT_EQ(got.t, want.t);
      ASSERT_EQ(got.slot, want.slot);
    }
    EXPECT_TRUE(cal.empty());
  }
}

TEST(Calendar, ClearResetsEverything) {
  EventCalendar cal;
  for (int i = 0; i < 100; ++i) cal.push(i * 37.0, 0, i, 1);
  cal.clear();
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.size(), 0u);
  cal.push(1.0, 0, 0, 1);
  EXPECT_EQ(cal.top().t, 1.0);
}

}  // namespace
