// Tests for the STP/ANTT metrics and the experiment runner.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

sim::SimResult synthetic_result() {
  sim::SimResult r;
  sim::AppResult a;
  a.benchmark = "HB.Scan";
  a.input_items = 30720;
  a.submit = 0;
  a.start = 0;
  a.finish = 400;
  sim::AppResult b = a;
  b.finish = 800;
  r.apps = {a, b};
  r.makespan = 800;
  return r;
}

TEST(Metrics, StpAndAnttFormulas) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  sim::ClusterSim sim(cfg, features);
  sched::IsolatedTimes iso(sim);
  const Seconds c_is = iso.get("HB.Scan", 30720);

  const sched::MixMetrics m = sched::compute_metrics(synthetic_result(), iso);
  EXPECT_NEAR(m.stp, c_is / 400.0 + c_is / 800.0, 1e-9);
  EXPECT_NEAR(m.antt, 0.5 * (400.0 / c_is + 800.0 / c_is), 1e-9);
  EXPECT_DOUBLE_EQ(m.makespan, 800.0);
}

TEST(Metrics, IsolatedTimesAreCachedAndPositive) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  sim::ClusterSim sim(cfg, features);
  sched::IsolatedTimes iso(sim);
  const Seconds a = iso.get("HB.Sort", 30720);
  const Seconds b = iso.get("HB.Sort", 30720);
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(iso.get("HB.Sort", 300), a);
}

TEST(Metrics, NormalizeAgainstBaseline) {
  sched::MixMetrics baseline;
  baseline.stp = 2.0;
  baseline.antt = 10.0;
  sched::MixMetrics scheme;
  scheme.stp = 8.0;
  scheme.antt = 5.0;
  const sched::NormalizedMetrics n = sched::normalize(scheme, baseline);
  EXPECT_DOUBLE_EQ(n.norm_stp, 4.0);
  EXPECT_DOUBLE_EQ(n.antt_reduction, 0.5);
  sched::MixMetrics bad;
  EXPECT_THROW(sched::normalize(scheme, bad), PreconditionError);
}

TEST(Metrics, UnfinishedAppRejected) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  sim::ClusterSim sim(cfg, features);
  sched::IsolatedTimes iso(sim);
  sim::SimResult r = synthetic_result();
  r.apps[1].finish = -1;
  EXPECT_THROW(sched::compute_metrics(r, iso), PreconditionError);
}

TEST(Experiment, BaselineNormalizesToUnity) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 3;
  sched::ExperimentRunner runner(cfg, features, 1, 5);
  sched::IsolatedPolicy isolated;
  Rng rng(6);
  const auto mix = wl::random_mix(3, rng);
  const auto single = runner.run_mix(mix, isolated);
  EXPECT_NEAR(single.normalized.norm_stp, 1.0, 1e-9);
  EXPECT_NEAR(single.normalized.antt_reduction, 0.0, 1e-9);
}

TEST(Experiment, ScenarioAggregatesAreConsistent) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 3;
  sched::ExperimentRunner runner(cfg, features, 3, 5);
  sched::OraclePolicy oracle;
  sched::PairwisePolicy pairwise;
  const auto results = runner.run_scenario(wl::scenario_by_label("L2"), {&oracle, &pairwise});
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_LE(r.stp_min, r.stp_geomean + 1e-9) << r.scheme;
    EXPECT_GE(r.stp_max, r.stp_geomean - 1e-9) << r.scheme;
    EXPECT_LE(r.antt_red_min, r.antt_red_mean + 1e-9) << r.scheme;
    EXPECT_GE(r.antt_red_max, r.antt_red_mean - 1e-9) << r.scheme;
    EXPECT_GT(r.mean_makespan, 0.0) << r.scheme;
    EXPECT_EQ(r.scenario, "L2");
  }
  // Headline ordering: Oracle co-location beats Pairwise.
  EXPECT_GT(results[0].stp_geomean, results[1].stp_geomean);
}

TEST(Experiment, ThroughputGrowsWithTaskGroupSize) {
  // Fig. 6a's dominant trend: more waiting applications -> more co-location
  // opportunity -> higher normalized STP.
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 3;
  sched::ExperimentRunner runner(cfg, features, 3, 5);
  sched::OraclePolicy oracle;
  const auto small = runner.run_scenario(wl::scenario_by_label("L1"), {&oracle});
  const auto large = runner.run_scenario(wl::scenario_by_label("L8"), {&oracle});
  EXPECT_GT(large[0].stp_geomean, 1.5 * small[0].stp_geomean);
}

}  // namespace
