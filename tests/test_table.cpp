// Tests for the ASCII table emitter used by the bench harnesses.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/table.h"

namespace {

using namespace smoe;

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "23456"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 23456 |"), std::string::npos);
  // Header rule + bottom rule + separator = 3 '+--' rule lines.
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos; ++pos) ++rules;
  EXPECT_GE(rules, 3u);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(TextTable, RowWidthMustMatchHeader) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.14159, 0), "3");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, PctFormatsFraction) {
  EXPECT_EQ(TextTable::pct(0.491, 1), "49.1%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(HeatChar, MonotoneRampAndClamping) {
  EXPECT_EQ(heat_char(0.0), ' ');
  EXPECT_EQ(heat_char(1.0), '@');
  EXPECT_EQ(heat_char(-5.0), ' ');
  EXPECT_EQ(heat_char(7.0), '@');
  // Monotone density.
  const std::string ramp = " .:-=+*#%@";
  char prev = heat_char(0.0);
  for (double v = 0.1; v <= 1.0; v += 0.1) {
    const char cur = heat_char(v);
    EXPECT_GE(ramp.find(cur), ramp.find(prev));
    prev = cur;
  }
}

}  // namespace
