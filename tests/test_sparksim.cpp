// Tests for the cluster-simulator substrate: contention model, resource
// monitor, utilization traces and the measurement probe.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "sparksim/app_probe.h"
#include "sparksim/contention.h"
#include "sparksim/monitor.h"
#include "sparksim/trace.h"
#include "workloads/suites.h"

namespace {

using namespace smoe;

// ---- contention ----

TEST(Contention, CpuFactor) {
  EXPECT_DOUBLE_EQ(sim::cpu_factor(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::cpu_factor(0.99), 1.0);
  EXPECT_DOUBLE_EQ(sim::cpu_factor(2.0), 0.5);
  EXPECT_THROW(sim::cpu_factor(-0.1), PreconditionError);
}

TEST(Contention, InterferenceBoundedLikeFig14) {
  // A typical benchmark (sensitivity ~0.3) against a typical co-runner load
  // (~0.3 CPU) slows by well under 25%, matching Fig. 14's envelope.
  const double f = sim::interference_factor(0.3, 0.3);
  EXPECT_GT(f, 0.9);
  EXPECT_LE(f, 1.0);
  // Even the most sensitive benchmark against two heavy co-runners stays
  // under ~25%.
  EXPECT_GT(sim::interference_factor(0.45, 0.7), 0.75);
  EXPECT_DOUBLE_EQ(sim::interference_factor(0.3, 0.0), 1.0);
}

TEST(Contention, PagingFactor) {
  EXPECT_DOUBLE_EQ(sim::paging_factor(32, 64, 8.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::paging_factor(64, 64, 8.0), 1.0);
  const double f = sim::paging_factor(72, 64, 8.0);  // 8 GiB over
  EXPECT_NEAR(f, 1.0 / 2.0, 1e-12);
  EXPECT_THROW(sim::paging_factor(1, 0, 8.0), PreconditionError);
}

TEST(Contention, OomThreshold) {
  EXPECT_FALSE(sim::is_oom(79.9, 64, 16));
  EXPECT_TRUE(sim::is_oom(80.1, 64, 16));
}

TEST(Contention, CombinedSpeedFactorComposes) {
  sim::ClusterConfig cluster;
  sim::ContentionConfig contention;
  sim::NodeLoad node;
  node.total_cpu = 1.5;
  node.resident = 68.0;
  const double f = sim::speed_factor(0.5, 0.3, node, cluster, contention);
  const double expected = sim::cpu_factor(1.5) * sim::interference_factor(0.3, 1.0) *
                          sim::paging_factor(68.0, cluster.node_ram, contention.paging_penalty);
  EXPECT_DOUBLE_EQ(f, expected);
  EXPECT_LT(f, 0.67);
}

// ---- resource monitor ----

TEST(Monitor, ZeroBeforeFirstReport) {
  sim::ResourceMonitor monitor(3, 5);
  EXPECT_DOUBLE_EQ(monitor.reported_cpu(0), 0.0);
  EXPECT_DOUBLE_EQ(monitor.reported_mem(2), 0.0);
}

TEST(Monitor, WindowedAverage) {
  sim::ResourceMonitor monitor(2, 3);
  const std::vector<double> mem = {10, 20};
  monitor.record(std::vector<double>{0.2, 0.4}, mem);
  monitor.record(std::vector<double>{0.4, 0.4}, mem);
  EXPECT_NEAR(monitor.reported_cpu(0), 0.3, 1e-12);
  EXPECT_NEAR(monitor.reported_cpu(1), 0.4, 1e-12);
  EXPECT_NEAR(monitor.reported_mem(0), 10.0, 1e-12);
}

TEST(Monitor, OldReportsAgeOutOfTheWindow) {
  sim::ResourceMonitor monitor(1, 2);
  const std::vector<double> mem = {0};
  monitor.record(std::vector<double>{1.0}, mem);
  monitor.record(std::vector<double>{0.0}, mem);
  monitor.record(std::vector<double>{0.0}, mem);  // evicts the 1.0 sample
  EXPECT_DOUBLE_EQ(monitor.reported_cpu(0), 0.0);
}

TEST(Monitor, Validation) {
  sim::ResourceMonitor monitor(2, 3);
  EXPECT_THROW(monitor.record(std::vector<double>{0.1}, std::vector<double>{0.1, 0.2}),
               PreconditionError);
  EXPECT_THROW(monitor.reported_cpu(5), PreconditionError);
  EXPECT_THROW(sim::ResourceMonitor(0, 3), PreconditionError);
  EXPECT_THROW(sim::ResourceMonitor(2, 0), PreconditionError);
}

// ---- utilization trace ----

TEST(Trace, AccumulatesTimeWeightedValues) {
  sim::UtilizationTrace trace(1, 10.0);
  trace.accumulate(0, 0.0, 5.0, 1.0);   // half of bin 0 at 100%
  trace.accumulate(0, 5.0, 10.0, 0.0);  // other half idle
  EXPECT_NEAR(trace.value(0, 0), 0.5, 1e-12);
}

TEST(Trace, SpansMultipleBins) {
  sim::UtilizationTrace trace(1, 10.0);
  trace.accumulate(0, 0.0, 30.0, 0.8);
  EXPECT_EQ(trace.n_bins(), 3u);
  for (std::size_t b = 0; b < 3; ++b) EXPECT_NEAR(trace.value(0, b), 0.8, 1e-12);
  EXPECT_NEAR(trace.overall_mean(), 0.8, 1e-12);
}

TEST(Trace, UnrecordedBinsAreZero) {
  sim::UtilizationTrace trace(2, 10.0);
  trace.accumulate(0, 0.0, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(trace.value(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(trace.value(0, 7), 0.0);
}

TEST(Trace, Validation) {
  sim::UtilizationTrace trace(1, 10.0);
  EXPECT_THROW(trace.accumulate(5, 0, 1, 0.5), PreconditionError);
  EXPECT_THROW(trace.accumulate(0, 5, 1, 0.5), PreconditionError);
  EXPECT_THROW(sim::UtilizationTrace(0), PreconditionError);
}

// ---- app probe ----

TEST(Probe, MeasurementsAreNoisyTruth) {
  const wl::FeatureModel features(1);
  const auto& bench = wl::find_benchmark("HB.PageRank");
  sim::AppProbe probe(bench, features, 100000, 42, 0.02);
  std::vector<double> measurements;
  for (int i = 0; i < 200; ++i) measurements.push_back(probe.measure_footprint(5000));
  const double truth = bench.footprint(5000);
  EXPECT_NEAR(mean(measurements), truth, 0.02 * truth);
  EXPECT_NEAR(stddev(measurements) / truth, 0.02, 0.008);
}

TEST(Probe, ZeroNoiseIsExact) {
  const wl::FeatureModel features(1);
  const auto& bench = wl::find_benchmark("HB.Sort");
  sim::AppProbe probe(bench, features, 1000, 1, 0.0);
  EXPECT_DOUBLE_EQ(probe.measure_footprint(500), bench.footprint(500));
}

TEST(Probe, DeterministicGivenSeed) {
  const wl::FeatureModel features(1);
  const auto& bench = wl::find_benchmark("HB.Sort");
  sim::AppProbe a(bench, features, 1000, 9);
  sim::AppProbe b(bench, features, 1000, 9);
  EXPECT_EQ(a.raw_features(), b.raw_features());
  EXPECT_DOUBLE_EQ(a.measure_footprint(100), b.measure_footprint(100));
  EXPECT_DOUBLE_EQ(a.measure_cpu_load(), b.measure_cpu_load());
}

TEST(Probe, CpuLoadNearTruth) {
  const wl::FeatureModel features(1);
  const auto& bench = wl::find_benchmark("SP.Gmm");
  sim::AppProbe probe(bench, features, 1000, 3);
  std::vector<double> loads;
  for (int i = 0; i < 100; ++i) loads.push_back(probe.measure_cpu_load());
  EXPECT_NEAR(mean(loads), bench.cpu_load_iso, 0.02);
}

TEST(Probe, Validation) {
  const wl::FeatureModel features(1);
  const auto& bench = wl::find_benchmark("HB.Sort");
  EXPECT_THROW(sim::AppProbe(bench, features, 0, 1), PreconditionError);
  sim::AppProbe probe(bench, features, 1000, 1);
  EXPECT_THROW(probe.measure_footprint(0), PreconditionError);
}

}  // namespace
