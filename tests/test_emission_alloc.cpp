// Emission microbenchmark-as-test: recording + formatting one hot-path event
// must not touch the heap. The global operator new/delete are replaced with
// counting wrappers, a batch of the widest engine event (kExecutorSpawn, 15
// fields) is emitted into every sink kind, and the allocation counter must
// not move. This pins down the zero-allocation contract of the event
// pipeline: fields live inline in the Event, string values are views, and
// sinks format straight into their pre-reserved buffers.
//
// The counting hook is disabled under ASan/TSan (the sanitizer runtimes own
// the allocator there); scripts/check.sh keeps the EmissionAlloc suite out of
// the sanitizer test regexes and the test skips itself as a second guard.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>

#include "obs/event.h"
#include "obs/sink.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SMOE_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SMOE_SANITIZED 1
#endif
#endif

#ifndef SMOE_SANITIZED

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // !SMOE_SANITIZED

namespace {

using namespace smoe;

/// The widest event the engine emits (kExecutorSpawn with its 15 fields),
/// mirroring src/sparksim/engine.cpp's spawn() site.
void emit_spawn_batch(obs::EventSink& sink, const std::string& benchmark, int n) {
  for (int i = 0; i < n; ++i) {
    sink.emit(obs::Event(0.5 * i, obs::EventType::kExecutorSpawn)
                  .with("exec", i)
                  .with("app", 3)
                  .with("benchmark", benchmark)
                  .with("node", i % 7)
                  .with("chunk_items", 8192.0)
                  .with("reserved_gib", 1.5)
                  .with("resident_gib", 1.25)
                  .with("degrade", 0.0)
                  .with("predictive", true)
                  .with("isolated_rerun", false)
                  .with("planned_cpu", 0.4)
                  .with("cpu_load_iso", 0.35)
                  .with("node_reserved_after", 3.5)
                  .with("node_planned_cpu_after", 0.9)
                  .with("node_cpu_iso_after", 0.8));
  }
}

TEST(EmissionAlloc, HotPathEmissionIsAllocationFree) {
#ifdef SMOE_SANITIZED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  // Construction allocates (1 MiB buffer reserves, stream internals) —
  // everything before the measured window is allowed to.
  obs::CountingSink counting;
  std::ostringstream jsonl_out, chrome_out;
  obs::JsonlSink jsonl(jsonl_out);
  obs::ChromeTraceSink chrome(chrome_out);
  const std::string benchmark = "HB.TeraSort";

  // ~1000 events x ~350 formatted bytes stays far below the 1 MiB buffer, so
  // no flush (and no ostream write) happens inside the window.
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  emit_spawn_batch(counting, benchmark, 1000);
  emit_spawn_batch(jsonl, benchmark, 1000);
  emit_spawn_batch(chrome, benchmark, 1000);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "event emission allocated on the hot path";

  // The events actually went through — this is not a no-op measurement.
  EXPECT_EQ(counting.total(), 1000u);
  jsonl.close();
  chrome.close();
  EXPECT_GT(jsonl_out.str().size(), 100000u);
  EXPECT_GT(chrome_out.str().size(), 100000u);
#endif
}

TEST(EmissionAlloc, EventLookupAndOverflowAreAllocationFree) {
#ifdef SMOE_SANITIZED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  const std::string benchmark = "SP.Gmm";
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  obs::Event e(1.0, obs::EventType::kDispatch);
  for (std::size_t i = 0; i < obs::Event::kMaxFields + 4; ++i)
    e.with("benchmark", benchmark);  // past capacity: silently dropped
  const obs::Event::Field* f = e.find("benchmark");
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(std::get<std::string_view>(f->value), benchmark);
  EXPECT_EQ(e.size(), obs::Event::kMaxFields);
#endif
}

}  // namespace
