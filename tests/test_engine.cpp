// Integration tests for the discrete-event cluster engine.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/engine.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.seed = 77;
  return cfg;
}

TEST(Engine, IsolatedSingleAppMatchesAnalyticTime) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  // A medium app fits one dynamic-allocation executor: exec time is simply
  // items / rate with no contention.
  const auto& bench = wl::find_benchmark("HB.Scan");
  const Items input = 30 * 1024;
  const Seconds t = sim.isolated_exec_time({bench.name, input});
  EXPECT_NEAR(t, input / bench.items_per_second, 1.0);
}

TEST(Engine, IsolatedLargeAppUsesDynamicAllocationParallelism) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  const auto& bench = wl::find_benchmark("HB.Scan");
  const Seconds large = sim.isolated_exec_time({bench.name, 1048576.0});
  const Seconds medium = sim.isolated_exec_time({bench.name, 30.0 * 1024});
  // 1 TB on ~12 executors must be far faster than 34x the 30 GB time.
  EXPECT_LT(large, 34.0 * medium);
  EXPECT_GT(large, medium);
}

TEST(Engine, IsolatedModeRunsAppsSequentially) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::IsolatedPolicy isolated;
  const wl::TaskMix mix = {{"HB.Scan", 30720.0}, {"HB.Scan", 30720.0}};
  const sim::SimResult r = sim.run(mix, isolated);
  // Second app starts only after the first finishes.
  EXPECT_GE(r.apps[1].start, r.apps[0].finish - 1.0);
  EXPECT_NEAR(r.apps[1].turnaround(), 2.0 * r.apps[0].turnaround(), 2.0);
}

TEST(Engine, PredictiveCoLocationOverlapsApps) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::OraclePolicy oracle;
  const wl::TaskMix mix = {{"HB.Scan", 30720.0}, {"HB.Scan", 30720.0}};
  const sim::SimResult r = sim.run(mix, oracle);
  // With 40 idle nodes both apps run concurrently.
  EXPECT_LT(r.makespan, 1.5 * sim.isolated_exec_time({"HB.Scan", 30720.0}));
}

TEST(Engine, AllWorkConservedAcrossPolicies) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::PairwisePolicy pairwise;
  sched::OraclePolicy oracle;
  sched::MoePolicy moe(features, 5);
  const wl::TaskMix mix = {{"HB.TeraSort", 1048576.0},
                           {"SP.Gmm", 30720.0},
                           {"SB.SVM", 30720.0},
                           {"BDB.Grep", 300.0}};
  for (sim::SchedulingPolicy* p :
       std::vector<sim::SchedulingPolicy*>{&pairwise, &oracle, &moe}) {
    const sim::SimResult r = sim.run(mix, *p);
    ASSERT_EQ(r.apps.size(), 4u) << p->name();
    for (std::size_t i = 0; i < mix.size(); ++i) {
      EXPECT_EQ(r.apps[i].benchmark, mix[i].benchmark);
      EXPECT_GE(r.apps[i].finish, r.apps[i].start) << p->name();
      EXPECT_GE(r.apps[i].start, 0.0) << p->name();
      EXPECT_LE(r.apps[i].finish, r.makespan + 1e-6) << p->name();
    }
  }
}

TEST(Engine, MakespanIsMaxFinish) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::OraclePolicy oracle;
  Rng rng(8);
  const auto mix = wl::random_mix(6, rng);
  const sim::SimResult r = sim.run(mix, oracle);
  double max_finish = 0;
  for (const auto& a : r.apps) max_finish = std::max(max_finish, a.finish);
  EXPECT_DOUBLE_EQ(r.makespan, max_finish);
}

TEST(Engine, UtilizationTraceBounded) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::OraclePolicy oracle;
  const sim::SimResult r = sim.run(wl::table4_mix(), oracle);
  EXPECT_GT(r.trace.overall_mean(), 0.05);
  EXPECT_LE(r.trace.overall_mean(), 1.0);
  for (std::size_t n = 0; n < r.trace.n_nodes(); ++n)
    for (std::size_t b = 0; b < r.trace.n_bins(); b += 7) {
      EXPECT_GE(r.trace.value(static_cast<int>(n), b), 0.0);
      EXPECT_LE(r.trace.value(static_cast<int>(n), b), 1.0);
    }
}

TEST(Engine, ProfilingConsumesInputAndIsAccounted) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::MoePolicy moe(features, 5);
  const wl::TaskMix mix = {{"SP.Gmm", 30720.0}};
  const sim::SimResult r = sim.run(mix, moe);
  EXPECT_GT(r.apps[0].feature_time, 0.0);
  EXPECT_GT(r.apps[0].calibration_time, 0.0);
  EXPECT_NEAR(r.apps[0].profile_end, r.apps[0].feature_time + r.apps[0].calibration_time, 1e-6);
  // The profiling overhead stays modest (Fig. 11: ~13% of total).
  EXPECT_LT(r.apps[0].profile_end, 0.35 * r.apps[0].turnaround());
}

TEST(Engine, ProfilingSlotsSerializeLargeMixes) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg = small_config();
  cfg.spark.profiling_slots = 1;
  sim::ClusterSim sim(cfg, features);
  sched::MoePolicy moe(features, 5);
  const wl::TaskMix mix = {{"SP.Gmm", 30720.0}, {"SP.ALS", 30720.0}, {"SP.LDA", 30720.0}};
  const sim::SimResult r = sim.run(mix, moe);
  // With one slot the profiling windows cannot overlap.
  std::vector<Seconds> ends = {r.apps[0].profile_end, r.apps[1].profile_end,
                               r.apps[2].profile_end};
  std::sort(ends.begin(), ends.end());
  EXPECT_GT(ends[1], ends[0]);
  EXPECT_GT(ends[2], ends[1]);
}

TEST(Engine, TinyInputRejected) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::OraclePolicy oracle;
  const wl::TaskMix mix = {{"HB.Sort", 10.0}};
  EXPECT_THROW(sim.run(mix, oracle), PreconditionError);
}

TEST(Engine, EmptyMixRejected) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::OraclePolicy oracle;
  EXPECT_THROW(sim.run({}, oracle), PreconditionError);
}

TEST(Engine, DeterministicGivenSeed) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::MoePolicy moe(features, 5);
  Rng rng(10);
  const auto mix = wl::random_mix(5, rng);
  const sim::SimResult a = sim.run(mix, moe);
  const sim::SimResult b = sim.run(mix, moe);
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.apps[i].finish, b.apps[i].finish);
    EXPECT_DOUBLE_EQ(a.apps[i].start, b.apps[i].start);
  }
}

// A deliberately terrible policy: claims every application needs almost no
// memory. The engine must survive via OOM -> isolated re-run -> distrust.
class DelusionalPolicy final : public sim::SchedulingPolicy {
 public:
  std::string name() const override { return "Delusional"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPredictive; }
  sim::ProfilingCost profile(sim::AppProbe& probe, sim::MemoryEstimate& estimate) override {
    estimate.footprint = [](Items) { return 0.5; };  // 512 MiB for anything
    estimate.items_for_budget = [&probe](GiB) { return probe.input_items(); };
    estimate.cpu_load = 0.2;
    return {};
  }
};

TEST(Engine, SurvivesPathologicalUnderPrediction) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  DelusionalPolicy bad;
  const wl::TaskMix mix = {{"SP.Gmm", 30720.0}, {"HB.PageRank", 30720.0}};
  const sim::SimResult r = sim.run(mix, bad);
  EXPECT_GT(r.oom_total, 0u);                     // the lie is detected...
  EXPECT_LE(r.oom_total, 2u * mix.size() + 4u);   // ...without an OOM storm
  for (const auto& a : r.apps) EXPECT_GE(a.finish, 0.0);  // and work completes
}

// A policy that over-reserves massively: everything still completes, just
// with less co-location.
class ParanoidPolicy final : public sim::SchedulingPolicy {
 public:
  std::string name() const override { return "Paranoid"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPredictive; }
  sim::ProfilingCost profile(sim::AppProbe&, sim::MemoryEstimate& estimate) override {
    estimate.footprint = [](Items) { return 60.0; };
    estimate.items_for_budget = [](GiB budget) { return budget >= 60.0 ? 1e9 : 0.0; };
    estimate.cpu_load = 0.2;
    return {};
  }
};

TEST(Engine, OverReservationCompletesWithoutOom) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  ParanoidPolicy paranoid;
  const wl::TaskMix mix = {{"HB.Scan", 30720.0}, {"HB.Scan", 30720.0}};
  const sim::SimResult r = sim.run(mix, paranoid);
  EXPECT_EQ(r.oom_total, 0u);
  for (const auto& a : r.apps) EXPECT_GE(a.finish, 0.0);
}

TEST(Engine, OnlineSearchOverheadSlowsExecution) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::OnlineSearchPolicy online(0.5);
  sched::OraclePolicy oracle;
  const wl::TaskMix mix = {{"HB.Scan", 30720.0}};
  const Seconds t_online = sim.run(mix, online).apps[0].exec_time();
  const Seconds t_oracle = sim.run(mix, oracle).apps[0].exec_time();
  EXPECT_GT(t_online, 1.3 * t_oracle);
}

TEST(Engine, PairwiseSlowerThanOracleOnCrowdedCluster) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::PairwisePolicy pairwise;
  sched::OraclePolicy oracle;
  const auto mix = wl::table4_mix();
  const Seconds mk_pair = sim.run(mix, pairwise).makespan;
  const Seconds mk_oracle = sim.run(mix, oracle).makespan;
  EXPECT_GT(mk_pair, 1.3 * mk_oracle);
}

}  // namespace
