// Tests for min-max scaling, PCA and Varimax rotation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "ml/pca.h"
#include "ml/scaling.h"
#include "ml/varimax.h"

namespace {

using namespace smoe;
using ml::Matrix;
using ml::Vector;

TEST(Scaler, MapsTrainingExtremaToUnitRange) {
  ml::MinMaxScaler scaler;
  scaler.fit(Matrix::from_rows({{0, 100}, {10, 300}}));
  const Vector lo = scaler.transform(std::vector<double>{0, 100});
  const Vector hi = scaler.transform(std::vector<double>{10, 300});
  EXPECT_DOUBLE_EQ(lo[0], 0);
  EXPECT_DOUBLE_EQ(lo[1], 0);
  EXPECT_DOUBLE_EQ(hi[0], 1);
  EXPECT_DOUBLE_EQ(hi[1], 1);
  const Vector mid = scaler.transform(std::vector<double>{5, 200});
  EXPECT_DOUBLE_EQ(mid[0], 0.5);
  EXPECT_DOUBLE_EQ(mid[1], 0.5);
}

TEST(Scaler, ClampsOutOfRangeDeploymentValues) {
  ml::MinMaxScaler scaler;
  scaler.fit(Matrix::from_rows({{0.0}, {1.0}}));
  EXPECT_DOUBLE_EQ(scaler.transform(std::vector<double>{5.0})[0], 1.0);
  EXPECT_DOUBLE_EQ(scaler.transform(std::vector<double>{-5.0})[0], 0.0);
}

TEST(Scaler, ConstantColumnMapsToZero) {
  ml::MinMaxScaler scaler;
  scaler.fit(Matrix::from_rows({{7.0}, {7.0}}));
  EXPECT_DOUBLE_EQ(scaler.transform(std::vector<double>{7.0})[0], 0.0);
}

TEST(Scaler, UsageErrors) {
  ml::MinMaxScaler scaler;
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), PreconditionError);
  scaler.fit(Matrix::from_rows({{1.0, 2.0}}));
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), PreconditionError);
}

// Build a data set with known variance structure: 2 strong latent directions
// embedded in 8 dims plus tiny noise.
Matrix low_rank_data(std::uint64_t seed, std::size_t n = 200) {
  Rng rng(seed);
  Matrix x(n, 8);
  for (std::size_t r = 0; r < n; ++r) {
    const double z1 = rng.normal(0, 3), z2 = rng.normal(0, 1);
    for (std::size_t c = 0; c < 8; ++c) {
      const double w1 = std::cos(0.3 * static_cast<double>(c));
      const double w2 = std::sin(0.7 * static_cast<double>(c));
      x(r, c) = w1 * z1 + w2 * z2 + rng.normal(0, 0.01);
    }
  }
  return x;
}

TEST(Pca, CapturesLowRankStructure) {
  ml::Pca pca;
  pca.fit(low_rank_data(1), 0.999, 0);
  EXPECT_EQ(pca.n_components(), 2u);
  const auto& ratios = pca.explained_variance_ratio();
  EXPECT_GT(ratios[0], ratios[1]);
  EXPECT_GT(ratios[0] + ratios[1], 0.999);
}

TEST(Pca, MaxComponentsCapRespected) {
  ml::Pca pca;
  pca.fit(low_rank_data(2), 0.9999999, 1);
  EXPECT_EQ(pca.n_components(), 1u);
}

TEST(Pca, TransformIsCenteredProjection) {
  const Matrix x = low_rank_data(3);
  ml::Pca pca;
  pca.fit(x, 0.95, 0);
  // The projection of the column mean must be the origin.
  const Vector at_mean = pca.transform(x.col_means());
  for (const double v : at_mean) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Pca, ProjectionPreservesPairwiseDistanceOnLowRankData) {
  const Matrix x = low_rank_data(4, 50);
  ml::Pca pca;
  pca.fit(x, 0.95, 0);
  const Matrix p = pca.transform(x);
  // With 2 real dimensions + epsilon noise, distances survive projection.
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = i + 1; j < 10; ++j) {
      const double d_full = ml::euclidean_distance(x.row(i), x.row(j));
      const double d_proj = ml::euclidean_distance(p.row(i), p.row(j));
      EXPECT_NEAR(d_proj, d_full, 0.05 * d_full + 0.05);
    }
}

TEST(Pca, UsageErrors) {
  ml::Pca pca;
  EXPECT_THROW(pca.transform(std::vector<double>{1.0}), PreconditionError);
  EXPECT_THROW(pca.fit(Matrix(1, 3)), PreconditionError);
  pca.fit(low_rank_data(5), 0.95, 0);
  EXPECT_THROW(pca.transform(std::vector<double>{1.0}), PreconditionError);
}

TEST(Varimax, RotationPreservesColumnEnergyTotal) {
  const Matrix x = low_rank_data(6);
  ml::Pca pca;
  pca.fit(x, 0.95, 0);
  const Matrix rotated = ml::varimax_rotate(pca.components());
  // Per-row (communalities) sums of squares are rotation-invariant.
  for (std::size_t r = 0; r < rotated.rows(); ++r) {
    double before = 0, after = 0;
    for (std::size_t c = 0; c < rotated.cols(); ++c) {
      before += pca.components()(r, c) * pca.components()(r, c);
      after += rotated(r, c) * rotated(r, c);
    }
    EXPECT_NEAR(before, after, 1e-9);
  }
}

TEST(Varimax, SingleComponentIsNoOp) {
  const Matrix loadings = Matrix::from_rows({{0.5}, {0.8}});
  const Matrix rotated = ml::varimax_rotate(loadings);
  EXPECT_DOUBLE_EQ(rotated(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(rotated(1, 0), 0.8);
}

TEST(Varimax, ContributionsSumToOne) {
  const Matrix x = low_rank_data(7);
  ml::Pca pca;
  pca.fit(x, 0.95, 0);
  const Matrix rotated = ml::varimax_rotate(pca.components());
  const Vector contrib = ml::feature_contributions(rotated, pca.explained_variance_ratio());
  double sum = 0;
  for (const double c : contrib) {
    EXPECT_GE(c, 0.0);
    sum += c;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Varimax, MismatchedVarianceVectorThrows) {
  const Matrix loadings(4, 2);
  EXPECT_THROW(ml::feature_contributions(loadings, {0.5}), PreconditionError);
}

}  // namespace
