// Tests for the Section 5.2 replay-until-confidence methodology.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

TEST(Replication, ConvergesForDeterministicPolicy) {
  // Oracle has zero measurement noise, so every replay of the same mix gives
  // the same STP and the CI closes immediately.
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 7;
  sched::ExperimentRunner runner(cfg, features, 1, 9);
  sched::OraclePolicy oracle;
  Rng rng(10);
  const auto mix = wl::random_mix(4, rng);
  const auto r = runner.run_mix_replicated(mix, oracle, 10, 0.05);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.replays, 2u);
  EXPECT_NEAR(r.stp_ci_half, 0.0, 1e-9);
  EXPECT_GT(r.stp_mean, 1.0);
}

TEST(Replication, NoisyPolicyReportsHonestConfidence) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 7;
  sched::ExperimentRunner runner(cfg, features, 1, 9);
  sched::MoePolicy moe(features, 2017);
  Rng rng(11);
  const auto mix = wl::random_mix(5, rng);
  const auto r = runner.run_mix_replicated(mix, moe, 8, 0.05);
  EXPECT_GE(r.replays, 2u);
  EXPECT_LE(r.replays, 8u);
  EXPECT_GT(r.stp_mean, 0.5);
  if (r.converged) {
    EXPECT_LT(2.0 * r.stp_ci_half, 0.05 * r.stp_mean + 1e-12);
  } else {
    EXPECT_EQ(r.replays, 8u);
  }
  EXPECT_GE(r.stp_ci_half, 0.0);
}

TEST(Replication, TighterTargetNeedsAtLeastAsManyReplays) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 7;
  sched::ExperimentRunner runner(cfg, features, 1, 9);
  sched::MoePolicy moe(features, 2017);
  Rng rng(12);
  const auto mix = wl::random_mix(5, rng);
  const auto loose = runner.run_mix_replicated(mix, moe, 10, 0.20);
  const auto tight = runner.run_mix_replicated(mix, moe, 10, 0.01);
  EXPECT_LE(loose.replays, tight.replays);
}

TEST(Replication, Validation) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  sched::ExperimentRunner runner(cfg, features, 1, 9);
  sched::OraclePolicy oracle;
  Rng rng(13);
  const auto mix = wl::random_mix(2, rng);
  EXPECT_THROW(runner.run_mix_replicated(mix, oracle, 1, 0.05), PreconditionError);
  EXPECT_THROW(runner.run_mix_replicated(mix, oracle, 5, 0.0), PreconditionError);
}

}  // namespace
